use ur_studies::{run_study, study};

#[test]
fn admin_study_end_to_end() {
    let r = run_study(&study("admin")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["n"], "2");
    let html = &vals["html"];
    assert!(html.contains("<h1>Inventory</h1>"), "{html}");
    assert!(html.contains("<th>Name</th>"), "{html}");
    assert!(html.contains("<td>bolt</td>"), "{html}");
    assert!(html.contains("<td>42</td>"), "{html}");
    // The malicious row label is escaped in the rendered page.
    assert!(html.contains("&lt;b&gt;nut&lt;/b&gt;"), "{html}");
    assert!(!html.contains("<b>nut</b>"), "{html}");
    // Form inputs present.
    // (usage_values stringifies via Debug, so quotes are escaped)
    assert!(html.contains("<input type=\\\"text\\\" name=\\\"Qty\\\"></input>"), "{html}");
    assert_eq!(vals["cleared"], "2");
    assert_eq!(vals["n2"], "0");
    assert!(r.stats.disjoint_prover_calls > 20, "{}", r.stats);
}

#[test]
fn admin2_study_end_to_end() {
    let r = run_study(&study("admin2")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["beforeFlush"], "0");
    assert_eq!(vals["pending"], "2");
    // Serialized RPC payload contains both rows through the column Shows.
    assert!(vals["wire"].contains("Label=widget;Price=5;"), "{}", vals["wire"]);
    assert!(vals["wire"].contains("Label=gizmo;Price=8;"), "{}", vals["wire"]);
    assert_eq!(vals["afterFlush"], "2");
}
