//! End-to-end checks of the §2 components as packaged studies.

use ur_studies::{run_study, study};

#[test]
fn folders_study() {
    let r = run_study(&study("folders")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["n"], "2");
    assert_eq!(vals["n0"], "0");
}

#[test]
fn mktable_study() {
    let r = run_study(&study("mktable")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    // The paper's §2.1 expected output.
    assert_eq!(
        vals["html"],
        "\"<tr> <th>A</th> <td>2</td> </tr> <tr> <th>B</th> <td>3.4</td> </tr> \""
    );
    assert!(vals["xhtml"].contains("<table><tr><th>A</th><td>2</td></tr>"));
    // Injection neutralized by the typed tree.
    assert!(vals["attack"].contains("&lt;script&gt;"));
    assert!(!vals["attack"].contains("<script>"));
}

#[test]
fn todb_study() {
    let r = run_study(&study("todb")).unwrap();
    assert!(r.stats.law_map_fusion >= 1, "fusion law must fire: {}", r.stats);
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["total"], "2");
}

#[test]
fn selector_study() {
    let r = run_study(&study("selector")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["hit"], "1");
    assert_eq!(vals["removed"], "1");
    assert_eq!(vals["left"], "2");
    assert!(r.stats.disjoint_prover_calls > 0);
}

#[test]
fn update_matching_sets_subset_of_columns() {
    let r = run_study(&study("selector")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["bumped"], "1");
    assert_eq!(vals["naliice"], "1");
}

#[test]
fn interface_mismatches_are_detected() {
    // check_interface must reject a wrong specification.
    let mut sess = ur_web::Session::new().unwrap();
    sess.run(study("mktable").implementation()).unwrap();
    let bad_iface = "val mkTable : int -> int";
    let err = ur_studies::check_interface(&mut sess, bad_iface).unwrap_err();
    assert!(err.to_string().contains("interface mismatch"), "{err}");
    let missing = "val noSuchThing : int";
    let err = ur_studies::check_interface(&mut sess, missing).unwrap_err();
    assert!(err.to_string().contains("does not define"), "{err}");
}

#[test]
fn loc_handles_nested_and_inline_comments() {
    assert_eq!(ur_studies::loc("(* a (* b *) c *)\n"), 0);
    assert_eq!(ur_studies::loc("val x (* mid *) : int\n"), 1);
    assert_eq!(ur_studies::loc(""), 0);
}
