use ur_studies::{run_study, study};

#[test]
fn orm_study_end_to_end() {
    let r = run_study(&study("orm")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["count"], "3");
    assert_eq!(vals["deleted"], "1");
    assert_eq!(vals["count2"], "2");
    assert_eq!(vals["younger"], "1"); // alice (30) removed; carol (41) stays
    assert_eq!(vals["count3"], "1");
    assert_eq!(vals["total"], "1");
    assert_eq!(vals["txt"], "\"dave 7 \"");
    assert_eq!(vals["pcount"], "1");
    // Figure 5 shape: the prover is the workhorse.
    assert!(r.stats.disjoint_prover_calls > 10, "{}", r.stats);
}

#[test]
fn orm_links_follow_foreign_keys() {
    let r = run_study(&study("orm_links")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["nOwners"], "1");
    assert_eq!(vals["ownerName"], "\"alice\"");
    assert_eq!(vals["nBobs"], "1");
}
