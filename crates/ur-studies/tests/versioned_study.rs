use ur_studies::{run_study, study};

#[test]
fn versioned_study_end_to_end() {
    let r = run_study(&study("versioned")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["nversions"], "3");
    assert_eq!(vals["latestTitle"], "\"Final\"");
    assert_eq!(vals["latestBody"], "\"hello world\"");
    // Rolling back to version 2: the title change had not happened yet.
    assert_eq!(vals["middleTitle"], "\"v1\"");
    assert_eq!(vals["middleBody"], "\"hello world\"");
    // Figure 5 shape for Versioned: prover-heavy, with fusion uses.
    assert!(r.stats.disjoint_prover_calls > 20, "{}", r.stats);
    assert!(r.stats.law_map_fusion >= 1, "{}", r.stats);
}
