use ur_studies::{run_study, study};

#[test]
fn spreadsheet_study_end_to_end() {
    let r = run_study(&study("spreadsheet")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    let html = &vals["html"];
    // Headers: stored and computed columns.
    for h in ["<th>Id</th>", "<th>A</th>", "<th>B</th>", "<th>2A</th>"] {
        assert!(html.contains(h), "{html}");
    }
    // A computed cell: 2 * 10 = 20.
    assert!(html.contains("<td>20</td>"), "{html}");
    // Aggregates over [10, 7, 5] and [True, False, True].
    assert_eq!(vals["totals"], "\"<tr><td>22</td><td>False</td></tr>\"");
    assert_eq!(vals["nbig"], "2");
    assert_eq!(vals["totalsBig"], "\"<tr><td>17</td><td>False</td></tr>\"");
    assert!(r.stats.disjoint_prover_calls > 20, "{}", r.stats);
}

#[test]
fn spreadsheet_sql_study_end_to_end() {
    let r = run_study(&study("spreadsheet_sql")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    assert_eq!(vals["n"], "3");
    assert_eq!(vals["count"], "3");
    let html = &vals["html"];
    assert!(html.contains("<th>2A</th>"), "{html}");
    assert!(html.contains("<td>20</td>"), "{html}");
    // Bool column round-trips through its int SQL representation.
    assert!(html.contains("<td>True</td>"), "{html}");
    assert_eq!(vals["totals"], "\"<tr><td>22</td><td>False</td></tr>\"");
    // Figure 5 shape: the SQL spreadsheet is the heaviest distributivity
    // user.
    assert!(r.stats.law_map_distrib >= 1, "{}", r.stats);
    assert!(r.stats.disjoint_prover_calls > 20, "{}", r.stats);
}

#[test]
fn spreadsheet_filtering_sorting_paging() {
    let r = run_study(&study("spreadsheet")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    // A > 6 and B: only {Id=1, A=10, B=True}.
    assert_eq!(vals["npicked"], "1");
    // Sorted A values ascending.
    assert_eq!(vals["firstA"], "[5, 7, 10]");
    assert_eq!(vals["npage"], "2");
}

#[test]
fn sql_spreadsheet_server_side_paging() {
    let r = run_study(&study("spreadsheet_sql")).unwrap();
    let vals: std::collections::HashMap<_, _> = r.usage_values.into_iter().collect();
    // Rows have A = 10, 7, 5; ordered ascending [5, 7, 10]; offset 1,
    // limit 1 -> [7].
    assert_eq!(vals["pageA"], "[7]");
}
