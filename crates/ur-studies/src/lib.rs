//! # ur-studies — the paper's case-study metaprograms, written in Ur
//!
//! Section 6 of the paper evaluates Ur by building statically-typed
//! versions of metaprogramming components popular in Web frameworks. This
//! crate contains our re-implementations as Ur source (embedded), each
//! split into an *interface* block (`val` specifications, validated
//! against the inferred types) and an *implementation* block — the split
//! Figure 5 reports line counts for.
//!
//! [`run_study`] loads a study (and its dependencies) into a fresh
//! [`Session`], measures the inference-statistics delta attributable to
//! the component itself, validates the interface, and runs the study's
//! usage demo — the "novice" client code that must stay free of fancy
//! types (design principle 2).

use std::fmt;
use ur_core::defeq::defeq;
use ur_core::stats::Stats;
use ur_infer::ElabDecl;
use ur_web::{Session, SessionError};

/// One case-study component.
#[derive(Clone, Copy, Debug)]
pub struct Study {
    /// Short identifier (also the source file name).
    pub id: &'static str,
    /// Display title matching the paper's Figure 5 where applicable.
    pub title: &'static str,
    /// Full source: interface and implementation separated by markers.
    pub source: &'static str,
    /// Ids of studies that must be loaded first.
    pub deps: &'static [&'static str],
    /// Client ("novice") code exercising the component.
    pub usage: &'static str,
    /// The paper's Figure 5 row, when this component appears there:
    /// (interface LoC, implementation LoC, Disj., Id., Dist., Fuse).
    pub figure5: Option<(u64, u64, u64, u64, u64, u64)>,
}

const INTERFACE_MARK: &str = "(* ==== interface ==== *)";
const IMPL_MARK: &str = "(* ==== implementation ==== *)";

impl Study {
    /// The interface block.
    pub fn interface(&self) -> &'static str {
        let start = self.source.find(INTERFACE_MARK).expect("interface marker")
            + INTERFACE_MARK.len();
        let end = self.source.find(IMPL_MARK).expect("impl marker");
        &self.source[start..end]
    }

    /// The implementation block.
    pub fn implementation(&self) -> &'static str {
        let start = self.source.find(IMPL_MARK).expect("impl marker") + IMPL_MARK.len();
        &self.source[start..]
    }
}

/// All case studies, in dependency order.
pub fn studies() -> Vec<Study> {
    vec![
        Study {
            id: "folders",
            title: "Folder combinators",
            source: include_str!("../ur/folders.ur"),
            deps: &[],
            usage: include_str!("../ur/folders_use.ur"),
            figure5: None,
        },
        Study {
            id: "mktable",
            title: "Table formatter",
            source: include_str!("../ur/mktable.ur"),
            deps: &[],
            usage: include_str!("../ur/mktable_use.ur"),
            figure5: None,
        },
        Study {
            id: "todb",
            title: "DB modification",
            source: include_str!("../ur/todb.ur"),
            deps: &[],
            usage: include_str!("../ur/todb_use.ur"),
            figure5: None,
        },
        Study {
            id: "selector",
            title: "Typed selectors",
            source: include_str!("../ur/selector.ur"),
            deps: &["folders"],
            usage: include_str!("../ur/selector_use.ur"),
            figure5: None,
        },
        Study {
            id: "orm",
            title: "ORM",
            source: include_str!("../ur/orm.ur"),
            deps: &["selector"],
            usage: include_str!("../ur/orm_use.ur"),
            figure5: Some((40, 77, 580, 0, 13, 5)),
        },
        Study {
            id: "orm_links",
            title: "ORM foreign keys",
            source: include_str!("../ur/orm_links.ur"),
            deps: &["selector", "orm"],
            usage: include_str!("../ur/orm_links_use.ur"),
            figure5: None,
        },
        Study {
            id: "versioned",
            title: "Versioned",
            source: include_str!("../ur/versioned.ur"),
            deps: &["folders", "selector"],
            usage: include_str!("../ur/versioned_use.ur"),
            figure5: Some((20, 122, 616, 6, 4, 2)),
        },
        Study {
            id: "admin",
            title: "Table Admin",
            source: include_str!("../ur/admin.ur"),
            deps: &["selector"],
            usage: include_str!("../ur/admin_use.ur"),
            figure5: Some((22, 158, 1412, 0, 1, 2)),
        },
        Study {
            id: "admin2",
            title: "Web 2.0 Admin",
            source: include_str!("../ur/admin2.ur"),
            deps: &["admin"],
            usage: include_str!("../ur/admin2_use.ur"),
            figure5: Some((21, 134, 1105, 0, 1, 1)),
        },
        Study {
            id: "spreadsheet",
            title: "Spreadsh. (base)",
            source: include_str!("../ur/spreadsheet.ur"),
            deps: &[],
            usage: include_str!("../ur/spreadsheet_use.ur"),
            figure5: Some((46, 291, 1667, 6, 0, 1)),
        },
        Study {
            id: "spreadsheet_sql",
            title: "Spreadsh. (SQL)",
            source: include_str!("../ur/spreadsheet_sql.ur"),
            deps: &["folders", "spreadsheet"],
            usage: include_str!("../ur/spreadsheet_sql_use.ur"),
            figure5: Some((110, 391, 1257, 3, 11, 0)),
        },
    ]
}

/// Finds a study by id.
///
/// # Panics
///
/// Panics if the id is unknown.
pub fn study(id: &str) -> Study {
    studies()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown study {id}"))
}

/// Counts lines of code: lines with content other than whitespace and
/// comments (the paper's Figure 5 methodology).
pub fn loc(src: &str) -> u64 {
    let mut count = 0u64;
    let mut depth = 0i32;
    for line in src.lines() {
        let mut content = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if i + 1 < bytes.len() && bytes[i] == b'(' && bytes[i + 1] == b'*' {
                depth += 1;
                i += 2;
                continue;
            }
            if i + 1 < bytes.len() && bytes[i] == b'*' && bytes[i + 1] == b')' {
                depth -= 1;
                i += 2;
                continue;
            }
            if depth == 0 && !bytes[i].is_ascii_whitespace() {
                content = true;
            }
            i += 1;
        }
        if content {
            count += 1;
        }
    }
    count
}

/// The measured result of loading one study.
#[derive(Clone, Debug)]
pub struct StudyReport {
    pub id: &'static str,
    pub title: &'static str,
    pub interface_loc: u64,
    pub impl_loc: u64,
    /// Inference statistics attributable to elaborating the component
    /// (excluding its dependencies).
    pub stats: Stats,
    /// Statistics from elaborating and running the usage demo.
    pub usage_stats: Stats,
    /// Values produced by the usage demo, for smoke checks.
    pub usage_values: Vec<(String, String)>,
}

impl fmt::Display for StudyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:18} int={:4} imp={:4} | disj={:5} id={:3} dist={:3} fuse={:3}",
            self.title,
            self.interface_loc,
            self.impl_loc,
            self.stats.disjoint_prover_calls,
            self.stats.law_map_identity,
            self.stats.law_map_distrib,
            self.stats.law_map_fusion,
        )
    }
}

/// Loads a study's dependencies and implementation into a fresh session,
/// validates its interface, runs its usage demo, and reports Figure-5
/// statistics.
///
/// # Errors
///
/// Returns any elaboration or runtime error, including interface
/// mismatches.
pub fn run_study(s: &Study) -> Result<StudyReport, SessionError> {
    let mut sess = Session::new()?;
    load_deps(&mut sess, s)?;

    let before = sess.stats().clone();
    sess.run(s.implementation())?;
    let stats = sess.stats().since(&before);

    check_interface(&mut sess, s.interface())?;

    let before_use = sess.stats().clone();
    let values = sess.run(s.usage)?;
    let usage_stats = sess.stats().since(&before_use);

    Ok(StudyReport {
        id: s.id,
        title: s.title,
        interface_loc: loc(s.interface()),
        impl_loc: loc(s.implementation()),
        stats,
        usage_stats,
        usage_values: values
            .into_iter()
            .map(|(n, v)| (n, v.to_string()))
            .collect(),
    })
}

/// Loads a study's transitive dependencies (depth-first) into `sess`.
/// Public so harnesses (the eval benchmark) can assemble a study
/// session around a specific execution engine.
///
/// # Errors
///
/// Returns the first elaboration or runtime error from a dependency.
pub fn load_deps(sess: &mut Session, s: &Study) -> Result<(), SessionError> {
    for dep in s.deps {
        let d = study(dep);
        load_deps(sess, &d)?;
        sess.run(d.implementation())?;
    }
    Ok(())
}

/// Validates an interface block: every `val x : t` must match the inferred
/// type of `x` up to definitional equality.
///
/// # Errors
///
/// Returns an error naming the first mismatching or missing value.
pub fn check_interface(sess: &mut Session, iface: &str) -> Result<(), SessionError> {
    let prog = ur_syntax::parse_program(iface)
        .map_err(|e| SessionError::Elab(ur_infer::ElabError::new(e.span, e.message)))?;
    for d in &prog.decls {
        let ur_syntax::SDecl::ValAbs(span, name, tspec) = d else {
            continue;
        };
        let actual = sess
            .elab
            .decls
            .iter()
            .rev()
            .find_map(|d| match d {
                ElabDecl::Val { name: n, ty, .. } if n == name => Some(*ty),
                _ => None,
            })
            .ok_or_else(|| {
                SessionError::Elab(ur_infer::ElabError::new(
                    *span,
                    format!("interface lists {name}, but the implementation does not define it"),
                ))
            })?;
        let env = sess.elab.genv.clone();
        let (spec_ty, _) = sess
            .elab
            .elab_con(&env, tspec, Some(&ur_core::kind::Kind::Type))
            .map_err(SessionError::Elab)?;
        let spec_ty = ur_infer::elab::finalize_con(&sess.elab.cx, &spec_ty);
        if !defeq(&env, &mut sess.elab.cx, &actual, &spec_ty) {
            return Err(SessionError::Elab(ur_infer::ElabError::new(
                *span,
                format!(
                    "interface mismatch for {name}: specified {spec_ty}, inferred {actual}"
                ),
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_content_lines_only() {
        let src = "\n(* comment\n   more comment *)\nval x : int\n\nval y : int (* trailing *)\n";
        assert_eq!(loc(src), 2);
    }

    #[test]
    fn studies_have_markers() {
        for s in studies() {
            assert!(!s.interface().trim().is_empty(), "{} interface", s.id);
            assert!(!s.implementation().trim().is_empty(), "{} impl", s.id);
        }
    }

    #[test]
    fn study_lookup() {
        assert_eq!(study("mktable").id, "mktable");
    }

    #[test]
    #[should_panic(expected = "unknown study")]
    fn unknown_study_panics() {
        let _ = study("nope");
    }
}
