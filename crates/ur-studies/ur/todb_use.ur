(* The paper's §2.2 client code: reverse-engineering unification finds
   r = [A = (int, int), B = (float, int)]. *)
fun double (n : int) = n * 2
fun trunc (x : float) = floatToInt x

val tab = createTable "converted" {A = sqlInt, B = sqlInt}
val inserter = toDb {A = double, B = trunc}
val u1 = inserter tab {A = 21, B = 3.9}
val u2 = inserter tab {A = 5, B = 1.2}
val total = rowCount tab
