(* Novice client: the §6 spreadsheet over a real table. Column B is a
   bool client-side but stored as an int, exercising the conversions. *)
val s = sqlSheet "SQL Sheet" "sheet_data"
  {Id = {Label = "Id", ToDb = fn (n : int) => n, FromDb = fn (n : int) => n,
         Show = showInt, SqlType = sqlInt},
   A = {Label = "A", ToDb = fn (n : int) => n, FromDb = fn (n : int) => n,
        Show = showInt, SqlType = sqlInt},
   B = {Label = "B", ToDb = fn (b : bool) => if b then 1 else 0,
        FromDb = fn (n : int) => n == 1, Show = showBool, SqlType = sqlInt}}
  {DA = {Label = "2A", Fn = fn x => 2 * x.A, Show = showInt}}
  {Sum = {Label = "Sum", Init = 0, Step = fn x n => x.A + n, Show = showInt},
   AllTrue = {Label = "AllTrue", Init = True, Step = fn x b => x.B && b, Show = showBool}}

val i1 = s.Insert {Id = 1, A = 10, B = True}
val i2 = s.Insert {Id = 2, A = 7, B = False}
val i3 = s.Insert {Id = 3, A = 5, B = True}
val loaded = s.Load ()
val n = lengthList loaded
val html = s.Render ()
val totals = s.Totals ()
val count = s.Count ()

(* The conversion-free convenience variant: client types are SQL types. *)
val s2 = sqlSheetSame "Plain Sheet" "sheet_plain"
  {Id = {Label = "Id", Show = showInt, SqlType = sqlInt},
   A = {Label = "A", Show = showInt, SqlType = sqlInt}}
  {Triple = {Label = "3A", Fn = fn x => 3 * x.A, Show = showInt}}
  {Max = {Label = "Count", Init = 0, Step = fn x n => n + 1, Show = showInt}}

val j1 = s2.Insert {Id = 1, A = 4}
val j2 = s2.Insert {Id = 2, A = 6}
val html2 = s2.Render ()
val count2 = s2.Count ()

(* Server-side ordered paging through the exposed typed table handle:
   the second page (size 1) ordered by column A. *)
val pageRows = selectOrdered [#A] s.Table (sqlTrue) 1 1
val page = mapL s.FromDb pageRows
val pageA = mapL (fn (x : {Id : int, A : int, B : bool}) => x.A) page
