(* The paper's §2.1 client code, verbatim in spirit. *)
val f = mkTable {A = {Label = "A", Show = showInt},
                 B = {Label = "B", Show = showFloat}}
val html = f {A = 2, B = 3.4}

val fx = mkXmlTable {A = {Label = "A", Show = showInt},
                     B = {Label = "B", Show = showFloat}}
val xhtml = renderXml (fx {A = 2, B = 3.4})

(* Injection attempt: the XML version must escape it. *)
val g = mkXmlTable {N = {Label = "Note", Show = fn (s : string) => s}}
val attack = renderXml (g {N = "<script>alert(1)</script>"})
