(* In-browser spreadsheet, base component (paper §6): spreadsheets over
   arbitrary data sources, with stored columns, computed columns, summary
   (aggregate) rows, and per-column filtering. The SQL-backed variant is
   derived separately (spreadsheet_sql.ur), mirroring the paper's split:
   "we reduce the complexity of our code by first building a functor for
   constructing spreadsheets backed by arbitrary data sources". *)
(* ==== interface ==== *)
val sheet : r :: {Type} -> comp :: {Type} -> agg :: {Type} ->
    folder r -> folder comp -> folder agg -> string ->
    $(map sheetMeta r) -> $(map (compMeta r) comp) -> $(map (aggMeta r) agg) ->
    sheetOps r
val sheetCells : r :: {Type} -> folder r -> $(map sheetMeta r) -> $r -> xml #tr
val aggCells : r :: {Type} -> agg :: {Type} -> folder agg ->
    $(map (aggMeta r) agg) -> list $r -> xml #tr
val filterCols : r :: {Type} -> folder r -> $(map (fn t => t -> bool) r) ->
    list $r -> list $r
(* ==== implementation ==== *)

(* Stored column: label plus renderer. *)
type sheetMeta (t :: Type) = {Label : string, Show : t -> string}

(* Computed column: derives a value of type t from the whole row. *)
type compMeta (r :: {Type}) (t :: Type) = {Label : string, Fn : $r -> t, Show : t -> string}

(* Aggregate: a fold over all rows producing a summary value of type t. *)
type aggMeta (r :: {Type}) (t :: Type) =
  {Label : string, Init : t, Step : $r -> t -> t, Show : t -> string}

type sheetOps (r :: {Type}) = {
  Render : list $r -> string,
  RenderRows : list $r -> xml #table,
  Totals : list $r -> string,
  Filter : ($r -> bool) -> list $r -> list $r,
  FilterCols : $(map (fn t => t -> bool) r) -> list $r -> list $r,
  SortOn : ($r -> int) -> list $r -> list $r,
  Page : int -> int -> list $r -> list $r,
  CountRows : list $r -> int
}

fun sheetHeader [r :: {Type}] (fl : folder r) (mr : $(map sheetMeta r)) : xml #tr =
  fl [fn r => $(map sheetMeta r) -> xml #tr]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr =>
        xcat (tagTh (cdata mr.nm.Label)) (acc (mr -- nm)))
     (fn _ => xempty) mr

fun compHeader [r :: {Type}] [comp :: {Type}] (flc : folder comp)
    (mc : $(map (compMeta r) comp)) : xml #tr =
  flc [fn c => $(map (compMeta r) c) -> xml #tr]
      (fn [nm] [t] [c] [[nm] ~ c] acc mc =>
         xcat (tagTh (cdata mc.nm.Label)) (acc (mc -- nm)))
      (fn _ => xempty) mc

fun aggHeader [r :: {Type}] [agg :: {Type}] (fla : folder agg)
    (ma : $(map (aggMeta r) agg)) : xml #tr =
  fla [fn a => $(map (aggMeta r) a) -> xml #tr]
      (fn [nm] [t] [a] [[nm] ~ a] acc ma =>
         xcat (tagTh (cdata ma.nm.Label)) (acc (ma -- nm)))
      (fn _ => xempty) ma

fun sheetCells [r :: {Type}] (fl : folder r) (mr : $(map sheetMeta r)) (x : $r) : xml #tr =
  fl [fn r => $(map sheetMeta r) -> $r -> xml #tr]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        xcat (tagTd (cdata (mr.nm.Show x.nm))) (acc (mr -- nm) (x -- nm)))
     (fn _ _ => xempty) mr x

(* Computed cells read the *whole* row, so the row is passed unchanged
   through the fold. *)
fun compCells [r :: {Type}] [comp :: {Type}] (flc : folder comp)
    (mc : $(map (compMeta r) comp)) (x : $r) : xml #tr =
  flc [fn c => $(map (compMeta r) c) -> xml #tr]
      (fn [nm] [t] [c] [[nm] ~ c] acc mc =>
         xcat (tagTd (cdata (mc.nm.Show (mc.nm.Fn x)))) (acc (mc -- nm)))
      (fn _ => xempty) mc

(* The summary row: each aggregate folds over every data row. *)
fun aggCells [r :: {Type}] [agg :: {Type}] (fla : folder agg)
    (ma : $(map (aggMeta r) agg)) (rows : list $r) : xml #tr =
  fla [fn a => $(map (aggMeta r) a) -> xml #tr]
      (fn [nm] [t] [a] [[nm] ~ a] acc ma =>
         xcat (tagTd (cdata (ma.nm.Show (foldList ma.nm.Step ma.nm.Init rows))))
              (acc (ma -- nm)))
      (fn _ => xempty) ma

(* Per-column filtering (paper §6: "per-column filtering"): a record of
   one predicate per column, folded into a single row predicate. *)
fun filterCols [r :: {Type}] (fl : folder r) (preds : $(map (fn t => t -> bool) r))
    (rows : list $r) : list $r =
  filterL
    (fn (row : $r) =>
       fl [fn c => $(map (fn t => t -> bool) c) -> $c -> bool]
          (fn [nm] [t] [c] [[nm] ~ c] acc preds x =>
             preds.nm x.nm && acc (preds -- nm) (x -- nm))
          (fn _ _ => True) preds row)
    rows

fun sheet [r :: {Type}] [comp :: {Type}] [agg :: {Type}]
    (fl : folder r) (flc : folder comp) (fla : folder agg) (title : string)
    (mr : $(map sheetMeta r)) (mc : $(map (compMeta r) comp))
    (ma : $(map (aggMeta r) agg)) : sheetOps r =
  let
    val headers = tagTr (xcat (@sheetHeader fl mr) (@compHeader [r] flc mc))
  in
    {Render = fn (rows : list $r) =>
       page title
         (tagTable
           (xcat headers
             (xcat
               (foldList
                  (fn (row : $r) (acc : xml #table) =>
                     xcat acc (tagTr (xcat (@sheetCells fl mr row)
                                           (@compCells [r] flc mc row))))
                  xempty rows)
               (tagTr (@aggCells [r] fla ma rows))))),
     RenderRows = fn (rows : list $r) =>
       foldList
         (fn (row : $r) (acc : xml #table) =>
            xcat acc (tagTr (@sheetCells fl mr row)))
         xempty rows,
     Totals = fn (rows : list $r) => renderXml (tagTr (@aggCells [r] fla ma rows)),
     Filter = fn (p : $r -> bool) (rows : list $r) => filterL p rows,
     FilterCols = fn (preds : $(map (fn t => t -> bool) r)) (rows : list $r) =>
       @filterCols fl preds rows,
     SortOn = fn (key : $r -> int) (rows : list $r) => sortByInt key rows,
     Page = fn (offset : int) (size : int) (rows : list $r) =>
       takeL size (dropL offset rows),
     CountRows = fn (rows : list $r) => lengthList rows}
  end
