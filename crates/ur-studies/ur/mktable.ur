(* The generic table formatter of paper §2.1: reifies the copy-and-paste
   "format a record as an HTML table" recipe as one well-typed function,
   in both the string and the injection-proof XML-tree versions. *)
(* ==== interface ==== *)
val mkTable : r :: {Type} -> folder r -> $(map meta r) -> $r -> string
val mkRows : r :: {Type} -> folder r -> $(map meta r) -> $r -> xml #table
val mkXmlTable : r :: {Type} -> folder r -> $(map meta r) -> $r -> xml #body
(* ==== implementation ==== *)

type meta (t :: Type) = {Label : string, Show : t -> string}

fun mkTable [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =
  fl [fn r => $(map meta r) -> $r -> string]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        "<tr> <th>" ^ mr.nm.Label ^ "</th> <td>" ^ mr.nm.Show x.nm ^ "</td> </tr> " ^
        acc (mr -- nm) (x -- nm))
     (fn _ _ => "") mr x

fun mkRows [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : xml #table =
  fl [fn r => $(map meta r) -> $r -> xml #table]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        xcat (tagTr (xcat (tagTh (cdata mr.nm.Label))
                          (tagTd (cdata (mr.nm.Show x.nm)))))
             (acc (mr -- nm) (x -- nm)))
     (fn _ _ => xempty) mr x

fun mkXmlTable [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : xml #body =
  tagTable (mkRows fl mr x)
