(* Novice client: batch two rows locally, flush once. *)
val gadgets = adminBatch "gadget_batch"
  {Label = {Label = "Label", Show = fn (s : string) => s,
            Parse = fn (s : string) => s, SqlType = sqlString},
   Price = {Label = "Price", Show = showInt, Parse = parseInt, SqlType = sqlInt}}

val b0 = gadgets.Init
val beforeFlush = gadgets.Count ()
val b1 = gadgets.AddLocal {Label = "widget", Price = "5"} b0
val b2 = gadgets.AddLocal {Label = "gizmo", Price = "8"} b1
val localView = gadgets.RenderLocal b2
val wire = gadgets.Serialize b2
val pending = lengthList b2
val f = gadgets.Flush b2
val afterFlush = gadgets.Count ()
