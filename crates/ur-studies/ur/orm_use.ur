(* Novice client code: two tables, no fancy types anywhere. *)
val people = ormTable "orm_people"
  {Name = {SqlType = sqlString, Show = fn (s : string) => s},
   Age = {SqlType = sqlInt, Show = showInt}}

val u1 = people.Add {Name = "alice", Age = 30}
val u2 = people.Add {Name = "bob", Age = 25}
val u3 = people.Add {Name = "carol", Age = 41}
val count = people.Count ()
val txt = people.Render {Name = "dave", Age = 7}
val deleted = people.Delete {Name = "bob", Age = 25}
val count2 = people.Count ()
val younger = people.DeleteWhere (sqlLt (column [#Age]) (const 35))
val count3 = people.Count ()
val rows = people.List ()
val total = lengthList rows

val points = ormTable "orm_points"
  {X = {SqlType = sqlInt, Show = showInt},
   Y = {SqlType = sqlInt, Show = showInt}}
val p1 = points.Add {X = 1, Y = 2}
val pcount = points.Count ()
