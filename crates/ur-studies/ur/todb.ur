(* Generic database modification, paper §2.2: convert a record of native
   values through per-column conversion functions into a typed INSERT.
   Type-checking this definition needs the map-fusion law applied
   implicitly. *)
(* ==== interface ==== *)
val toDb : r :: {(Type * Type)} -> folder r -> $(map arrow r) ->
    sql_table (map snd r) -> $(map fst r) -> unit
(* ==== implementation ==== *)

type arrow (p :: Type * Type) = p.1 -> p.2

fun toDb [r :: {(Type * Type)}] (fl : folder r) (mr : $(map arrow r))
         (tab : sql_table (map snd r)) (x : $(map fst r)) : unit =
  insert tab
    (fl [fn r => $(map arrow r) -> $(map fst r) -> $(map (fn p => sql_exp [] p.2) r)]
        (fn [nm] [p] [r] [[nm] ~ r] acc mr x =>
           {nm = const (mr.nm x.nm)} ++ acc (mr -- nm) (x -- nm))
        (fn _ _ => {}) mr x)
