(* Object-relational mapping (paper §6): a generic component mapping SQL
   table rows to native Ur records. Produces, for any record of column
   metadata, a record of classic ORM operations working directly on native
   records. *)
(* ==== interface ==== *)
val ormTable : r :: {Type} -> folder r -> string -> $(map colMeta r) -> ormOps r
val rowToExps : r :: {Type} -> folder r -> $r -> $(map (sql_exp []) r)
val sqlTypes : r :: {Type} -> folder r -> $(map colMeta r) -> $(map sql_type r)
val renderRow : r :: {Type} -> folder r -> $(map colMeta r) -> $r -> string
(* ==== implementation ==== *)

(* Per-column metadata: the SQL representation plus a display function. *)
type colMeta (t :: Type) = {SqlType : sql_type t, Show : t -> string}

(* The operations record an instantiation provides (the analogue of the
   paper's Table functor output module). *)
type ormOps (r :: {Type}) = {
  List : unit -> list $r,
  Add : $r -> unit,
  Delete : $r -> int,
  DeleteWhere : sql_exp r bool -> int,
  FindWhere : sql_exp r bool -> list $r,
  Count : unit -> int,
  Render : $r -> string
}

(* Convert a native record to a record of constant SQL expressions. *)
fun rowToExps [r :: {Type}] (fl : folder r) (x : $r) : $(map (sql_exp []) r) =
  fl [fn r => $r -> $(map (sql_exp []) r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc x =>
        {nm = const x.nm} ++ acc (x -- nm))
     (fn _ => {}) x

(* Project the SQL column types out of the metadata record. *)
fun sqlTypes [r :: {Type}] (fl : folder r) (mr : $(map colMeta r)) : $(map sql_type r) =
  fl [fn r => $(map colMeta r) -> $(map sql_type r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr =>
        {nm = mr.nm.SqlType} ++ acc (mr -- nm))
     (fn _ => {}) mr

(* Render one row for debugging/display. *)
fun renderRow [r :: {Type}] (fl : folder r) (mr : $(map colMeta r)) (x : $r) : string =
  fl [fn r => $(map colMeta r) -> $r -> string]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        mr.nm.Show x.nm ^ " " ^ acc (mr -- nm) (x -- nm))
     (fn _ _ => "") mr x

fun ormTable [r :: {Type}] (fl : folder r) (name : string) (mr : $(map colMeta r)) : ormOps r =
  let
    val tab = createTable name (@sqlTypes fl mr)
  in
    {List = fn (u : unit) => selectAll tab (sqlTrue),
     Add = fn (x : $r) => insert tab (@rowToExps fl x),
     Delete = fn (x : $r) => deleteRows tab (@selector fl x),
     DeleteWhere = fn (p : sql_exp r bool) => deleteRows tab p,
     FindWhere = fn (p : sql_exp r bool) => selectAll tab p,
     Count = fn (u : unit) => rowCount tab,
     Render = fn (x : $r) => @renderRow fl mr x}
  end
