(* People and their pets: Pet.Owner is a foreign key into people. *)
val people = ormTable "link_people"
  {Id = {SqlType = sqlInt, Show = showInt},
   Name = {SqlType = sqlString, Show = fn (s : string) => s}}
val pets = ormTable "link_pets"
  {PetName = {SqlType = sqlString, Show = fn (s : string) => s},
   Owner = {SqlType = sqlInt, Show = showInt}}

val u1 = people.Add {Id = 1, Name = "alice"}
val u2 = people.Add {Id = 2, Name = "bob"}
val u3 = pets.Add {PetName = "rex", Owner = 1}
val u4 = pets.Add {PetName = "tom", Owner = 1}
val u5 = pets.Add {PetName = "jerry", Owner = 2}

(* The linker record: Owner follows into people; PetName links nowhere. *)
val petLinks =
  {PetName = fn (s : string) => (nil : list {}),
   Owner = fn (id : int) => people.FindWhere (sqlEq (column [#Id]) (const id))}

(* Follow all links of one pet row at once. *)
val followed = followAll petLinks {PetName = "rex", Owner = 1}
val owners = followed.Owner
val nOwners = lengthList owners
val ownerName = foldList
  (fn (p : {Id : int, Name : string}) (acc : string) => p.Name ^ acc)
  "" owners

(* And via the single-link helper. *)
val bobs = followOne [#Owner] petLinks 2
val nBobs = lengthList bobs
