(* Novice client: the paper's §6 example — a sheet with columns Id, A, B,
   a computed column showing 2*A, and aggregates Sum (of A) and AllTrue
   (conjunction of B). *)
val s = sheet "Sheet"
  {Id = {Label = "Id", Show = showInt},
   A = {Label = "A", Show = showInt},
   B = {Label = "B", Show = showBool}}
  {DA = {Label = "2A", Fn = fn x => 2 * x.A, Show = showInt}}
  {Sum = {Label = "Sum", Init = 0, Step = fn x n => x.A + n, Show = showInt},
   AllTrue = {Label = "AllTrue", Init = True, Step = fn x b => x.B && b, Show = showBool}}

val rows = cons {Id = 1, A = 10, B = True}
           (cons {Id = 2, A = 7, B = False}
           (cons {Id = 3, A = 5, B = True} nil))

val html = s.Render rows
val totals = s.Totals rows
val bigA = s.Filter (fn x => x.A > 6) rows
val nbig = s.CountRows bigA
val totalsBig = s.Totals bigA

(* Per-column filtering: one predicate per column, novice-level. *)
val picked = s.FilterCols
  {Id = fn (i : int) => True, A = fn (a : int) => a > 6, B = fn (b : bool) => b}
  rows
val npicked = s.CountRows picked

(* Sorting and paging. *)
val sorted = s.SortOn (fn x => x.A) rows
val firstA = mapL (fn (x : {Id : int, A : int, B : bool}) => x.A) sorted
val pageOne = s.Page 0 2 sorted
val npage = s.CountRows pageOne
