(* Database admin interface (paper §6): "the most popular Ruby on Rails
   metaprogram" — a standard interface for administering an arbitrary
   table, viewing and modifying its contents via HTML tables and forms.
   Instantiated from just a table name, a page title, and a record of
   per-column metadata. *)
(* ==== interface ==== *)
val adminTable : r :: {Type} -> folder r -> string -> string ->
    $(map adminMeta r) -> adminOps r
val parseRow : r :: {Type} -> folder r -> $(map adminMeta r) ->
    $(map (fn _ => string) r) -> $(map (sql_exp []) r)
val headerRow : r :: {Type} -> folder r -> $(map adminMeta r) -> xml #tr
val dataRow : r :: {Type} -> folder r -> $(map adminMeta r) -> $r -> xml #tr
(* ==== implementation ==== *)

(* Display label, renderer, form parser, and SQL type per column. *)
type adminMeta (t :: Type) = {Label : string, Show : t -> string,
                              Parse : string -> t, SqlType : sql_type t}

type adminOps (r :: {Type}) = {
  Page : unit -> string,
  AddRow : $(map (fn _ => string) r) -> unit,
  DeleteAll : unit -> int,
  Count : unit -> int
}

fun adminSqlTypes [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r))
    : $(map sql_type r) =
  fl [fn r => $(map adminMeta r) -> $(map sql_type r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr =>
        {nm = mr.nm.SqlType} ++ acc (mr -- nm))
     (fn _ => {}) mr

(* Table header: one <th> per column label. *)
fun headerRow [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r)) : xml #tr =
  fl [fn r => $(map adminMeta r) -> xml #tr]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr =>
        xcat (tagTh (cdata mr.nm.Label)) (acc (mr -- nm)))
     (fn _ => xempty) mr

(* One data row: <td> cells rendered by each column's Show. *)
fun dataRow [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r)) (x : $r) : xml #tr =
  fl [fn r => $(map adminMeta r) -> $r -> xml #tr]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        xcat (tagTd (cdata (mr.nm.Show x.nm))) (acc (mr -- nm) (x -- nm)))
     (fn _ _ => xempty) mr x

(* The add-row form: a labelled text input per column. The incoming form
   data is a record of strings (a constant type-level map). *)
fun formRow [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r)) : xml #inline =
  fl [fn r => $(map adminMeta r) -> xml #inline]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr =>
        xcat (cdata mr.nm.Label)
             (xcat (inputText mr.nm.Label) (acc (mr -- nm))))
     (fn _ => xempty) mr

(* Parse a record of form strings into a typed INSERT row. *)
fun parseRow [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r))
    (inp : $(map (fn _ => string) r)) : $(map (sql_exp []) r) =
  fl [fn r => $(map adminMeta r) -> $(map (fn _ => string) r) -> $(map (sql_exp []) r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr inp =>
        {nm = const (mr.nm.Parse inp.nm)} ++ acc (mr -- nm) (inp -- nm))
     (fn _ _ => {}) mr inp

fun adminTable [r :: {Type}] (fl : folder r) (title : string) (name : string)
    (mr : $(map adminMeta r)) : adminOps r =
  let
    val tab = createTable name (@adminSqlTypes fl mr)
  in
    {Page = fn (u : unit) =>
       page title
         (xcat (tagH1 (cdata title))
           (xcat
             (tagTable
               (xcat (tagTr (@headerRow fl mr))
                 (foldList
                    (fn (row : $r) (acc : xml #table) =>
                       xcat (tagTr (@dataRow fl mr row)) acc)
                    xempty
                    (selectAll tab (sqlTrue)))))
             (tagP (@formRow fl mr)))),
     AddRow = fn (inp : $(map (fn _ => string) r)) =>
       insert tab (@parseRow fl mr inp),
     DeleteAll = fn (u : unit) => deleteRows tab (sqlTrue),
     Count = fn (u : unit) => rowCount tab}
  end
