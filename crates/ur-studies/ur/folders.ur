(* Folder combinators: first-class field permutations (paper §2.1, §4.4),
   built *in Ur* on top of the compiler-known folder family. These are the
   analogue of real Ur/Web's Folder library module. *)
(* ==== interface ==== *)
val folderNil : folder []
val folderSingle : nm :: Name -> t :: Type -> folder [nm = t]
val folderCat : r1 :: {Type} -> r2 :: {Type} -> [r1 ~ r2] =>
    folder r1 -> folder r2 -> folder (r1 ++ r2)
val folderFst : r :: {(Type * Type)} -> folder r -> folder (map fst r)
val folderSnd : r :: {(Type * Type)} -> folder r -> folder (map snd r)
(* ==== implementation ==== *)

val folderNil : folder [] = fn [tf] step init => init

fun folderSingle [nm :: Name] [t :: Type] : folder [nm = t] =
  fn [tf] step init => step [nm] [t] [[]] ! init

fun folderCat [r1 :: {Type}] [r2 :: {Type}] [r1 ~ r2]
    (f1 : folder r1) (f2 : folder r2) : folder (r1 ++ r2) =
  fn [tf] step init =>
    f1 [fn r => [r ~ r2] => tf (r ++ r2)]
       (fn [nm] [t] [r] [[nm] ~ r] acc [[nm] ~ r2] =>
          step [nm] [t] [r ++ r2] ! (acc !))
       (fn [[] ~ r2] => f2 [tf] step init)
       !

(* Transport a folder along a type-level map (the analogue of real
   Ur/Web's Folder.mp, specialized to the pair projections). *)
fun folderFst [r :: {(Type * Type)}] (fl : folder r) : folder (map fst r) =
  fn [tf] step init =>
    fl [fn c => tf (map fst c)]
       (fn [nm] [p] [c] [[nm] ~ c] acc =>
          step [nm] [p.1] [map fst c] ! acc)
       init

fun folderSnd [r :: {(Type * Type)}] (fl : folder r) : folder (map snd r) =
  fn [tf] step init =>
    fl [fn c => tf (map snd c)]
       (fn [nm] [p] [c] [[nm] ~ c] acc =>
          step [nm] [p.2] [map snd c] ! acc)
       init
