(* Novice client: an inventory admin page from three lines of metadata. *)
val inv = adminTable "Inventory" "inv_items"
  {Name = {Label = "Name", Show = fn (s : string) => s,
           Parse = fn (s : string) => s, SqlType = sqlString},
   Qty = {Label = "Qty", Show = showInt, Parse = parseInt, SqlType = sqlInt}}

val a1 = inv.AddRow {Name = "bolt", Qty = "42"}
val a2 = inv.AddRow {Name = "<b>nut</b>", Qty = "17"}
val n = inv.Count ()
val html = inv.Page ()
val cleared = inv.DeleteAll ()
val n2 = inv.Count ()
