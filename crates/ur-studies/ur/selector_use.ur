val people = createTable "sel_people" {Name = sqlString, Age = sqlInt}
val u1 = insert people {Name = const "alice", Age = const 30}
val u2 = insert people {Name = const "bob", Age = const 25}
val u3 = insert people {Name = const "bob", Age = const 40}

val pred = selector {Name = "bob", Age = 25}
val hit = countMatching people {Name = "bob", Age = 25}
val removed = deleteMatching people {Name = "bob", Age = 25}
val left = rowCount people

(* Generic field update: set Age for every row whose Name matches. *)
val bumped = @updateMatching [[Age = int]] [[Name = string]]
  (folderSingle [#Age] [int]) (folderSingle [#Name] [string])
  people {Age = 26} {Name = "alice"}
val aliceRows = selectAll people (selector {Name = "alice", Age = 26})
val naliice = lengthList aliceRows
