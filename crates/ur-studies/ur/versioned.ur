(* Versioned database access (paper §6): query the current state of a
   table or roll back to any past version. The concrete table stores a
   version ID, the key columns, and a nullable version of each non-key
   column; an update stores NULL for each unchanged column. The types
   involved concatenate the key and non-key records under explicit
   disjointness constraints — the paper's stress test for the prover. *)
(* ==== interface ==== *)
val mergeRow : r :: {Type} -> folder r -> $(map option r) -> $r -> $r
val allSome : r :: {Type} -> folder r -> $r -> $(map option r)
val diffRow : r :: {Type} -> folder r -> $(map verMeta r) -> $r -> $r -> $(map option r)
val cutAll : r1 :: {Type} -> r2 :: {Type} -> [r1 ~ r2] =>
    folder r1 -> $(r1 ++ r2) -> $r2
val verTable : key :: {Type} -> data :: {Type} ->
    [key ~ data] => [[Version] ~ key] => [[Version] ~ data] =>
    folder key -> folder data -> string ->
    $(map sql_type key) -> $(map verMeta data) -> verOps key data
(* ==== implementation ==== *)

type verMeta (t :: Type) = {SqlType : sql_type t, Eq : t -> t -> bool}

type verOps (key :: {Type}) (data :: {Type}) = {
  Save : $key -> $data -> unit,
  SaveDelta : $key -> $data -> $data -> unit,
  Versions : $key -> list int,
  Reconstruct : $key -> int -> $data -> $data
}

(* Merge a delta over an older row: NULL (none) keeps the old value. *)
fun mergeRow [r :: {Type}] (fl : folder r) (delta : $(map option r)) (old : $r) : $r =
  fl [fn r => $(map option r) -> $r -> $r]
     (fn [nm] [t] [r] [[nm] ~ r] acc delta old =>
        {nm = getOpt delta.nm old.nm} ++ acc (delta -- nm) (old -- nm))
     (fn _ _ => {}) delta old

(* Wrap every column in some (a full snapshot). *)
fun allSome [r :: {Type}] (fl : folder r) (x : $r) : $(map option r) =
  fl [fn r => $r -> $(map option r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc x =>
        {nm = some x.nm} ++ acc (x -- nm))
     (fn _ => {}) x

(* Per-column delta: some v where changed, none where equal. *)
fun diffRow [r :: {Type}] (fl : folder r) (mr : $(map verMeta r)) (old : $r) (new : $r)
    : $(map option r) =
  fl [fn r => $(map verMeta r) -> $r -> $r -> $(map option r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr old new =>
        {nm = if mr.nm.Eq old.nm new.nm then none else some new.nm} ++
        acc (mr -- nm) (old -- nm) (new -- nm))
     (fn _ _ _ => {}) mr old new

(* Remove a whole sub-record, via a fold whose accumulator carries a
   disjointness assertion (like §2.3's selector). *)
fun cutAll [r1 :: {Type}] [r2 :: {Type}] [r1 ~ r2]
    (fl : folder r1) (x : $(r1 ++ r2)) : $r2 =
  fl [fn r => [r ~ r2] => $(r ++ r2) -> $r2]
     (fn [nm] [t] [r] [[nm] ~ r] acc [[nm] ~ r2] (x : $(([nm = t] ++ r) ++ r2)) =>
        acc ! (x -- nm))
     (fn [[] ~ r2] (x : $r2) => x)
     ! x

(* Nullable SQL types for the non-key columns. *)
fun optTypes [r :: {Type}] (fl : folder r) (mr : $(map verMeta r))
    : $(map (fn t => sql_type (option t)) r) =
  fl [fn r => $(map verMeta r) -> $(map (fn t => sql_type (option t)) r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr =>
        {nm = sqlOption mr.nm.SqlType} ++ acc (mr -- nm))
     (fn _ => {}) mr

(* Constant SQL expressions for a record of native values. *)
fun rowExps [r :: {Type}] (fl : folder r) (x : $r) : $(map (sql_exp []) r) =
  fl [fn r => $r -> $(map (sql_exp []) r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc x =>
        {nm = const x.nm} ++ acc (x -- nm))
     (fn _ => {}) x

(* Constant SQL expressions for a record of optional values (typing needs
   the map-fusion law: map (sql_exp []) (map option r)). *)
fun optExps [r :: {Type}] (fl : folder r) (x : $(map option r))
    : $(map (fn t => sql_exp [] (option t)) r) =
  fl [fn r => $(map option r) -> $(map (fn t => sql_exp [] (option t)) r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc x =>
        {nm = const x.nm} ++ acc (x -- nm))
     (fn _ => {}) x

fun verTable [key :: {Type}] [data :: {Type}]
    [key ~ data] [[Version] ~ key] [[Version] ~ data]
    (flk : folder key) (fld : folder data) (name : string)
    (kt : $(map sql_type key)) (mr : $(map verMeta data)) : verOps key data =
  let
    val tab = createTable name ({Version = sqlInt} ++ kt ++ @optTypes fld mr)
    val seqname = name ^ "_seq"
    val u = createSequence seqname
    val flvk = @folderCat (@folderSingle [#Version] [int]) flk
    fun saveDelta (k : $key) (delta : $(map option data)) : unit =
      insert tab ({Version = const (nextval seqname)} ++
                  @rowExps flk k ++ @optExps fld delta)
  in
    {Save = fn (k : $key) (d : $data) => saveDelta k (@allSome fld d),
     SaveDelta = fn (k : $key) (old : $data) (new : $data) =>
       saveDelta k (@diffRow fld mr old new),
     Versions = fn (k : $key) =>
       mapL (fn (row : $(([Version = int] ++ key) ++ map option data)) => row.Version)
            (selectAll tab (weaken (@selector flk k))),
     Reconstruct = fn (k : $key) (v : int) (base : $data) =>
       foldList
         (fn (row : $(([Version = int] ++ key) ++ map option data)) (acc : $data) =>
            @mergeRow fld
              (@cutAll [[Version = int] ++ key] [map option data] flvk row)
              acc)
         base
         (selectAll tab (sqlAnd (weaken (@selector flk k))
                                (sqlLe (column [#Version]) (const v))))}
  end
