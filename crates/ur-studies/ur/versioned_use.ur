(* Novice client: a versioned document store keyed by Id. *)
val docs = verTable "docs"
  {Id = sqlInt}
  {Title = {SqlType = sqlString, Eq = eqString},
   Body = {SqlType = sqlString, Eq = eqString}}

val u1 = docs.Save {Id = 1} {Title = "v1", Body = "hello"}
val u2 = docs.SaveDelta {Id = 1}
           {Title = "v1", Body = "hello"}
           {Title = "v1", Body = "hello world"}
val u3 = docs.SaveDelta {Id = 1}
           {Title = "v1", Body = "hello world"}
           {Title = "Final", Body = "hello world"}

val nversions = lengthList (docs.Versions {Id = 1})
val latest = docs.Reconstruct {Id = 1} 3 {Title = "", Body = ""}
val latestTitle = latest.Title
val latestBody = latest.Body
val middle = docs.Reconstruct {Id = 1} 2 {Title = "", Body = ""}
val middleTitle = middle.Title
val middleBody = middle.Body
