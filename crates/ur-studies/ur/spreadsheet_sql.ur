(* SQL-backed spreadsheet (paper §6): derives a spreadsheet whose rows
   persist in a database table. Each column carries a *pair* of types —
   its client-side representation and its SQL representation — related by
   conversion functions; maps over this record of pairs compute the table
   schema, the INSERT row type, and the client row type (the paper's
   heaviest user of map distributivity/fusion). *)
(* ==== interface ==== *)
val sqlSheet : cr :: {(Type * Type)} -> comp :: {Type} -> agg :: {Type} ->
    folder cr -> folder comp -> folder agg -> string -> string ->
    $(map convMeta cr) ->
    $(map (compMeta (map fst cr)) comp) ->
    $(map (aggMeta (map fst cr)) agg) ->
    sqlSheetOps cr
val toExps : cr :: {(Type * Type)} -> folder cr -> $(map convMeta cr) ->
    $(map fst cr) -> $(map (fn p => sql_exp [] p.2) cr)
val fromDb : cr :: {(Type * Type)} -> folder cr -> $(map convMeta cr) ->
    $(map snd cr) -> $(map fst cr)
val sqlSheetSame : r :: {Type} -> comp :: {Type} -> agg :: {Type} ->
    folder r -> folder comp -> folder agg -> string -> string ->
    $(map sameMeta r) ->
    $(map (compMeta r) comp) ->
    $(map (aggMeta r) agg) ->
    sqlSheetOps (map same r)
(* ==== implementation ==== *)

(* Client type, SQL type, and the conversions between them. *)
type convMeta (p :: Type * Type) =
  {Label : string, ToDb : p.1 -> p.2, FromDb : p.2 -> p.1,
   Show : p.1 -> string, SqlType : sql_type p.2}

type sqlSheetOps (cr :: {(Type * Type)}) = {
  Insert : $(map fst cr) -> unit,
  Load : unit -> list $(map fst cr),
  FromDb : $(map snd cr) -> $(map fst cr),
  Table : sql_table (map snd cr),
  Render : unit -> string,
  Totals : unit -> string,
  Count : unit -> int
}

(* Schema of the backing table: the SQL types of the second components. *)
fun convTypes [cr :: {(Type * Type)}] (fl : folder cr) (mc : $(map convMeta cr))
    : $(map (fn p => sql_type p.2) cr) =
  fl [fn c => $(map convMeta c) -> $(map (fn p => sql_type p.2) c)]
     (fn [nm] [p] [c] [[nm] ~ c] acc mc =>
        {nm = mc.nm.SqlType} ++ acc (mc -- nm))
     (fn _ => {}) mc

(* Convert a client row into a typed INSERT row. *)
fun toExps [cr :: {(Type * Type)}] (fl : folder cr) (mc : $(map convMeta cr))
    (x : $(map fst cr)) : $(map (fn p => sql_exp [] p.2) cr) =
  fl [fn c => $(map convMeta c) -> $(map fst c) -> $(map (fn p => sql_exp [] p.2) c)]
     (fn [nm] [p] [c] [[nm] ~ c] acc mc x =>
        {nm = const (mc.nm.ToDb x.nm)} ++ acc (mc -- nm) (x -- nm))
     (fn _ _ => {}) mc x

(* Convert a loaded SQL row back to its client representation. *)
fun fromDb [cr :: {(Type * Type)}] (fl : folder cr) (mc : $(map convMeta cr))
    (row : $(map snd cr)) : $(map fst cr) =
  fl [fn c => $(map convMeta c) -> $(map snd c) -> $(map fst c)]
     (fn [nm] [p] [c] [[nm] ~ c] acc mc row =>
        {nm = mc.nm.FromDb row.nm} ++ acc (mc -- nm) (row -- nm))
     (fn _ _ => {}) mc row

(* Display metadata for the base spreadsheet, over the client types. *)
fun sheetMetas [cr :: {(Type * Type)}] (fl : folder cr) (mc : $(map convMeta cr))
    : $(map sheetMeta (map fst cr)) =
  fl [fn c => $(map convMeta c) -> $(map sheetMeta (map fst c))]
     (fn [nm] [p] [c] [[nm] ~ c] acc mc =>
        {nm = {Label = mc.nm.Label, Show = mc.nm.Show}} ++ acc (mc -- nm))
     (fn _ => {}) mc

fun sqlSheet [cr :: {(Type * Type)}] [comp :: {Type}] [agg :: {Type}]
    (fl : folder cr) (flc : folder comp) (fla : folder agg)
    (title : string) (name : string)
    (mc : $(map convMeta cr))
    (mcc : $(map (compMeta (map fst cr)) comp))
    (ma : $(map (aggMeta (map fst cr)) agg)) : sqlSheetOps cr =
  let
    val tab = createTable name (@convTypes fl mc)
    val flf = @folderFst fl
    val base = @sheet [map fst cr] [comp] [agg] flf flc fla title
                 (@sheetMetas fl mc) mcc ma
    fun load (u : unit) : list $(map fst cr) =
      mapL (fn (row : $(map snd cr)) => @fromDb fl mc row)
           (selectAll tab (sqlTrue))
  in
    {Insert = fn (x : $(map fst cr)) => insert tab (@toExps fl mc x),
     Load = load,
     FromDb = fn (row : $(map snd cr)) => @fromDb fl mc row,
     Table = tab,
     Render = fn (u : unit) => base.Render (load ()),
     Totals = fn (u : unit) => base.Totals (load ()),
     Count = fn (u : unit) => rowCount tab}
  end

(* ---- convenience layer: columns whose client and SQL types coincide.
   Instantiating the pair-typed component at `map same r` makes the client
   row type `map fst (map same r)`, which inference collapses back to `r`
   by the fusion and map-identity laws. ---- *)

type same (t :: Type) = (t, t)

type sameMeta (t :: Type) = {Label : string, Show : t -> string, SqlType : sql_type t}

fun folderSame [r :: {Type}] (fl : folder r) : folder (map same r) =
  fn [tf] step init =>
    fl [fn c => tf (map same c)]
       (fn [nm] [t] [c] [[nm] ~ c] acc =>
          step [nm] [(t, t)] [map same c] ! acc)
       init

fun sameMetas [r :: {Type}] (fl : folder r) (ms : $(map sameMeta r))
    : $(map (fn t => convMeta (t, t)) r) =
  fl [fn c => $(map sameMeta c) -> $(map (fn t => convMeta (t, t)) c)]
     (fn [nm] [t] [c] [[nm] ~ c] acc ms =>
        {nm = {Label = ms.nm.Label, ToDb = fn (x : t) => x,
               FromDb = fn (x : t) => x, Show = ms.nm.Show,
               SqlType = ms.nm.SqlType}} ++ acc (ms -- nm))
     (fn _ => {}) ms

fun sqlSheetSame [r :: {Type}] [comp :: {Type}] [agg :: {Type}]
    (fl : folder r) (flc : folder comp) (fla : folder agg)
    (title : string) (name : string)
    (ms : $(map sameMeta r))
    (mcc : $(map (compMeta r) comp))
    (ma : $(map (aggMeta r) agg)) : sqlSheetOps (map same r) =
  @sqlSheet [map same r] [comp] [agg] (@folderSame fl) flc fla title name
    (@sameMetas fl ms) mcc ma
