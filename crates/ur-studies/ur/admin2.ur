(* Batched ("Web 2.0") admin interface (paper §6): new rows are
   accumulated client-side without contacting the server; the user then
   submits the batch en masse through one RPC whose serialized row type is
   computed by a map over the column metadata. *)
(* ==== interface ==== *)
val adminBatch : r :: {Type} -> folder r -> string -> $(map adminMeta r) -> batchOps r
val parseNative : r :: {Type} -> folder r -> $(map adminMeta r) ->
    $(map (fn _ => string) r) -> $r
val serializeRow : r :: {Type} -> folder r -> $(map adminMeta r) -> $r -> string
(* ==== implementation ==== *)

type batchOps (r :: {Type}) = {
  Init : list $r,
  AddLocal : $(map (fn _ => string) r) -> list $r -> list $r,
  RenderLocal : list $r -> string,
  Serialize : list $r -> string,
  Flush : list $r -> unit,
  Count : unit -> int
}

(* Client-side parsing: no server round trip per row. *)
fun parseNative [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r))
    (inp : $(map (fn _ => string) r)) : $r =
  fl [fn r => $(map adminMeta r) -> $(map (fn _ => string) r) -> $r]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr inp =>
        {nm = mr.nm.Parse inp.nm} ++ acc (mr -- nm) (inp -- nm))
     (fn _ _ => {}) mr inp

(* The RPC wire format: each row serialized through the column Shows. *)
fun serializeRow [r :: {Type}] (fl : folder r) (mr : $(map adminMeta r)) (x : $r) : string =
  fl [fn r => $(map adminMeta r) -> $r -> string]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        mr.nm.Label ^ "=" ^ mr.nm.Show x.nm ^ ";" ^ acc (mr -- nm) (x -- nm))
     (fn _ _ => "") mr x

fun rowToExpsB [r :: {Type}] (fl : folder r) (x : $r) : $(map (sql_exp []) r) =
  fl [fn r => $r -> $(map (sql_exp []) r)]
     (fn [nm] [t] [r] [[nm] ~ r] acc x =>
        {nm = const x.nm} ++ acc (x -- nm))
     (fn _ => {}) x

fun adminBatch [r :: {Type}] (fl : folder r) (name : string)
    (mr : $(map adminMeta r)) : batchOps r =
  let
    val tab = createTable name (@adminSqlTypes fl mr)
  in
    {Init = nil,
     AddLocal = fn (inp : $(map (fn _ => string) r)) (batch : list $r) =>
       cons (@parseNative fl mr inp) batch,
     RenderLocal = fn (batch : list $r) =>
       foldList (fn (row : $r) (acc : string) =>
                   @serializeRow fl mr row ^ " | " ^ acc)
                "" batch,
     Serialize = fn (batch : list $r) =>
       joinStrings "&" (mapL (fn (row : $r) => @serializeRow fl mr row) batch),
     Flush = fn (batch : list $r) =>
       foldList (fn (row : $r) (u : unit) =>
                   insert tab (@rowToExpsB fl row))
                () batch,
     Count = fn (u : unit) => rowCount tab}
  end
