(* Typed expression building, paper §2.3: convert a record of values into
   a database predicate matching rows whose columns equal the record. The
   fold's accumulator carries an explicit disjointness assertion, and every
   `!` proof is assembled automatically from facts in the context. *)
(* ==== interface ==== *)
val selector : r :: {Type} -> folder r -> $r -> sql_exp r bool
val deleteMatching : r :: {Type} -> folder r -> sql_table r -> $r -> int
val countMatching : r :: {Type} -> folder r -> sql_table r -> $r -> int
val setCols : chg :: {Type} -> rest :: {Type} -> [chg ~ rest] =>
    folder chg -> $chg -> $(map (sql_exp (chg ++ rest)) chg)
val updateMatching : chg :: {Type} -> rest :: {Type} -> [chg ~ rest] =>
    folder chg -> folder rest -> sql_table (chg ++ rest) -> $chg -> $rest -> int
(* ==== implementation ==== *)

fun selector [r :: {Type}] (fl : folder r) (x : $r) : sql_exp r bool =
  fl [fn r => $r -> rest :: {Type} -> [rest ~ r] => sql_exp (r ++ rest) bool]
     (fn [nm] [t] [r] [[nm] ~ r] acc x [rest] [rest ~ r] =>
        sqlAnd (sqlEq (column [nm]) (const x.nm))
               (acc (x -- nm) [[nm = t] ++ rest] !))
     (fn _ [rest] [rest ~ []] => const True) x [[]] !

fun deleteMatching [r :: {Type}] (fl : folder r) (tab : sql_table r) (x : $r) : int =
  deleteRows tab (selector fl x)

fun countMatching [r :: {Type}] (fl : folder r) (tab : sql_table r) (x : $r) : int =
  lengthList (selectAll tab (selector fl x))

(* Build the SET clause of an UPDATE: constant expressions for a subset of
   the columns, typed in the *full* row environment. *)
fun setCols [chg :: {Type}] [rest :: {Type}] [chg ~ rest]
    (flc : folder chg) (new : $chg) : $(map (sql_exp (chg ++ rest)) chg) =
  flc [fn c => [c ~ rest] => $c -> $(map (sql_exp (chg ++ rest)) c)]
      (fn [nm] [t] [c] [[nm] ~ c] acc [[nm] ~ rest] (x : $([nm = t] ++ c)) =>
         {nm = const x.nm} ++ acc ! (x -- nm))
      (fn [[] ~ rest] (x : $[]) => {})
      ! new

(* Set the chg-columns of every row whose rest-columns match a record —
   the §6 components' generic "edit these fields of that row". *)
fun updateMatching [chg :: {Type}] [rest :: {Type}] [chg ~ rest]
    (flc : folder chg) (flr : folder rest) (tab : sql_table (chg ++ rest))
    (new : $chg) (key : $rest) : int =
  updateRows [chg] [rest] tab (@setCols [chg] [rest] flc new)
             (weaken (@selector flr key))
