(* Client code: build a folder for [A = int, B = string] by combination,
   then fold with it to count fields. *)
val fl2 = @folderCat (folderSingle [#A] [int]) (folderSingle [#B] [string])

fun countFields [r :: {Type}] (fl : folder r) : int =
  fl [fn _ => int] (fn [nm] [t] [r] [[nm] ~ r] (acc : int) => acc + 1) 0

val n = @countFields fl2
val n0 = @countFields folderNil
