(* ORM foreign keys (paper §6): "To support foreign keys, we require that
   a table be described in terms of a record of kind {Type * Type}, where
   each field is associated both with its own type and with the type of
   the table it references ... The foreign key link-following function is
   typed in terms of a map over this record."

   Here each column carries the pair (column type, referenced row type);
   a linker record holds, per column, the function from a column value to
   the referenced rows; followAll follows every link at once, producing a
   record of result lists — its type is a map over the pair record. *)
(* ==== interface ==== *)
val followAll : cols :: {(Type * Type)} -> folder cols ->
    $(map linker cols) -> $(map fst cols) -> $(map (fn p => list p.2) cols)
val followOne : nm :: Name -> p :: (Type * Type) -> cols :: {(Type * Type)} ->
    [[nm] ~ cols] => $(map linker ([nm = p] ++ cols)) -> p.1 -> list p.2
(* ==== implementation ==== *)

(* A link-follower for one column: from the column's value to the rows of
   the referenced table (empty for non-foreign-key columns). *)
type linker (p :: Type * Type) = p.1 -> list p.2

(* Follow every column's link, collecting a record of referenced-row
   lists. *)
fun followAll [cols :: {(Type * Type)}] (fl : folder cols)
    (lk : $(map linker cols)) (x : $(map fst cols))
    : $(map (fn p => list p.2) cols) =
  fl [fn c => $(map linker c) -> $(map fst c) -> $(map (fn p => list p.2) c)]
     (fn [nm] [p] [c] [[nm] ~ c] acc lk x =>
        {nm = lk.nm x.nm} ++ acc (lk -- nm) (x -- nm))
     (fn _ _ => {}) lk x

(* Follow a single named link out of a linker record. *)
fun followOne [nm :: Name] [p :: (Type * Type)] [cols :: {(Type * Type)}]
    [[nm] ~ cols] (lk : $(map linker ([nm = p] ++ cols))) (v : p.1) : list p.2 =
  lk.nm v
