//! Generative print/parse roundtrip: for random surface trees,
//! `parse(print(t))` prints identically to `print(t)`. Doubles as a
//! fuzzer for the parser's precedence and disambiguation rules.

use proptest::prelude::*;
use ur_syntax::ast::*;
use ur_syntax::pretty::{con_to_string, expr_to_string};
use ur_syntax::{parse_con, parse_expr};

fn sp() -> Span {
    Span::default()
}

fn var_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "f", "g", "r", "x", "y"])
        .prop_map(|s| s.to_string())
}

fn field() -> impl Strategy<Value = SCon> {
    prop_oneof![
        prop::sample::select(vec!["A", "B", "C", "D"])
            .prop_map(|n| SCon::Name(sp(), n.to_string())),
        var_name().prop_map(|n| SCon::Var(sp(), n)),
    ]
}

fn kind_strategy() -> impl Strategy<Value = SKind> {
    let leaf = prop_oneof![Just(SKind::Type), Just(SKind::Name)];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|k| SKind::Row(Box::new(k))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SKind::Arrow(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| SKind::Pair(Box::new(a), Box::new(b))),
        ]
    })
}

fn con_strategy() -> impl Strategy<Value = SCon> {
    let leaf = prop_oneof![
        var_name().prop_map(|n| SCon::Var(sp(), n)),
        prop::sample::select(vec!["A", "B", "C"])
            .prop_map(|n| SCon::Name(sp(), n.to_string())),
        Just(SCon::Wild(sp())),
        Just(SCon::RowLit(sp(), vec![])),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| SCon::Record(sp(), Box::new(c))),
            (field(), inner.clone()).prop_map(|(n, v)| SCon::RowLit(
                sp(),
                vec![(n, Some(v))]
            )),
            (field(), inner.clone()).prop_map(|(n, t)| SCon::RecordType(
                sp(),
                vec![(n, t)]
            )),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SCon::Cat(sp(), Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SCon::App(sp(), Box::new(a), Box::new(b))),
            (var_name(), prop::option::of(kind_strategy()), inner.clone())
                .prop_map(|(x, k, b)| SCon::Lam(sp(), x, k, Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SCon::Arrow(sp(), Box::new(a), Box::new(b))),
            (var_name(), kind_strategy(), inner.clone())
                .prop_map(|(x, k, b)| SCon::Poly(sp(), x, k, Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, t)| {
                SCon::Guarded(sp(), Box::new(a), Box::new(b), Box::new(t))
            }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SCon::Pair(sp(), Box::new(a), Box::new(b))),
            inner.clone().prop_map(|c| SCon::Fst(sp(), Box::new(c))),
            inner.prop_map(|c| SCon::Snd(sp(), Box::new(c))),
        ]
    })
}

fn lit_strategy() -> impl Strategy<Value = SLit> {
    prop_oneof![
        (0i64..1000).prop_map(SLit::Int),
        prop::bool::ANY.prop_map(SLit::Bool),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(SLit::Str),
        Just(SLit::Unit),
    ]
}

fn binop() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "+", "-", "*", "/", "%", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
    ])
    .prop_map(|s| s.to_string())
}

fn expr_strategy() -> impl Strategy<Value = SExpr> {
    let leaf = prop_oneof![
        var_name().prop_map(|n| SExpr::Var(sp(), n)),
        lit_strategy().prop_map(|l| SExpr::Lit(sp(), l)),
        var_name().prop_map(|n| SExpr::Explicit(
            sp(),
            Box::new(SExpr::Var(sp(), n))
        )),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(f, a)| SExpr::App(sp(), Box::new(f), Box::new(a))),
            (inner.clone(), con_strategy())
                .prop_map(|(f, c)| SExpr::CApp(sp(), Box::new(f), c)),
            inner.clone().prop_map(|f| SExpr::Bang(sp(), Box::new(f))),
            (field(), inner.clone())
                .prop_map(|(n, v)| SExpr::Record(sp(), vec![(n, v)])),
            (inner.clone(), field())
                .prop_map(|(f, n)| SExpr::Proj(sp(), Box::new(f), n)),
            (inner.clone(), field())
                .prop_map(|(f, n)| SExpr::Cut(sp(), Box::new(f), n)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SExpr::Cat(sp(), Box::new(a), Box::new(b))),
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| {
                SExpr::BinOp(sp(), op, Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                SExpr::If(sp(), Box::new(c), Box::new(t), Box::new(e))
            }),
            (var_name(), inner.clone(), inner.clone()).prop_map(|(x, b, e)| {
                SExpr::Let(
                    sp(),
                    vec![SDecl::Val(sp(), x, None, b)],
                    Box::new(e),
                )
            }),
            (var_name(), con_strategy(), inner.clone()).prop_map(|(x, t, b)| {
                SExpr::Fn(
                    sp(),
                    vec![SParam::VParam(x, Some(t))],
                    Box::new(b),
                )
            }),
            (var_name(), prop::option::of(kind_strategy()), inner.clone()).prop_map(
                |(x, k, b)| SExpr::Fn(sp(), vec![SParam::CParam(x, k)], Box::new(b))
            ),
            (inner.clone(), con_strategy())
                .prop_map(|(e, t)| SExpr::Ann(sp(), Box::new(e), t)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn con_print_parse_print_stable(c in con_strategy()) {
        let printed = con_to_string(&c);
        let reparsed = parse_con(&printed)
            .unwrap_or_else(|e| panic!("parse of `{printed}` failed: {e}"));
        prop_assert_eq!(con_to_string(&reparsed), printed);
    }

    #[test]
    fn expr_print_parse_print_stable(e in expr_strategy()) {
        let printed = expr_to_string(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("parse of `{printed}` failed: {err}"));
        prop_assert_eq!(expr_to_string(&reparsed), printed);
    }
}
