//! Generative print/parse roundtrip: for random surface trees,
//! `parse(print(t))` prints identically to `print(t)`. Doubles as a
//! fuzzer for the parser's precedence and disambiguation rules.
//!
//! Trees are grown with the in-repo deterministic [`ur_testutil::Rng`]
//! (offline build: no `proptest`); seeds are fixed, so failures reproduce.

use ur_syntax::ast::*;
use ur_syntax::pretty::{con_to_string, expr_to_string};
use ur_syntax::{parse_con, parse_expr};
use ur_testutil::Rng;

const CASES: usize = 256;

fn sp() -> Span {
    Span::default()
}

const VAR_NAMES: &[&str] = &["a", "b", "c", "f", "g", "r", "x", "y"];
const FIELD_NAMES: &[&str] = &["A", "B", "C", "D"];

fn var_name(rng: &mut Rng) -> String {
    rng.pick(VAR_NAMES).to_string()
}

fn field(rng: &mut Rng) -> SCon {
    if rng.bool_() {
        SCon::Name(sp(), rng.pick(FIELD_NAMES).to_string())
    } else {
        SCon::Var(sp(), var_name(rng))
    }
}

fn kind_gen(rng: &mut Rng, depth: usize) -> SKind {
    if depth == 0 || rng.chance(2, 5) {
        return if rng.bool_() { SKind::Type } else { SKind::Name };
    }
    match rng.below(3) {
        0 => SKind::Row(Box::new(kind_gen(rng, depth - 1))),
        1 => SKind::Arrow(
            Box::new(kind_gen(rng, depth - 1)),
            Box::new(kind_gen(rng, depth - 1)),
        ),
        _ => SKind::Pair(
            Box::new(kind_gen(rng, depth - 1)),
            Box::new(kind_gen(rng, depth - 1)),
        ),
    }
}

fn con_leaf(rng: &mut Rng) -> SCon {
    match rng.below(4) {
        0 => SCon::Var(sp(), var_name(rng)),
        1 => SCon::Name(sp(), rng.pick(&["A", "B", "C"]).to_string()),
        2 => SCon::Wild(sp()),
        _ => SCon::RowLit(sp(), vec![]),
    }
}

fn con_gen(rng: &mut Rng, depth: usize) -> SCon {
    if depth == 0 || rng.chance(1, 4) {
        return con_leaf(rng);
    }
    let d = depth - 1;
    match rng.below(12) {
        0 => SCon::Record(sp(), Box::new(con_gen(rng, d))),
        1 => {
            let n = field(rng);
            let v = con_gen(rng, d);
            SCon::RowLit(sp(), vec![(n, Some(v))])
        }
        2 => {
            let n = field(rng);
            let t = con_gen(rng, d);
            SCon::RecordType(sp(), vec![(n, t)])
        }
        3 => SCon::Cat(sp(), Box::new(con_gen(rng, d)), Box::new(con_gen(rng, d))),
        4 => SCon::App(sp(), Box::new(con_gen(rng, d)), Box::new(con_gen(rng, d))),
        5 => {
            let x = var_name(rng);
            let k = if rng.bool_() { Some(kind_gen(rng, 2)) } else { None };
            SCon::Lam(sp(), x, k, Box::new(con_gen(rng, d)))
        }
        6 => SCon::Arrow(sp(), Box::new(con_gen(rng, d)), Box::new(con_gen(rng, d))),
        7 => {
            let x = var_name(rng);
            let k = kind_gen(rng, 2);
            SCon::Poly(sp(), x, k, Box::new(con_gen(rng, d)))
        }
        8 => SCon::Guarded(
            sp(),
            Box::new(con_gen(rng, d)),
            Box::new(con_gen(rng, d)),
            Box::new(con_gen(rng, d)),
        ),
        9 => SCon::Pair(sp(), Box::new(con_gen(rng, d)), Box::new(con_gen(rng, d))),
        10 => SCon::Fst(sp(), Box::new(con_gen(rng, d))),
        _ => SCon::Snd(sp(), Box::new(con_gen(rng, d))),
    }
}

fn lit_gen(rng: &mut Rng) -> SLit {
    match rng.below(4) {
        0 => SLit::Int(rng.range_i64(0, 1000)),
        1 => SLit::Bool(rng.bool_()),
        2 => {
            // Printable ASCII without quote or backslash.
            let len = rng.below(13);
            let s: String = (0..len)
                .map(|_| loop {
                    let c = (b' ' + rng.below(95) as u8) as char;
                    if c != '"' && c != '\\' {
                        break c;
                    }
                })
                .collect();
            SLit::Str(s)
        }
        _ => SLit::Unit,
    }
}

const BINOPS: &[&str] = &[
    "+", "-", "*", "/", "%", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
];

fn expr_leaf(rng: &mut Rng) -> SExpr {
    match rng.below(3) {
        0 => SExpr::Var(sp(), var_name(rng)),
        1 => SExpr::Lit(sp(), lit_gen(rng)),
        _ => SExpr::Explicit(sp(), Box::new(SExpr::Var(sp(), var_name(rng)))),
    }
}

fn expr_gen(rng: &mut Rng, depth: usize) -> SExpr {
    if depth == 0 || rng.chance(1, 4) {
        return expr_leaf(rng);
    }
    let d = depth - 1;
    match rng.below(13) {
        0 => SExpr::App(sp(), Box::new(expr_gen(rng, d)), Box::new(expr_gen(rng, d))),
        1 => SExpr::CApp(sp(), Box::new(expr_gen(rng, d)), con_gen(rng, 2)),
        2 => SExpr::Bang(sp(), Box::new(expr_gen(rng, d))),
        3 => {
            let n = field(rng);
            let v = expr_gen(rng, d);
            SExpr::Record(sp(), vec![(n, v)])
        }
        4 => SExpr::Proj(sp(), Box::new(expr_gen(rng, d)), field(rng)),
        5 => SExpr::Cut(sp(), Box::new(expr_gen(rng, d)), field(rng)),
        6 => SExpr::Cat(sp(), Box::new(expr_gen(rng, d)), Box::new(expr_gen(rng, d))),
        7 => SExpr::BinOp(
            sp(),
            rng.pick(BINOPS).to_string(),
            Box::new(expr_gen(rng, d)),
            Box::new(expr_gen(rng, d)),
        ),
        8 => SExpr::If(
            sp(),
            Box::new(expr_gen(rng, d)),
            Box::new(expr_gen(rng, d)),
            Box::new(expr_gen(rng, d)),
        ),
        9 => {
            let x = var_name(rng);
            let b = expr_gen(rng, d);
            SExpr::Let(
                sp(),
                vec![SDecl::Val(sp(), x, None, b)],
                Box::new(expr_gen(rng, d)),
            )
        }
        10 => {
            let x = var_name(rng);
            let t = con_gen(rng, 2);
            SExpr::Fn(sp(), vec![SParam::VParam(x, Some(t))], Box::new(expr_gen(rng, d)))
        }
        11 => {
            let x = var_name(rng);
            let k = if rng.bool_() { Some(kind_gen(rng, 2)) } else { None };
            SExpr::Fn(sp(), vec![SParam::CParam(x, k)], Box::new(expr_gen(rng, d)))
        }
        _ => SExpr::Ann(sp(), Box::new(expr_gen(rng, d)), con_gen(rng, 2)),
    }
}

#[test]
fn con_print_parse_print_stable() {
    let mut rng = Rng::new(0x5717_0001);
    for _ in 0..CASES {
        let c = con_gen(&mut rng, 4);
        let printed = con_to_string(&c);
        let reparsed = parse_con(&printed)
            .unwrap_or_else(|e| panic!("parse of `{printed}` failed: {e}"));
        assert_eq!(con_to_string(&reparsed), printed);
    }
}

#[test]
fn expr_print_parse_print_stable() {
    let mut rng = Rng::new(0x5717_0002);
    for _ in 0..CASES {
        let e = expr_gen(&mut rng, 4);
        let printed = expr_to_string(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("parse of `{printed}` failed: {err}"));
        assert_eq!(expr_to_string(&reparsed), printed);
    }
}
