//! Malformed-input tests for the lexer and parser: every hostile input
//! must produce a structured error with a sensible span — never a panic
//! — and the error must convert to a coded [`Diagnostic`].

use ur_syntax::diag::Code;
use ur_syntax::lex::lex;
use ur_syntax::{parse_con, parse_expr, parse_program, Diagnostic, MAX_PARSE_DEPTH};

// ---------------- lexer ----------------

#[test]
fn unterminated_string_reports_span() {
    let err = lex("val s = \"never closed").unwrap_err();
    assert!(err.message.contains("unterminated string"), "{}", err.message);
    assert_eq!(err.span.line, 1);
    assert_eq!(err.span.col, 9, "span points at the opening quote");
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::LexUnterminated);
}

#[test]
fn unterminated_string_at_later_line_has_right_line() {
    let err = lex("val a = 1\nval b = 2\nval s = \"oops").unwrap_err();
    assert_eq!(err.span.line, 3);
}

#[test]
fn unterminated_comment_reports_span() {
    let err = lex("val x = 1 (* never closed").unwrap_err();
    assert!(err.message.contains("unterminated comment"), "{}", err.message);
    assert_eq!(err.span.line, 1);
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::LexUnterminated);
}

#[test]
fn bad_escape_is_a_lex_error() {
    let err = lex(r#"val s = "bad \q escape""#).unwrap_err();
    assert!(err.message.contains("escape"), "{}", err.message);
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::Lex);
}

#[test]
fn lexer_survives_control_and_non_ascii_garbage() {
    // Arbitrary byte salad must lex or error, never panic.
    for src in ["\u{0}\u{1}\u{2}", "émoji 🦀 ïdent", "\\\\\\", "\u{7f}\u{80}"] {
        let _ = lex(src);
    }
}

// ---------------- parser ----------------

#[test]
fn unbalanced_paren_reports_span() {
    let err = parse_expr("(1 + 2").unwrap_err();
    assert_eq!(err.span.line, 1);
    assert!(err.message.contains("expected"), "{}", err.message);
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::Parse);
}

#[test]
fn unbalanced_brace_in_record_reports_span() {
    let err = parse_expr("{A = 1, B = 2").unwrap_err();
    assert_eq!(err.span.line, 1);
    assert!(err.message.contains("expected"), "{}", err.message);
}

#[test]
fn unbalanced_bracket_in_row_reports_span() {
    let err = parse_con("[A = int, B = float").unwrap_err();
    assert_eq!(err.span.line, 1);
}

#[test]
fn stray_concat_operator_is_an_error() {
    let err = parse_expr("1 ++").unwrap_err();
    assert!(err.message.contains("expected an expression"), "{}", err.message);
    let err = parse_expr("++ 1").unwrap_err();
    assert!(err.message.contains("expected"), "{}", err.message);
}

#[test]
fn stray_disjointness_tilde_is_an_error() {
    assert!(parse_program("val x = 1 ~ 2 ~").is_err());
    assert!(parse_con("~ r").is_err());
}

#[test]
fn error_span_tracks_the_offending_token() {
    // The error is at the `)` on line 2, not at the start of input.
    let err = parse_expr("1 +\n)").unwrap_err();
    assert_eq!(err.span.line, 2);
    assert_eq!(err.span.col, 1);
}

#[test]
fn empty_and_whitespace_inputs_error_cleanly() {
    assert!(parse_expr("").is_err());
    assert!(parse_expr("   \n\t  ").is_err());
    assert!(parse_con("").is_err());
    // An empty program is legal (no declarations).
    assert!(parse_program("").is_ok());
}

// ---------------- depth limit ----------------

#[test]
fn over_deep_expression_is_rejected_with_diagnostic() {
    let n = MAX_PARSE_DEPTH + 50;
    let src = format!("{}1{}", "(".repeat(n), ")".repeat(n));
    let err = parse_expr(&src).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{}", err.message);
    // Like E0900, the message names *which* budget ran out and its size.
    assert!(err.message.contains("parse-depth budget"), "{}", err.message);
    assert!(
        err.message.contains(&MAX_PARSE_DEPTH.to_string()),
        "{}",
        err.message
    );
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::ParseTooDeep);
}

#[test]
fn over_deep_type_is_rejected_with_diagnostic() {
    let n = MAX_PARSE_DEPTH + 50;
    let src = format!("{}int{}", "(".repeat(n), ")".repeat(n));
    let err = parse_con(&src).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{}", err.message);
    assert!(err.message.contains("parse-depth budget"), "{}", err.message);
}

#[test]
fn depth_just_under_the_limit_parses() {
    let n = MAX_PARSE_DEPTH / 2;
    let src = format!("{}1{}", "(".repeat(n), ")".repeat(n));
    assert!(parse_expr(&src).is_ok());
}

#[test]
fn wide_concat_chain_is_not_depth_limited() {
    // `++` chains are parsed iteratively: width must never trip the
    // nesting guard.
    let src = (0..2_000)
        .map(|i| format!("{{F{i} = {i}}}"))
        .collect::<Vec<_>>()
        .join(" ++ ");
    assert!(parse_expr(&src).is_ok());
}

#[test]
fn gauntlet_of_garbage_never_panics() {
    for src in [
        "val = =",
        "fun fun fun",
        "val x : = 1",
        "}{",
        ")(",
        "][",
        "val x = {A = }",
        "val x = fn => 1",
        "con c = fn a :: =>",
        "type t = $",
        "val x = #",
        "val x = y.",
        "val x = 1 .. 2",
        "\"",
        "(*",
    ] {
        let _ = parse_program(src);
        let _ = parse_expr(src);
        let _ = parse_con(src);
    }
}
