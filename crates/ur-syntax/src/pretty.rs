//! Pretty-printing of surface syntax back to parseable source.
//!
//! The printer is the inverse of the parser up to spans: for every
//! surface tree `t`, `parse(print(t))` equals `t` with spans erased. This
//! is checked by property tests over randomly generated trees
//! (`tests/roundtrip.rs`), which doubles as a fuzzer for the parser's
//! precedence and disambiguation rules.

use crate::ast::*;
use std::fmt::Write;

/// Prints a kind.
pub fn kind_to_string(k: &SKind) -> String {
    let mut s = String::new();
    kind(&mut s, k, 0);
    s
}

/// Prints a constructor as parseable source.
pub fn con_to_string(c: &SCon) -> String {
    let mut s = String::new();
    con(&mut s, c, 0);
    s
}

/// Prints an expression as parseable source.
pub fn expr_to_string(e: &SExpr) -> String {
    let mut s = String::new();
    expr(&mut s, e, 0);
    s
}

/// Prints a declaration as parseable source.
pub fn decl_to_string(d: &SDecl) -> String {
    let mut s = String::new();
    decl(&mut s, d);
    s
}

/// Prints a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for d in &p.decls {
        decl(&mut s, d);
        s.push('\n');
    }
    s
}

fn paren(out: &mut String, needed: bool, f: impl FnOnce(&mut String)) {
    if needed {
        out.push('(');
        f(out);
        out.push(')');
    } else {
        f(out);
    }
}

// Kind precedence: 0 = arrow, 1 = pair, 2 = atom.
fn kind(out: &mut String, k: &SKind, prec: u8) {
    match k {
        SKind::Type => out.push_str("Type"),
        SKind::Name => out.push_str("Name"),
        SKind::Wild => out.push('_'),
        SKind::Row(inner) => {
            out.push('{');
            kind(out, inner, 0);
            out.push('}');
        }
        SKind::Arrow(a, b) => paren(out, prec > 0, |out| {
            kind(out, a, 1);
            out.push_str(" -> ");
            kind(out, b, 0);
        }),
        SKind::Pair(a, b) => paren(out, prec > 1, |out| {
            kind(out, a, 2);
            out.push_str(" * ");
            kind(out, b, 1);
        }),
    }
}

// Con precedence: 0 = arrow/poly/guard/lam, 1 = ++, 2 = app, 3 = atom.
fn con(out: &mut String, c: &SCon, prec: u8) {
    match c {
        SCon::Var(_, x) => out.push_str(x),
        SCon::Wild(_) => out.push('_'),
        SCon::Name(_, n) => {
            out.push('#');
            out.push_str(n);
        }
        SCon::Record(_, inner) => {
            out.push('$');
            con(out, inner, 3);
        }
        SCon::RowLit(_, entries) => {
            out.push('[');
            for (i, (n, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                con(out, n, 3);
                if let Some(v) = v {
                    out.push_str(" = ");
                    con(out, v, 0);
                }
            }
            out.push(']');
        }
        SCon::RecordType(_, fields) => {
            out.push('{');
            for (i, (n, t)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                con(out, n, 3);
                out.push_str(" : ");
                con(out, t, 0);
            }
            out.push('}');
        }
        SCon::Cat(_, a, b) => paren(out, prec > 1, |out| {
            con(out, a, 2);
            out.push_str(" ++ ");
            con(out, b, 1);
        }),
        SCon::App(_, f, a) => paren(out, prec > 2, |out| {
            con(out, f, 2);
            out.push(' ');
            con(out, a, 3);
        }),
        SCon::Lam(_, x, k, body) => paren(out, prec > 0, |out| {
            out.push_str("fn ");
            match k {
                Some(k) => {
                    out.push('(');
                    out.push_str(x);
                    out.push_str(" :: ");
                    kind(out, k, 0);
                    out.push(')');
                }
                None => out.push_str(x),
            }
            out.push_str(" => ");
            con(out, body, 0);
        }),
        SCon::Arrow(_, a, b) => paren(out, prec > 0, |out| {
            con(out, a, 1);
            out.push_str(" -> ");
            con(out, b, 0);
        }),
        SCon::Poly(_, x, k, body) => paren(out, prec > 0, |out| {
            out.push_str(x);
            out.push_str(" :: ");
            kind(out, k, 1);
            out.push_str(" -> ");
            con(out, body, 0);
        }),
        SCon::Guarded(_, c1, c2, body) => paren(out, prec > 0, |out| {
            out.push('[');
            con(out, c1, 0);
            out.push_str(" ~ ");
            con(out, c2, 0);
            out.push_str("] => ");
            con(out, body, 0);
        }),
        SCon::Pair(_, a, b) => {
            out.push('(');
            con(out, a, 0);
            out.push_str(", ");
            con(out, b, 0);
            out.push(')');
        }
        SCon::Fst(_, p) => {
            // Nested projections need parens: `x.1.1` would re-lex as a
            // float (see the lexer's note), so print `(x.1).1`. A `$`
            // operand needs them too: the parser gives `$` a full atom
            // including postfix projections, so `$c.1` means `$(c.1)`.
            let nested = matches!(
                &**p,
                SCon::Fst(_, _) | SCon::Snd(_, _) | SCon::Record(_, _)
            );
            paren(out, nested, |out| con(out, p, 3));
            out.push_str(".1");
        }
        SCon::Snd(_, p) => {
            let nested = matches!(
                &**p,
                SCon::Fst(_, _) | SCon::Snd(_, _) | SCon::Record(_, _)
            );
            paren(out, nested, |out| con(out, p, 3));
            out.push_str(".2");
        }
    }
}

fn lit(out: &mut String, l: &SLit) {
    match l {
        SLit::Int(n) => {
            let _ = write!(out, "{n}");
        }
        SLit::Float(x) => {
            // Always keep a decimal point so it re-lexes as a float.
            if x.fract() == 0.0 && x.is_finite() {
                let _ = write!(out, "{:.1}", x);
            } else {
                let _ = write!(out, "{x}");
            }
        }
        SLit::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        SLit::Bool(true) => out.push_str("True"),
        SLit::Bool(false) => out.push_str("False"),
        SLit::Unit => out.push_str("()"),
    }
}

fn param(out: &mut String, p: &SParam) {
    match p {
        SParam::CParam(x, None) => {
            let _ = write!(out, "[{x}]");
        }
        SParam::CParam(x, Some(k)) => {
            let _ = write!(out, "[{x} :: ");
            kind(out, k, 0);
            out.push(']');
        }
        SParam::DParam(c1, c2) => {
            out.push('[');
            con(out, c1, 0);
            out.push_str(" ~ ");
            con(out, c2, 0);
            out.push(']');
        }
        SParam::VParam(x, None) => out.push_str(x),
        SParam::VParam(x, Some(t)) => {
            let _ = write!(out, "({x} : ");
            con(out, t, 0);
            out.push(')');
        }
    }
}

/// Operator precedence table matching the parser
/// (`||` < `&&` < comparisons < `++` < additive < multiplicative).
fn binop_prec(op: &str) -> (u8, bool) {
    // (precedence, left-assoc)
    match op {
        "||" => (1, true),
        "&&" => (2, true),
        "==" | "!=" | "<" | "<=" | ">" | ">=" => (3, false),
        "+" | "-" | "^" => (5, true),
        "*" | "/" | "%" => (6, true),
        _ => (5, true),
    }
}

// Expr precedence: 0 = fn/let/if, 1..6 = binops (see table), 7 = ++ is 4,
// 8 = application, 9 = postfix/atom.
fn expr(out: &mut String, e: &SExpr, prec: u8) {
    match e {
        SExpr::Var(_, x) => out.push_str(x),
        SExpr::Lit(_, l) => lit(out, l),
        SExpr::Fn(_, params, body) => paren(out, prec > 0, |out| {
            out.push_str("fn");
            for p in params {
                out.push(' ');
                param(out, p);
            }
            out.push_str(" => ");
            expr(out, body, 0);
        }),
        SExpr::Let(_, decls, body) => paren(out, prec > 0, |out| {
            out.push_str("let ");
            for d in decls {
                decl(out, d);
                out.push(' ');
            }
            out.push_str("in ");
            expr(out, body, 0);
            out.push_str(" end");
        }),
        SExpr::If(_, c, t, el) => paren(out, prec > 0, |out| {
            out.push_str("if ");
            expr(out, c, 1);
            out.push_str(" then ");
            expr(out, t, 1);
            out.push_str(" else ");
            expr(out, el, 0);
        }),
        SExpr::BinOp(_, op, a, b) => {
            let (p, left) = binop_prec(op);
            paren(out, prec > p, |out| {
                expr(out, a, if left { p } else { p + 1 });
                out.push(' ');
                out.push_str(op);
                out.push(' ');
                expr(out, b, p + 1);
            });
        }
        SExpr::Cat(_, a, b) => paren(out, prec > 4, |out| {
            expr(out, a, 5);
            out.push_str(" ++ ");
            expr(out, b, 4);
        }),
        SExpr::App(_, f, a) => paren(out, prec > 8, |out| {
            expr(out, f, 8);
            out.push(' ');
            expr(out, a, 9);
        }),
        SExpr::CApp(_, f, c) => paren(out, prec > 8, |out| {
            expr(out, f, 8);
            out.push_str(" [");
            con(out, c, 0);
            out.push(']');
        }),
        SExpr::Bang(_, f) => paren(out, prec > 8, |out| {
            expr(out, f, 8);
            out.push_str(" !");
        }),
        SExpr::Cut(_, f, c) => paren(out, prec > 8, |out| {
            expr(out, f, 8);
            out.push_str(" -- ");
            con(out, c, 3);
        }),
        SExpr::Record(_, fields) => {
            out.push('{');
            for (i, (n, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                con(out, n, 3);
                out.push_str(" = ");
                expr(out, v, 0);
            }
            out.push('}');
        }
        SExpr::Proj(_, f, c) => {
            expr(out, f, 9);
            out.push('.');
            con(out, c, 3);
        }
        SExpr::Ann(_, inner, t) => {
            out.push('(');
            expr(out, inner, 0);
            out.push_str(" : ");
            con(out, t, 0);
            out.push(')');
        }
        SExpr::Explicit(_, inner) => {
            out.push('@');
            expr(out, inner, 9);
        }
    }
}

fn decl(out: &mut String, d: &SDecl) {
    match d {
        SDecl::ConAbs(_, name, k) => {
            let _ = write!(out, "con {name} :: ");
            kind(out, k, 0);
        }
        SDecl::ConDef(_, name, Some(k), c) => {
            let _ = write!(out, "con {name} :: ");
            kind(out, k, 0);
            out.push_str(" = ");
            con(out, c, 0);
        }
        SDecl::ConDef(_, name, None, c) => {
            let _ = write!(out, "type {name} = ");
            con(out, c, 0);
        }
        SDecl::ValAbs(_, name, t) => {
            let _ = write!(out, "val {name} : ");
            con(out, t, 0);
        }
        SDecl::Val(_, name, ann, e) => {
            let _ = write!(out, "val {name}");
            if let Some(t) = ann {
                out.push_str(" : ");
                con(out, t, 0);
            }
            out.push_str(" = ");
            expr(out, e, 0);
        }
        SDecl::Fun(_, name, params, ann, e) => {
            let _ = write!(out, "fun {name}");
            for p in params {
                out.push(' ');
                param(out, p);
            }
            if let Some(t) = ann {
                out.push_str(" : ");
                con(out, t, 0);
            }
            out.push_str(" = ");
            expr(out, e, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_con, parse_expr, parse_program};

    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = expr_to_string(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(
            crate::pretty::expr_to_string(&e2),
            printed,
            "print-parse-print not stable for `{src}`"
        );
    }

    fn roundtrip_con(src: &str) {
        let c1 = parse_con(src).unwrap();
        let printed = con_to_string(&c1);
        let c2 = parse_con(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(con_to_string(&c2), printed);
    }

    #[test]
    fn exprs_roundtrip() {
        for src in [
            "proj [#A] {A = 1, B = 2.3}",
            "acc (mr -- nm) (x -- nm)",
            "f ! (g 1) !",
            "1 + 2 * 3 - 4",
            "\"a\" ^ showInt (x.A)",
            "if a < b then {X = 1} else {X = 2}",
            "let val x = 1 in x + 1 end",
            "fn [nm] [t] [r] [[nm] ~ r] acc (x : $r) => acc x",
            "@folderCat a b",
            "(x : int)",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn cons_roundtrip() {
        for src in [
            "nm :: Name -> t :: Type -> r :: {Type} -> [[nm = t] ~ r] => $([nm = t] ++ r) -> t",
            "fn r => $(map meta r) -> $r -> string",
            "{Label : string, Show : t -> string}",
            "(int, float)",
            "fn (p :: Type * Type) => p.1 -> p.2",
            "[A = int, B = float] ++ r",
            "map (fn t => sql_type (option t)) r",
        ] {
            roundtrip_con(src);
        }
    }

    #[test]
    fn programs_roundtrip() {
        let src = "type meta (t :: Type) = {L : string}\n\
                   fun f [r :: {Type}] (x : $r) : int = 3\n\
                   val y = f {A = 1}\n\
                   con table :: {Type} -> Type\n\
                   val insert : r :: {Type} -> table r -> unit";
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(program_to_string(&p2), printed);
    }

    #[test]
    fn float_literals_relex_as_floats() {
        let e = parse_expr("1.0").unwrap();
        assert_eq!(expr_to_string(&e), "1.0");
        roundtrip_expr("f 2.0 3.5");
    }
}
