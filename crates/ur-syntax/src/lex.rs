//! Hand-written lexer for the Ur surface language.
//!
//! Comments are ML-style `(* ... *)` and nest. Floats require a digit on
//! both sides of the point (`2.3`); a lone `.` is the projection operator,
//! so nested pair projections are written with parentheses: `(p.1).2`.

use crate::ast::Span;
use std::fmt;

/// Lexical tokens.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // keywords
    Fn,
    Val,
    Fun,
    Con,
    Type,
    Let,
    In,
    End,
    If,
    Then,
    Else,
    True,
    False,
    KwType, // the kind `Type`
    KwName, // the kind `Name`
    // punctuation
    DColon,   // ::
    Colon,    // :
    Eq,       // =
    DArrow,   // =>
    Arrow,    // ->
    PlusPlus, // ++
    MinusMinus, // --
    Tilde,    // ~
    Bang,     // !
    Hash,     // #
    Dollar,   // $
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Caret,   // ^
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,   // ==
    Ne,     // !=
    AndAnd, // &&
    OrOr,   // ||
    Under,  // _
    At,     // @
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Fn => write!(f, "fn"),
            Tok::Val => write!(f, "val"),
            Tok::Fun => write!(f, "fun"),
            Tok::Con => write!(f, "con"),
            Tok::Type => write!(f, "type"),
            Tok::Let => write!(f, "let"),
            Tok::In => write!(f, "in"),
            Tok::End => write!(f, "end"),
            Tok::If => write!(f, "if"),
            Tok::Then => write!(f, "then"),
            Tok::Else => write!(f, "else"),
            Tok::True => write!(f, "True"),
            Tok::False => write!(f, "False"),
            Tok::KwType => write!(f, "Type"),
            Tok::KwName => write!(f, "Name"),
            Tok::DColon => write!(f, "::"),
            Tok::Colon => write!(f, ":"),
            Tok::Eq => write!(f, "="),
            Tok::DArrow => write!(f, "=>"),
            Tok::Arrow => write!(f, "->"),
            Tok::PlusPlus => write!(f, "++"),
            Tok::MinusMinus => write!(f, "--"),
            Tok::Tilde => write!(f, "~"),
            Tok::Bang => write!(f, "!"),
            Tok::Hash => write!(f, "#"),
            Tok::Dollar => write!(f, "$"),
            Tok::LBrack => write!(f, "["),
            Tok::RBrack => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Caret => write!(f, "^"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Under => write!(f, "_"),
            Tok::At => write!(f, "@"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token paired with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// Lexing errors.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub span: Span,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

impl From<LexError> for crate::diag::Diagnostic {
    fn from(e: LexError) -> Self {
        let code = if e.message.starts_with("unterminated") {
            crate::diag::Code::LexUnterminated
        } else {
            crate::diag::Code::Lex
        };
        crate::diag::Diagnostic::new(e.span, code, e.message)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    let mut depth = 1;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'('), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(b'*'), Some(b')')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError {
                                    span: start,
                                    message: "unterminated comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn number(&mut self, span: Span) -> Result<Tok, LexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let is_float = self.peek() == Some(b'.')
            && self.peek2().is_some_and(|c| c.is_ascii_digit());
        if is_float {
            self.bump(); // '.'
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            // Only ASCII digits and '.' were bumped, so the slice is valid
            // UTF-8; `from_utf8_lossy` keeps this path panic-free anyway.
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| LexError {
                    span,
                    message: format!("bad float literal: {e}"),
                })
        } else {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            text.parse::<i64>().map(Tok::Int).map_err(|e| LexError {
                span,
                message: format!("bad int literal: {e}"),
            })
        }
    }

    fn string(&mut self, span: Span) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(LexError {
                        span,
                        message: "unterminated string literal".into(),
                    })
                }
                Some(b'"') => return Ok(Tok::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    other => {
                        return Err(LexError {
                            span,
                            message: format!("bad escape {other:?}"),
                        })
                    }
                },
                Some(c) => out.push(c as char),
            }
        }
    }
}

/// Lexes an entire source string into tokens (ending with [`Tok::Eof`]).
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated comments/strings or malformed
/// literals.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let span = lx.span();
        let Some(c) = lx.peek() else {
            out.push(SpannedTok {
                tok: Tok::Eof,
                span,
            });
            return Ok(out);
        };
        let tok = match c {
            b'a'..=b'z' | b'A'..=b'Z' => {
                let id = lx.ident();
                match id.as_str() {
                    "fn" => Tok::Fn,
                    "val" => Tok::Val,
                    "fun" => Tok::Fun,
                    "con" => Tok::Con,
                    "type" => Tok::Type,
                    "let" => Tok::Let,
                    "in" => Tok::In,
                    "end" => Tok::End,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "True" => Tok::True,
                    "False" => Tok::False,
                    "Type" => Tok::KwType,
                    "Name" => Tok::KwName,
                    _ => Tok::Ident(id),
                }
            }
            b'_' => {
                // `_` alone is the wildcard; `_foo` is an identifier.
                if lx.peek2().is_some_and(|c2| {
                    c2.is_ascii_alphanumeric() || c2 == b'_' || c2 == b'\''
                }) {
                    Tok::Ident(lx.ident())
                } else {
                    lx.bump();
                    Tok::Under
                }
            }
            b'0'..=b'9' => lx.number(span)?,
            b'"' => lx.string(span)?,
            _ => {
                lx.bump();
                match c {
                    b':' => {
                        if lx.peek() == Some(b':') {
                            lx.bump();
                            Tok::DColon
                        } else {
                            Tok::Colon
                        }
                    }
                    b'=' => match lx.peek() {
                        Some(b'>') => {
                            lx.bump();
                            Tok::DArrow
                        }
                        Some(b'=') => {
                            lx.bump();
                            Tok::EqEq
                        }
                        _ => Tok::Eq,
                    },
                    b'-' => match lx.peek() {
                        Some(b'>') => {
                            lx.bump();
                            Tok::Arrow
                        }
                        Some(b'-') => {
                            lx.bump();
                            Tok::MinusMinus
                        }
                        _ => Tok::Minus,
                    },
                    b'+' => {
                        if lx.peek() == Some(b'+') {
                            lx.bump();
                            Tok::PlusPlus
                        } else {
                            Tok::Plus
                        }
                    }
                    b'~' => Tok::Tilde,
                    b'!' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Ne
                        } else {
                            Tok::Bang
                        }
                    }
                    b'#' => Tok::Hash,
                    b'$' => Tok::Dollar,
                    b'[' => Tok::LBrack,
                    b']' => Tok::RBrack,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b',' => Tok::Comma,
                    b'.' => Tok::Dot,
                    b'@' => Tok::At,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b'^' => Tok::Caret,
                    b'<' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    b'>' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    b'&' => {
                        if lx.peek() == Some(b'&') {
                            lx.bump();
                            Tok::AndAnd
                        } else {
                            return Err(LexError {
                                span,
                                message: "expected && (single & is not an operator)".into(),
                            });
                        }
                    }
                    b'|' => {
                        if lx.peek() == Some(b'|') {
                            lx.bump();
                            Tok::OrOr
                        } else {
                            return Err(LexError {
                                span,
                                message: "expected || (single | is not an operator)".into(),
                            });
                        }
                    }
                    other => {
                        return Err(LexError {
                            span,
                            message: format!("unexpected character {:?}", other as char),
                        })
                    }
                }
            }
        };
        out.push(SpannedTok { tok, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .filter(|t| *t != Tok::Eof)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fun proj val x"),
            vec![
                Tok::Fun,
                Tok::Ident("proj".into()),
                Tok::Val,
                Tok::Ident("x".into())
            ]
        );
    }

    #[test]
    fn kind_keywords() {
        assert_eq!(toks("Type Name"), vec![Tok::KwType, Tok::KwName]);
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            toks(":: : = => -> ++ -- ~ ! # $"),
            vec![
                Tok::DColon,
                Tok::Colon,
                Tok::Eq,
                Tok::DArrow,
                Tok::Arrow,
                Tok::PlusPlus,
                Tok::MinusMinus,
                Tok::Tilde,
                Tok::Bang,
                Tok::Hash,
                Tok::Dollar
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 2.3"), vec![Tok::Int(42), Tok::Float(2.3)]);
    }

    #[test]
    fn projection_dot_does_not_eat_float() {
        // x.1 must lex as Ident Dot Int, not Ident Float.
        assert_eq!(
            toks("x.1"),
            vec![Tok::Ident("x".into()), Tok::Dot, Tok::Int(1)]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""a\"b\n""#),
            vec![Tok::Str("a\"b\n".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            toks("a (* x (* y *) z *) b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= == != && ||"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::AndAnd,
                Tok::OrOr
            ]
        );
    }

    #[test]
    fn wildcard_vs_ident() {
        assert_eq!(
            toks("_ _x"),
            vec![Tok::Under, Tok::Ident("_x".into())]
        );
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn double_minus_vs_arrow() {
        assert_eq!(
            toks("a -- b - c -> d"),
            vec![
                Tok::Ident("a".into()),
                Tok::MinusMinus,
                Tok::Ident("b".into()),
                Tok::Minus,
                Tok::Ident("c".into()),
                Tok::Arrow,
                Tok::Ident("d".into())
            ]
        );
    }
}
