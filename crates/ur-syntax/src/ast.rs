//! Surface abstract syntax, produced by the parser and consumed by the
//! elaborator in `ur-infer`.
//!
//! The surface language is the ML-style notation of the paper's Section 2:
//! explicit constructor binders `[a :: K]`, disjointness binders
//! `[[nm] ~ r]`, record types `{A : t, ...}`, type-level record literals
//! `[A = t, ...]`, `$`, `++`, `--`, `!`, and wildcard `_` for inferred
//! arguments.

use std::fmt;

/// A source position (1-based line and column).
///
/// The derived ordering is lexicographic on `(line, col)` — source order —
/// which multi-error elaboration uses to sort diagnostic batches
/// deterministically regardless of elaboration schedule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Surface kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum SKind {
    Type,
    Name,
    Arrow(Box<SKind>, Box<SKind>),
    Row(Box<SKind>),
    Pair(Box<SKind>, Box<SKind>),
    /// `_`: to be inferred (becomes a kind metavariable).
    Wild,
}

/// Surface constructors.
#[derive(Clone, PartialEq, Debug)]
pub enum SCon {
    /// Identifier: a constructor variable (or the pseudo-constants
    /// `map`, `fst`, `snd`, resolved by the elaborator).
    Var(Span, String),
    /// `#Name` literal.
    Name(Span, String),
    /// `$c` record type former.
    Record(Span, Box<SCon>),
    /// `[n1 = c1, n2 = c2, ...]` — a type-level record literal; an entry
    /// without `= c` denotes the unit type (used in constraints like
    /// `[nm] ~ r`). Empty brackets denote the empty row.
    RowLit(Span, Vec<(SCon, Option<SCon>)>),
    /// `{A : t, B : u}` — sugar for `$[A = t, B = u]`.
    RecordType(Span, Vec<(SCon, SCon)>),
    /// `c1 ++ c2`.
    Cat(Span, Box<SCon>, Box<SCon>),
    /// Application `c1 c2`.
    App(Span, Box<SCon>, Box<SCon>),
    /// `fn a :: K => c` (kind optional).
    Lam(Span, String, Option<SKind>, Box<SCon>),
    /// `t1 -> t2`.
    Arrow(Span, Box<SCon>, Box<SCon>),
    /// `x :: K -> t` — polymorphic function type.
    Poly(Span, String, SKind, Box<SCon>),
    /// `[c1 ~ c2] => t` — guarded type.
    Guarded(Span, Box<SCon>, Box<SCon>, Box<SCon>),
    /// `(c1, c2)` type-level pair.
    Pair(Span, Box<SCon>, Box<SCon>),
    /// `c.1`.
    Fst(Span, Box<SCon>),
    /// `c.2`.
    Snd(Span, Box<SCon>),
    /// `_`: an inferred constructor (becomes a metavariable).
    Wild(Span),
}

impl SCon {
    pub fn span(&self) -> Span {
        match self {
            SCon::Var(s, _)
            | SCon::Name(s, _)
            | SCon::Record(s, _)
            | SCon::RowLit(s, _)
            | SCon::RecordType(s, _)
            | SCon::Cat(s, _, _)
            | SCon::App(s, _, _)
            | SCon::Lam(s, _, _, _)
            | SCon::Arrow(s, _, _)
            | SCon::Poly(s, _, _, _)
            | SCon::Guarded(s, _, _, _)
            | SCon::Pair(s, _, _)
            | SCon::Fst(s, _)
            | SCon::Snd(s, _)
            | SCon::Wild(s) => *s,
        }
    }
}

/// Surface literals.
#[derive(Clone, PartialEq, Debug)]
pub enum SLit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Unit,
}

/// Binders accepted by `fn` and `fun`.
#[derive(Clone, PartialEq, Debug)]
pub enum SParam {
    /// `[a :: K]` or `[a]` — constructor binder.
    CParam(String, Option<SKind>),
    /// `[c1 ~ c2]` — disjointness binder.
    DParam(SCon, SCon),
    /// `(x : t)` or bare `x` — value binder.
    VParam(String, Option<SCon>),
}

/// Surface expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum SExpr {
    Var(Span, String),
    Lit(Span, SLit),
    /// Application of a value argument.
    App(Span, Box<SExpr>, Box<SExpr>),
    /// Application of an explicit constructor argument `e [c]`.
    CApp(Span, Box<SExpr>, SCon),
    /// `e !`.
    Bang(Span, Box<SExpr>),
    /// `fn params => e` (desugared to nested binders during elaboration).
    Fn(Span, Vec<SParam>, Box<SExpr>),
    /// `{A = e1, B = e2}` — record literal (field names are constructors:
    /// identifiers resolve to constructor variables when in scope, and to
    /// literal names otherwise).
    Record(Span, Vec<(SCon, SExpr)>),
    /// `e.c` — field projection.
    Proj(Span, Box<SExpr>, SCon),
    /// `e -- c` — field removal.
    Cut(Span, Box<SExpr>, SCon),
    /// `e1 ++ e2` — record concatenation.
    Cat(Span, Box<SExpr>, Box<SExpr>),
    /// Binary operator (lowered to builtin functions by the elaborator).
    BinOp(Span, String, Box<SExpr>, Box<SExpr>),
    /// `let decls in e end`.
    Let(Span, Vec<SDecl>, Box<SExpr>),
    /// `if e1 then e2 else e3`.
    If(Span, Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// `(e : t)` type ascription.
    Ann(Span, Box<SExpr>, SCon),
    /// `@e` — explicitness marker (as in real Ur): folder arguments of
    /// this application spine are passed explicitly instead of being
    /// generated.
    Explicit(Span, Box<SExpr>),
}

impl SExpr {
    pub fn span(&self) -> Span {
        match self {
            SExpr::Var(s, _)
            | SExpr::Lit(s, _)
            | SExpr::App(s, _, _)
            | SExpr::CApp(s, _, _)
            | SExpr::Bang(s, _)
            | SExpr::Fn(s, _, _)
            | SExpr::Record(s, _)
            | SExpr::Proj(s, _, _)
            | SExpr::Cut(s, _, _)
            | SExpr::Cat(s, _, _)
            | SExpr::BinOp(s, _, _, _)
            | SExpr::Let(s, _, _)
            | SExpr::If(s, _, _, _)
            | SExpr::Ann(s, _, _)
            | SExpr::Explicit(s, _) => *s,
        }
    }
}

/// Top-level (and `let`-local) declarations.
#[derive(Clone, PartialEq, Debug)]
pub enum SDecl {
    /// `con x :: K` — abstract constructor (e.g. library type families).
    ConAbs(Span, String, SKind),
    /// `con x :: K = c` / `type x params = c` — transparent definition.
    ConDef(Span, String, Option<SKind>, SCon),
    /// `val x : t` — value with no body (a library primitive).
    ValAbs(Span, String, SCon),
    /// `val x (: t)? = e`.
    Val(Span, String, Option<SCon>, SExpr),
    /// `fun f params (: t)? = e` — sugar for `val f = fn params => e`
    /// (with the optional result-type annotation applied to the body).
    Fun(Span, String, Vec<SParam>, Option<SCon>, SExpr),
}

impl SDecl {
    pub fn name(&self) -> &str {
        match self {
            SDecl::ConAbs(_, n, _)
            | SDecl::ConDef(_, n, _, _)
            | SDecl::ValAbs(_, n, _)
            | SDecl::Val(_, n, _, _)
            | SDecl::Fun(_, n, _, _, _) => n,
        }
    }

    pub fn span(&self) -> Span {
        match self {
            SDecl::ConAbs(s, _, _)
            | SDecl::ConDef(s, _, _, _)
            | SDecl::ValAbs(s, _, _)
            | SDecl::Val(s, _, _, _)
            | SDecl::Fun(s, _, _, _, _) => *s,
        }
    }
}

/// A parsed program: a sequence of declarations.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    pub decls: Vec<SDecl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_displayable() {
        let s = Span { line: 3, col: 14 };
        assert_eq!(s.to_string(), "3:14");
    }

    #[test]
    fn decl_names() {
        let d = SDecl::ConAbs(Span::default(), "folder".into(), SKind::Type);
        assert_eq!(d.name(), "folder");
    }
}
