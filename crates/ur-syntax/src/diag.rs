//! Unified diagnostics: every user-facing error in the pipeline — lexing,
//! parsing, kinding, typing, disjointness, evaluation, resource
//! exhaustion — is reported as a [`Diagnostic`] carrying a source span, a
//! stable error code, a primary message, and optional notes.
//!
//! ## Error-code scheme
//!
//! | Range  | Layer                                   |
//! |--------|-----------------------------------------|
//! | E01xx  | lexer (bad token, unterminated literal) |
//! | E02xx  | parser (unexpected token, nesting)      |
//! | E03xx  | kind checking                           |
//! | E04xx  | type checking / unification             |
//! | E05xx  | disjointness constraints                |
//! | E06xx  | evaluation / runtime substrate          |
//! | E07xx  | batch scheduling (dependency graph)     |
//! | E09xx  | resource exhaustion (fuel limits)       |

use crate::ast::Span;
use std::fmt;

/// Stable machine-readable error codes. Display as `E0xxx`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Code {
    /// E0100: malformed token (bad character, bad escape, bad number).
    Lex,
    /// E0101: unterminated string or comment.
    LexUnterminated,
    /// E0200: unexpected token / malformed syntax.
    Parse,
    /// E0201: nesting too deep for the parser.
    ParseTooDeep,
    /// E0300: ill-kinded constructor.
    Kind,
    /// E0400: type mismatch.
    TypeMismatch,
    /// E0401: unbound name.
    Unbound,
    /// E0402: unresolved unification constraint / ambiguous inference.
    Unresolved,
    /// E0500: disjointness constraint refuted or unprovable.
    Disjoint,
    /// E0600: evaluation error.
    Eval,
    /// E0700: the declaration dependency graph contains a cycle, so the
    /// batch scheduler cannot order the involved declarations.
    DependencyCycle,
    /// E0900: a resource limit was exhausted during inference.
    ResourceExhausted,
    /// E0999: uncategorized.
    Other,
}

impl Code {
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::Lex => "E0100",
            Code::LexUnterminated => "E0101",
            Code::Parse => "E0200",
            Code::ParseTooDeep => "E0201",
            Code::Kind => "E0300",
            Code::TypeMismatch => "E0400",
            Code::Unbound => "E0401",
            Code::Unresolved => "E0402",
            Code::Disjoint => "E0500",
            Code::Eval => "E0600",
            Code::DependencyCycle => "E0700",
            Code::ResourceExhausted => "E0900",
            Code::Other => "E0999",
        }
    }

    /// Every code, in `as_str` order (used to invert the mapping).
    pub const ALL: [Code; 13] = [
        Code::Lex,
        Code::LexUnterminated,
        Code::Parse,
        Code::ParseTooDeep,
        Code::Kind,
        Code::TypeMismatch,
        Code::Unbound,
        Code::Unresolved,
        Code::Disjoint,
        Code::Eval,
        Code::DependencyCycle,
        Code::ResourceExhausted,
        Code::Other,
    ];

    /// Parses an `E0xxx` string (as produced by [`Code::as_str`]); the
    /// incremental cache persists codes in this form.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single user-facing diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub span: Span,
    pub code: Code,
    pub message: String,
    /// Secondary lines (hints, involved types, budget figures).
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(span: Span, code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            span,
            code,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Appends a secondary note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// True for E09xx resource-exhaustion diagnostics.
    pub fn is_resource(&self) -> bool {
        self.code == Code::ResourceExhausted
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {} (at {})", self.code, self.message, self.span)?;
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// An ordered batch of diagnostics from one elaboration pass.
pub type Diagnostics = Vec<Diagnostic>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::Lex.to_string(), "E0100");
        assert_eq!(Code::ResourceExhausted.to_string(), "E0900");
    }

    #[test]
    fn code_strings_round_trip() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
        }
        assert_eq!(Code::parse("E1234"), None);
        assert_eq!(Code::parse(""), None);
    }

    #[test]
    fn display_includes_code_span_and_notes() {
        let d = Diagnostic::new(
            Span { line: 3, col: 7 },
            Code::TypeMismatch,
            "expected int, found string",
        )
        .with_note("in the second field of the record");
        let s = d.to_string();
        assert!(s.contains("E0400"));
        assert!(s.contains("3:7"));
        assert!(s.contains("note: in the second field"));
    }

    #[test]
    fn resource_predicate() {
        let d = Diagnostic::new(Span::default(), Code::ResourceExhausted, "x");
        assert!(d.is_resource());
        let d2 = Diagnostic::new(Span::default(), Code::Parse, "y");
        assert!(!d2.is_resource());
    }
}
