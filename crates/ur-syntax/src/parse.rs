//! Recursive-descent parser for the Ur surface language (paper §2 syntax).
//!
//! Noteworthy disambiguations:
//!
//! * `[ ... ]` in type position is a row literal unless a `~` follows the
//!   first constructor, in which case it is a disjointness guard
//!   `[c1 ~ c2] => t`.
//! * `x :: K -> t` parses as a polymorphic type when an identifier is
//!   immediately followed by `::` (the paper: "the parsing precedence of
//!   the :: operator is such that it binds more tightly than any other").
//! * In an application spine, `e [c]` is explicit constructor application
//!   and `e !` discharges a disjointness guard.

use crate::ast::*;
use crate::lex::{lex, LexError, SpannedTok, Tok};
use std::fmt;

/// Parse errors, carrying the offending position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub span: Span,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

impl From<ParseError> for crate::diag::Diagnostic {
    fn from(e: ParseError) -> Self {
        let code = if e.message.contains(TOO_DEEP_MSG) {
            crate::diag::Code::ParseTooDeep
        } else if e.message.starts_with("unterminated") {
            crate::diag::Code::LexUnterminated
        } else {
            crate::diag::Code::Parse
        };
        crate::diag::Diagnostic::new(e.span, code, e.message)
    }
}

/// Maximum nesting depth of the recursive-descent parser. Inputs nested
/// deeper than this (e.g. ten thousand unbalanced `(`s) are rejected with
/// a `ParseTooDeep` diagnostic instead of overflowing the stack. One
/// nesting level costs several grammar-cascade stack frames (expression →
/// binop chain → application → atom), each of which is kilobyte-sized in
/// debug builds — tens of kilobytes of stack per level in the worst case.
/// The entry points therefore run on a dedicated [`PARSER_STACK_BYTES`]
/// thread, independent of the caller's stack, and 200 levels keep the
/// worst case under ~1/3 of it.
pub const MAX_PARSE_DEPTH: usize = 200;

/// Stack size of the dedicated parsing thread. The recursive-descent
/// cascade costs up to ~25 KiB of stack per nesting level in debug
/// builds, so [`MAX_PARSE_DEPTH`] levels fit with a ~3× margin.
const PARSER_STACK_BYTES: usize = 16 * 1024 * 1024;

const TOO_DEEP_MSG: &str = "nesting too deep";

/// Runs `f` on a thread with a parser-sized stack, so the depth guard —
/// not the caller's (possibly 2 MiB test-runner) stack — is what bounds
/// recursion. Falls back to a structured error if the thread cannot be
/// spawned or the parser panics; callers never see a panic.
fn on_parser_stack<T, F>(f: F) -> PResult<T>
where
    T: Send,
    F: FnOnce() -> PResult<T> + Send,
{
    std::thread::scope(|scope| {
        let spawned = std::thread::Builder::new()
            .name("ur-parse".into())
            .stack_size(PARSER_STACK_BYTES)
            .spawn_scoped(scope, f);
        match spawned {
            Ok(handle) => handle.join().unwrap_or_else(|_| {
                Err(ParseError {
                    span: Span::default(),
                    message: "internal parser error".into(),
                })
            }),
            Err(_) => Err(ParseError {
                span: Span::default(),
                message: "could not allocate parser stack".into(),
            }),
        }
    })
}

type PResult<T> = Result<T, ParseError>;

/// Parses a full program (a sequence of declarations).
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_program(src: &str) -> PResult<Program> {
    on_parser_stack(|| {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0, depth: 0 };
        let mut decls = Vec::new();
        while p.peek() != &Tok::Eof {
            decls.push(p.decl()?);
        }
        Ok(Program { decls })
    })
}

/// Parses a single expression (useful for tests and the REPL example).
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_expr(src: &str) -> PResult<SExpr> {
    on_parser_stack(|| {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0, depth: 0 };
        let e = p.expr()?;
        p.expect(Tok::Eof)?;
        Ok(e)
    })
}

/// Parses a single constructor (type).
///
/// # Errors
///
/// Returns the first lexing or parsing error encountered.
pub fn parse_con(src: &str) -> PResult<SCon> {
    on_parser_stack(|| {
        let toks = lex(src)?;
        let mut p = Parser { toks, pos: 0, depth: 0 };
        let c = p.con()?;
        p.expect(Tok::Eof)?;
        Ok(c)
    })
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            span: self.span(),
            message,
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    /// An identifier in name-literal position (`#N`); the kind keywords
    /// `Type` and `Name` are acceptable names there.
    fn name_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::KwType => {
                self.bump();
                Ok("Type".to_string())
            }
            Tok::KwName => {
                self.bump();
                Ok("Name".to_string())
            }
            other => Err(self.err(format!("expected a name, found `{other}`"))),
        }
    }

    // ---------------- declarations ----------------

    fn decl(&mut self) -> PResult<SDecl> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Con => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::DColon)?;
                let k = self.kind()?;
                if self.eat(Tok::Eq) {
                    let c = self.con()?;
                    Ok(SDecl::ConDef(span, name, Some(k), c))
                } else {
                    Ok(SDecl::ConAbs(span, name, k))
                }
            }
            Tok::Type => {
                self.bump();
                let name = self.ident()?;
                // Optional parameters: `(x :: K)` groups or bare idents.
                let mut params: Vec<(String, Option<SKind>)> = Vec::new();
                loop {
                    match self.peek().clone() {
                        Tok::Ident(x) => {
                            self.bump();
                            params.push((x, None));
                        }
                        Tok::LParen => {
                            self.bump();
                            let x = self.ident()?;
                            self.expect(Tok::DColon)?;
                            let k = self.kind()?;
                            self.expect(Tok::RParen)?;
                            params.push((x, Some(k)));
                        }
                        _ => break,
                    }
                }
                self.expect(Tok::Eq)?;
                let mut body = self.con()?;
                for (x, k) in params.into_iter().rev() {
                    body = SCon::Lam(span, x, k, Box::new(body));
                }
                Ok(SDecl::ConDef(span, name, None, body))
            }
            Tok::Val => {
                self.bump();
                let name = self.ident()?;
                let ann = if self.eat(Tok::Colon) {
                    Some(self.con()?)
                } else {
                    None
                };
                if self.eat(Tok::Eq) {
                    let e = self.expr()?;
                    Ok(SDecl::Val(span, name, ann, e))
                } else {
                    match ann {
                        Some(t) => Ok(SDecl::ValAbs(span, name, t)),
                        None => Err(self.err(
                            "`val` without a body needs a type annotation".into(),
                        )),
                    }
                }
            }
            Tok::Fun => {
                self.bump();
                let name = self.ident()?;
                let params = self.params()?;
                let ann = if self.eat(Tok::Colon) {
                    Some(self.con()?)
                } else {
                    None
                };
                self.expect(Tok::Eq)?;
                let e = self.expr()?;
                Ok(SDecl::Fun(span, name, params, ann, e))
            }
            other => Err(self.err(format!("expected a declaration, found `{other}`"))),
        }
    }

    /// Parses zero or more `fn`/`fun` parameters.
    fn params(&mut self) -> PResult<Vec<SParam>> {
        let mut out = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::LBrack => {
                    self.bump();
                    out.push(self.bracket_param()?);
                }
                Tok::LParen => {
                    // `(x : t)` — but avoid consuming `(` of an expression:
                    // parameters only appear before `=`/`=>`, so a LParen
                    // here is always a typed value binder.
                    self.bump();
                    let x = match self.peek().clone() {
                        Tok::Ident(x) => {
                            self.bump();
                            x
                        }
                        Tok::Under => {
                            self.bump();
                            "_".into()
                        }
                        other => {
                            return Err(
                                self.err(format!("expected parameter name, found `{other}`"))
                            )
                        }
                    };
                    self.expect(Tok::Colon)?;
                    let t = self.con()?;
                    self.expect(Tok::RParen)?;
                    out.push(SParam::VParam(x, Some(t)));
                }
                Tok::Ident(x) => {
                    self.bump();
                    out.push(SParam::VParam(x, None));
                }
                Tok::Under => {
                    self.bump();
                    out.push(SParam::VParam("_".into(), None));
                }
                _ => return Ok(out),
            }
        }
    }

    /// Parses the interior of a `[...]` parameter: either a constructor
    /// binder `[a :: K]` / `[a]`, or a disjointness binder `[c1 ~ c2]`.
    fn bracket_param(&mut self) -> PResult<SParam> {
        // `[[...] ~ ...]` — definitely a disjointness binder.
        if *self.peek() == Tok::LBrack {
            let c1 = self.con()?;
            self.expect(Tok::Tilde)?;
            let c2 = self.con()?;
            self.expect(Tok::RBrack)?;
            return Ok(SParam::DParam(c1, c2));
        }
        if let Tok::Ident(x) = self.peek().clone() {
            match self.peek2().clone() {
                Tok::RBrack => {
                    self.bump();
                    self.bump();
                    return Ok(SParam::CParam(x, None));
                }
                Tok::DColon => {
                    self.bump();
                    self.bump();
                    let k = self.kind()?;
                    self.expect(Tok::RBrack)?;
                    return Ok(SParam::CParam(x, Some(k)));
                }
                _ => {}
            }
        }
        let c1 = self.con()?;
        self.expect(Tok::Tilde)?;
        let c2 = self.con()?;
        self.expect(Tok::RBrack)?;
        Ok(SParam::DParam(c1, c2))
    }

    /// Charges one level of parser recursion; deeply nested inputs get a
    /// `ParseTooDeep` error instead of a stack overflow.
    fn descend(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(self.err(format!(
                "{TOO_DEEP_MSG}: the parse-depth budget of {MAX_PARSE_DEPTH} \
                 nesting levels is exhausted"
            )))
        } else {
            Ok(())
        }
    }

    fn ascend(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    // ---------------- kinds ----------------

    fn kind(&mut self) -> PResult<SKind> {
        self.descend()?;
        let out = self.kind_inner();
        self.ascend();
        out
    }

    fn kind_inner(&mut self) -> PResult<SKind> {
        let lhs = self.kind_pair()?;
        if self.eat(Tok::Arrow) {
            let rhs = self.kind()?;
            Ok(SKind::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn kind_pair(&mut self) -> PResult<SKind> {
        // Iterative right fold: `k1 * k2 * ... * kn` in O(1) stack.
        let mut parts = vec![self.kind_atom()?];
        while self.eat(Tok::Star) {
            parts.push(self.kind_atom()?);
        }
        let mut out = match parts.pop() {
            Some(last) => last,
            None => return Err(self.err("expected a kind".into())),
        };
        while let Some(lhs) = parts.pop() {
            out = SKind::Pair(Box::new(lhs), Box::new(out));
        }
        Ok(out)
    }

    fn kind_atom(&mut self) -> PResult<SKind> {
        match self.peek().clone() {
            Tok::KwType => {
                self.bump();
                Ok(SKind::Type)
            }
            Tok::KwName => {
                self.bump();
                Ok(SKind::Name)
            }
            Tok::Under => {
                self.bump();
                Ok(SKind::Wild)
            }
            Tok::LBrace => {
                self.bump();
                let k = self.kind()?;
                self.expect(Tok::RBrace)?;
                Ok(SKind::Row(Box::new(k)))
            }
            Tok::LParen => {
                self.bump();
                let k = self.kind()?;
                self.expect(Tok::RParen)?;
                Ok(k)
            }
            other => Err(self.err(format!("expected a kind, found `{other}`"))),
        }
    }

    // ---------------- constructors ----------------

    fn con(&mut self) -> PResult<SCon> {
        self.descend()?;
        let out = self.con_inner();
        self.ascend();
        out
    }

    fn con_inner(&mut self) -> PResult<SCon> {
        let span = self.span();
        // Polymorphic type: IDENT :: K -> c. The binder kind parses
        // without a top-level arrow (write `tf :: ({Type} -> Type) -> ...`
        // for function kinds), so the `->` always belongs to the
        // polymorphic type itself.
        if let Tok::Ident(x) = self.peek().clone() {
            if *self.peek2() == Tok::DColon {
                self.bump();
                self.bump();
                let k = self.kind_pair()?;
                self.expect(Tok::Arrow)?;
                let body = self.con()?;
                return Ok(SCon::Poly(span, x, k, Box::new(body)));
            }
        }
        // `fn` constructor-level function.
        if *self.peek() == Tok::Fn {
            return self.con_fn();
        }
        // `[c1 ~ c2] => t` guard, or a row literal starting an arrow chain.
        if *self.peek() == Tok::LBrack {
            if let Some(guard) = self.try_guard(span)? {
                return Ok(guard);
            }
        }
        self.con_arrow()
    }

    /// After seeing `[`, determines whether this is a guard
    /// `[c1 ~ c2] => t`. On success consumes through the body; otherwise
    /// rewinds and returns `None`.
    fn try_guard(&mut self, span: Span) -> PResult<Option<SCon>> {
        let save = self.pos;
        self.expect(Tok::LBrack)?;
        let c1 = match self.con() {
            Ok(c) => c,
            Err(_) => {
                self.pos = save;
                return Ok(None);
            }
        };
        if !self.eat(Tok::Tilde) {
            self.pos = save;
            return Ok(None);
        }
        let c2 = self.con()?;
        self.expect(Tok::RBrack)?;
        self.expect(Tok::DArrow)?;
        let body = self.con()?;
        Ok(Some(SCon::Guarded(
            span,
            Box::new(c1),
            Box::new(c2),
            Box::new(body),
        )))
    }

    fn con_fn(&mut self) -> PResult<SCon> {
        let span = self.span();
        self.expect(Tok::Fn)?;
        // Binders: `x`, `x :: K` (single, unparenthesized), or repeated
        // `(x :: K)` groups.
        let mut binders: Vec<(String, Option<SKind>)> = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Ident(x) => {
                    self.bump();
                    if binders.is_empty() && self.eat(Tok::DColon) {
                        let k = self.kind()?;
                        binders.push((x, Some(k)));
                        break;
                    }
                    binders.push((x, None));
                }
                Tok::Under => {
                    self.bump();
                    binders.push(("_".to_string(), None));
                }
                Tok::LParen => {
                    self.bump();
                    let x = self.ident()?;
                    self.expect(Tok::DColon)?;
                    let k = self.kind()?;
                    self.expect(Tok::RParen)?;
                    binders.push((x, Some(k)));
                }
                _ => break,
            }
        }
        if binders.is_empty() {
            return Err(self.err("`fn` at type level needs at least one binder".into()));
        }
        self.expect(Tok::DArrow)?;
        let mut body = self.con()?;
        for (x, k) in binders.into_iter().rev() {
            body = SCon::Lam(span, x, k, Box::new(body));
        }
        Ok(body)
    }

    fn con_arrow(&mut self) -> PResult<SCon> {
        let span = self.span();
        let lhs = self.con_cat()?;
        if self.eat(Tok::Arrow) {
            let rhs = self.con()?;
            Ok(SCon::Arrow(span, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn con_cat(&mut self) -> PResult<SCon> {
        // Iterative right fold, like `e_cat`: wide `++` chains must not
        // consume stack proportional to their length.
        let span = self.span();
        let mut parts = vec![self.con_app()?];
        while self.eat(Tok::PlusPlus) {
            parts.push(self.con_app()?);
        }
        let mut out = match parts.pop() {
            Some(last) => last,
            None => return Err(self.err("expected a constructor".into())),
        };
        while let Some(lhs) = parts.pop() {
            out = SCon::Cat(span, Box::new(lhs), Box::new(out));
        }
        Ok(out)
    }

    fn con_app(&mut self) -> PResult<SCon> {
        let span = self.span();
        let mut head = self.con_atom()?;
        loop {
            match self.peek() {
                Tok::Ident(_)
                | Tok::Hash
                | Tok::Dollar
                | Tok::LParen
                | Tok::LBrace
                | Tok::LBrack
                | Tok::Under => {
                    let arg = self.con_atom()?;
                    head = SCon::App(span, Box::new(head), Box::new(arg));
                }
                _ => return Ok(head),
            }
        }
    }

    fn con_atom(&mut self) -> PResult<SCon> {
        let span = self.span();
        let mut atom = match self.peek().clone() {
            Tok::Ident(x) => {
                self.bump();
                SCon::Var(span, x)
            }
            Tok::Under => {
                self.bump();
                SCon::Wild(span)
            }
            Tok::Hash => {
                self.bump();
                let n = self.name_ident()?;
                SCon::Name(span, n)
            }
            Tok::Dollar => {
                self.bump();
                let inner = self.con_atom()?;
                SCon::Record(span, Box::new(inner))
            }
            Tok::LParen => {
                self.bump();
                let first = self.con()?;
                if self.eat(Tok::Comma) {
                    let second = self.con()?;
                    self.expect(Tok::RParen)?;
                    SCon::Pair(span, Box::new(first), Box::new(second))
                } else {
                    self.expect(Tok::RParen)?;
                    first
                }
            }
            Tok::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(Tok::RBrace) {
                    loop {
                        let name = self.field_name()?;
                        self.expect(Tok::Colon)?;
                        let t = self.con()?;
                        fields.push((name, t));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                }
                SCon::RecordType(span, fields)
            }
            Tok::LBrack => {
                self.bump();
                let mut entries = Vec::new();
                if !self.eat(Tok::RBrack) {
                    loop {
                        let name = self.field_name()?;
                        let value = if self.eat(Tok::Eq) {
                            Some(self.con()?)
                        } else {
                            None
                        };
                        entries.push((name, value));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrack)?;
                }
                SCon::RowLit(span, entries)
            }
            other => return Err(self.err(format!("expected a type, found `{other}`"))),
        };
        // Postfix pair projections `.1` / `.2`.
        while *self.peek() == Tok::Dot {
            match self.peek2().clone() {
                Tok::Int(1) => {
                    self.bump();
                    self.bump();
                    atom = SCon::Fst(span, Box::new(atom));
                }
                Tok::Int(2) => {
                    self.bump();
                    self.bump();
                    atom = SCon::Snd(span, Box::new(atom));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// A field-name position: an identifier (resolved later: variable if
    /// bound, literal otherwise) or an explicit `#Name`. The kind keywords
    /// `Type` and `Name` are valid literal field names here.
    fn field_name(&mut self) -> PResult<SCon> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Ident(x) => {
                self.bump();
                Ok(SCon::Var(span, x))
            }
            Tok::KwType => {
                self.bump();
                Ok(SCon::Name(span, "Type".to_string()))
            }
            Tok::KwName => {
                self.bump();
                Ok(SCon::Name(span, "Name".to_string()))
            }
            Tok::Hash => {
                self.bump();
                let n = self.name_ident()?;
                Ok(SCon::Name(span, n))
            }
            other => Err(self.err(format!("expected a field name, found `{other}`"))),
        }
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> PResult<SExpr> {
        self.descend()?;
        let out = self.expr_inner();
        self.ascend();
        out
    }

    fn expr_inner(&mut self) -> PResult<SExpr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Fn => {
                self.bump();
                let params = self.params()?;
                if params.is_empty() {
                    return Err(self.err("`fn` needs at least one parameter".into()));
                }
                self.expect(Tok::DArrow)?;
                let body = self.expr()?;
                Ok(SExpr::Fn(span, params, Box::new(body)))
            }
            Tok::Let => {
                self.bump();
                let mut decls = Vec::new();
                while *self.peek() != Tok::In {
                    decls.push(self.decl()?);
                }
                self.expect(Tok::In)?;
                let body = self.expr()?;
                self.expect(Tok::End)?;
                Ok(SExpr::Let(span, decls, Box::new(body)))
            }
            Tok::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                Ok(SExpr::If(span, Box::new(c), Box::new(t), Box::new(e)))
            }
            _ => self.e_or(),
        }
    }

    fn e_or(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let mut lhs = self.e_and()?;
        while self.eat(Tok::OrOr) {
            let rhs = self.e_and()?;
            lhs = SExpr::BinOp(span, "||".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn e_and(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let mut lhs = self.e_cmp()?;
        while self.eat(Tok::AndAnd) {
            let rhs = self.e_cmp()?;
            lhs = SExpr::BinOp(span, "&&".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn e_cmp(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let lhs = self.e_cat()?;
        let op = match self.peek() {
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            _ => return Ok(lhs),
        }
        .to_string();
        self.bump();
        let rhs = self.e_cat()?;
        Ok(SExpr::BinOp(span, op, Box::new(lhs), Box::new(rhs)))
    }

    fn e_cat(&mut self) -> PResult<SExpr> {
        // `++` is right-associative; collect the chain iteratively and
        // fold from the right so a 10k-element concatenation costs O(1)
        // stack instead of one frame per element.
        let span = self.span();
        let mut parts = vec![self.e_add()?];
        while self.eat(Tok::PlusPlus) {
            parts.push(self.e_add()?);
        }
        let mut out = match parts.pop() {
            Some(last) => last,
            None => return Err(self.err("expected an expression".into())),
        };
        while let Some(lhs) = parts.pop() {
            out = SExpr::Cat(span, Box::new(lhs), Box::new(out));
        }
        Ok(out)
    }

    fn e_add(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let mut lhs = self.e_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => "+",
                Tok::Minus => "-",
                Tok::Caret => "^",
                _ => return Ok(lhs),
            }
            .to_string();
            self.bump();
            let rhs = self.e_mul()?;
            lhs = SExpr::BinOp(span, op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn e_mul(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let mut lhs = self.e_app()?;
        loop {
            let op = match self.peek() {
                Tok::Star => "*",
                Tok::Slash => "/",
                Tok::Percent => "%",
                _ => return Ok(lhs),
            }
            .to_string();
            self.bump();
            let rhs = self.e_app()?;
            lhs = SExpr::BinOp(span, op, Box::new(lhs), Box::new(rhs));
        }
    }

    /// Application spine with interleaved `[c]`, `!`, and trailing `-- c`.
    fn e_app(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let mut head = self.e_postfix()?;
        loop {
            match self.peek() {
                Tok::LBrack => {
                    self.bump();
                    let c = self.con()?;
                    self.expect(Tok::RBrack)?;
                    head = SExpr::CApp(span, Box::new(head), c);
                }
                Tok::Bang => {
                    self.bump();
                    head = SExpr::Bang(span, Box::new(head));
                }
                Tok::MinusMinus => {
                    self.bump();
                    let c = self.field_name()?;
                    head = SExpr::Cut(span, Box::new(head), c);
                }
                Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Float(_)
                | Tok::Str(_)
                | Tok::True
                | Tok::False
                | Tok::LParen
                | Tok::LBrace
                | Tok::At => {
                    let arg = self.e_postfix()?;
                    head = SExpr::App(span, Box::new(head), Box::new(arg));
                }
                _ => return Ok(head),
            }
        }
    }

    /// An atom with postfix projections `.field`.
    fn e_postfix(&mut self) -> PResult<SExpr> {
        let span = self.span();
        let mut e = self.e_atom()?;
        while *self.peek() == Tok::Dot {
            self.bump();
            let c = self.field_name()?;
            e = SExpr::Proj(span, Box::new(e), c);
        }
        Ok(e)
    }

    fn e_atom(&mut self) -> PResult<SExpr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::At => {
                self.bump();
                let inner = self.e_atom()?;
                Ok(SExpr::Explicit(span, Box::new(inner)))
            }
            Tok::Ident(x) => {
                self.bump();
                Ok(SExpr::Var(span, x))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(SExpr::Lit(span, SLit::Int(n)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(SExpr::Lit(span, SLit::Float(x)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(SExpr::Lit(span, SLit::Str(s)))
            }
            Tok::True => {
                self.bump();
                Ok(SExpr::Lit(span, SLit::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(SExpr::Lit(span, SLit::Bool(false)))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(Tok::RParen) {
                    return Ok(SExpr::Lit(span, SLit::Unit));
                }
                let e = self.expr()?;
                if self.eat(Tok::Colon) {
                    let t = self.con()?;
                    self.expect(Tok::RParen)?;
                    Ok(SExpr::Ann(span, Box::new(e), t))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(e)
                }
            }
            Tok::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(Tok::RBrace) {
                    loop {
                        let name = self.field_name()?;
                        self.expect(Tok::Eq)?;
                        let e = self.expr()?;
                        fields.push((name, e));
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBrace)?;
                }
                Ok(SExpr::Record(span, fields))
            }
            other => Err(self.err(format!("expected an expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_proj_declaration() {
        let src = "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
                   (x : $([nm = t] ++ r)) = x.nm";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.decls.len(), 1);
        match &prog.decls[0] {
            SDecl::Fun(_, name, params, None, body) => {
                assert_eq!(name, "proj");
                assert_eq!(params.len(), 5);
                assert!(matches!(params[0], SParam::CParam(_, Some(SKind::Name))));
                assert!(matches!(params[3], SParam::DParam(_, _)));
                assert!(matches!(params[4], SParam::VParam(_, Some(_))));
                assert!(matches!(body, SExpr::Proj(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_proj_call() {
        let e = parse_expr("proj [#A] {A = 1, B = 2.3}").unwrap();
        match e {
            SExpr::App(_, f, arg) => {
                assert!(matches!(*f, SExpr::CApp(_, _, SCon::Name(_, _))));
                assert!(matches!(*arg, SExpr::Record(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_poly_type() {
        let c = parse_con("nm :: Name -> t :: Type -> r :: {Type} -> [[nm = t]~r] => $([nm=t] ++ r) -> t").unwrap();
        match c {
            SCon::Poly(_, n, SKind::Name, rest) => {
                assert_eq!(n, "nm");
                assert!(matches!(*rest, SCon::Poly(_, _, SKind::Type, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_record_type_sugar() {
        let c = parse_con("{Label : string, Show : t -> string}").unwrap();
        match c {
            SCon::RecordType(_, fields) => assert_eq!(fields.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_folder_type() {
        let src = "tf :: ({Type} -> Type) -> \
                   (nm :: Name -> t :: Type -> r :: {Type} -> [[nm]~r] => tf r -> tf ([nm=t] ++ r)) -> \
                   tf [] -> tf r";
        let c = parse_con(src).unwrap();
        assert!(matches!(c, SCon::Poly(_, _, SKind::Arrow(_, _), _)));
    }

    #[test]
    fn parse_con_level_fn_without_kind() {
        let c = parse_con("fn r => $(map meta r) -> $r -> string").unwrap();
        match c {
            SCon::Lam(_, x, None, body) => {
                assert_eq!(x, "r");
                assert!(matches!(*body, SCon::Arrow(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_expression_level_step_function() {
        let src = "fn [nm] [t] [r] [[nm] ~ r] acc mr x => acc (mr -- nm) (x -- nm)";
        let e = parse_expr(src).unwrap();
        match e {
            SExpr::Fn(_, params, _) => {
                assert_eq!(params.len(), 7);
                assert!(matches!(params[0], SParam::CParam(_, None)));
                assert!(matches!(params[3], SParam::DParam(_, _)));
                assert!(matches!(params[4], SParam::VParam(_, None)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_bang_in_spine() {
        let e = parse_expr("acc (x -- nm) [[nm = t] ++ rest] !").unwrap();
        assert!(matches!(e, SExpr::Bang(_, _)));
    }

    #[test]
    fn parse_binops_with_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            SExpr::BinOp(_, op, _, rhs) => {
                assert_eq!(op, "+");
                assert!(matches!(*rhs, SExpr::BinOp(_, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_string_concat() {
        let e = parse_expr(r#""<tr>" ^ x.Label ^ "</tr>""#).unwrap();
        assert!(matches!(e, SExpr::BinOp(_, _, _, _)));
    }

    #[test]
    fn parse_let_and_if() {
        let e = parse_expr("let val x = 1 in if x == 1 then x else 0 end").unwrap();
        match e {
            SExpr::Let(_, decls, body) => {
                assert_eq!(decls.len(), 1);
                assert!(matches!(*body, SExpr::If(_, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_type_declaration_with_params() {
        let prog =
            parse_program("type meta (t :: Type) = {Label : string, Show : t -> string}")
                .unwrap();
        match &prog.decls[0] {
            SDecl::ConDef(_, name, None, SCon::Lam(_, p, Some(SKind::Type), _)) => {
                assert_eq!(name, "meta");
                assert_eq!(p, "t");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_abstract_declarations() {
        let prog = parse_program(
            "con folder :: {Type} -> Type\nval insert : r :: {Type} -> table r -> unit",
        )
        .unwrap();
        assert!(matches!(prog.decls[0], SDecl::ConAbs(_, _, _)));
        assert!(matches!(prog.decls[1], SDecl::ValAbs(_, _, _)));
    }

    #[test]
    fn parse_pair_kinds_and_projections() {
        let c = parse_con("fn (p :: Type * Type) => p.1 -> p.2").unwrap();
        match c {
            SCon::Lam(_, _, Some(SKind::Pair(_, _)), body) => match *body {
                SCon::Arrow(_, l, r) => {
                    assert!(matches!(*l, SCon::Fst(_, _)));
                    assert!(matches!(*r, SCon::Snd(_, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_row_literal_without_values() {
        // Constraint shorthand `[nm]` is a row whose single entry has no
        // explicit value.
        let c = parse_con("[nm]").unwrap();
        match c {
            SCon::RowLit(_, entries) => {
                assert_eq!(entries.len(), 1);
                assert!(entries[0].1.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_guarded_con_type() {
        let c = parse_con("[rest ~ r] => exp (r ++ rest) bool").unwrap();
        assert!(matches!(c, SCon::Guarded(_, _, _, _)));
    }

    #[test]
    fn parse_wildcards() {
        let e = parse_expr("toDb [_] x").unwrap();
        assert!(matches!(e, SExpr::App(_, _, _)));
        let c = parse_con("_ -> int").unwrap();
        assert!(matches!(c, SCon::Arrow(_, _, _)));
    }

    #[test]
    fn parse_ascription() {
        let e = parse_expr("(x : int)").unwrap();
        assert!(matches!(e, SExpr::Ann(_, _, _)));
    }

    #[test]
    fn parse_unit_literal() {
        let e = parse_expr("f ()").unwrap();
        match e {
            SExpr::App(_, _, arg) => assert!(matches!(*arg, SExpr::Lit(_, SLit::Unit))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("fun = 3").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn parse_nested_record_value() {
        let e = parse_expr(
            "mkTable {A = {Label = \"A\", Show = showInt}, B = {Label = \"B\", Show = showFloat}}",
        )
        .unwrap();
        match e {
            SExpr::App(_, _, arg) => match *arg {
                SExpr::Record(_, fields) => assert_eq!(fields.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
