// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-syntax — surface syntax for the Ur language
//!
//! The lexer ([`lex`]) and recursive-descent parser ([`parse`]) for the
//! ML-style surface notation used throughout Section 2 of
//! *Ur: Statically-Typed Metaprogramming with Type-Level Record
//! Computation* (Chlipala, PLDI 2010): explicit constructor binders
//! `[a :: K]`, disjointness binders `[[nm] ~ r]`, first-class names `#A`,
//! record types `$c` and `{A : t}`, and inferred arguments `_` / `!`.
//!
//! ## Example
//!
//! ```
//! use ur_syntax::parse::parse_program;
//!
//! let src = "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
//!            (x : $([nm = t] ++ r)) = x.nm";
//! let program = parse_program(src)?;
//! assert_eq!(program.decls.len(), 1);
//! # Ok::<(), ur_syntax::parse::ParseError>(())
//! ```

pub mod ast;
pub mod diag;
pub mod lex;
pub mod parse;
pub mod pretty;

pub use ast::{Program, SCon, SDecl, SExpr, SKind, SLit, SParam, Span};
pub use diag::{Code, Diagnostic, Diagnostics};
pub use parse::{parse_con, parse_expr, parse_program, ParseError, MAX_PARSE_DEPTH};
