//! Offline test support: a deterministic xorshift PRNG and a tiny
//! wall-clock micro-benchmark harness.
//!
//! The container this repo builds in has no network access, so external
//! crates (`proptest`, `criterion`, `rand`) cannot be resolved. The
//! generative tests and benches instead draw randomness from [`Rng`]
//! (seeded, reproducible) and time hot loops with [`bench::Bench`].

/// xorshift64* — deterministic, seedable, good enough for generative
/// testing. Not cryptographic.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. A zero seed is remapped to a fixed non-zero
    /// constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Rng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `lo..hi` (i64). Returns `lo` when the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Fair coin.
    pub fn bool_(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Pick a reference from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Random lowercase ASCII string of length `0..=max_len`.
    pub fn lowercase(&mut self, max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }

    /// Printable-torture string: ASCII printables plus quote/backslash and
    /// a couple of multi-byte code points, biased toward the nasty cases.
    pub fn torture_string(&mut self, max_len: usize) -> String {
        const NASTY: &[char] = &['\'', '"', '\\', '&', '<', '>', 'é', '✓'];
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| {
                if self.chance(1, 3) {
                    *self.pick(NASTY)
                } else {
                    (b' ' + self.below(95) as u8) as char
                }
            })
            .collect()
    }
}

pub mod gen {
    //! Eval-heavy Ur *source* program generator, shared by the
    //! differential engine tier in `tests/generative_e2e.rs` and the
    //! `ur-bench` eval corpus. Programs are type-correct by
    //! construction — the generator tracks the scalar type of every
    //! subexpression and only emits well-typed combinations — so every
    //! generated program elaborates, and the bytecode VM and the
    //! tree-walking interpreter must agree on every declared value.
    //!
    //! The grammar is deliberately weighted toward what the VM has to
    //! get right: nested `let`s reusing a tiny name pool (shadowing),
    //! immediately-applied `fn`s whose bodies mention outer locals
    //! (capture-by-value), `foldList` over `cons` chains (cross-engine
    //! higher-order application), and record build/`++`/`--`/projection
    //! chains (the paper's row operations).

    use crate::Rng;

    /// Scalar type of a generated expression.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Ty {
        Int,
        Bool,
        Str,
    }

    /// A generated program: source text (newline-separated `val`
    /// declarations) plus the declaration names whose values a
    /// differential harness should compare.
    #[derive(Clone, Debug)]
    pub struct Program {
        pub source: String,
        pub vals: Vec<String>,
    }

    /// Local/global binding pool used while generating one program.
    struct Gen<'a> {
        rng: &'a mut Rng,
        /// Previously declared scalar globals (`g0`, `g1`, …).
        scalars: Vec<(String, Ty)>,
        /// Previously declared record globals and their fields.
        records: Vec<(String, Vec<(String, Ty)>)>,
        /// Locals currently in scope, innermost last. Names come from a
        /// three-name pool so shadowing happens constantly.
        locals: Vec<(String, Ty)>,
    }

    const LOCAL_POOL: &[&str] = &["x", "y", "z"];
    const FIELD_POOL: &[&str] = &["A", "B", "C", "D", "E"];

    impl Gen<'_> {
        fn lit(&mut self, ty: Ty) -> String {
            match ty {
                Ty::Int => self.rng.range_i64(0, 100).to_string(),
                Ty::Bool => if self.rng.bool_() { "True" } else { "False" }.into(),
                Ty::Str => format!("{:?}", self.rng.lowercase(6)),
            }
        }

        /// A literal, an in-scope variable, or a record projection of
        /// the requested type. Only the *innermost* binding of each
        /// local name is visible — an outer `x : int` shadowed by an
        /// inner `x : string` must not be picked as an int.
        fn atom(&mut self, ty: Ty) -> String {
            let mut opts: Vec<String> = Vec::new();
            let mut seen: Vec<&str> = Vec::new();
            for (n, t) in self.locals.iter().rev() {
                if seen.contains(&n.as_str()) {
                    continue;
                }
                seen.push(n);
                if *t == ty {
                    opts.push(n.clone());
                }
            }
            for (n, t) in &self.scalars {
                if *t == ty {
                    opts.push(n.clone());
                }
            }
            for (r, fields) in &self.records {
                for (f, t) in fields {
                    if *t == ty {
                        opts.push(format!("{r}.{f}"));
                    }
                }
            }
            if !opts.is_empty() && self.rng.chance(2, 3) {
                let i = self.rng.below(opts.len());
                return opts[i].clone();
            }
            self.lit(ty)
        }

        fn expr(&mut self, ty: Ty, depth: usize) -> String {
            if depth == 0 {
                return self.atom(ty);
            }
            match ty {
                Ty::Int => self.int_expr(depth),
                Ty::Bool => self.bool_expr(depth),
                Ty::Str => self.str_expr(depth),
            }
        }

        fn int_expr(&mut self, depth: usize) -> String {
            match self.rng.below(9) {
                0 | 1 => {
                    let op = *self.rng.pick(&["+", "-", "*"]);
                    let a = self.expr(Ty::Int, depth - 1);
                    let b = self.expr(Ty::Int, depth - 1);
                    format!("({a} {op} {b})")
                }
                2 => {
                    // Literal denominator: both engines share the `mod`
                    // builtin, but keep the programs total anyway.
                    let a = self.expr(Ty::Int, depth - 1);
                    let k = 2 + self.rng.below(7);
                    format!("({a} % {k})")
                }
                3 => {
                    let c = self.expr(Ty::Bool, depth - 1);
                    let t = self.expr(Ty::Int, depth - 1);
                    let e = self.expr(Ty::Int, depth - 1);
                    format!("(if {c} then {t} else {e})")
                }
                4 => self.let_expr(Ty::Int, depth),
                5 => self.apply_fn(Ty::Int, depth),
                6 => self.fold(depth),
                7 => {
                    let b = self.expr(Ty::Bool, depth - 1);
                    format!("(if {b} then 1 else 0)")
                }
                _ => self.atom(Ty::Int),
            }
        }

        fn bool_expr(&mut self, depth: usize) -> String {
            match self.rng.below(6) {
                0 | 1 => {
                    let op = *self.rng.pick(&["<", "<=", ">", ">=", "==", "!="]);
                    let a = self.expr(Ty::Int, depth - 1);
                    let b = self.expr(Ty::Int, depth - 1);
                    format!("({a} {op} {b})")
                }
                2 => {
                    let op = *self.rng.pick(&["&&", "||"]);
                    let a = self.expr(Ty::Bool, depth - 1);
                    let b = self.expr(Ty::Bool, depth - 1);
                    format!("({a} {op} {b})")
                }
                3 => self.let_expr(Ty::Bool, depth),
                _ => self.atom(Ty::Bool),
            }
        }

        fn str_expr(&mut self, depth: usize) -> String {
            match self.rng.below(5) {
                0 => {
                    let a = self.expr(Ty::Str, depth - 1);
                    let b = self.expr(Ty::Str, depth - 1);
                    format!("({a} ^ {b})")
                }
                1 => {
                    let n = self.expr(Ty::Int, depth - 1);
                    format!("(showInt {n})")
                }
                2 => self.let_expr(Ty::Str, depth),
                _ => self.atom(Ty::Str),
            }
        }

        /// `let val x = e1 in e2 end`, reusing the tiny local-name pool
        /// so inner lets shadow outer ones (and function parameters).
        fn let_expr(&mut self, ty: Ty, depth: usize) -> String {
            let name = (*self.rng.pick(LOCAL_POOL)).to_string();
            let bound_ty = *self.rng.pick(&[Ty::Int, Ty::Bool, Ty::Str]);
            let bound = self.expr(bound_ty, depth - 1);
            self.locals.push((name.clone(), bound_ty));
            let body = self.expr(ty, depth - 1);
            self.locals.pop();
            format!("(let val {name} = {bound} in {body} end)")
        }

        /// An immediately-applied annotated lambda. The body is
        /// generated with outer locals still in scope, so it frequently
        /// closes over them — the capture-by-value path in the VM.
        fn apply_fn(&mut self, ty: Ty, depth: usize) -> String {
            let p = (*self.rng.pick(LOCAL_POOL)).to_string();
            let arg = self.expr(Ty::Int, depth - 1);
            self.locals.push((p.clone(), Ty::Int));
            let body = self.expr(ty, depth - 1);
            self.locals.pop();
            format!("((fn ({p} : int) => {body}) {arg})")
        }

        /// `foldList (fn (x : int) (acc : int) => …) init list` over a
        /// `cons` chain of 0..6 elements — 0 exercises the fold base
        /// case, and the closure crosses the engine boundary through
        /// the builtin.
        fn fold(&mut self, depth: usize) -> String {
            let n = self.rng.below(6);
            let mut list = "nil".to_string();
            for _ in 0..n {
                let e = self.expr(Ty::Int, depth.saturating_sub(2));
                list = format!("(cons {e} {list})");
            }
            self.locals.push(("x".into(), Ty::Int));
            self.locals.push(("acc".into(), Ty::Int));
            let body = self.expr(Ty::Int, 1);
            self.locals.pop();
            self.locals.pop();
            let init = self.expr(Ty::Int, depth.saturating_sub(2));
            format!("(foldList (fn (x : int) (acc : int) => {body}) {init} {list})")
        }

        /// A record declaration body: a field literal, possibly split
        /// into a disjoint `++`, possibly with a `--`-then-readd.
        fn record_expr(&mut self, depth: usize) -> (Vec<(String, Ty)>, String) {
            let n = 1 + self.rng.below(FIELD_POOL.len() - 1);
            let mut fields: Vec<(String, Ty, String)> = Vec::new();
            for f in FIELD_POOL.iter().take(n) {
                let ty = *self.rng.pick(&[Ty::Int, Ty::Bool, Ty::Str]);
                let e = self.expr(ty, depth - 1);
                fields.push(((*f).to_string(), ty, e));
            }
            let part = |fs: &[(String, Ty, String)]| {
                let inner: Vec<String> =
                    fs.iter().map(|(f, _, e)| format!("{f} = {e}")).collect();
                format!("{{{}}}", inner.join(", "))
            };
            let mut src = if fields.len() >= 2 && self.rng.bool_() {
                let k = 1 + self.rng.below(fields.len() - 1);
                let (l, r) = fields.split_at(k);
                format!("({} ++ {})", part(l), part(r))
            } else {
                part(&fields)
            };
            if self.rng.chance(1, 3) {
                let i = self.rng.below(fields.len());
                let (f, ty) = (fields[i].0.clone(), fields[i].1);
                let re = self.expr(ty, depth - 1);
                src = format!("(({src} -- {f}) ++ {{{f} = {re}}})");
            }
            let shape = fields.into_iter().map(|(f, t, _)| (f, t)).collect();
            (shape, src)
        }
    }

    /// Generates a deterministic eval-heavy program of `decls`
    /// declarations with expression depth `depth`. Later declarations
    /// reference earlier ones, so the harness also exercises global
    /// resolution and (under the VM) per-declaration chunk caching.
    pub fn eval_program(rng: &mut Rng, decls: usize, depth: usize) -> Program {
        let mut g = Gen {
            rng,
            scalars: Vec::new(),
            records: Vec::new(),
            locals: Vec::new(),
        };
        let mut source = String::new();
        let mut vals = Vec::new();
        for i in 0..decls {
            if g.rng.chance(1, 3) {
                let name = format!("r{i}");
                let (shape, e) = g.record_expr(depth.max(1));
                source.push_str(&format!("val {name} = {e}\n"));
                g.records.push((name.clone(), shape));
                vals.push(name);
            } else {
                let ty = *g.rng.pick(&[Ty::Int, Ty::Int, Ty::Bool, Ty::Str]);
                let name = format!("g{i}");
                let e = g.expr(ty, depth);
                source.push_str(&format!("val {name} = {e}\n"));
                g.scalars.push((name.clone(), ty));
                vals.push(name);
            }
        }
        Program { source, vals }
    }
}

pub mod bench {
    //! Minimal `Instant`-based micro-bench harness (criterion stand-in).

    use std::time::Instant;

    /// A named group of measurements printed as `group/id  <ns>/iter`.
    pub struct Bench {
        group: String,
        /// Target wall-clock per measurement, in milliseconds.
        pub budget_ms: u64,
    }

    impl Bench {
        pub fn new(group: &str) -> Self {
            Bench {
                group: group.to_string(),
                budget_ms: 200,
            }
        }

        /// Measure `f`, auto-scaling the iteration count to the budget,
        /// and print mean ns/iter.
        pub fn measure<F: FnMut()>(&mut self, id: &str, mut f: F) {
            // Warm up and estimate cost with a single call.
            let t0 = Instant::now();
            f();
            let once = t0.elapsed().as_nanos().max(1);
            let budget = u128::from(self.budget_ms) * 1_000_000;
            let iters = (budget / once).clamp(1, 100_000) as u64;
            let t1 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let total = t1.elapsed().as_nanos();
            let per = total / u128::from(iters);
            println!(
                "{:<40} {:>12} ns/iter ({} iters)",
                format!("{}/{}", self.group, id),
                per,
                iters
            );
        }
    }
}

#[cfg(test)]
mod gen_tests {
    use super::gen::eval_program;
    use super::Rng;

    #[test]
    fn same_seed_same_program() {
        let a = eval_program(&mut Rng::new(7), 8, 3);
        let b = eval_program(&mut Rng::new(7), 8, 3);
        assert_eq!(a.source, b.source);
        assert_eq!(a.vals, b.vals);
    }

    #[test]
    fn different_seeds_differ() {
        let a = eval_program(&mut Rng::new(1), 8, 3);
        let b = eval_program(&mut Rng::new(2), 8, 3);
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn every_val_is_declared_in_the_source() {
        let p = eval_program(&mut Rng::new(42), 10, 3);
        assert_eq!(p.vals.len(), 10);
        for v in &p.vals {
            assert!(p.source.contains(&format!("val {v} = ")), "{v} missing");
        }
    }
}
