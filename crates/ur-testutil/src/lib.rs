//! Offline test support: a deterministic xorshift PRNG and a tiny
//! wall-clock micro-benchmark harness.
//!
//! The container this repo builds in has no network access, so external
//! crates (`proptest`, `criterion`, `rand`) cannot be resolved. The
//! generative tests and benches instead draw randomness from [`Rng`]
//! (seeded, reproducible) and time hot loops with [`bench::Bench`].

/// xorshift64* — deterministic, seedable, good enough for generative
/// testing. Not cryptographic.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. A zero seed is remapped to a fixed non-zero
    /// constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Rng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `lo..hi` (i64). Returns `lo` when the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Fair coin.
    pub fn bool_(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Pick a reference from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Random lowercase ASCII string of length `0..=max_len`.
    pub fn lowercase(&mut self, max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }

    /// Printable-torture string: ASCII printables plus quote/backslash and
    /// a couple of multi-byte code points, biased toward the nasty cases.
    pub fn torture_string(&mut self, max_len: usize) -> String {
        const NASTY: &[char] = &['\'', '"', '\\', '&', '<', '>', 'é', '✓'];
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| {
                if self.chance(1, 3) {
                    *self.pick(NASTY)
                } else {
                    (b' ' + self.below(95) as u8) as char
                }
            })
            .collect()
    }
}

pub mod bench {
    //! Minimal `Instant`-based micro-bench harness (criterion stand-in).

    use std::time::Instant;

    /// A named group of measurements printed as `group/id  <ns>/iter`.
    pub struct Bench {
        group: String,
        /// Target wall-clock per measurement, in milliseconds.
        pub budget_ms: u64,
    }

    impl Bench {
        pub fn new(group: &str) -> Self {
            Bench {
                group: group.to_string(),
                budget_ms: 200,
            }
        }

        /// Measure `f`, auto-scaling the iteration count to the budget,
        /// and print mean ns/iter.
        pub fn measure<F: FnMut()>(&mut self, id: &str, mut f: F) {
            // Warm up and estimate cost with a single call.
            let t0 = Instant::now();
            f();
            let once = t0.elapsed().as_nanos().max(1);
            let budget = u128::from(self.budget_ms) * 1_000_000;
            let iters = (budget / once).clamp(1, 100_000) as u64;
            let t1 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let total = t1.elapsed().as_nanos();
            let per = total / u128::from(iters);
            println!(
                "{:<40} {:>12} ns/iter ({} iters)",
                format!("{}/{}", self.group, id),
                per,
                iters
            );
        }
    }
}
