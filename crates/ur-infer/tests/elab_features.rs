//! Focused elaborator feature tests: local declarations, the `@`
//! explicitness marker, constraint-encoding patterns (§3.1: "from this
//! base, it is easy to define other constraints, including record
//! equality and inclusion"), and implicit-insertion corner cases.

use ur_infer::Elaborator;

const PRELUDE: &str = r#"
val showInt : int -> string
val strcat : string -> string -> string
val add : int -> int -> int
val mul : int -> int -> int
"#;

fn ok(src: &str) -> Elaborator {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    if let Err(err) = e.elab_source(src) {
        panic!("elaboration failed: {err}");
    }
    e
}

#[test]
fn local_type_definitions_in_let() {
    ok(r#"
val x =
  let
    type pair = {L : int, R : int}
    fun mk (a : int) (b : int) : pair = {L = a, R = b}
  in
    (mk 1 2).L
  end
"#);
}

#[test]
fn local_functions_close_over_earlier_locals() {
    ok(r#"
val y =
  let
    val base = 10
    fun bump (n : int) = n + base
    fun twice (n : int) = bump (bump n)
  in
    twice 1
  end
"#);
}

#[test]
fn record_inclusion_encoded_with_disjointness() {
    // §3.1: record inclusion `sub ⊆ full` is encoded as
    // `full = sub ++ rest` with `[sub ~ rest]` — the basis of the SQL
    // library's typing rules.
    ok(r#"
fun getSub [sub :: {Type}] [rest :: {Type}] [sub ~ rest]
    (keep : $sub -> int) (x : $(sub ++ rest)) : int = keep ??
"#
    .replace("keep ??", "0")
    .as_str());
    // And a use that picks a concrete split.
    ok(r#"
fun width [sub :: {Type}] [rest :: {Type}] [sub ~ rest]
    (x : $(sub ++ rest)) : int = 1
val w = width [[A = int]] [[B = float]] {A = 1, B = 2.0}
"#);
}

#[test]
fn record_equality_encoded_with_two_inclusions() {
    // Record equality r1 = r2 as definitional equality through an
    // identity coercion.
    ok(r#"
fun coerce [r :: {Type}] (x : $r) : $r = x
fun eqShape [r :: {Type}] [[A] ~ r] (x : $([A = int] ++ r)) : $(r ++ [A = int]) = x
"#);
}

#[test]
fn explicit_marker_is_harmless_on_folder_free_functions() {
    ok("fun dbl (n : int) = n * 2\nval a = @dbl 21");
}

#[test]
fn wildcard_constructor_arguments() {
    ok(r#"
fun pick [t :: Type] (x : t) (y : t) = x
val a = pick [_] 1 2
"#);
}

#[test]
fn nested_polymorphic_instantiation() {
    ok(r#"
fun konst [a :: Type] [b :: Type] (x : a) (y : b) : a = x
val k1 = konst 1 "s"
val k2 = konst "s" 1
val k3 = konst [int] [string] 2 "t"
"#);
}

#[test]
fn guards_discharge_in_any_written_order() {
    // Multiple constraints, written and discharged in sequence.
    ok(r#"
fun tri [a :: {Type}] [b :: {Type}] [c :: {Type}]
    [a ~ b] [b ~ c] [a ~ c]
    (x : $a) (y : $b) (z : $c) : $((a ++ b) ++ c) = (x ++ y) ++ z
val t = tri {P = 1} {Q = 2} {R = 3}
val p = t.P
val r = t.R
"#);
}

#[test]
fn shadowing_in_nested_scopes() {
    ok(r#"
val x = 1
val y =
  let
    val x = 2
  in
    let
      val x = 3
    in x end
  end
"#);
}

#[test]
fn annotations_propagate_into_applications() {
    // Checking mode flows through the spine into the record argument.
    ok(r#"
fun wrap [r :: {Type}] (x : $r) : $r = x
val a : {A : int} = wrap {A = 1}
"#);
}

#[test]
fn constraint_shorthand_accepts_multiple_names() {
    // `[A, B] ~ r` decomposes into A~r and B~r.
    ok(r#"
fun two [r :: {Type}] [[A, B] ~ r] (x : $([A = int] ++ ([B = int] ++ r))) : int =
  x.A + x.B
val n = two {A = 1, B = 2, C = "x"}
"#);
}

#[test]
fn stats_count_all_machinery_on_a_rich_program() {
    let e = ok(r#"
type meta (t :: Type) = {Show : t -> string}
fun render [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =
  fl [fn r => $(map meta r) -> $r -> string]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        mr.nm.Show x.nm ^ acc (mr -- nm) (x -- nm))
     (fn _ _ => "") mr x
val out = render {A = {Show = showInt}, B = {Show = showInt}} {A = 1, B = 2}
"#);
    let s = &e.cx.stats;
    assert!(s.disjoint_prover_calls > 0);
    assert!(s.law_map_distrib > 0);
    assert!(s.folders_generated == 1, "{s}");
    assert!(s.reverse_engineered >= 1, "{s}");
    assert!(s.unify_calls > 10, "{s}");
}
