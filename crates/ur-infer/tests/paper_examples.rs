//! End-to-end elaboration tests for every worked example in §2 of the
//! paper, plus core re-checking of the elaborated output.

use ur_core::defeq::defeq;
use ur_core::prelude::*;
use ur_core::typing::type_of;
use ur_infer::{ElabDecl, Elaborator};

/// Minimal library signature used by the §2 examples, written in Ur itself
/// (`val x : t` with no body declares a primitive).
const PRELUDE: &str = r#"
val strcat : string -> string -> string
val showInt : int -> string
val showFloat : float -> string
val showBool : bool -> string

con table :: {Type} -> Type
con exp :: {Type} -> Type -> Type
val const : r :: {Type} -> t :: Type -> t -> exp r t
val insert : r :: {Type} -> table r -> $(map (exp []) r) -> unit
val column : nm :: Name -> t :: Type -> r :: {Type} -> [[nm] ~ r] => exp ([nm = t] ++ r) t
val eqE : r :: {Type} -> t :: Type -> exp r t -> exp r t -> exp r bool
val andE : r :: {Type} -> exp r bool -> exp r bool -> exp r bool
"#;

fn elaborate(src: &str) -> Elaborator {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).expect("prelude elaborates");
    if let Err(err) = e.elab_source(src) {
        panic!("elaboration failed: {err}");
    }
    e
}

/// Re-checks every elaborated body with the core typing judgment and
/// compares against the elaborated type — elaboration output must be
/// well-typed core Ur.
fn core_check(e: &mut Elaborator) {
    let decls = e.decls.clone();
    for d in &decls {
        if let ElabDecl::Val {
            name,
            ty,
            body: Some(b),
            ..
        } = d
        {
            let got = type_of(&e.genv, &mut e.cx, b)
                .unwrap_or_else(|err| panic!("core re-check of {name} failed: {err}"));
            assert!(
                defeq(&e.genv, &mut e.cx, &got, ty),
                "core type of {name} is {got}, elaborated type is {ty}"
            );
        }
    }
}

fn find_val<'a>(e: &'a Elaborator, name: &str) -> (&'a RCon, &'a Sym) {
    e.decls
        .iter()
        .rev()
        .find_map(|d| match d {
            ElabDecl::Val { name: n, ty, sym, .. } if n == name => Some((ty, sym)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no val {name}"))
}

const PROJ: &str = r#"
fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r]
    (x : $([nm = t] ++ r)) = x.nm
"#;

#[test]
fn proj_definition_and_explicit_use() {
    // §2: proj [#A] [int] [[B = float]] ! {A = 1, B = 2.3} : int
    let mut e = elaborate(&format!(
        "{PROJ}\nval a = proj [#A] [int] [[B = float]] ! {{A = 1, B = 2.3}}"
    ));
    let (ty, _) = find_val(&e, "a");
    let ty = *ty;
    assert!(defeq(&e.genv.clone(), &mut e.cx, &ty, &Con::int()));
    core_check(&mut e);
}

#[test]
fn proj_fully_implicit_use() {
    // §2: "the Ur compiler knows to expand this call to
    //      proj [#A] [_] [_] ! {A = 1, B = 2.3}".
    let mut e = elaborate(&format!("{PROJ}\nval a = proj [#A] {{A = 1, B = 2.3}}"));
    let (ty, _) = find_val(&e, "a");
    let ty = *ty;
    assert!(defeq(&e.genv.clone(), &mut e.cx, &ty, &Con::int()));
    core_check(&mut e);
}

#[test]
fn proj_on_other_field_and_record() {
    // proj [#D] {C = True, D = "xyz", E = 8} : string
    let mut e = elaborate(&format!(
        "{PROJ}\nval d = proj [#D] {{C = True, D = \"xyz\", E = 8}}"
    ));
    let (ty, _) = find_val(&e, "d");
    let ty = *ty;
    assert!(defeq(&e.genv.clone(), &mut e.cx, &ty, &Con::string()));
    core_check(&mut e);
}

#[test]
fn proj_overlapping_row_rejected() {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    e.elab_source(PROJ).unwrap();
    // Explicitly instantiating r with a row that repeats #A must fail.
    let err = e
        .elab_source("val bad = proj [#A] [int] [[A = float]] ! {A = 1}")
        .unwrap_err();
    assert!(
        err.message.contains("share a field name") || err.message.contains("disjoint"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn proj_has_the_paper_type() {
    let e = elaborate(PROJ);
    let (ty, _) = find_val(&e, "proj");
    // nm :: Name -> t :: Type -> r :: {Type} -> [[nm = _] ~ r] => $([nm = t] ++ r) -> t
    let s = ty.to_string();
    assert!(s.contains("nm :: Name ->"), "got {s}");
    assert!(s.contains("r :: {Type} ->"), "got {s}");
    assert!(s.contains("=>"), "got {s}");
}

const MKTABLE: &str = r#"
type meta (t :: Type) = {Label : string, Show : t -> string}

fun mkTable [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =
  fl [fn r => $(map meta r) -> $r -> string]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        "<tr> <th>" ^ mr.nm.Label ^ "</th> <td>" ^ mr.nm.Show x.nm ^ "</td> </tr> " ^
        acc (mr -- nm) (x -- nm))
     (fn _ _ => "") mr x
"#;

#[test]
fn mktable_definition_elaborates() {
    let mut e = elaborate(MKTABLE);
    core_check(&mut e);
}

#[test]
fn mktable_use_infers_record_type() {
    // §2.1: "Notice that we did not need to write the type-level record
    // [A = int, B = float] explicitly" — reverse-engineering unification.
    let mut e = elaborate(&format!(
        "{MKTABLE}\nval f = mkTable {{A = {{Label = \"A\", Show = showInt}}, \
                                      B = {{Label = \"B\", Show = showFloat}}}}"
    ));
    let (ty, _) = find_val(&e, "f");
    let ty = *ty;
    // f : {A : int, B : float} -> string
    let expected = Con::arrow(
        Con::record(Con::row_of(
            Kind::Type,
            vec![
                (Con::name("A"), Con::int()),
                (Con::name("B"), Con::float()),
            ],
        )),
        Con::string(),
    );
    let genv = e.genv.clone();
    assert!(
        defeq(&genv, &mut e.cx, &ty, &expected),
        "inferred {ty}, expected {expected}"
    );
    assert!(e.cx.stats.reverse_engineered >= 1, "{}", e.cx.stats);
    assert!(e.cx.stats.folders_generated >= 1, "{}", e.cx.stats);
    core_check(&mut e);
}

#[test]
fn mktable_rejects_wrong_show_type() {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    e.elab_source(MKTABLE).unwrap();
    // Show for column A disagrees with Label-column type inference when
    // the record value is used: A = showFloat but the value is an int.
    let err = e
        .elab_source(
            "val f = mkTable {A = {Label = \"A\", Show = showFloat}}\n\
             val bad = f {A = 1}",
        )
        .unwrap_err();
    assert!(
        err.message.contains("int") || err.message.contains("float"),
        "unexpected message: {}",
        err.message
    );
}

const TODB: &str = r#"
type arrow (p :: Type * Type) = p.1 -> p.2

fun toDb [r :: {(Type * Type)}] (fl : folder r) (mr : $(map arrow r))
         (tab : table (map snd r)) (x : $(map fst r)) : unit =
  insert tab
    (fl [fn r => $(map arrow r) -> $(map fst r) -> $(map (fn p => exp [] p.2) r)]
        (fn [nm] [p] [r] [[nm] ~ r] acc mr x =>
           {nm = const (mr.nm x.nm)} ++ acc (mr -- nm) (x -- nm))
        (fn _ _ => {}) mr x)
"#;

#[test]
fn todb_definition_needs_fusion_law() {
    // §2.2: type-checking toDb applies
    //   map f (map g r) = map (fn x => f (g x)) r
    // implicitly; "in all related systems ... the programmer would need to
    // apply an explicit coercion".
    let mut e = elaborate(TODB);
    assert!(
        e.cx.stats.law_map_fusion >= 1,
        "fusion law should fire: {}",
        e.cx.stats
    );
    core_check(&mut e);
}

#[test]
fn todb_use_reverse_engineers_pairs() {
    // §2.2: inserter gets type
    //   table [A = int, B = float] -> {A : int * int, B : float} -> unit
    // hmm — in the paper A's native type is int*int via addInts; we use
    // curried prims, so A : int with conversion showInt-style. Use the
    // paper's shapes with a pair-typed native column via a prim.
    let src = format!(
        "{TODB}\n\
         val addOne : int -> int\n\
         val truncate : float -> int\n\
         val inserter = toDb {{A = addOne, B = truncate}}"
    );
    let mut e = elaborate(&src);
    let (ty, _) = find_val(&e, "inserter");
    let ty = *ty;
    let s = ty.to_string();
    // inserter : table ([A = int] ++ [B = int]) -> $([A = int] ++ [B = float]) -> unit
    assert!(s.contains("table"), "got {s}");
    assert!(s.contains("unit"), "got {s}");
    assert!(e.cx.stats.reverse_engineered >= 1);
    core_check(&mut e);

    // And the row shapes are right: the table row maps snd, the value row
    // maps fst.
    let genv = e.genv.clone();
    let expected = Con::arrow(
        Con::app(
            Con::var(find_con_sym(&e, "table")),
            Con::row_of(
                Kind::Type,
                vec![
                    (Con::name("A"), Con::int()),
                    (Con::name("B"), Con::int()),
                ],
            ),
        ),
        Con::arrow(
            Con::record(Con::row_of(
                Kind::Type,
                vec![
                    (Con::name("A"), Con::int()),
                    (Con::name("B"), Con::float()),
                ],
            )),
            Con::unit(),
        ),
    );
    assert!(
        defeq(&genv, &mut e.cx, &ty, &expected),
        "inferred {ty}, expected {expected}"
    );
}

fn find_con_sym<'a>(e: &'a Elaborator, name: &str) -> &'a Sym {
    e.decls
        .iter()
        .find_map(|d| match d {
            ElabDecl::Con { name: n, sym, .. } if n == name => Some(sym),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no con {name}"))
}

const SELECTOR: &str = r#"
fun selector [r :: {Type}] (fl : folder r) (x : $r) : exp r bool =
  fl [fn r => $r -> rest :: {Type} -> [rest ~ r] => exp (r ++ rest) bool]
     (fn [nm] [t] [r] [[nm] ~ r] acc x [rest] [rest ~ r] =>
        andE (eqE (column [nm]) (const x.nm)) (acc (x -- nm) [[nm = t] ++ rest] !))
     (fn _ [rest] [rest ~ []] => const True) x [[]] !
"#;

#[test]
fn selector_definition_elaborates() {
    // §2.3: the fold's accumulator type carries an explicit disjointness
    // assertion, and the `!` proofs are assembled automatically from the
    // facts [nm] ~ r and rest ~ r.
    let mut e = elaborate(SELECTOR);
    assert!(e.cx.stats.disjoint_prover_calls > 0);
    core_check(&mut e);
}

#[test]
fn selector_use() {
    let mut e = elaborate(&format!(
        "{SELECTOR}\nval sel = selector {{A = 1, B = \"x\"}}"
    ));
    let (ty, _) = find_val(&e, "sel");
    let ty = *ty;
    // sel : exp [A = int, B = string] bool
    let genv = e.genv.clone();
    let expected = Con::app(
        Con::app(
            Con::var(find_con_sym(&e, "exp")),
            Con::row_of(
                Kind::Type,
                vec![
                    (Con::name("A"), Con::int()),
                    (Con::name("B"), Con::string()),
                ],
            ),
        ),
        Con::bool_(),
    );
    assert!(
        defeq(&genv, &mut e.cx, &ty, &expected),
        "inferred {ty}, expected {expected}"
    );
    core_check(&mut e);
}

#[test]
fn acat_from_section_1_is_implicit() {
    // §1's motivating example: associativity of concatenation applied
    // implicitly, with no cast. hcat3 concatenates three records.
    let src = r#"
fun hcat3 [r1 :: {Type}] [r2 :: {Type}] [r3 :: {Type}]
    [r1 ~ r2] [r2 ~ r3] [r1 ~ r3]
    (x1 : $r1) (x2 : $r2) (x3 : $r3) : $(r1 ++ (r2 ++ r3)) =
  (x1 ++ x2) ++ x3

val h = hcat3 {A = 1} {B = "x"} {C = 2.5}
"#;
    let mut e = elaborate(src);
    let (ty, _) = find_val(&e, "h");
    let ty = *ty;
    let genv = e.genv.clone();
    let expected = Con::record(Con::row_of(
        Kind::Type,
        vec![
            (Con::name("A"), Con::int()),
            (Con::name("B"), Con::string()),
            (Con::name("C"), Con::float()),
        ],
    ));
    assert!(defeq(&genv, &mut e.cx, &ty, &expected));
    core_check(&mut e);
}

#[test]
fn inference_incompleteness_example_from_section_4() {
    // §4: "our inference engine is unable to type the following code:
    //   fun id [f :: Type -> Type] [t] (x : f t) : f t = x
    //   val x = id 0"
    // — a higher-order unification problem we must *postpone and reject*,
    // not solve incorrectly.
    let src = r#"
fun id [f :: (Type -> Type)] [t :: Type] (x : f t) : f t = x
val x = id 0
"#;
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    let err = e.elab_source(src).unwrap_err();
    assert!(
        err.message.contains("unsolved") || err.message.contains("could not infer"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn stats_snapshot_per_component() {
    // The Figure-5 measurement methodology: stats deltas per component.
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    let before = e.cx.stats.clone();
    e.elab_source(MKTABLE).unwrap();
    let delta = e.cx.stats.since(&before);
    assert!(delta.disjoint_prover_calls > 0);
}

#[test]
fn explicit_folder_passing_still_works() {
    // Inside metaprograms, folders are passed explicitly as variables;
    // the hole mechanism must not fire for those.
    let src = format!(
        "{MKTABLE}\n\
         fun mkTable2 [r :: {{Type}}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =\n\
           mkTable fl mr x\n\
         val g = mkTable2 {{A = {{Label = \"A\", Show = showInt}}}}"
    );
    let mut e = elaborate(&src);
    let (ty, _) = find_val(&e, "g");
    let ty = *ty;
    let genv = e.genv.clone();
    let expected = Con::arrow(
        Con::record(Con::row_one(Con::name("A"), Con::int())),
        Con::string(),
    );
    assert!(defeq(&genv, &mut e.cx, &ty, &expected));
    core_check(&mut e);
}

#[test]
fn let_and_if_elaborate() {
    let src = r#"
val y =
  let
    val a = 3
    fun double (n : int) = n * 2
  in
    if a < 4 then double a else a
  end
"#;
    let prelude_ops = r#"
val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val lt : int -> int -> bool
"#;
    let mut e = Elaborator::new();
    e.elab_source(prelude_ops).unwrap();
    e.elab_source(src).unwrap();
    let (ty, _) = find_val(&e, "y");
    let ty = *ty;
    let genv = e.genv.clone();
    assert!(defeq(&genv, &mut e.cx, &ty, &Con::int()));
    core_check(&mut e);
}
