//! Law ablations: the paper's claim that its five built-in algebraic laws
//! are "sufficient to avoid any proofs about type equality" has a
//! converse worth checking — without them, the flagship metaprograms stop
//! type-checking. Each test disables one Figure-3 law and shows a §2
//! example that then fails (and still succeeds with the law enabled).

use ur_infer::Elaborator;

const PRELUDE: &str = r#"
val showInt : int -> string
val strcat : string -> string -> string

con table :: {Type} -> Type
con exp :: {Type} -> Type -> Type
val const : r :: {Type} -> t :: Type -> t -> exp r t
val insert : r :: {Type} -> table r -> $(map (exp []) r) -> unit
"#;

const TODB: &str = r#"
type arrow (p :: Type * Type) = p.1 -> p.2

fun toDb [r :: {(Type * Type)}] (fl : folder r) (mr : $(map arrow r))
         (tab : table (map snd r)) (x : $(map fst r)) : unit =
  insert tab
    (fl [fn r => $(map arrow r) -> $(map fst r) -> $(map (fn p => exp [] p.2) r)]
        (fn [nm] [p] [r] [[nm] ~ r] acc mr x =>
           {nm = const (mr.nm x.nm)} ++ acc (mr -- nm) (x -- nm))
        (fn _ _ => {}) mr x)
"#;

/// §2.2's toDb: "a corollary of a more general fusion law ... In all
/// related systems that we are aware of, the programmer would need to
/// apply an explicit coercion."
#[test]
fn todb_requires_the_fusion_law() {
    // With fusion: elaborates.
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    e.elab_source(TODB).expect("toDb elaborates with fusion on");
    assert!(e.cx.stats.law_map_fusion >= 1);

    // Without fusion: the same program is rejected.
    let mut e = Elaborator::new();
    e.cx.laws.fusion = false;
    e.elab_source(PRELUDE).unwrap();
    let err = e.elab_source(TODB).expect_err("toDb must fail without fusion");
    assert!(
        err.message.contains("unsolved") || err.message.contains("cannot unify"),
        "unexpected: {}",
        err.message
    );
}

const MKTABLE_STEP: &str = r#"
type meta (t :: Type) = {Label : string, Show : t -> string}

fun mkTable [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =
  fl [fn r => $(map meta r) -> $r -> string]
     (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>
        mr.nm.Label ^ mr.nm.Show x.nm ^ acc (mr -- nm) (x -- nm))
     (fn _ _ => "") mr x
"#;

/// The mkTable step function projects `mr.nm` out of
/// `$(map meta ([nm = t] ++ r))` — that needs the map to distribute over
/// the concatenation.
#[test]
fn mktable_requires_distributivity() {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    e.elab_source(MKTABLE_STEP)
        .expect("mkTable elaborates with distributivity on");

    let mut e = Elaborator::new();
    e.cx.laws.distrib = false;
    e.elab_source(PRELUDE).unwrap();
    assert!(
        e.elab_source(MKTABLE_STEP).is_err(),
        "mkTable must fail without distributivity"
    );
}

const IDENTITY_USER: &str = r#"
type same (t :: Type) = (t, t)

fun useIdentity [r :: {Type}] (x : $(map (fn p :: (Type * Type) => p.1) (map same r))) : $r = x
"#;

/// `map fst (map same r) = r` needs fusion *and* the identity law on the
/// composed function.
#[test]
fn identity_law_collapses_fused_projections() {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    e.elab_source(IDENTITY_USER)
        .expect("identity collapse elaborates with the law on");
    assert!(e.cx.stats.law_map_identity >= 1);

    let mut e = Elaborator::new();
    e.cx.laws.identity = false;
    e.elab_source(PRELUDE).unwrap();
    assert!(
        e.elab_source(IDENTITY_USER).is_err(),
        "identity collapse must fail without the law"
    );
}

/// Programs that do not lean on a law are unaffected by disabling it —
/// the ablation switches are precise.
#[test]
fn law_free_programs_unaffected_by_ablation() {
    let src = "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
               (x : $([nm = t] ++ r)) = x.nm\n\
               val a = proj [#A] {A = 1, B = 2}";
    for (id, di, fu) in [
        (false, true, true),
        (true, false, true),
        (true, true, false),
        (false, false, false),
    ] {
        let mut e = Elaborator::new();
        e.cx.laws.identity = id;
        e.cx.laws.distrib = di;
        e.cx.laws.fusion = fu;
        e.elab_source(PRELUDE).unwrap();
        e.elab_source(src)
            .unwrap_or_else(|err| panic!("proj failed under ablation {id}/{di}/{fu}: {err}"));
    }
}
