//! Dependency-graph coverage for the parallel batch scheduler
//! (`ur_infer::batch`): forward references, shadowing, unknown names,
//! and — via explicit edge lists — cycles, which name resolution over
//! source can never produce but the scheduler must still reject with a
//! coded diagnostic instead of deadlocking.

use std::sync::mpsc;
use std::time::Duration;

use ur_infer::batch::{cycle_diagnostics, elab_program_all_with_graph};
use ur_infer::{Code, DepGraph, Elaborator};
use ur_syntax::parse_program;

fn graph_of(src: &str) -> DepGraph {
    let prog = parse_program(src).expect("parse");
    DepGraph::build(&prog.decls)
}

// ---------------- name resolution ----------------

#[test]
fn references_draw_edges_to_the_binding_declaration() {
    let g = graph_of("val x = 1\nval y = x");
    assert_eq!(g.deps(0), &[] as &[usize]);
    assert_eq!(g.deps(1), &[0]);
    assert_eq!(g.dependents(0), &[1]);
}

#[test]
fn forward_references_get_no_edge() {
    // `a` references `laterName` before it is bound; sequentially that is
    // an unbound-variable error, so the graph must NOT point forward —
    // `a` elaborates against the base environment and fails identically.
    let g = graph_of("val a = laterName\nval laterName = 2\nval b = laterName");
    assert_eq!(g.deps(0), &[] as &[usize], "no forward edge");
    assert_eq!(g.deps(2), &[1], "later use binds to the declaration");
    assert_eq!(g.dependents(1), &[2]);
}

#[test]
fn shadowing_draws_edges_to_every_earlier_binder() {
    // If the second `x` fails to elaborate, sequential recovery falls
    // back to the first `x` — so a dependent needs BOTH binders done
    // before it can run.
    let g = graph_of("val x = 1\nval x = 2\nval y = x");
    assert_eq!(g.deps(1), &[] as &[usize], "the shadower itself uses no x");
    assert_eq!(g.deps(2), &[0, 1]);
}

#[test]
fn unknown_names_contribute_no_edges() {
    let g = graph_of("val a = nowhere\nval b = 1");
    assert_eq!(g.deps(0), &[] as &[usize]);
    assert_eq!(g.deps(1), &[] as &[usize]);
}

#[test]
fn let_local_binders_do_not_leak_into_the_graph() {
    let g = graph_of("val a = let val q = 1 in q end\nval b = q");
    assert_eq!(g.deps(1), &[] as &[usize], "q is local to a's let");
}

#[test]
fn unknown_names_fail_identically_under_the_scheduler() {
    let src = "val a = nowhere\nval b = 1";
    let mut seq = Elaborator::new();
    let (seq_decls, seq_diags) = seq.elab_source_all_threads(src, 1);
    let mut par = Elaborator::new();
    let (par_decls, par_diags) = par.elab_source_all_threads(src, 4);
    assert_eq!(seq_decls.len(), 1, "only b elaborates");
    assert_eq!(par_decls.len(), 1);
    assert_eq!(seq_diags, par_diags);
    assert!(seq_diags[0].message.contains("unbound"), "{}", seq_diags[0]);
}

// ---------------- scheduling ----------------

#[test]
fn diamond_dependencies_schedule_lowest_index_first() {
    let g = graph_of("val a = 1\nval b = a\nval c = a\nval d = c");
    assert_eq!(g.topo_order().expect("acyclic"), vec![0, 1, 2, 3]);
}

#[test]
fn graphs_built_from_source_are_always_acyclic() {
    // Shadowing, self-reference, forward reference: none of these can
    // produce a cycle, because edges only ever point to earlier indices.
    for src in [
        "val x = 1\nval x = x\nval x = x",
        "fun f (x : int) = f x",
        "val a = b\nval b = a",
    ] {
        let g = graph_of(src);
        assert!(g.topo_order().is_ok(), "source {src:?} produced a cycle");
    }
}

#[test]
fn long_chains_complete_at_high_thread_counts() {
    // Depth 20 with 8 workers: most workers are starved most of the
    // time, which is exactly where a buggy dispatch loop would deadlock.
    let mut src = String::from("val c0 = 1\n");
    for i in 1..20 {
        src.push_str(&format!("val c{i} = c{}\n", i - 1));
    }
    let mut elab = Elaborator::new();
    let (decls, diags) = elab.elab_source_all_threads(&src, 8);
    assert_eq!(decls.len(), 20);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------- cycles ----------------

#[test]
fn explicit_cycles_are_detected_by_topo_order() {
    let g = DepGraph::from_edges(3, &[(0, 1), (1, 0)]);
    assert_eq!(g.topo_order(), Err(vec![0, 1]), "node 2 stays schedulable");
}

#[test]
fn nodes_downstream_of_a_cycle_are_reported_too() {
    let g = DepGraph::from_edges(4, &[(0, 1), (1, 0), (2, 1)]);
    assert_eq!(g.topo_order(), Err(vec![0, 1, 2]));
}

#[test]
fn cycle_diagnostics_carry_the_e0700_code_and_name_the_ring() {
    let prog = parse_program("val a = 1\nval b = 2").expect("parse");
    let diags = cycle_diagnostics(&prog, &[0, 1]);
    assert_eq!(diags.len(), 2);
    for d in &diags {
        assert_eq!(d.code, Code::DependencyCycle);
        assert_eq!(d.code.as_str(), "E0700");
        assert!(
            d.notes.iter().any(|n| n.contains("a") && n.contains("b")),
            "note must name the ring: {d}"
        );
    }
    assert!(diags.windows(2).all(|w| w[0].span <= w[1].span));
}

#[test]
fn cyclic_graph_rejects_the_batch_without_hanging() {
    // Run the scheduler itself on a cyclic graph, under a watchdog: a
    // deadlocked dispatch loop fails this test in five seconds instead of
    // wedging the whole suite.
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let prog = parse_program("val a = 1\nval b = 2\nval c = 3").expect("parse");
        let graph = DepGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let mut elab = Elaborator::new();
        // ElabDecl is deliberately !Send, so ship only a summary back.
        let (decls, diags) = elab_program_all_with_graph(&mut elab, &prog, 4, &graph);
        tx.send((decls.len(), diags)).ok();
    });
    let (n_decls, diags) = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("scheduler hung on a cyclic graph");
    worker.join().expect("join");
    assert_eq!(n_decls, 0, "a cyclic batch elaborates nothing");
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.code == Code::DependencyCycle));
}
