//! Error-reporting behaviour: the paper (§8) notes that "erroneous
//! metaprogram applications can trigger hard-to-understand error
//! messages". These tests pin down what our engine reports — every error
//! carries a source position and names the offending construct — and that
//! each failure class is detected *statically*.

use ur_infer::Elaborator;

const PRELUDE: &str = r#"
val showInt : int -> string
val strcat : string -> string -> string
val add : int -> int -> int
"#;

fn elab_err(src: &str) -> ur_infer::ElabError {
    let mut e = Elaborator::new();
    e.elab_source(PRELUDE).unwrap();
    e.elab_source(src).expect_err("should fail")
}

#[test]
fn unbound_variable_is_located() {
    let err = elab_err("val x = missing");
    assert!(err.message.contains("unbound variable missing"));
    assert_eq!(err.span.line, 1);
    assert!(err.span.col >= 9, "column {} should point at the use", err.span.col);
}

#[test]
fn unbound_type_identifier() {
    let err = elab_err("val x : wibble = 1");
    assert!(err.message.contains("unbound type-level identifier wibble"));
}

#[test]
fn argument_type_mismatch_names_both_types() {
    let err = elab_err("val x = showInt \"hello\"");
    assert!(
        err.message.contains("string") && err.message.contains("int"),
        "{}",
        err.message
    );
}

#[test]
fn applying_a_non_function() {
    let err = elab_err("val x = 1 2");
    assert!(err.message.contains("applied like a function"), "{}", err.message);
}

#[test]
fn duplicate_record_fields() {
    let err = elab_err("val x = {A = 1, A = 2}");
    assert!(err.message.contains("duplicate field #A"), "{}", err.message);
}

#[test]
fn missing_projection_field() {
    let err = elab_err("val x = {A = 1}.B");
    assert!(err.message.contains("no field"), "{}", err.message);
}

#[test]
fn cut_of_absent_field() {
    let err = elab_err("val x = {A = 1} -- B");
    assert!(err.message.contains("no field"), "{}", err.message);
}

#[test]
fn overlapping_concatenation_is_refuted() {
    let err = elab_err("val x = {A = 1} ++ {A = 2}");
    assert!(err.message.contains("share a field name"), "{}", err.message);
}

#[test]
fn kind_error_in_annotation() {
    // `int` used as a row.
    let err = elab_err("val x : $int = {}");
    assert!(err.message.contains("kind"), "{}", err.message);
}

#[test]
fn unannotated_parameter_in_inference_mode() {
    let err = elab_err("fun f x = x");
    assert!(
        err.message.contains("needs a type annotation"),
        "{}",
        err.message
    );
}

#[test]
fn unprovable_disjointness_reported_with_rows() {
    // The guard mentions a row variable with no supporting fact.
    let err = elab_err(
        "fun f [r :: {Type}] (x : $r) : $([A = int] ++ r) = {A = 1} ++ x",
    );
    assert!(
        err.message.contains("disjoint") || err.message.contains('~'),
        "{}",
        err.message
    );
}

#[test]
fn unsolved_implicit_reports_its_origin() {
    // `nil`-style: a polymorphic primitive whose instantiation is never
    // determined.
    let mut e = Elaborator::new();
    e.elab_source("con list :: Type -> Type\nval nil : t :: Type -> list t")
        .unwrap();
    let err = e.elab_source("val xs = nil ++ {}").unwrap_err();
    assert!(!err.message.is_empty());
}

#[test]
fn guard_bang_without_constraint() {
    let err = elab_err("val x = showInt ! 3");
    assert!(
        err.message.contains('!') || err.message.contains("constraint"),
        "{}",
        err.message
    );
}

#[test]
fn if_condition_must_be_bool() {
    let err = elab_err("val x = if 1 then 2 else 3");
    assert!(
        err.message.contains("bool") || err.message.contains("int"),
        "{}",
        err.message
    );
}

#[test]
fn branches_must_agree() {
    let err = elab_err("val x = if True then 1 else \"two\"");
    assert!(
        err.message.contains("int") && err.message.contains("string"),
        "{}",
        err.message
    );
}

#[test]
fn explicit_con_arg_where_value_expected() {
    let err = elab_err("val x = showInt [int] 3");
    assert!(
        err.message.contains("constructor argument"),
        "{}",
        err.message
    );
}

#[test]
fn spans_point_into_multiline_programs() {
    let err = elab_err("val a = 1\nval b = 2\nval c = missing");
    assert_eq!(err.span.line, 3);
}

#[test]
fn errors_display_with_position_prefix() {
    let err = elab_err("val x = missing");
    let shown = err.to_string();
    assert!(shown.starts_with("error at 1:"), "{shown}");
}
