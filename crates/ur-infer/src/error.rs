//! Elaboration errors with source positions.

use std::fmt;
use ur_syntax::{Code, Diagnostic, Span};

/// An error produced during elaboration or constraint solving.
#[derive(Clone, Debug)]
pub struct ElabError {
    pub span: Span,
    pub message: String,
    /// Stable diagnostic code; classified from the message if not set
    /// explicitly.
    pub code: Option<Code>,
}

impl ElabError {
    pub fn new(span: Span, message: impl Into<String>) -> ElabError {
        ElabError {
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Tags this error with an explicit diagnostic code.
    pub fn with_code(mut self, code: Code) -> ElabError {
        self.code = Some(code);
        self
    }

    /// The diagnostic code: the explicit tag if set, otherwise classified
    /// from the message text.
    pub fn code(&self) -> Code {
        self.code.unwrap_or_else(|| classify(&self.message))
    }
}

/// Best-effort classification of a legacy message-only error into the
/// stable code scheme (see [`ur_syntax::diag`]).
fn classify(message: &str) -> Code {
    if message.contains("resource limit exhausted") {
        Code::ResourceExhausted
    } else if message.contains("unbound") {
        Code::Unbound
    } else if message.contains("share a field name") || message.contains("disjoint") {
        Code::Disjoint
    } else if message.contains("could not infer")
        || message.contains("unsolved constraint")
        || message.contains("undetermined part")
    {
        Code::Unresolved
    } else if message.contains("kind") {
        Code::Kind
    } else if message.starts_with("expected ") || message.contains("nesting too deep") {
        Code::Parse
    } else {
        Code::TypeMismatch
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ElabError {}

impl From<ElabError> for Diagnostic {
    fn from(e: ElabError) -> Self {
        let code = e.code();
        Diagnostic::new(e.span, code, e.message)
    }
}

/// Result alias used throughout the elaborator.
pub type EResult<T> = Result<T, ElabError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ElabError::new(Span { line: 4, col: 7 }, "boom");
        assert_eq!(e.to_string(), "error at 4:7: boom");
    }

    #[test]
    fn explicit_code_wins() {
        let e = ElabError::new(Span::default(), "anything")
            .with_code(Code::ResourceExhausted);
        assert_eq!(e.code(), Code::ResourceExhausted);
    }

    #[test]
    fn classification_covers_common_messages() {
        let cases = [
            ("resource limit exhausted: recursion depth", Code::ResourceExhausted),
            ("unbound variable x", Code::Unbound),
            ("rows [A] and [A] share a field name", Code::Disjoint),
            ("could not infer ?t", Code::Unresolved),
            ("cannot unify kind Type with Name", Code::Kind),
            ("cannot unify int with string", Code::TypeMismatch),
        ];
        for (msg, want) in cases {
            assert_eq!(ElabError::new(Span::default(), msg).code(), want, "{msg}");
        }
    }

    #[test]
    fn converts_to_diagnostic() {
        let d: Diagnostic =
            ElabError::new(Span { line: 1, col: 2 }, "unbound variable y").into();
        assert_eq!(d.code, Code::Unbound);
        assert!(d.to_string().contains("1:2"));
    }
}
