//! Elaboration errors with source positions.

use std::fmt;
use ur_syntax::{Code, Diagnostic, Span};

/// An error produced during elaboration or constraint solving.
#[derive(Clone, Debug)]
pub struct ElabError {
    pub span: Span,
    pub message: String,
    /// Stable diagnostic code; classified from the message if not set
    /// explicitly.
    pub code: Option<Code>,
}

impl ElabError {
    pub fn new(span: Span, message: impl Into<String>) -> ElabError {
        ElabError {
            span,
            message: message.into(),
            code: None,
        }
    }

    /// Tags this error with an explicit diagnostic code.
    pub fn with_code(mut self, code: Code) -> ElabError {
        self.code = Some(code);
        self
    }

    /// The diagnostic code: the explicit tag if set, otherwise classified
    /// from the message text.
    pub fn code(&self) -> Code {
        self.code.unwrap_or_else(|| classify(&self.message))
    }
}

/// Best-effort classification of a legacy message-only error into the
/// stable code scheme (see [`ur_syntax::diag`]).
fn classify(message: &str) -> Code {
    if message.contains("resource limit exhausted") {
        Code::ResourceExhausted
    } else if message.contains("unbound") {
        Code::Unbound
    } else if message.contains("share a field name") || message.contains("disjoint") {
        Code::Disjoint
    } else if message.contains("could not infer")
        || message.contains("unsolved constraint")
        || message.contains("undetermined part")
    {
        Code::Unresolved
    } else if message.contains("kind") {
        Code::Kind
    } else if message.starts_with("expected ") || message.contains("nesting too deep") {
        Code::Parse
    } else {
        Code::TypeMismatch
    }
}

/// Renumbers metavariable numerals (`?3`, `?k17`) in a message by first
/// appearance, so the same error renders identically regardless of how
/// many metavariables the context happened to allocate earlier.
///
/// Metavariable indices are per-`MetaCx` allocation order, which depends
/// on elaboration *schedule* — the one piece of diagnostic text that
/// would otherwise differ between sequential and parallel runs of the
/// same program. Everything else in a message (symbols display by name
/// only, types are zonked) is schedule-independent.
pub(crate) fn canon_meta_numerals(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    let mut con_ids: Vec<String> = Vec::new();
    let mut kind_ids: Vec<String> = Vec::new();
    let bytes = msg.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'?' {
            let mut j = i + 1;
            let is_kind = bytes.get(j) == Some(&b'k')
                && bytes.get(j + 1).is_some_and(u8::is_ascii_digit);
            if is_kind {
                j += 1;
            }
            let digits_start = j;
            while bytes.get(j).is_some_and(u8::is_ascii_digit) {
                j += 1;
            }
            if j > digits_start {
                let numeral = &msg[digits_start..j];
                let ids = if is_kind { &mut kind_ids } else { &mut con_ids };
                let canon = match ids.iter().position(|n| n == numeral) {
                    Some(p) => p,
                    None => {
                        ids.push(numeral.to_string());
                        ids.len() - 1
                    }
                };
                out.push('?');
                if is_kind {
                    out.push('k');
                }
                out.push_str(&canon.to_string());
                i = j;
                continue;
            }
        }
        // Advance over one whole UTF-8 scalar, not one byte.
        let ch_len = msg[i..].chars().next().map_or(1, char::len_utf8);
        out.push_str(&msg[i..i + ch_len]);
        i += ch_len;
    }
    out
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ElabError {}

impl From<ElabError> for Diagnostic {
    fn from(e: ElabError) -> Self {
        let code = e.code();
        Diagnostic::new(e.span, code, canon_meta_numerals(&e.message))
    }
}

/// Result alias used throughout the elaborator.
pub type EResult<T> = Result<T, ElabError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ElabError::new(Span { line: 4, col: 7 }, "boom");
        assert_eq!(e.to_string(), "error at 4:7: boom");
    }

    #[test]
    fn explicit_code_wins() {
        let e = ElabError::new(Span::default(), "anything")
            .with_code(Code::ResourceExhausted);
        assert_eq!(e.code(), Code::ResourceExhausted);
    }

    #[test]
    fn classification_covers_common_messages() {
        let cases = [
            ("resource limit exhausted: recursion depth", Code::ResourceExhausted),
            ("unbound variable x", Code::Unbound),
            ("rows [A] and [A] share a field name", Code::Disjoint),
            ("could not infer ?t", Code::Unresolved),
            ("cannot unify kind Type with Name", Code::Kind),
            ("cannot unify int with string", Code::TypeMismatch),
        ];
        for (msg, want) in cases {
            assert_eq!(ElabError::new(Span::default(), msg).code(), want, "{msg}");
        }
    }

    #[test]
    fn converts_to_diagnostic() {
        let d: Diagnostic =
            ElabError::new(Span { line: 1, col: 2 }, "unbound variable y").into();
        assert_eq!(d.code, Code::Unbound);
        assert!(d.to_string().contains("1:2"));
    }

    #[test]
    fn meta_numerals_canonicalize_by_first_appearance() {
        assert_eq!(
            canon_meta_numerals("unsolved constraint: ?17 = ?5 -> ?17"),
            "unsolved constraint: ?0 = ?1 -> ?0"
        );
        // Kind metas get their own counter; already-canonical text is a
        // fixed point.
        assert_eq!(
            canon_meta_numerals("?k9 vs ?9 vs ?k9"),
            "?k0 vs ?0 vs ?k0"
        );
        assert_eq!(canon_meta_numerals("?0 = ?1"), "?0 = ?1");
        // A bare '?' (no digits) passes through untouched.
        assert_eq!(canon_meta_numerals("what? nothing"), "what? nothing");
    }

    #[test]
    fn diagnostic_conversion_canonicalizes_metas() {
        let d: Diagnostic =
            ElabError::new(Span::default(), "could not infer ?42").into();
        assert_eq!(d.message, "could not infer ?0");
    }
}
