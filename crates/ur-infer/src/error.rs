//! Elaboration errors with source positions.

use std::fmt;
use ur_syntax::Span;

/// An error produced during elaboration or constraint solving.
#[derive(Clone, Debug)]
pub struct ElabError {
    pub span: Span,
    pub message: String,
}

impl ElabError {
    pub fn new(span: Span, message: impl Into<String>) -> ElabError {
        ElabError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ElabError {}

/// Result alias used throughout the elaborator.
pub type EResult<T> = Result<T, ElabError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ElabError::new(Span { line: 4, col: 7 }, "boom");
        assert_eq!(e.to_string(), "error at 4:7: boom");
    }
}
