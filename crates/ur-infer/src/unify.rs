//! Unification of kinds and constructors (paper §4.2–4.3).
//!
//! The overall strategy follows the paper:
//!
//! * constructors are reduced only to *head normal form*, and head normal
//!   forms are compared structurally, recursing into subterms (§4);
//! * when a row operator appears at the head, a special **row
//!   unification** procedure takes over (§4.3): both sides are summarized
//!   into canonical multisets (fields, metavariables, miscellaneous
//!   neutral components), matching components are crossed off, and a
//!   handful of endgame rules solve the remaining metavariables;
//! * problems of the form `map f ?a = c` are solved by
//!   **reverse-engineering unification** (§4.2): the shape of `c` dictates
//!   a skeleton for `?a`, and the mapped function is unified against each
//!   field value;
//! * anything still undetermined is *postponed*, to be retried after other
//!   constraints have solved more metavariables (§4).
//!
//! Unification is destructive (solutions are written into the
//! [`MetaCx`](ur_core::meta::MetaCx)); per the paper this is a heuristic,
//! best-effort engine with no completeness claim.

use ur_core::con::{Con, MetaId, RCon};
use ur_core::defeq::defeq;
use ur_core::env::Env;
use ur_core::hnf::{hnf, is_row_shaped};
use ur_core::kind::Kind;
use ur_core::row::{normalize_row, FieldKey, RowAtom};
use ur_core::subst::subst;
use ur_core::Cx;

/// Outcome of a unification attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum Unify {
    /// The equation holds (possibly after solving metavariables).
    Solved,
    /// Cannot be decided yet; retry after more metavariables are solved.
    Postpone,
    /// Definitely unsolvable.
    Fail(String),
}

impl Unify {
    fn and(self, other: impl FnOnce() -> Unify) -> Unify {
        match self {
            Unify::Solved => other(),
            Unify::Postpone => match other() {
                Unify::Fail(e) => Unify::Fail(e),
                _ => Unify::Postpone,
            },
            fail => fail,
        }
    }
}

/// First-order kind unification.
///
/// # Errors
///
/// Returns a human-readable message when the kinds cannot be unified.
pub fn unify_kind(cx: &mut Cx, k1: &Kind, k2: &Kind) -> Result<(), String> {
    let k1 = cx.metas.resolve_kind(k1);
    let k2 = cx.metas.resolve_kind(k2);
    match (&k1, &k2) {
        (Kind::Type, Kind::Type) | (Kind::Name, Kind::Name) => Ok(()),
        (Kind::Meta(a), Kind::Meta(b)) if a == b => Ok(()),
        (Kind::Meta(a), _) => {
            if kind_occurs(cx, *a, &k2) {
                Err(format!("kind occurs check failed: {k1} in {k2}"))
            } else {
                cx.metas.solve_kind(*a, k2);
                Ok(())
            }
        }
        (_, Kind::Meta(b)) => {
            if kind_occurs(cx, *b, &k1) {
                Err(format!("kind occurs check failed: {k2} in {k1}"))
            } else {
                cx.metas.solve_kind(*b, k1);
                Ok(())
            }
        }
        (Kind::Arrow(a1, b1), Kind::Arrow(a2, b2))
        | (Kind::Pair(a1, b1), Kind::Pair(a2, b2)) => {
            unify_kind(cx, a1, a2)?;
            unify_kind(cx, b1, b2)
        }
        (Kind::Row(a), Kind::Row(b)) => unify_kind(cx, a, b),
        _ => Err(format!("cannot unify kind {k1} with {k2}")),
    }
}

fn kind_occurs(cx: &Cx, id: ur_core::kind::KMetaId, k: &Kind) -> bool {
    match cx.metas.resolve_kind(k) {
        Kind::Meta(m) => m == id,
        Kind::Arrow(a, b) | Kind::Pair(a, b) => {
            kind_occurs(cx, id, &a) || kind_occurs(cx, id, &b)
        }
        Kind::Row(a) => kind_occurs(cx, id, &a),
        Kind::Type | Kind::Name => false,
    }
}

/// Unifies two constructors in context `env`.
///
/// Fuel-bounded: each recursive unification step charges one level of
/// depth budget. On exhaustion the problem degrades to
/// [`Unify::Postpone`] — sound (nothing is solved) and reported by the
/// elaborator as a resource diagnostic instead of a stack overflow.
pub fn unify(env: &Env, cx: &mut Cx, c1: &RCon, c2: &RCon) -> Unify {
    if !cx.fuel.descend() {
        return Unify::Postpone;
    }
    let out = unify_inner(env, cx, c1, c2);
    cx.fuel.ascend();
    out
}

fn unify_inner(env: &Env, cx: &mut Cx, c1: &RCon, c2: &RCon) -> Unify {
    cx.stats.unify_calls += 1;
    // Hash-consing makes pointer identity a complete syntactic-equality
    // test, so identical handles solve without normalizing at all.
    if c1 == c2 {
        return Unify::Solved;
    }
    let c1 = hnf(env, cx, c1);
    let c2 = hnf(env, cx, c2);
    if c1 == c2 {
        return Unify::Solved;
    }

    // Row operators at the head: switch to row unification (§4.3).
    if is_row_shaped(env, cx, &c1) || is_row_shaped(env, cx, &c2) {
        return row_unify(env, cx, &c1, &c2);
    }

    // `folder r` against a polymorphic type: unfold the folder definition.
    if matches!(&*c2, Con::Poly(_, _, _)) {
        if let Some((k, r)) = ur_core::folder::as_folder_app(&c1) {
            let k = cx.metas.zonk_kind(&k);
            let unfolded = ur_core::folder::unfold_folder(&k, &r);
            return unify(env, cx, &unfolded, &c2);
        }
    }
    if matches!(&*c1, Con::Poly(_, _, _)) {
        if let Some((k, r)) = ur_core::folder::as_folder_app(&c2) {
            let k = cx.metas.zonk_kind(&k);
            let unfolded = ur_core::folder::unfold_folder(&k, &r);
            return unify(env, cx, &c1, &unfolded);
        }
    }

    match (&*c1, &*c2) {
        (Con::Meta(a), Con::Meta(b)) if a == b => Unify::Solved,
        (Con::Meta(m), _) => solve_meta(env, cx, *m, &c2),
        (_, Con::Meta(m)) => solve_meta(env, cx, *m, &c1),
        (Con::Var(a), Con::Var(b)) => {
            if a == b {
                Unify::Solved
            } else {
                Unify::Fail(format!("constructor variables {a} and {b} differ"))
            }
        }
        (Con::Prim(a), Con::Prim(b)) => {
            if a == b {
                Unify::Solved
            } else {
                Unify::Fail(format!("types {a} and {b} differ"))
            }
        }
        (Con::Name(a), Con::Name(b)) => {
            if a == b {
                Unify::Solved
            } else {
                Unify::Fail(format!("field names #{a} and #{b} differ"))
            }
        }
        (Con::Arrow(a1, b1), Con::Arrow(a2, b2)) => {
            unify(env, cx, a1, a2).and(|| unify(env, cx, b1, b2))
        }
        (Con::Poly(s1, k1, t1), Con::Poly(s2, k2, t2)) => {
            if let Err(e) = unify_kind(cx, k1, k2) {
                return Unify::Fail(e);
            }
            let fresh = s1.rename();
            let mut env2 = env.clone();
            env2.bind_con(fresh, cx.metas.zonk_kind(k1));
            let v = Con::var(&fresh);
            let b1 = subst(t1, s1, &v);
            let b2 = subst(t2, s2, &v);
            unify(&env2, cx, &b1, &b2)
        }
        (Con::Lam(s1, k1, t1), Con::Lam(s2, k2, t2)) => {
            if let Err(e) = unify_kind(cx, k1, k2) {
                return Unify::Fail(e);
            }
            let fresh = s1.rename();
            let mut env2 = env.clone();
            env2.bind_con(fresh, cx.metas.zonk_kind(k1));
            let v = Con::var(&fresh);
            let b1 = subst(t1, s1, &v);
            let b2 = subst(t2, s2, &v);
            unify(&env2, cx, &b1, &b2)
        }
        // One-sided eta.
        (Con::Lam(s, k, body), _) => eta_unify(env, cx, s, k, body, &c2),
        (_, Con::Lam(s, k, body)) => eta_unify(env, cx, s, k, body, &c1),
        (Con::Guarded(a1, b1, t1), Con::Guarded(a2, b2, t2)) => unify(env, cx, a1, a2)
            .and(|| unify(env, cx, b1, b2))
            .and(|| unify(env, cx, t1, t2)),
        (Con::Record(r1), Con::Record(r2)) => row_unify(env, cx, r1, r2),
        (Con::Map(k1a, k2a), Con::Map(k1b, k2b)) => {
            match unify_kind(cx, k1a, k1b).and_then(|_| unify_kind(cx, k2a, k2b)) {
                Ok(()) => Unify::Solved,
                Err(e) => Unify::Fail(e),
            }
        }
        (Con::Folder(k1), Con::Folder(k2)) => match unify_kind(cx, k1, k2) {
            Ok(()) => Unify::Solved,
            Err(e) => Unify::Fail(e),
        },
        (Con::Pair(a1, b1), Con::Pair(a2, b2)) => {
            unify(env, cx, a1, a2).and(|| unify(env, cx, b1, b2))
        }
        (Con::Fst(a), Con::Fst(b)) | (Con::Snd(a), Con::Snd(b)) => unify(env, cx, a, b),
        // A projection stuck on a metavariable: expand the metavariable to
        // a pair of fresh metavariables and retry (needed for the §2.2
        // toDb inference, where `fst ?p -> snd ?p = int -> int`).
        (Con::Fst(p), _) | (Con::Snd(p), _) => {
            if pair_expand(env, cx, p) {
                unify(env, cx, &c1, &c2)
            } else {
                Unify::Postpone
            }
        }
        (_, Con::Fst(p)) | (_, Con::Snd(p)) => {
            if pair_expand(env, cx, p) {
                unify(env, cx, &c1, &c2)
            } else {
                Unify::Postpone
            }
        }
        (Con::App(_, _), Con::App(_, _)) => {
            let (h1, args1) = c1.spine();
            let (h2, args2) = c2.spine();
            let h1 = hnf(env, cx, &h1);
            let h2 = hnf(env, cx, &h2);
            // A metavariable in head position is a higher-order problem;
            // per the paper we make no attempt beyond first-order matching.
            if h1.is_meta() || h2.is_meta() {
                return Unify::Postpone;
            }
            if args1.len() != args2.len() {
                return Unify::Postpone;
            }
            let mut out = unify(env, cx, &h1, &h2);
            for (a1, a2) in args1.iter().zip(args2.iter()) {
                out = out.and(|| unify(env, cx, a1, a2));
            }
            out
        }
        // An application headed by a metavariable against a non-application.
        (Con::App(_, _), _) | (_, Con::App(_, _)) => {
            let (h1, _) = c1.spine();
            let (h2, _) = c2.spine();
            if hnf(env, cx, &h1).is_meta() || hnf(env, cx, &h2).is_meta() {
                Unify::Postpone
            } else {
                Unify::Fail(format!("cannot unify {c1} with {c2}"))
            }
        }
        _ => Unify::Fail(format!("cannot unify {c1} with {c2}")),
    }
}

fn eta_unify(
    env: &Env,
    cx: &mut Cx,
    s: &ur_core::sym::Sym,
    k: &Kind,
    body: &RCon,
    other: &RCon,
) -> Unify {
    if other.is_meta() {
        // Solving a metavariable to a lambda is fine; retried by callers.
        if let Con::Meta(m) = &**other {
            let lam = Con::lam(*s, k.clone(), *body);
            return solve_meta(env, cx, *m, &lam);
        }
    }
    let fresh = s.rename();
    let mut env2 = env.clone();
    env2.bind_con(fresh, cx.metas.zonk_kind(k));
    let v = Con::var(&fresh);
    let b = subst(body, s, &v);
    let expanded = Con::app(*other, v);
    unify(&env2, cx, &b, &expanded)
}

/// If `p` head-normalizes to a metavariable of pair kind, solves it to a
/// pair of fresh metavariables. Returns whether any solving happened.
fn pair_expand(env: &Env, cx: &mut Cx, p: &RCon) -> bool {
    let p = hnf(env, cx, p);
    let Con::Meta(m) = &*p else { return false };
    let kind = cx.metas.resolve_kind(&cx.metas.kind_of(*m).clone());
    let Kind::Pair(ka, kb) = kind else { return false };
    let a = cx.metas.fresh_con((*ka).clone(), "pair component");
    let b = cx.metas.fresh_con((*kb).clone(), "pair component");
    cx.metas.solve(*m, Con::pair(a, b));
    true
}

/// Solves metavariable `m := c`, with occurs check.
fn solve_meta(env: &Env, cx: &mut Cx, m: MetaId, c: &RCon) -> Unify {
    let _ = env;
    let c = cx.metas.zonk(c);
    if cx.metas.occurs(m, &c) {
        return Unify::Fail(format!(
            "occurs check: ?{} would be cyclic in {c}",
            m.0
        ));
    }
    cx.metas.solve(m, c);
    Unify::Solved
}

/// Builds a row constructor from leftover fields and atoms at element kind
/// `k`, preserving field order.
fn rebuild_row(k: &Kind, fields: &[(FieldKey, RCon)], atoms: &[RowAtom]) -> RCon {
    let mut parts: Vec<RCon> = Vec::new();
    for (key, v) in fields {
        parts.push(Con::row_one(key.to_con(), *v));
    }
    for atom in atoms {
        parts.push(atom.to_con(k));
    }
    let mut it = parts.into_iter();
    match it.next() {
        None => Con::row_nil(k.clone()),
        Some(first) => it.fold(first, Con::row_cat),
    }
}

/// Row unification (§4.3), on canonical summaries.
#[allow(clippy::needless_range_loop)] // index used for paired removal
pub fn row_unify(env: &Env, cx: &mut Cx, r1: &RCon, r2: &RCon) -> Unify {
    let n1 = normalize_row(env, cx, r1);
    let n2 = normalize_row(env, cx, r2);
    let k = n1
        .elem_kind
        .clone()
        .or(n2.elem_kind.clone())
        .unwrap_or(Kind::Type);

    // Work in source order so that metavariable solutions preserve the
    // order fields were written — §4.4 relies on this for folder
    // generation.
    let mut f1 = n1.source_fields.clone();
    let mut f2 = n2.source_fields.clone();
    let mut a1 = n1.atoms.clone();
    let mut a2 = n2.atoms.clone();

    // 1. Cross off matching fields, unifying their values.
    let mut i = 0;
    let mut pending_values = false;
    while i < f1.len() {
        let mut matched = None;
        for j in 0..f2.len() {
            let keys_match = match (&f1[i].0, &f2[j].0) {
                (FieldKey::Lit(a), FieldKey::Lit(b)) => ur_core::intern::names_eq(a, b),
                (FieldKey::Neutral(a), FieldKey::Neutral(b)) => {
                    let (a, b) = ((*a), (*b));
                    defeq(env, cx, &a, &b)
                }
                _ => false,
            };
            if keys_match {
                matched = Some(j);
                break;
            }
        }
        match matched {
            Some(j) => {
                let v1 = f1[i].1;
                let v2 = f2[j].1;
                match unify(env, cx, &v1, &v2) {
                    Unify::Solved => {}
                    Unify::Postpone => pending_values = true,
                    fail @ Unify::Fail(_) => return fail,
                }
                f1.remove(i);
                f2.remove(j);
            }
            None => i += 1,
        }
    }
    if pending_values {
        return Unify::Postpone;
    }

    // 2. Cross off matching atoms.
    let mut i = 0;
    while i < a1.len() {
        let mut matched = None;
        for j in 0..a2.len() {
            let (b1, b2) = (a1[i].base, a2[j].base);
            if !defeq(env, cx, &b1, &b2) {
                continue;
            }
            let maps_eq = match (&a1[i].map, &a2[j].map) {
                (None, None) => true,
                (Some((g1, _)), Some((g2, _))) => {
                    let (g1, g2) = ((*g1), (*g2));
                    defeq(env, cx, &g1, &g2)
                }
                _ => false,
            };
            if maps_eq {
                matched = Some(j);
                break;
            }
        }
        match matched {
            Some(j) => {
                a1.remove(i);
                a2.remove(j);
            }
            None => i += 1,
        }
    }

    // 3. Endgame rules.
    if f1.is_empty() && a1.is_empty() && f2.is_empty() && a2.is_empty() {
        return Unify::Solved;
    }

    // A single bare metavariable on one side takes the whole other side.
    if let Some(m) = bare_meta(&f1, &a1) {
        return solve_meta(env, cx, m, &rebuild_row(&k, &f2, &a2));
    }
    if let Some(m) = bare_meta(&f2, &a2) {
        return solve_meta(env, cx, m, &rebuild_row(&k, &f1, &a1));
    }

    // fields1 ++ ?m1  =  fields2 ++ ?m2   (distinct metas, no other atoms):
    // introduce a shared remainder.
    if let (Some(m1), Some(m2)) = (tail_meta(&a1), tail_meta(&a2)) {
        if m1 != m2
            && a1.len() == 1
            && a2.len() == 1
            && all_lit(&f1)
            && all_lit(&f2)
        {
            let gamma = cx.metas.fresh_con(Kind::row(k.clone()), "row remainder");
            let sol1 = if f2.is_empty() {
                gamma
            } else {
                Con::row_cat(rebuild_row(&k, &f2, &[]), gamma)
            };
            let sol2 = if f1.is_empty() {
                gamma
            } else {
                Con::row_cat(rebuild_row(&k, &f1, &[]), gamma)
            };
            let out = solve_meta(env, cx, m1, &sol1);
            return out.and(|| solve_meta(env, cx, m2, &sol2));
        }
    }

    // Reverse-engineering (§4.2): map f ?m  =  ground fields.
    if f1.is_empty() && a1.len() == 1 && a2.is_empty() {
        if let Some(out) = try_reverse(env, cx, &a1[0], &f2) {
            return out;
        }
    }
    if f2.is_empty() && a2.len() == 1 && a1.is_empty() {
        if let Some(out) = try_reverse(env, cx, &a2[0], &f1) {
            return out;
        }
    }

    // map f ?m  =  map f ?m2 (+ nothing else): unify the bases.
    if f1.is_empty() && f2.is_empty() && a1.len() == 1 && a2.len() == 1 {
        if let (Some((g1, _)), Some((g2, _))) = (&a1[0].map, &a2[0].map) {
            let (g1, g2) = ((*g1), (*g2));
            if defeq(env, cx, &g1, &g2) {
                let (b1, b2) = (a1[0].base, a2[0].base);
                return unify(env, cx, &b1, &b2);
            }
        }
    }

    // Definitely stuck with no metavariables anywhere: fail.
    let any_meta = a1.iter().any(|a| a.base_meta().is_some())
        || a2.iter().any(|a| a.base_meta().is_some())
        || !all_lit(&f1)
        || !all_lit(&f2);
    if !any_meta && (a1.is_empty() && a2.is_empty()) {
        return Unify::Fail(format!(
            "rows do not match: leftover fields {} vs {}",
            rebuild_row(&k, &f1, &a1),
            rebuild_row(&k, &f2, &a2)
        ));
    }

    Unify::Postpone
}

/// If the component lists are exactly one unmapped metavariable, return it.
fn bare_meta(fields: &[(FieldKey, RCon)], atoms: &[RowAtom]) -> Option<MetaId> {
    if fields.is_empty() && atoms.len() == 1 && atoms[0].map.is_none() {
        atoms[0].base_meta()
    } else {
        None
    }
}

/// The metavariable of a single unmapped atom, if any.
fn tail_meta(atoms: &[RowAtom]) -> Option<MetaId> {
    if atoms.len() == 1 && atoms[0].map.is_none() {
        atoms[0].base_meta()
    } else {
        None
    }
}

fn all_lit(fields: &[(FieldKey, RCon)]) -> bool {
    fields.iter().all(|(k, _)| matches!(k, FieldKey::Lit(_)))
}

/// Reverse-engineering unification: `map f ?m = [k1 = v1, ...]`.
/// Chooses `?m := [k1 = ?a1, ...]` and unifies `f ?ai` with `vi`.
fn try_reverse(
    env: &Env,
    cx: &mut Cx,
    atom: &RowAtom,
    ground: &[(FieldKey, RCon)],
) -> Option<Unify> {
    let (f, dom) = atom.map.as_ref()?;
    let m = atom.base_meta()?;
    let mut skeleton = Vec::new();
    let mut elems = Vec::new();
    for (key, v) in ground {
        let a = cx.metas.fresh_con(dom.clone(), "reverse-engineered element");
        skeleton.push((key.clone(), a));
        elems.push((a, (*v)));
    }
    let sol = rebuild_row(dom, &skeleton, &[]);
    match solve_meta(env, cx, m, &sol) {
        Unify::Solved => {}
        other => return Some(other),
    }
    cx.stats.reverse_engineered += 1;
    let mut out = Unify::Solved;
    for (a, v) in elems {
        let applied = Con::app(*f, a);
        out = out.and(|| unify(env, cx, &applied, &v));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ur_core::sym::Sym;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    fn lit_row(fields: &[(&str, RCon)]) -> RCon {
        Con::row_of(
            Kind::Type,
            fields
                .iter()
                .map(|(n, c)| (Con::name(*n), (*c)))
                .collect(),
        )
    }

    #[test]
    fn unify_prims() {
        let (env, mut cx) = setup();
        assert_eq!(unify(&env, &mut cx, &Con::int(), &Con::int()), Unify::Solved);
        assert!(matches!(
            unify(&env, &mut cx, &Con::int(), &Con::float()),
            Unify::Fail(_)
        ));
    }

    #[test]
    fn solve_simple_meta() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh_con(Kind::Type, "t");
        assert_eq!(unify(&env, &mut cx, &m, &Con::int()), Unify::Solved);
        let z = cx.metas.zonk(&m);
        assert!(matches!(&*z, Con::Prim(ur_core::con::PrimType::Int)));
    }

    #[test]
    fn occurs_check_fails() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh_con(Kind::Type, "t");
        let arrow = Con::arrow(m, Con::int());
        assert!(matches!(
            unify(&env, &mut cx, &m, &arrow),
            Unify::Fail(_)
        ));
    }

    #[test]
    fn row_meta_takes_whole_row() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh_con(Kind::row(Kind::Type), "r");
        let row = lit_row(&[("A", Con::int()), ("B", Con::float())]);
        assert_eq!(unify(&env, &mut cx, &m, &row), Unify::Solved);
        let z = cx.metas.zonk(&m);
        assert!(defeq(&env, &mut cx, &z, &row));
    }

    #[test]
    fn row_field_cancellation_solves_value_metas() {
        // [A = ?t] ++ ?r  =  [A = int, B = float]
        let (env, mut cx) = setup();
        let t = cx.metas.fresh_con(Kind::Type, "t");
        let r = cx.metas.fresh_con(Kind::row(Kind::Type), "r");
        let left = Con::row_cat(Con::row_one(Con::name("A"), t), r);
        let right = lit_row(&[("A", Con::int()), ("B", Con::float())]);
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        assert!(matches!(
            &*cx.metas.zonk(&t),
            Con::Prim(ur_core::con::PrimType::Int)
        ));
        let zr = cx.metas.zonk(&r);
        let expected = lit_row(&[("B", Con::float())]);
        assert!(defeq(&env, &mut cx, &zr, &expected));
    }

    #[test]
    fn row_mismatched_closed_rows_fail() {
        let (env, mut cx) = setup();
        let r1 = lit_row(&[("A", Con::int())]);
        let r2 = lit_row(&[("B", Con::int())]);
        assert!(matches!(unify(&env, &mut cx, &r1, &r2), Unify::Fail(_)));
    }

    #[test]
    fn row_value_type_conflict_fails() {
        let (env, mut cx) = setup();
        let r1 = lit_row(&[("A", Con::int())]);
        let r2 = lit_row(&[("A", Con::float())]);
        assert!(matches!(unify(&env, &mut cx, &r1, &r2), Unify::Fail(_)));
    }

    #[test]
    fn two_tail_metas_share_remainder() {
        // [A = int] ++ ?m1  =  [B = float] ++ ?m2
        let (env, mut cx) = setup();
        let m1 = cx.metas.fresh_con(Kind::row(Kind::Type), "m1");
        let m2 = cx.metas.fresh_con(Kind::row(Kind::Type), "m2");
        let left = Con::row_cat(lit_row(&[("A", Con::int())]), m1);
        let right = Con::row_cat(lit_row(&[("B", Con::float())]), m2);
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        // Now both sides should be definitionally equal.
        assert!(defeq(&env, &mut cx, &left, &right));
    }

    #[test]
    fn reverse_engineering_simple() {
        // map (fn a => a -> a) ?r  =  [A = int -> int]  ==>  ?r = [A = int]
        let (env, mut cx) = setup();
        let r = cx.metas.fresh_con(Kind::row(Kind::Type), "r");
        let a = Sym::fresh("a");
        let f = Con::lam(
            a,
            Kind::Type,
            Con::arrow(Con::var(&a), Con::var(&a)),
        );
        let left = Con::map_app(Kind::Type, Kind::Type, f, r);
        let right = lit_row(&[("A", Con::arrow(Con::int(), Con::int()))]);
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        assert!(cx.stats.reverse_engineered >= 1);
        let zr = cx.metas.zonk(&r);
        let expected = lit_row(&[("A", Con::int())]);
        assert!(defeq(&env, &mut cx, &zr, &expected));
    }

    #[test]
    fn reverse_engineering_through_definition() {
        // The paper's mkTable inference: $(map meta ?r) = {A : {...int...}}.
        // type meta t = {Label : string, Show : t -> string}
        let (mut env, mut cx) = setup();
        let t = Sym::fresh("t");
        let meta_def = Con::lam(
            t,
            Kind::Type,
            Con::record(Con::row_of(
                Kind::Type,
                vec![
                    (Con::name("Label"), Con::string()),
                    (
                        Con::name("Show"),
                        Con::arrow(Con::var(&t), Con::string()),
                    ),
                ],
            )),
        );
        let meta_sym = Sym::fresh("meta");
        env.define_con(
            meta_sym,
            Kind::arrow(Kind::Type, Kind::Type),
            meta_def,
        );

        let r = cx.metas.fresh_con(Kind::row(Kind::Type), "r");
        let left = Con::record(Con::map_app(
            Kind::Type,
            Kind::Type,
            Con::var(&meta_sym),
            r,
        ));
        // {A : meta int, B : meta float} fully unfolded:
        let meta_at = |ty: RCon| {
            Con::record(Con::row_of(
                Kind::Type,
                vec![
                    (Con::name("Label"), Con::string()),
                    (Con::name("Show"), Con::arrow(ty, Con::string())),
                ],
            ))
        };
        let right = Con::record(lit_row(&[
            ("A", meta_at(Con::int())),
            ("B", meta_at(Con::float())),
        ]));
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        let zr = cx.metas.zonk(&r);
        let expected = lit_row(&[("A", Con::int()), ("B", Con::float())]);
        assert!(defeq(&env, &mut cx, &zr, &expected));
    }

    #[test]
    fn reverse_engineering_preserves_source_order() {
        // map f ?r = [B = ..., A = ...] written in that order: the solution
        // for ?r must keep B before A (drives folder generation, §4.4).
        let (env, mut cx) = setup();
        let r = cx.metas.fresh_con(Kind::row(Kind::Type), "r");
        let a = Sym::fresh("a");
        let f = Con::lam(
            a,
            Kind::Type,
            Con::arrow(Con::var(&a), Con::var(&a)),
        );
        let left = Con::map_app(Kind::Type, Kind::Type, f, r);
        let right = lit_row(&[
            ("B", Con::arrow(Con::float(), Con::float())),
            ("A", Con::arrow(Con::int(), Con::int())),
        ]);
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        let zr = cx.metas.zonk(&r);
        let nf = normalize_row(&env, &mut cx, &zr);
        let order: Vec<String> = nf
            .source_fields
            .iter()
            .map(|(k, _)| k.canon())
            .collect();
        assert_eq!(order, vec!["#B".to_string(), "#A".to_string()]);
    }

    #[test]
    fn neutral_key_fields_unify() {
        // [nm = ?t] = [nm = int] under a bound name variable nm.
        let (mut env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        env.bind_con(nm, Kind::Name);
        let t = cx.metas.fresh_con(Kind::Type, "t");
        let left = Con::row_one(Con::var(&nm), t);
        let right = Con::row_one(Con::var(&nm), Con::int());
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        assert!(matches!(
            &*cx.metas.zonk(&t),
            Con::Prim(ur_core::con::PrimType::Int)
        ));
    }

    #[test]
    fn rigid_head_applications_unify_pointwise() {
        let (mut env, mut cx) = setup();
        let tf = Sym::fresh("tf");
        env.bind_con(tf, Kind::arrow(Kind::row(Kind::Type), Kind::Type));
        let m = cx.metas.fresh_con(Kind::row(Kind::Type), "r");
        let left = Con::app(Con::var(&tf), m);
        let right = Con::app(Con::var(&tf), lit_row(&[("A", Con::int())]));
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        let z = cx.metas.zonk(&m);
        assert!(defeq(&env, &mut cx, &z, &lit_row(&[("A", Con::int())])));
    }

    #[test]
    fn meta_headed_application_postpones() {
        let (env, mut cx) = setup();
        let f = cx.metas.fresh_con(Kind::arrow(Kind::Type, Kind::Type), "f");
        let left = Con::app(f, Con::int());
        assert_eq!(
            unify(&env, &mut cx, &left, &Con::string()),
            Unify::Postpone
        );
    }

    #[test]
    fn kind_unification() {
        let mut cx = Cx::new();
        let k = cx.metas.fresh_kind();
        assert!(unify_kind(&mut cx, &k, &Kind::row(Kind::Type)).is_ok());
        assert_eq!(cx.metas.resolve_kind(&k), Kind::row(Kind::Type));
        assert!(unify_kind(&mut cx, &Kind::Type, &Kind::Name).is_err());
    }

    #[test]
    fn kind_occurs_check() {
        let mut cx = Cx::new();
        let k = cx.metas.fresh_kind();
        let arrow = Kind::arrow(k.clone(), Kind::Type);
        assert!(unify_kind(&mut cx, &k, &arrow).is_err());
    }

    #[test]
    fn fusion_corollary_unifies() {
        // $(map (fn p => exp [] p.2) ?r) vs $(map (exp []) (map snd ?r)):
        // with ?r shared this is the §2.2 implicit equality.
        let (mut env, mut cx) = setup();
        let exp = Sym::fresh("exp");
        env.bind_con(
            exp,
            Kind::arrow(Kind::row(Kind::Type), Kind::arrow(Kind::Type, Kind::Type)),
        );
        let pair_k = Kind::pair(Kind::Type, Kind::Type);
        let r = Sym::fresh("r");
        env.bind_con(r, Kind::row(pair_k.clone()));
        let exp_nil = Con::app(Con::var(&exp), Con::row_nil(Kind::Type));
        let p = Sym::fresh("p");
        let lam = Con::lam(
            p,
            pair_k.clone(),
            Con::app(exp_nil, Con::snd(Con::var(&p))),
        );
        let left = Con::record(Con::map_app(pair_k.clone(), Kind::Type, lam, Con::var(&r)));
        let q = Sym::fresh("q");
        let snd_fn = Con::lam(q, pair_k.clone(), Con::snd(Con::var(&q)));
        let inner = Con::map_app(pair_k.clone(), Kind::Type, snd_fn, Con::var(&r));
        let right = Con::record(Con::map_app(Kind::Type, Kind::Type, exp_nil, inner));
        assert_eq!(unify(&env, &mut cx, &left, &right), Unify::Solved);
        assert!(cx.stats.law_map_fusion >= 1);
    }
}
