//! Parallel dependency-aware batch elaboration.
//!
//! The elaborator's per-declaration judgments are independent once
//! cross-declaration references are known, so a batch of top-level
//! declarations can be fanned out to worker threads:
//!
//! 1. **Dependency graph** ([`DepGraph::build`]): a binder-aware free-name
//!    pass over the surface AST. Declaration `i` depends on *every*
//!    earlier declaration that binds one of `i`'s free names — all of
//!    them, not just the latest, because sequential error recovery falls
//!    back to the previous binder when the latest one failed to
//!    elaborate, and the parallel result must be identical.
//! 2. **Scheduler** ([`run_parallel`]): a Kahn-style topological scheduler
//!    dispatches ready declarations (lowest source index first) to a
//!    fixed pool of `std::thread` workers. All workers share the global
//!    intern arena (`ur_core::arena`), so terms are `Copy + Send` ids:
//!    per task a worker clones the base environment snapshot and installs
//!    the transitive dependency closure's outcomes directly — no export,
//!    no re-interning, no portable mirror.
//! 3. **Deterministic merge**: the coordinator installs results in source
//!    order — never completion order — folding worker `Stats` and
//!    lifetime fuel in with saturating arithmetic, and span-sorting the
//!    combined diagnostics.
//!
//! Determinism guarantee: for any thread count, `elab_program_all_threads`
//! produces the same declarations (up to fresh symbol ids), the same
//! span-sorted diagnostics, and the same error recovery as the
//! sequential `elab_program_all`. Three invariants carry the proof:
//! every declaration starts on a fresh fuel budget in both modes; each
//! worker task sees exactly the environment its dependency closure
//! induces, installed in source index order; and metavariable numerals in
//! diagnostic messages are canonicalized by first appearance (allocation
//! order is the one schedule-dependent artifact; see
//! `error::canon_meta_numerals`).
//!
//! Graphs built from source are acyclic by construction (edges only point
//! to earlier declarations), but the scheduler is defensive: a cyclic
//! graph (constructible through [`DepGraph::from_edges`]) is rejected up
//! front with one E0700 diagnostic per cycle member instead of
//! deadlocking.

use crate::elab::{binop_name, sort_diags, ElabDecl, Elaborator, Entry};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Arc;
use ur_core::con::RCon;
use ur_core::env::Env;
use ur_core::failpoint::{self, FpConfig, FpCounters, Site};
use ur_core::kind::Kind;
use ur_core::limits::{Fuel, Limits};
use ur_core::stats::Stats;
use ur_core::sym::Sym;
use ur_core::LawConfig;
use ur_syntax::ast::{Program, SCon, SDecl, SExpr, SParam};
use ur_syntax::{Code, Diagnostic, Diagnostics};

/// Stack size for worker threads: matches the parser's dedicated thread
/// (deep elaboration recursion is fuel-bounded but still wants headroom).
const WORKER_STACK: usize = 16 * 1024 * 1024;

/// Maximum dispatches per declaration before the scheduler stops
/// retrying and leaves the declaration to the sequential fallback in the
/// merge loop. Three attempts ride out the default failpoint cap
/// (`FpConfig::max_per_site == 3` spread across the whole batch) while
/// bounding the work a genuinely cursed declaration can consume.
const MAX_TASK_ATTEMPTS: u32 = 3;

/// Sentinel task index for a worker's final counters-only flush message
/// (sent when its task channel closes, carrying failpoint counters that
/// earlier lost-send faults kept on the worker).
const FLUSH: usize = usize::MAX;

/// Watchdog base patience in milliseconds: how long the coordinator
/// waits for *any* worker result before declaring the batch stalled and
/// re-dispatching in-flight work. `UR_WATCHDOG_MS` overrides (chaos
/// tests shrink it to trip on injected stalls); the default is generous
/// because a spurious trip is only wasted work, never a wrong answer —
/// late results are deduplicated and requeued tasks re-elaborate to
/// identical outcomes.
fn watchdog_base_ms() -> u64 {
    std::env::var("UR_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(500, |n| n.max(1))
}

/// Patience escalation cap: watchdog waits double per consecutive trip,
/// up to `base << MAX_PATIENCE_SHIFT`, so a healthy-but-slow batch stops
/// tripping instead of thrashing on requeues.
const MAX_PATIENCE_SHIFT: u32 = 6;

/// The default worker count: the `UR_TEST_THREADS` environment variable
/// when set (how CI pins both test runs), otherwise the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("UR_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------- free names ----------------

/// Binder-aware free-name collector over the surface AST.
///
/// Names are resolved textually, exactly like the elaborator's scope
/// lookup: a name is free if no enclosing binder (constructor lambda,
/// `fn` parameter, `let` declaration, ...) introduces it. Field-name
/// positions (`{A = e}`, row literals, projections) count conservatively
/// as references — the elaborator resolves them to constructor variables
/// when one is in scope, so a same-named earlier declaration *is* a real
/// dependency.
#[derive(Default)]
struct FreeNames {
    bound: Vec<String>,
    free: BTreeSet<String>,
}

impl FreeNames {
    fn refer(&mut self, name: &str) {
        if !self.bound.iter().any(|b| b == name) {
            self.free.insert(name.to_string());
        }
    }

    fn scon(&mut self, c: &SCon) {
        match c {
            SCon::Var(_, x) => self.refer(x),
            SCon::Name(_, _) | SCon::Wild(_) => {}
            SCon::Record(_, c) | SCon::Fst(_, c) | SCon::Snd(_, c) => self.scon(c),
            SCon::RowLit(_, entries) => {
                for (n, v) in entries {
                    self.scon(n);
                    if let Some(v) = v {
                        self.scon(v);
                    }
                }
            }
            SCon::RecordType(_, fields) => {
                for (n, t) in fields {
                    self.scon(n);
                    self.scon(t);
                }
            }
            SCon::Cat(_, a, b) | SCon::App(_, a, b) | SCon::Arrow(_, a, b) | SCon::Pair(_, a, b) => {
                self.scon(a);
                self.scon(b);
            }
            SCon::Lam(_, x, _, body) | SCon::Poly(_, x, _, body) => {
                self.bound.push(x.clone());
                self.scon(body);
                self.bound.pop();
            }
            SCon::Guarded(_, c1, c2, t) => {
                self.scon(c1);
                self.scon(c2);
                self.scon(t);
            }
        }
    }

    /// Walks `fn`/`fun` parameters, pushing their binders; returns how
    /// many names were pushed so the caller can pop them after the body.
    fn params(&mut self, params: &[SParam]) -> usize {
        let mut pushed = 0;
        for p in params {
            match p {
                SParam::CParam(x, _) => {
                    self.bound.push(x.clone());
                    pushed += 1;
                }
                SParam::DParam(c1, c2) => {
                    self.scon(c1);
                    self.scon(c2);
                }
                SParam::VParam(x, t) => {
                    if let Some(t) = t {
                        self.scon(t);
                    }
                    self.bound.push(x.clone());
                    pushed += 1;
                }
            }
        }
        pushed
    }

    fn sexpr(&mut self, e: &SExpr) {
        match e {
            SExpr::Var(_, x) => self.refer(x),
            SExpr::Lit(_, _) => {}
            SExpr::App(_, f, a) | SExpr::Cat(_, f, a) => {
                self.sexpr(f);
                self.sexpr(a);
            }
            SExpr::CApp(_, e, c) => {
                self.sexpr(e);
                self.scon(c);
            }
            SExpr::Bang(_, e) | SExpr::Explicit(_, e) => self.sexpr(e),
            SExpr::Fn(_, params, body) => {
                let pushed = self.params(params);
                self.sexpr(body);
                for _ in 0..pushed {
                    self.bound.pop();
                }
            }
            SExpr::Record(_, fields) => {
                for (n, e) in fields {
                    self.scon(n);
                    self.sexpr(e);
                }
            }
            SExpr::Proj(_, e, c) | SExpr::Cut(_, e, c) => {
                self.sexpr(e);
                self.scon(c);
            }
            SExpr::BinOp(_, op, l, r) => {
                // Operators lower to prelude functions (`+` -> `add`, ...):
                // reference the lowered name so a shadowing declaration is
                // a dependency.
                if let Some(name) = binop_name(op) {
                    self.refer(name);
                }
                self.sexpr(l);
                self.sexpr(r);
            }
            SExpr::Let(_, decls, body) => {
                let mut pushed = 0;
                for d in decls {
                    self.sdecl_refs(d);
                    self.bound.push(d.name().to_string());
                    pushed += 1;
                }
                self.sexpr(body);
                for _ in 0..pushed {
                    self.bound.pop();
                }
            }
            SExpr::If(_, c, t, e) => {
                self.sexpr(c);
                self.sexpr(t);
                self.sexpr(e);
            }
            SExpr::Ann(_, e, t) => {
                self.sexpr(e);
                self.scon(t);
            }
        }
    }

    /// References made by a declaration's right-hand side (its own name is
    /// *not* bound: `fun` is non-recursive sugar for `val f = fn ...`).
    fn sdecl_refs(&mut self, d: &SDecl) {
        match d {
            SDecl::ConAbs(_, _, _) => {}
            SDecl::ConDef(_, _, _, c) => self.scon(c),
            SDecl::ValAbs(_, _, t) => self.scon(t),
            SDecl::Val(_, _, ann, e) => {
                if let Some(t) = ann {
                    self.scon(t);
                }
                self.sexpr(e);
            }
            SDecl::Fun(_, _, params, ann, e) => {
                let pushed = self.params(params);
                if let Some(t) = ann {
                    self.scon(t);
                }
                self.sexpr(e);
                for _ in 0..pushed {
                    self.bound.pop();
                }
            }
        }
    }
}

/// Free names of a declaration's right-hand side, sorted.
fn decl_free_names(d: &SDecl) -> BTreeSet<String> {
    let mut fv = FreeNames::default();
    fv.sdecl_refs(d);
    fv.free
}

// ---------------- dependency graph ----------------

/// Declaration-level dependency graph for one batch.
///
/// `deps[i]` holds the indices `i` depends on; `dependents[i]` the
/// reverse edges. Both are sorted ascending.
#[derive(Clone, Debug)]
pub struct DepGraph {
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Builds the graph by name resolution over the batch: declaration
    /// `i` gets an edge to every earlier declaration binding one of `i`'s
    /// free names (see the module docs for why *every*, not just the
    /// latest). Forward references get no edge — the referencing
    /// declaration elaborates against the base environment and fails with
    /// the same "unbound" error as in sequential mode.
    pub fn build(decls: &[SDecl]) -> DepGraph {
        let n = decls.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut binders: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, d) in decls.iter().enumerate() {
            let mut my_deps: BTreeSet<usize> = BTreeSet::new();
            for name in decl_free_names(d) {
                if let Some(ix) = binders.get(name.as_str()) {
                    my_deps.extend(ix.iter().copied());
                }
            }
            for &j in &my_deps {
                dependents[j].push(i);
            }
            deps[i] = my_deps.into_iter().collect();
            binders.entry(d.name()).or_default().push(i);
        }
        DepGraph { deps, dependents }
    }

    /// Builds a graph from explicit `(dependent, dependency)` edges; used
    /// by tests to exercise shapes (including cycles) that name
    /// resolution over source can never produce. Out-of-range and
    /// self-referential edges are ignored.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> DepGraph {
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for &(i, j) in edges {
            if i < n && j < n && i != j {
                deps[i].insert(j);
            }
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ds) in deps.iter().enumerate() {
            for &j in ds {
                dependents[j].push(i);
            }
        }
        DepGraph {
            deps: deps.into_iter().map(|s| s.into_iter().collect()).collect(),
            dependents,
        }
    }

    /// Number of declarations in the batch.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Direct dependencies of declaration `i` (sorted ascending).
    pub fn deps(&self, i: usize) -> &[usize] {
        self.deps.get(i).map_or(&[], Vec::as_slice)
    }

    /// Direct dependents of declaration `i` (sorted ascending).
    pub fn dependents(&self, i: usize) -> &[usize] {
        self.dependents.get(i).map_or(&[], Vec::as_slice)
    }

    /// Kahn's algorithm with a lowest-index-first ready set. `Ok` is a
    /// topological order; `Err` is the sorted set of declarations caught
    /// in (or downstream of) a dependency cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, Vec<usize>> {
        let n = self.len();
        let mut indegree: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut scheduled = vec![false; n];
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            scheduled[i] = true;
            order.push(i);
            for &d in &self.dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.insert(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err((0..n).filter(|&i| !scheduled[i]).collect())
        }
    }

    /// Transitive dependency closures, one sorted vector per declaration.
    /// Requires an acyclic graph (pass a [`Self::topo_order`] result).
    fn closures(&self, topo: &[usize]) -> Vec<Vec<usize>> {
        let mut closures: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.len()];
        for &i in topo {
            let mut cl = BTreeSet::new();
            for &j in &self.deps[i] {
                cl.insert(j);
                cl.extend(closures[j].iter().copied());
            }
            closures[i] = cl;
        }
        closures
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect()
    }
}

/// One E0700 diagnostic per declaration caught in a dependency cycle.
pub fn cycle_diagnostics(prog: &Program, cycle: &[usize]) -> Diagnostics {
    let names: Vec<&str> = cycle
        .iter()
        .filter_map(|&i| prog.decls.get(i).map(SDecl::name))
        .collect();
    let ring = names.join(", ");
    let mut diags: Diagnostics = cycle
        .iter()
        .filter_map(|&i| prog.decls.get(i))
        .map(|d| {
            Diagnostic::new(
                d.span(),
                Code::DependencyCycle,
                format!("declaration dependency cycle involving {}", d.name()),
            )
            .with_note(format!("cycle members: {ring}"))
        })
        .collect();
    sort_diags(&mut diags);
    diags
}

// ---------------- task/result payloads ----------------

/// A `con` binding a declaration recorded into the global environment as
/// a side effect (`let`-local definitions). Terms are arena handles, so
/// the binding is `Copy`-cheap and crosses threads as-is.
#[derive(Clone, Debug)]
pub struct ConBind {
    pub sym: Sym,
    pub kind: Kind,
    pub def: Option<RCon>,
}

/// Everything a declaration's elaboration persistently contributed: the
/// declaration itself (absent when it failed) plus any `let`-local `con`
/// definitions it recorded into the global environment as a side effect.
/// With the shared arena this is plain `Send` data — the PR 3-era
/// portable mirror (`POutcome` of `PCon`/`PExpr` trees) is gone.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    pub decl: Option<ElabDecl>,
    pub extra_cons: Vec<ConBind>,
}

/// Read-only batch context shared by all workers.
struct BaseSnapshot {
    env: Env,
    scope: Vec<(String, Entry)>,
    laws: LawConfig,
    limits: Limits,
    memo_enabled: bool,
    /// The coordinator's failpoint schedule, installed on every worker so
    /// one seeded configuration governs the whole batch (workers draw
    /// from per-site streams, so the schedule is per-thread
    /// deterministic). `None` outside chaos runs.
    fp: Option<FpConfig>,
}

struct Task {
    idx: usize,
    decl: SDecl,
    /// Transitive dependency closure, ascending source order.
    closure: Vec<usize>,
    /// Closure outcomes this worker has not seen yet.
    new_outcomes: Vec<(usize, Outcome)>,
}

struct TaskResult {
    idx: usize,
    worker: usize,
    outcome: Outcome,
    diag: Option<Diagnostic>,
    stats: Stats,
    lifetime_steps: u64,
    /// Announced worker death (the `worker_exec` failpoint): the worker
    /// is exiting without elaborating `idx`; the coordinator must retire
    /// it and re-dispatch the task elsewhere.
    died: bool,
    /// Failpoint counter delta accrued on the worker since its last
    /// shipped result; each delta is shipped exactly once, so the
    /// coordinator absorbs it from every message, duplicates included.
    fp: FpCounters,
}

impl TaskResult {
    /// A counters-only flush sent when the worker's task channel closes.
    fn flush(worker: usize, fp: FpCounters) -> TaskResult {
        TaskResult {
            idx: FLUSH,
            worker,
            outcome: Outcome::default(),
            diag: None,
            stats: Stats::default(),
            lifetime_steps: 0,
            died: false,
            fp,
        }
    }
}

/// Installs one dependency outcome into an elaborator: extra `con`
/// bindings first (the declaration's type may mention their symbols),
/// then the declaration itself.
pub fn install_outcome(el: &mut Elaborator, o: &Outcome) {
    for b in &o.extra_cons {
        match &b.def {
            Some(c) => el.genv.define_con(b.sym, b.kind.clone(), *c),
            None => el.genv.bind_con(b.sym, b.kind.clone()),
        }
    }
    if let Some(d) = &o.decl {
        el.install_elab_decl(d.clone());
    }
}

/// Elaborates one declaration on `el` (with recovery) and captures what
/// it persistently contributed as an [`Outcome`]: the declaration plus
/// any `let`-local `con` bindings it recorded into the global
/// environment. Shared by the worker loop, the sequential incremental
/// path, and the merge-loop fallback, so all three capture identical
/// outcome shapes.
pub fn elab_decl_capture(el: &mut Elaborator, d: &SDecl) -> (Option<Diagnostic>, Outcome) {
    let before: HashSet<u32> = el.genv.cons().map(|(s, _)| s.id()).collect();
    let start = el.decls.len();
    let diag = el.elab_decl_recover(d);
    let decl = el.decls.get(start).cloned();

    let own_con = match &decl {
        Some(ElabDecl::Con { sym, .. }) => Some(sym.id()),
        _ => None,
    };
    let mut extra_cons: Vec<ConBind> = el
        .genv
        .cons()
        .filter(|(s, _)| !before.contains(&s.id()) && Some(s.id()) != own_con)
        .map(|(s, b)| ConBind {
            sym: *s,
            kind: b.kind.clone(),
            def: b.def,
        })
        .collect();
    extra_cons.sort_by_key(|b| b.sym.id());
    (diag, Outcome { decl, extra_cons })
}

/// A pre-verified elaboration outcome injected into the scheduler by the
/// incremental engine (`ur-query`): the declaration's cached outcome and
/// the diagnostic it produced, both already decoded into this process's
/// arena. A seeded declaration is installed verbatim at its source
/// position — it is never dispatched, charges no fuel, and contributes
/// no per-declaration stats.
#[derive(Clone, Debug)]
pub struct Seed {
    pub outcome: Outcome,
    pub diag: Option<Diagnostic>,
}

/// Per-declaration outcome of an incremental batch, in source order:
/// what was installed, the diagnostic it carries, and whether it was a
/// green reuse (seeded) or a red recomputation.
#[derive(Clone, Debug)]
pub struct DeclRecord {
    pub outcome: Outcome,
    pub diag: Option<Diagnostic>,
    pub reused: bool,
}

// ---------------- worker ----------------

fn worker_main(
    wid: usize,
    base: &BaseSnapshot,
    rx: &mpsc::Receiver<Task>,
    tx: &mpsc::Sender<TaskResult>,
) {
    failpoint::install(base.fp);
    let mut el = Elaborator::new();
    el.cx.laws = base.laws;
    el.cx.fuel = Fuel::new(base.limits);
    el.cx.memo.enabled = base.memo_enabled;

    let mut cache: HashMap<usize, Outcome> = HashMap::new();
    let mut prev_stats = el.cx.stats.clone();
    let mut prev_lifetime = el.cx.fuel.lifetime_norm_steps();

    while let Ok(task) = rx.recv() {
        for (j, o) in &task.new_outcomes {
            cache.insert(*j, o.clone());
        }

        // failpoint `worker_exec`: die mid-task. The death is announced
        // (so the coordinator can retire this worker and requeue the task
        // promptly) but no outcome is produced — the re-dispatch
        // elaborates the declaration from the same dependency closure, so
        // the healed result is identical to the never-faulted one.
        if failpoint::fire(Site::WorkerExec) {
            let _ = tx.send(TaskResult {
                idx: task.idx,
                worker: wid,
                outcome: Outcome::default(),
                diag: None,
                stats: Stats::default(),
                lifetime_steps: 0,
                died: true,
                fp: failpoint::take_counters(),
            });
            return;
        }

        // Fresh per-task state: the base snapshot plus exactly the
        // dependency closure, installed in source index order. Never
        // accumulated across tasks — a stale extra binding would corrupt
        // shadowing resolution.
        el.genv = base.env.clone();
        el.scope.clear();
        el.scope.push(base.scope.clone());
        el.decls.clear();
        for j in &task.closure {
            if let Some(o) = cache.get(j) {
                install_outcome(&mut el, o);
            }
        }

        let (diag, outcome) = elab_decl_capture(&mut el, &task.decl);

        let stats = el.cx.stats.since(&prev_stats);
        prev_stats = el.cx.stats.clone();
        let lifetime = el.cx.fuel.lifetime_norm_steps();
        let lifetime_steps = lifetime.saturating_sub(prev_lifetime);
        prev_lifetime = lifetime;

        // failpoint `worker_stall`: sleep past the coordinator's watchdog
        // deadline. The watchdog requeues the task; whichever copy of the
        // result lands second is discarded by the duplicate guard, so the
        // race between recovery and late delivery cannot change results.
        if failpoint::fire(Site::WorkerStall) {
            std::thread::sleep(std::time::Duration::from_millis(
                (watchdog_base_ms() * 2).min(2_000),
            ));
        }

        // failpoint `worker_send`: the finished outcome is lost in
        // transit. The worker stays alive (distinct failure mode from
        // `worker_exec`); the coordinator's watchdog notices the missing
        // result and re-dispatches. The failpoint counter delta for this
        // task stays on the worker and ships with its next message.
        if failpoint::fire(Site::WorkerSend) {
            continue;
        }

        let sent = tx.send(TaskResult {
            idx: task.idx,
            worker: wid,
            outcome,
            diag,
            stats,
            lifetime_steps,
            died: false,
            fp: failpoint::take_counters(),
        });
        if sent.is_err() {
            // Coordinator is gone; nothing left to do.
            return;
        }
    }
    // Task channel closed: flush any counters still held locally (e.g.
    // from a `worker_send` loss on our final task) so the coordinator's
    // post-join drain sees every injected fault.
    let fp = failpoint::take_counters();
    if fp != FpCounters::default() {
        let _ = tx.send(TaskResult::flush(wid, fp));
    }
}

// ---------------- coordinator ----------------

/// Runs a parsed batch on `threads` workers using the graph built from
/// source. Called by `Elaborator::elab_program_all_threads`.
pub(crate) fn run_parallel(
    elab: &mut Elaborator,
    prog: &Program,
    threads: usize,
) -> (Vec<ElabDecl>, Diagnostics) {
    let graph = DepGraph::build(&prog.decls);
    elab_program_all_with_graph(elab, prog, threads, &graph)
}

/// Runs a parsed batch on `threads` workers against an explicit
/// dependency graph. Public so tests can exercise graph shapes (cycles,
/// extra edges) that name resolution never produces; the graph must have
/// one node per declaration or the batch falls back to sequential
/// elaboration.
pub fn elab_program_all_with_graph(
    elab: &mut Elaborator,
    prog: &Program,
    threads: usize,
    graph: &DepGraph,
) -> (Vec<ElabDecl>, Diagnostics) {
    let n = prog.decls.len();
    if graph.len() != n || threads <= 1 || n < 2 {
        return elab.elab_program_all(prog);
    }
    let seeds = (0..n).map(|_| None).collect();
    let (decls, diags, _records) = elab_program_all_incremental(elab, prog, threads, graph, seeds);
    (decls, diags)
}

/// Sequential arm of the incremental batch: walk the declarations in
/// source order, installing green seeds verbatim (no fuel, no stats) and
/// elaborating red ones in place.
fn run_incremental_sequential(
    elab: &mut Elaborator,
    prog: &Program,
    mut seeds: Vec<Option<Seed>>,
) -> (Vec<ElabDecl>, Diagnostics, Vec<DeclRecord>) {
    let start = elab.decls.len();
    let mut diags = Diagnostics::new();
    let mut records: Vec<DeclRecord> = Vec::with_capacity(prog.decls.len());
    for (i, d) in prog.decls.iter().enumerate() {
        match seeds.get_mut(i).and_then(Option::take) {
            Some(seed) => {
                install_outcome(elab, &seed.outcome);
                if let Some(diag) = seed.diag.clone() {
                    diags.push(diag);
                }
                records.push(DeclRecord {
                    outcome: seed.outcome,
                    diag: seed.diag,
                    reused: true,
                });
            }
            None => {
                let (diag, outcome) = elab_decl_capture(elab, d);
                if let Some(dg) = diag.clone() {
                    diags.push(dg);
                }
                records.push(DeclRecord {
                    outcome,
                    diag,
                    reused: false,
                });
            }
        }
    }
    sort_diags(&mut diags);
    (elab.decls[start..].to_vec(), diags, records)
}

/// Runs a batch in which some declarations arrive pre-verified
/// ([`Seed`]s from the incremental engine). Seeded declarations are
/// installed at their source position without re-elaboration — they are
/// never dispatched to a worker, reset no fuel, and contribute no
/// per-declaration stats — while the remaining (red) declarations run
/// through the ordinary parallel scheduler (or sequentially, when
/// `threads <= 1` or fewer than two declarations are red). `seeds` must
/// have one entry per declaration; any other length is treated as
/// all-red. Returns the installed declarations, span-sorted diagnostics,
/// and one [`DeclRecord`] per declaration in source order.
pub fn elab_program_all_incremental(
    elab: &mut Elaborator,
    prog: &Program,
    threads: usize,
    graph: &DepGraph,
    mut seeds: Vec<Option<Seed>>,
) -> (Vec<ElabDecl>, Diagnostics, Vec<DeclRecord>) {
    let n = prog.decls.len();
    if seeds.len() != n {
        seeds = (0..n).map(|_| None).collect();
    }
    let red = seeds.iter().filter(|s| s.is_none()).count();
    if graph.len() != n || threads <= 1 || red < 2 {
        return run_incremental_sequential(elab, prog, seeds);
    }
    let topo = match graph.topo_order() {
        Ok(t) => t,
        Err(cycle) => {
            // Reject the whole batch: a cycle means there is no valid
            // elaboration order to be deterministic against.
            return (Vec::new(), cycle_diagnostics(prog, &cycle), Vec::new());
        }
    };
    let closures = graph.closures(&topo);

    let base = Arc::new(BaseSnapshot {
        env: elab.genv.clone(),
        scope: elab.scope.first().cloned().unwrap_or_default(),
        laws: elab.cx.laws,
        limits: elab.cx.fuel.limits,
        memo_enabled: elab.cx.memo.enabled,
        fp: failpoint::config(),
    });

    // Spawn the pool. Spawn failures (real or injected via the
    // `worker_spawn` failpoint) leave a placeholder slot so worker ids
    // stay aligned with channel indices; the pool just runs smaller. With
    // zero live workers every outcome is missing and the merge loop below
    // degrades to fully sequential elaboration.
    let pool = threads.min(red);
    let (res_tx, res_rx) = mpsc::channel::<TaskResult>();
    let mut task_txs: Vec<Option<mpsc::Sender<Task>>> = Vec::with_capacity(pool);
    let mut handles = Vec::with_capacity(pool);
    for wid in 0..pool {
        if failpoint::fire(Site::WorkerSpawn) {
            task_txs.push(None);
            continue;
        }
        let (tx, rx) = mpsc::channel::<Task>();
        let base = Arc::clone(&base);
        let res_tx = res_tx.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("ur-elab-{wid}"))
            .stack_size(WORKER_STACK)
            .spawn(move || worker_main(wid, &base, &rx, &res_tx));
        match spawned {
            Ok(h) => {
                task_txs.push(Some(tx));
                handles.push(h);
            }
            Err(_) => task_txs.push(None),
        }
    }
    drop(res_tx);
    let workers = handles.len();

    // Kahn-style dispatch: ready declarations go out lowest-index-first;
    // each worker remembers which outcomes it has been sent so dependency
    // payloads ship at most once per worker.
    //
    // Self-healing bookkeeping on top of the PR 3 scheduler:
    //
    // * a **watchdog** bounds how long the coordinator blocks on worker
    //   results (`recv_timeout` with exponential patience); on expiry,
    //   every in-flight task is re-dispatched. This also fixes a PR 3
    //   latent deadlock: a worker dying *between* receiving a task and
    //   sending its result left `res_rx.recv()` blocking forever, because
    //   the surviving workers' sender clones kept the channel open.
    // * re-dispatches are **bounded** (`MAX_TASK_ATTEMPTS`) with
    //   exponential backoff in *virtual ticks* (one tick per scheduler
    //   iteration, not wall clock, so backoff is deterministic); a
    //   declaration that exhausts its attempts is left to the sequential
    //   fallback in the merge loop.
    // * late results for an already-completed declaration are discarded
    //   by a **duplicate guard** (first result wins; requeued tasks
    //   re-elaborate identical outcomes, so which copy wins is
    //   unobservable).
    let mut indegree: Vec<usize> = (0..n).map(|i| graph.deps(i).len()).collect();
    let mut idle: Vec<usize> = (0..task_txs.len())
        .rev()
        .filter(|&w| task_txs[w].is_some())
        .collect();
    let mut sent: Vec<HashSet<usize>> = vec![HashSet::new(); task_txs.len()];
    let mut shipped: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
    let mut results: Vec<Option<TaskResult>> = (0..n).map(|_| None).collect();
    let mut attempts: Vec<u32> = vec![0; n];
    let mut done: Vec<bool> = vec![false; n];
    // Seeded declarations start completed: their outcome is already
    // verified, so it ships to dependents like any finished task but is
    // never dispatched itself.
    let mut seeded = 0usize;
    for (i, s) in seeds.iter().enumerate() {
        if let Some(seed) = s {
            done[i] = true;
            seeded += 1;
            shipped[i] = Some(seed.outcome.clone());
            for &d in graph.dependents(i) {
                indegree[d] = indegree[d].saturating_sub(1);
            }
        }
    }
    let mut ready: BTreeSet<usize> = (0..n)
        .filter(|&i| !done[i] && indegree[i] == 0)
        .collect();
    // Backoff queue: `(ready_at_tick, idx)` for re-dispatches waiting out
    // their exponential delay.
    let mut deferred: Vec<(u64, usize)> = Vec::new();
    let mut in_flight: HashMap<usize, usize> = HashMap::new(); // idx -> wid
    let mut completed = seeded;
    let mut tick = 0u64;
    let mut patience_shift = 0u32;
    let mut par_retries = 0u64;
    let mut worker_deaths = 0u64;
    let mut watchdog_trips = 0u64;

    loop {
        // Promote re-dispatches whose backoff has elapsed.
        deferred.retain(|&(at, i)| {
            if at <= tick {
                ready.insert(i);
                false
            } else {
                true
            }
        });
        while let (Some(&i), true) = (ready.iter().next(), !idle.is_empty()) {
            let Some(wid) = idle.pop() else { break };
            ready.remove(&i);
            let new_outcomes: Vec<(usize, Outcome)> = closures[i]
                .iter()
                .filter(|j| !sent[wid].contains(j))
                .filter_map(|j| shipped[*j].clone().map(|o| (*j, o)))
                .collect();
            sent[wid].extend(new_outcomes.iter().map(|(j, _)| *j));
            let task = Task {
                idx: i,
                decl: prog.decls[i].clone(),
                closure: closures[i].clone(),
                new_outcomes,
            };
            let alive = task_txs
                .get(wid)
                .and_then(Option::as_ref)
                .is_some_and(|tx| tx.send(task).is_ok());
            if alive {
                attempts[i] += 1;
                in_flight.insert(i, wid);
            } else {
                // Worker died silently: retire it and put the task back.
                if task_txs.get_mut(wid).and_then(Option::take).is_some() {
                    worker_deaths += 1;
                }
                ready.insert(i);
            }
        }
        if completed == n {
            break;
        }
        if in_flight.is_empty() {
            if let Some(&(at, _)) = deferred.iter().min_by_key(|&&(at, _)| at) {
                // Nothing running: fast-forward virtual time to the next
                // re-dispatch instead of spinning.
                tick = tick.max(at);
                continue;
            }
            // No work running, none deferred: whatever is left had no
            // live worker or exhausted its attempts — the merge loop
            // elaborates it sequentially.
            break;
        }
        let patience =
            std::time::Duration::from_millis(watchdog_base_ms() << patience_shift);
        match res_rx.recv_timeout(patience) {
            Ok(res) => {
                tick += 1;
                // Failpoint deltas ship exactly once per message; absorb
                // unconditionally (flushes and duplicates included).
                failpoint::absorb_counters(&res.fp);
                if res.idx == FLUSH {
                    continue;
                }
                let i = res.idx;
                if res.died {
                    // Announced death (`worker_exec`): retire the worker
                    // and requeue its task with backoff.
                    if task_txs.get_mut(res.worker).and_then(Option::take).is_some() {
                        worker_deaths += 1;
                    }
                    if in_flight.get(&i) == Some(&res.worker) {
                        in_flight.remove(&i);
                    }
                    // Out-of-attempts tasks are left for the sequential
                    // fallback.
                    if !done[i]
                        && !in_flight.contains_key(&i)
                        && attempts[i] < MAX_TASK_ATTEMPTS
                    {
                        par_retries += 1;
                        deferred.push((tick + (1u64 << attempts[i].min(16)), i));
                    }
                    continue;
                }
                patience_shift = 0;
                idle.push(res.worker);
                if done[i] {
                    // Duplicate guard: a stalled worker's late result
                    // landing after its requeue already completed. The
                    // outcome is identical by construction; drop it (and
                    // its stats — the work was redundant).
                    continue;
                }
                done[i] = true;
                in_flight.remove(&i);
                // A requeued copy may still be waiting in the backoff
                // queue or ready set; this result supersedes it.
                deferred.retain(|&(_, j)| j != i);
                ready.remove(&i);
                completed += 1;
                shipped[i] = Some(res.outcome.clone());
                results[i] = Some(res);
                for &d in graph.dependents(i) {
                    indegree[d] = indegree[d].saturating_sub(1);
                    if indegree[d] == 0 {
                        ready.insert(d);
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Watchdog trip: some worker is stalled, dead without
                // announcing, or lost its result in transit. Requeue all
                // in-flight work (late originals are dup-guarded) and
                // escalate patience so a merely slow batch stops
                // tripping.
                tick += 1;
                watchdog_trips += 1;
                patience_shift = (patience_shift + 1).min(MAX_PATIENCE_SHIFT);
                for (i, _wid) in std::mem::take(&mut in_flight) {
                    if !done[i] && attempts[i] < MAX_TASK_ATTEMPTS {
                        par_retries += 1;
                        deferred.push((tick + (1u64 << attempts[i].min(16)), i));
                    }
                }
            }
            // All workers gone; the merge loop below elaborates whatever
            // is missing sequentially.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    drop(task_txs);
    for h in handles {
        let _ = h.join();
    }
    // Post-join drain: counters-only flushes and any results that raced
    // the shutdown still carry failpoint deltas.
    while let Ok(res) = res_rx.try_recv() {
        failpoint::absorb_counters(&res.fp);
    }

    // Deterministic merge, in source order regardless of completion
    // order. Missing outcomes (dead worker, failed spawn) are elaborated
    // sequentially right here, at their source position, which reproduces
    // sequential semantics exactly.
    let start = elab.decls.len();
    let mut diags = Diagnostics::new();
    let mut records: Vec<DeclRecord> = Vec::with_capacity(n);
    let mut par_decls = 0u64;
    for (i, d) in prog.decls.iter().enumerate() {
        if let Some(seed) = seeds.get_mut(i).and_then(Option::take) {
            // Green reuse: install the verified outcome verbatim. No
            // fuel reset, no stats — the declaration was not elaborated.
            install_outcome(elab, &seed.outcome);
            if let Some(diag) = seed.diag.clone() {
                diags.push(diag);
            }
            records.push(DeclRecord {
                outcome: seed.outcome,
                diag: seed.diag,
                reused: true,
            });
            continue;
        }
        match results[i].take() {
            Some(res) => {
                install_outcome(elab, &res.outcome);
                if let Some(diag) = res.diag.clone() {
                    diags.push(diag);
                }
                elab.cx.stats.absorb(&res.stats);
                elab.cx.fuel.absorb_lifetime(res.lifetime_steps);
                par_decls += 1;
                records.push(DeclRecord {
                    outcome: res.outcome,
                    diag: res.diag,
                    reused: false,
                });
            }
            None => {
                let (diag, outcome) = elab_decl_capture(elab, d);
                if let Some(dg) = diag.clone() {
                    diags.push(dg);
                }
                records.push(DeclRecord {
                    outcome,
                    diag,
                    reused: false,
                });
            }
        }
    }
    elab.cx.stats.par_batches = elab.cx.stats.par_batches.saturating_add(1);
    elab.cx.stats.par_decls = elab.cx.stats.par_decls.saturating_add(par_decls);
    elab.cx.stats.par_workers = elab.cx.stats.par_workers.saturating_add(workers as u64);
    elab.cx.stats.par_retries = elab.cx.stats.par_retries.saturating_add(par_retries);
    elab.cx.stats.par_worker_deaths = elab
        .cx
        .stats
        .par_worker_deaths
        .saturating_add(worker_deaths);
    elab.cx.stats.watchdog_trips = elab.cx.stats.watchdog_trips.saturating_add(watchdog_trips);
    elab.cx.stats.capture_failpoints();
    sort_diags(&mut diags);
    (elab.decls[start..].to_vec(), diags, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        ur_syntax::parse_program(src).expect("test source parses")
    }

    #[test]
    fn graph_tracks_value_dependencies() {
        let prog = parse("val a = 1\nval b = a\nval c = b + a");
        let g = DepGraph::build(&prog.decls);
        assert_eq!(g.deps(0), &[] as &[usize]);
        assert_eq!(g.deps(1), &[0]);
        assert_eq!(g.deps(2), &[0, 1]);
        assert_eq!(g.dependents(0), &[1, 2]);
    }

    #[test]
    fn independent_decls_share_no_edges() {
        let prog = parse("val a = 1\nval b = 2\nval c = 3");
        let g = DepGraph::build(&prog.decls);
        for i in 0..3 {
            assert!(g.deps(i).is_empty());
            assert!(g.dependents(i).is_empty());
        }
    }

    #[test]
    fn binders_inside_lambdas_do_not_leak() {
        // `x` is fn-bound; only `one` is a real dependency.
        let prog = parse("val one = 1\nval f = fn x => x + one");
        let g = DepGraph::build(&prog.decls);
        assert_eq!(g.deps(1), &[0]);
    }

    #[test]
    fn binop_references_lowered_prelude_names() {
        // `+` lowers to `add`; an in-batch shadow of `add` must become a
        // dependency of every later use of `+`.
        let prog = parse("val add = 0\nval s = 1 + 2");
        let g = DepGraph::build(&prog.decls);
        assert_eq!(g.deps(1), &[0]);
    }

    #[test]
    fn topo_order_is_lowest_index_first() {
        let g = DepGraph::from_edges(4, &[(3, 0), (2, 0)]);
        assert_eq!(g.topo_order(), Ok(vec![0, 1, 2, 3]));
    }

    #[test]
    fn closures_are_transitive() {
        let prog = parse("val a = 1\nval b = a\nval c = b");
        let g = DepGraph::build(&prog.decls);
        let topo = g.topo_order().expect("acyclic");
        let cl = g.closures(&topo);
        assert_eq!(cl[2], vec![0, 1], "c's closure includes a through b");
    }

    #[test]
    fn cycle_is_reported_not_scheduled() {
        let g = DepGraph::from_edges(3, &[(0, 1), (1, 0)]);
        let cycle = g.topo_order().expect_err("cyclic");
        assert_eq!(cycle, vec![0, 1], "node 2 is acyclic and schedulable");
    }
}
