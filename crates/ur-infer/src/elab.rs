//! Elaboration of surface Ur into core Featherweight Ur (paper §4).
//!
//! Elaboration is bidirectional and constraint-based:
//!
//! * every implicit argument and wildcard becomes a metavariable;
//! * constructor equalities and disjointness obligations are attempted
//!   eagerly and otherwise queued; after each top-level declaration the
//!   queue is iterated to a fixed point ("finding an immediately-solvable
//!   constraint, until no constraints remain", §4);
//! * omitted `folder` arguments become holes that are filled *after*
//!   inference, with the field permutation implied by source order (§4.4);
//! * the two design principles hold: no proof syntax exists (`!` only
//!   signals the prover), and callers of metaprograms write ML-style code.

use crate::error::{ElabError, EResult};
use crate::unify::{unify, unify_kind, Unify};
pub use ur_core::folder::{gen_folder, unfold_folder};
use std::collections::HashSet;
use ur_core::con::{Con, MetaId, RCon};
use ur_core::disjoint::{prove, ProveResult};
use ur_core::env::Env;
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::hnf::hnf;
use ur_core::kind::Kind;
use ur_core::row::{normalize_row, FieldKey};
use ur_core::subst::subst;
use ur_core::sym::Sym;
use ur_core::Cx;
use ur_syntax::ast::{SCon, SDecl, SExpr, SKind, SLit, SParam, Span};
use ur_syntax::Program;

/// An elaborated top-level declaration.
#[derive(Clone, Debug)]
pub enum ElabDecl {
    /// A constructor declaration (abstract if `def` is `None`).
    Con {
        name: String,
        sym: Sym,
        kind: Kind,
        def: Option<RCon>,
    },
    /// A value declaration (a primitive if `body` is `None`).
    Val {
        name: String,
        sym: Sym,
        ty: RCon,
        body: Option<RExpr>,
    },
}

impl ElabDecl {
    pub fn name(&self) -> &str {
        match self {
            ElabDecl::Con { name, .. } | ElabDecl::Val { name, .. } => name,
        }
    }

    pub fn sym(&self) -> &Sym {
        match self {
            ElabDecl::Con { sym, .. } | ElabDecl::Val { sym, .. } => sym,
        }
    }
}

#[derive(Clone)]
pub(crate) enum Entry {
    CVar(Sym),
    Val(Sym),
}

/// A full capture of the elaborator's persistent state, for rolling back
/// a chaos-faulted declaration attempt (see
/// [`Elaborator::snapshot`]/[`Elaborator::restore`]). Sessions reuse it
/// to roll back whole aborted batches. Opaque: it can only be fed back
/// to the elaborator it came from. `Clone` so a session can keep one
/// base snapshot and restore it before every incremental rebuild.
#[derive(Clone)]
pub struct ElabSnapshot {
    genv: Env,
    cx: Cx,
    scope: Vec<Vec<(String, Entry)>>,
    decls_len: usize,
}

#[derive(Clone)]
enum Goal {
    Eq(RCon, RCon),
    Disj(RCon, RCon),
}

struct Pending {
    env: Env,
    goal: Goal,
    span: Span,
    origin: String,
}

struct Hole {
    sym: Sym,
    row: RCon,
    elem_kind: Kind,
    env: Env,
    span: Span,
}

/// The elaborator: global environment, metavariable context, constraint
/// queue, and scope map from source names to core symbols.
pub struct Elaborator {
    /// Global typing environment (grows with each declaration).
    pub genv: Env,
    /// Metavariables and Figure-5 statistics.
    pub cx: Cx,
    pub(crate) scope: Vec<Vec<(String, Entry)>>,
    constraints: Vec<Pending>,
    holes: Vec<Hole>,
    /// All declarations elaborated so far, in order.
    pub decls: Vec<ElabDecl>,
}

impl Default for Elaborator {
    fn default() -> Self {
        Elaborator::new()
    }
}

/// Converts a parse error to an [`ElabError`], preserving its diagnostic
/// code (E02xx / E01xx) through the classification in `ur_syntax`.
fn parse_to_elab(e: ur_syntax::ParseError) -> ElabError {
    let d: ur_syntax::Diagnostic = e.into();
    ElabError::new(d.span, d.message).with_code(d.code)
}

impl Elaborator {
    pub fn new() -> Elaborator {
        Elaborator {
            genv: Env::new(),
            cx: Cx::new(),
            scope: vec![Vec::new()],
            constraints: Vec::new(),
            holes: Vec::new(),
            decls: Vec::new(),
        }
    }

    /// Parses and elaborates a whole program, returning the declarations
    /// it added.
    ///
    /// # Errors
    ///
    /// Returns the first parse or elaboration error.
    pub fn elab_source(&mut self, src: &str) -> EResult<Vec<ElabDecl>> {
        let prog = ur_syntax::parse_program(src).map_err(parse_to_elab)?;
        self.elab_program(&prog)
    }

    /// Elaborates a parsed program.
    ///
    /// # Errors
    ///
    /// Returns the first elaboration error.
    pub fn elab_program(&mut self, prog: &Program) -> EResult<Vec<ElabDecl>> {
        let start = self.decls.len();
        for d in &prog.decls {
            // Per-declaration budget: resource outcomes must not depend on
            // how much fuel earlier declarations happened to burn, so the
            // sequential path matches the parallel scheduler (where every
            // worker task starts on a fresh budget).
            self.cx.fuel.reset();
            if let Err(e) = self.elab_top_decl(d) {
                self.reset_transient();
                self.cx.fuel.reset();
                return Err(e);
            }
            if let Some(kind) = self.cx.fuel.exhausted() {
                self.reset_transient();
                return Err(self.resource_error(d.span(), kind));
            }
        }
        Ok(self.decls[start..].to_vec())
    }

    /// Parses and elaborates a whole program, collecting **every**
    /// diagnostic instead of stopping at the first.
    ///
    /// Recovery happens at declaration boundaries: a failed declaration's
    /// transient state (queued constraints, folder holes) is discarded and
    /// elaboration continues with the next declaration, so one pass
    /// reports all independent errors. Returns the declarations that did
    /// elaborate alongside the diagnostics (empty when the program is
    /// clean).
    pub fn elab_source_all(&mut self, src: &str) -> (Vec<ElabDecl>, ur_syntax::Diagnostics) {
        match ur_syntax::parse_program(src) {
            Err(e) => (Vec::new(), vec![e.into()]),
            Ok(prog) => self.elab_program_all(&prog),
        }
    }

    /// Elaborates a parsed program, collecting every diagnostic (see
    /// [`elab_source_all`](Self::elab_source_all)). Diagnostics come back
    /// sorted by source span, so multi-error output is stable no matter
    /// what order the declarations were actually elaborated in.
    pub fn elab_program_all(
        &mut self,
        prog: &Program,
    ) -> (Vec<ElabDecl>, ur_syntax::Diagnostics) {
        let start = self.decls.len();
        let mut diags = ur_syntax::Diagnostics::new();
        for d in &prog.decls {
            if let Some(diag) = self.elab_decl_recover(d) {
                diags.push(diag);
            }
        }
        sort_diags(&mut diags);
        (self.decls[start..].to_vec(), diags)
    }

    /// Parses and elaborates a whole program on `threads` worker threads
    /// (see [`crate::batch`]), collecting every diagnostic. Produces
    /// results identical to [`elab_source_all`](Self::elab_source_all):
    /// same declarations, same span-sorted diagnostics, same error
    /// recovery. `threads <= 1` simply runs the sequential path.
    pub fn elab_source_all_threads(
        &mut self,
        src: &str,
        threads: usize,
    ) -> (Vec<ElabDecl>, ur_syntax::Diagnostics) {
        match ur_syntax::parse_program(src) {
            Err(e) => (Vec::new(), vec![e.into()]),
            Ok(prog) => self.elab_program_all_threads(&prog, threads),
        }
    }

    /// Elaborates a parsed program on `threads` worker threads (see
    /// [`crate::batch`]); `threads <= 1` runs sequentially.
    pub fn elab_program_all_threads(
        &mut self,
        prog: &Program,
        threads: usize,
    ) -> (Vec<ElabDecl>, ur_syntax::Diagnostics) {
        if threads <= 1 || prog.decls.len() < 2 {
            self.elab_program_all(prog)
        } else {
            crate::batch::run_parallel(self, prog, threads)
        }
    }

    /// Elaborates one top-level declaration with error recovery: on
    /// failure the declaration's transient state (queued constraints,
    /// folder holes) is discarded, the fuel is reset, and the error is
    /// returned as a diagnostic; the elaborator stays usable either way.
    ///
    /// Every declaration starts on a fresh fuel budget (the lifetime
    /// counter is preserved), so resource outcomes are independent of
    /// elaboration order — the invariant the parallel scheduler's
    /// determinism guarantee rests on.
    ///
    /// Under an active failpoint schedule, a resource exhaustion that
    /// coincides with injected `fuel_charge` faults is *suspect*: the
    /// declaration is retried (bounded, with full elaborator-state
    /// restore so metavariable numbering matches a clean run). The fault
    /// cap (`FpConfig::max_per_site`, default 3) is below the retry
    /// budget, so the final attempt is guaranteed fault-free and the
    /// healed outcome is identical to the never-faulted one. Without an
    /// active schedule this is a single attempt with zero extra cost.
    pub(crate) fn elab_decl_recover(&mut self, d: &SDecl) -> Option<ur_syntax::Diagnostic> {
        use ur_core::failpoint::{self, Site};
        if !failpoint::active() {
            return self.elab_decl_once(d);
        }
        const MAX_DECL_RETRIES: u32 = 4;
        let mut attempt = 0u32;
        loop {
            let snap = self.snapshot();
            let faults_before = failpoint::injected_at(Site::FuelCharge);
            let diag = self.elab_decl_once(d);
            let fuel_faulted = failpoint::injected_at(Site::FuelCharge) > faults_before;
            let suspect = fuel_faulted
                && diag
                    .as_ref()
                    .is_some_and(|g| g.code == ur_syntax::Code::ResourceExhausted);
            if suspect && attempt + 1 < MAX_DECL_RETRIES {
                self.restore(snap);
                self.cx.stats.decl_retries = self.cx.stats.decl_retries.saturating_add(1);
                attempt += 1;
                continue;
            }
            return diag;
        }
    }

    /// One elaboration attempt for a top-level declaration (the PR 3
    /// `elab_decl_recover` body, unchanged).
    fn elab_decl_once(&mut self, d: &SDecl) -> Option<ur_syntax::Diagnostic> {
        self.cx.fuel.reset();
        match self.elab_top_decl(d) {
            Ok(()) => {
                if let Some(kind) = self.cx.fuel.exhausted() {
                    self.reset_transient();
                    Some(self.resource_error(d.span(), kind).into())
                } else {
                    None
                }
            }
            Err(e) => {
                self.reset_transient();
                self.cx.fuel.reset();
                Some(e.into())
            }
        }
    }

    /// Captures the elaborator's full persistent state — global env,
    /// checking context (metas, stats, fuel, memo), scope stack, and the
    /// elaborated-declaration count — so a chaos-faulted attempt can be
    /// rolled back as if it never ran. Transient state (constraints,
    /// folder holes) is empty at declaration boundaries and needs no
    /// capture.
    pub fn snapshot(&self) -> ElabSnapshot {
        ElabSnapshot {
            genv: self.genv.clone(),
            cx: self.cx.clone(),
            scope: self.scope.clone(),
            decls_len: self.decls.len(),
        }
    }

    /// Restores a [`snapshot`](Self::snapshot), discarding everything a
    /// failed attempt may have recorded (env bindings, meta solutions,
    /// memo entries, pushed declarations).
    pub fn restore(&mut self, snap: ElabSnapshot) {
        self.genv = snap.genv;
        self.cx = snap.cx;
        self.scope = snap.scope;
        self.decls.truncate(snap.decls_len);
        self.constraints.clear();
        self.holes.clear();
    }

    /// Installs an already-elaborated declaration (produced by a worker
    /// thread and re-interned locally): records its global binding, its
    /// scope entry, and the declaration itself, exactly as
    /// [`elab_top_decl`](Self::elab_top_decl) would have.
    pub(crate) fn install_elab_decl(&mut self, d: ElabDecl) {
        match &d {
            ElabDecl::Con { name, sym, kind, def } => {
                match def {
                    Some(c) => self.genv.define_con(*sym, kind.clone(), *c),
                    None => self.genv.bind_con(*sym, kind.clone()),
                }
                let name = name.clone();
                let sym = *sym;
                self.bind_scope(&name, Entry::CVar(sym));
            }
            ElabDecl::Val { name, sym, ty, .. } => {
                self.genv.bind_val(*sym, *ty);
                let name = name.clone();
                let sym = *sym;
                self.bind_scope(&name, Entry::Val(sym));
            }
        }
        self.decls.push(d);
    }

    /// Discards constraints and folder holes left behind by a failed
    /// declaration, so the session stays usable.
    pub(crate) fn reset_transient(&mut self) {
        self.constraints.clear();
        self.holes.clear();
        self.scope.truncate(1);
    }

    /// Parses and elaborates a standalone expression against the current
    /// global environment, running the full inference pipeline (constraint
    /// draining, folder generation, finalization).
    ///
    /// # Errors
    ///
    /// Returns the first parse or elaboration error.
    pub fn elab_expr_source(&mut self, src: &str) -> EResult<(RExpr, RCon)> {
        let se = ur_syntax::parse_expr(src).map_err(parse_to_elab)?;
        let out = self.elab_expr_parsed(&se);
        if out.is_err() {
            self.reset_transient();
            self.cx.fuel.reset();
        }
        out
    }

    fn elab_expr_parsed(&mut self, se: &SExpr) -> EResult<(RExpr, RCon)> {
        let env = self.genv.clone();
        let (ee, ty) = self.elab_expr(&env, se, None)?;
        let span = se.span();
        self.drain()?;
        let subs = self.fill_folders()?;
        self.drain()?;
        self.check_no_constraints(span)?;
        let mut ee = ee;
        for (hole, term) in subs {
            ee = replace_var(&ee, &hole, &term);
        }
        let ee = finalize_expr(&self.cx, &ee);
        let ty = finalize_con(&self.cx, &ty);
        if let Some(m) = find_meta_expr(&ee).or_else(|| find_meta_con(&ty)) {
            return Err(ElabError::new(
                span,
                format!("could not infer {}", self.cx.metas.origin_of(m)),
            ));
        }
        Ok((ee, ty))
    }

    // ---------------- scope ----------------

    fn lookup(&self, name: &str) -> Option<&Entry> {
        self.scope
            .iter()
            .rev()
            .find_map(|frame| frame.iter().rev().find(|(n, _)| n == name))
            .map(|(_, e)| e)
    }

    fn push_frame(&mut self) {
        self.scope.push(Vec::new());
    }

    fn pop_frame(&mut self) {
        self.scope.pop();
    }

    pub(crate) fn bind_scope(&mut self, name: &str, e: Entry) {
        // The stack is never empty in practice (a root frame is installed
        // at construction and `reset_transient` keeps it), but re-install
        // it rather than panic if a recovery path ever drops it.
        if self.scope.is_empty() {
            self.scope.push(Vec::new());
        }
        if let Some(frame) = self.scope.last_mut() {
            frame.push((name.to_string(), e));
        }
    }

    // ---------------- constraints ----------------

    fn require_eq(
        &mut self,
        env: &Env,
        span: Span,
        c1: RCon,
        c2: RCon,
        origin: &str,
    ) -> EResult<()> {
        match unify(env, &mut self.cx, &c1, &c2) {
            Unify::Solved => Ok(()),
            Unify::Postpone => {
                self.cx.stats.constraints_postponed += 1;
                self.constraints.push(Pending {
                    env: env.clone(),
                    goal: Goal::Eq(c1, c2),
                    span,
                    origin: origin.to_string(),
                });
                Ok(())
            }
            Unify::Fail(msg) => Err(ElabError::new(
                span,
                format!("{origin}: {msg}"),
            )),
        }
    }

    fn require_disjoint(
        &mut self,
        env: &Env,
        span: Span,
        c1: RCon,
        c2: RCon,
        origin: &str,
    ) -> EResult<()> {
        match prove(env, &mut self.cx, &c1, &c2) {
            ProveResult::Proved => Ok(()),
            ProveResult::NotYet => {
                self.cx.stats.constraints_postponed += 1;
                self.constraints.push(Pending {
                    env: env.clone(),
                    goal: Goal::Disj(c1, c2),
                    span,
                    origin: origin.to_string(),
                });
                Ok(())
            }
            ProveResult::Refuted => Err(ElabError::new(
                span,
                format!(
                    "{origin}: rows {} and {} share a field name",
                    self.cx.metas.zonk(&c1),
                    self.cx.metas.zonk(&c2)
                ),
            )),
        }
    }

    /// Iterates the constraint queue to a fixed point (§4: "iterating
    /// through finding an immediately-solvable constraint, until no
    /// constraints remain").
    ///
    /// The number of rounds is capped by
    /// [`Limits::max_solver_rounds`](ur_core::Limits); exceeding it marks
    /// the fuel exhausted and returns normally, leaving the remaining
    /// constraints queued — [`check_no_constraints`](Self::check_no_constraints)
    /// then reports the exhaustion as a resource diagnostic.
    fn drain(&mut self) -> EResult<()> {
        let mut rounds: u32 = 0;
        loop {
            if self.cx.fuel.exhausted().is_some() {
                return Ok(());
            }
            rounds += 1;
            if rounds > self.cx.fuel.limits.max_solver_rounds {
                self.cx.fuel.exhaust(ur_core::ResourceKind::SolverRounds);
                return Ok(());
            }
            let mut progress = false;
            let pending = std::mem::take(&mut self.constraints);
            for p in pending {
                match &p.goal {
                    Goal::Eq(c1, c2) => match unify(&p.env, &mut self.cx, c1, c2) {
                        Unify::Solved => progress = true,
                        Unify::Postpone => self.constraints.push(p),
                        Unify::Fail(msg) => {
                            return Err(ElabError::new(
                                p.span,
                                format!("{}: {msg}", p.origin),
                            ))
                        }
                    },
                    Goal::Disj(c1, c2) => match prove(&p.env, &mut self.cx, c1, c2) {
                        ProveResult::Proved => progress = true,
                        ProveResult::NotYet => self.constraints.push(p),
                        ProveResult::Refuted => {
                            return Err(ElabError::new(
                                p.span,
                                format!(
                                    "{}: rows {} and {} share a field name",
                                    p.origin,
                                    self.cx.metas.zonk(c1),
                                    self.cx.metas.zonk(c2)
                                ),
                            ))
                        }
                    },
                }
            }
            if !progress {
                return Ok(());
            }
        }
    }

    // ---------------- kinds ----------------

    fn elab_kind(&mut self, k: &SKind) -> Kind {
        match k {
            SKind::Type => Kind::Type,
            SKind::Name => Kind::Name,
            SKind::Arrow(a, b) => Kind::arrow(self.elab_kind(a), self.elab_kind(b)),
            SKind::Row(a) => Kind::row(self.elab_kind(a)),
            SKind::Pair(a, b) => Kind::pair(self.elab_kind(a), self.elab_kind(b)),
            SKind::Wild => self.cx.metas.fresh_kind(),
        }
    }

    // ---------------- constructors ----------------

    /// Elaborates a surface constructor, checking against `expect` when
    /// given. Returns the core constructor and its kind.
    pub fn elab_con(
        &mut self,
        env: &Env,
        c: &SCon,
        expect: Option<&Kind>,
    ) -> EResult<(RCon, Kind)> {
        let span = c.span();
        let (core, kind) = self.elab_con_inner(env, c)?;
        if let Some(want) = expect {
            unify_kind(&mut self.cx, &kind, want).map_err(|e| {
                ElabError::new(span, format!("kind mismatch for {core}: {e}"))
            })?;
        }
        Ok((core, kind))
    }

    fn elab_con_inner(&mut self, env: &Env, c: &SCon) -> EResult<(RCon, Kind)> {
        match c {
            SCon::Var(span, x) => {
                if let Some(Entry::CVar(sym)) = self.lookup(x) {
                    let sym = *sym;
                    let kind = env
                        .lookup_con(&sym)
                        .map(|b| b.kind.clone())
                        .ok_or_else(|| {
                            ElabError::new(*span, format!("constructor {x} escaped its scope"))
                        })?;
                    return Ok((Con::var(&sym), kind));
                }
                // Pseudo-constants with per-occurrence fresh kinds (the
                // paper's library uses kind polymorphism for these).
                match x.as_str() {
                    "map" => {
                        let k1 = self.cx.metas.fresh_kind();
                        let k2 = self.cx.metas.fresh_kind();
                        let kind = Kind::arrow(
                            Kind::arrow(k1.clone(), k2.clone()),
                            Kind::arrow(Kind::row(k1.clone()), Kind::row(k2.clone())),
                        );
                        Ok((Con::map_c(k1, k2), kind))
                    }
                    "fst" | "snd" => {
                        let k1 = self.cx.metas.fresh_kind();
                        let k2 = self.cx.metas.fresh_kind();
                        let p = Sym::fresh("p");
                        let pk = Kind::pair(k1.clone(), k2.clone());
                        let (body, out) = if x == "fst" {
                            (Con::fst(Con::var(&p)), k1)
                        } else {
                            (Con::snd(Con::var(&p)), k2)
                        };
                        Ok((
                            Con::lam(p, pk.clone(), body),
                            Kind::arrow(pk, out),
                        ))
                    }
                    "folder" => {
                        let k = self.cx.metas.fresh_kind();
                        Ok((
                            Con::folder(k.clone()),
                            Kind::arrow(Kind::row(k), Kind::Type),
                        ))
                    }
                    "int" => Ok((Con::int(), Kind::Type)),
                    "float" => Ok((Con::float(), Kind::Type)),
                    "string" => Ok((Con::string(), Kind::Type)),
                    "bool" => Ok((Con::bool_(), Kind::Type)),
                    "unit" => Ok((Con::unit(), Kind::Type)),
                    _ => Err(ElabError::new(
                        *span,
                        format!("unbound type-level identifier {x}"),
                    )),
                }
            }
            SCon::Name(_, n) => Ok((Con::name(n.as_str()), Kind::Name)),
            SCon::Record(span, inner) => {
                let (row, _) =
                    self.elab_con(env, inner, Some(&Kind::row(Kind::Type)))?;
                let _ = span;
                Ok((Con::record(row), Kind::Type))
            }
            SCon::RowLit(span, entries) => {
                let elem = self.cx.metas.fresh_kind();
                let mut fields = Vec::new();
                for (nc, vc) in entries {
                    let name = self.elab_field_name(env, nc)?;
                    let value = match vc {
                        Some(vc) => {
                            let (v, _) = self.elab_con(env, vc, Some(&elem))?;
                            v
                        }
                        None => {
                            // `[nm]` in constraint position: the value is
                            // irrelevant to disjointness; use unit.
                            unify_kind(&mut self.cx, &elem, &Kind::Type).map_err(|e| {
                                ElabError::new(*span, format!("row literal: {e}"))
                            })?;
                            Con::unit()
                        }
                    };
                    fields.push((name, value));
                }
                Ok((
                    Con::row_of(elem.clone(), fields),
                    Kind::row(elem),
                ))
            }
            SCon::RecordType(_, fields) => {
                let mut row = Vec::new();
                for (nc, tc) in fields {
                    let name = self.elab_field_name(env, nc)?;
                    let (t, _) = self.elab_con(env, tc, Some(&Kind::Type))?;
                    row.push((name, t));
                }
                Ok((
                    Con::record(Con::row_of(Kind::Type, row)),
                    Kind::Type,
                ))
            }
            SCon::Cat(span, a, b) => {
                let elem = self.cx.metas.fresh_kind();
                let rk = Kind::row(elem);
                let (ca, _) = self.elab_con(env, a, Some(&rk))?;
                let (cb, _) = self.elab_con(env, b, Some(&rk))?;
                // Figure 2's side condition on concatenation becomes a
                // queued disjointness obligation.
                self.require_disjoint(
                    env,
                    *span,
                    ca,
                    cb,
                    "row concatenation",
                )?;
                Ok((Con::row_cat(ca, cb), rk))
            }
            SCon::App(span, f, a) => {
                let (cf, kf) = self.elab_con_inner(env, f)?;
                match self.cx.metas.resolve_kind(&kf) {
                    Kind::Arrow(dom, ran) => {
                        let (ca, _) = self.elab_con(env, a, Some(&dom))?;
                        Ok((Con::app(cf, ca), (*ran).clone()))
                    }
                    Kind::Meta(_) => {
                        let (ca, ka) = self.elab_con_inner(env, a)?;
                        let ran = self.cx.metas.fresh_kind();
                        unify_kind(&mut self.cx, &kf, &Kind::arrow(ka, ran.clone()))
                            .map_err(|e| ElabError::new(*span, e))?;
                        Ok((Con::app(cf, ca), ran))
                    }
                    other => Err(ElabError::new(
                        *span,
                        format!("{cf} of kind {other} is applied like a function"),
                    )),
                }
            }
            SCon::Lam(_, x, k, body) => {
                let kind = match k {
                    Some(k) => self.elab_kind(k),
                    None => self.cx.metas.fresh_kind(),
                };
                let sym = Sym::fresh(x.as_str());
                self.push_frame();
                self.bind_scope(x, Entry::CVar(sym));
                let mut env2 = env.clone();
                env2.bind_con(sym, kind.clone());
                let result = self.elab_con_inner(&env2, body);
                self.pop_frame();
                let (cb, kb) = result?;
                Ok((
                    Con::lam(sym, kind.clone(), cb),
                    Kind::arrow(kind, kb),
                ))
            }
            SCon::Arrow(_, a, b) => {
                let (ca, _) = self.elab_con(env, a, Some(&Kind::Type))?;
                let (cb, _) = self.elab_con(env, b, Some(&Kind::Type))?;
                Ok((Con::arrow(ca, cb), Kind::Type))
            }
            SCon::Poly(_, x, k, body) => {
                let kind = self.elab_kind(k);
                let sym = Sym::fresh(x.as_str());
                self.push_frame();
                self.bind_scope(x, Entry::CVar(sym));
                let mut env2 = env.clone();
                env2.bind_con(sym, kind.clone());
                let result = self.elab_con(&env2, body, Some(&Kind::Type));
                self.pop_frame();
                let (cb, _) = result?;
                Ok((Con::poly(sym, kind, cb), Kind::Type))
            }
            SCon::Guarded(_, c1, c2, body) => {
                let k1 = Kind::row(self.cx.metas.fresh_kind());
                let k2 = Kind::row(self.cx.metas.fresh_kind());
                let (cc1, _) = self.elab_con(env, c1, Some(&k1))?;
                let (cc2, _) = self.elab_con(env, c2, Some(&k2))?;
                let mut env2 = env.clone();
                env2.assume_disjoint(cc1, cc2);
                let (cb, _) = self.elab_con(&env2, body, Some(&Kind::Type))?;
                Ok((Con::guarded(cc1, cc2, cb), Kind::Type))
            }
            SCon::Pair(_, a, b) => {
                let (ca, ka) = self.elab_con_inner(env, a)?;
                let (cb, kb) = self.elab_con_inner(env, b)?;
                Ok((Con::pair(ca, cb), Kind::pair(ka, kb)))
            }
            SCon::Fst(span, p) => {
                let (cp, kp) = self.elab_con_inner(env, p)?;
                let k1 = self.cx.metas.fresh_kind();
                let k2 = self.cx.metas.fresh_kind();
                unify_kind(&mut self.cx, &kp, &Kind::pair(k1.clone(), k2))
                    .map_err(|e| ElabError::new(*span, e))?;
                Ok((Con::fst(cp), k1))
            }
            SCon::Snd(span, p) => {
                let (cp, kp) = self.elab_con_inner(env, p)?;
                let k1 = self.cx.metas.fresh_kind();
                let k2 = self.cx.metas.fresh_kind();
                unify_kind(&mut self.cx, &kp, &Kind::pair(k1, k2.clone()))
                    .map_err(|e| ElabError::new(*span, e))?;
                Ok((Con::snd(cp), k2))
            }
            SCon::Wild(span) => {
                let kind = self.cx.metas.fresh_kind();
                let m = self
                    .cx
                    .metas
                    .fresh_con(kind.clone(), format!("wildcard at {span}"));
                Ok((m, kind))
            }
        }
    }

    /// Elaborates a field-name position: a bound constructor variable of
    /// kind `Name` refers to that variable; anything else is a literal
    /// name.
    fn elab_field_name(&mut self, env: &Env, c: &SCon) -> EResult<RCon> {
        match c {
            SCon::Name(_, n) => Ok(Con::name(n.as_str())),
            SCon::Var(_, x) => {
                if let Some(Entry::CVar(sym)) = self.lookup(x) {
                    let sym = *sym;
                    if let Some(b) = env.lookup_con(&sym) {
                        let kind = b.kind.clone();
                        if unify_kind(&mut self.cx, &kind, &Kind::Name).is_ok() {
                            return Ok(Con::var(&sym));
                        }
                    }
                }
                Ok(Con::name(x.as_str()))
            }
            other => {
                let (cc, _) = self.elab_con(env, other, Some(&Kind::Name))?;
                Ok(cc)
            }
        }
    }

    // ---------------- expressions ----------------

    /// Elaborates an expression. `mode` is `Some(t)` for checking mode.
    pub fn elab_expr(
        &mut self,
        env: &Env,
        e: &SExpr,
        mode: Option<&RCon>,
    ) -> EResult<(RExpr, RCon)> {
        match e {
            SExpr::App(_, _, _)
            | SExpr::CApp(_, _, _)
            | SExpr::Bang(_, _)
            | SExpr::Var(_, _)
            | SExpr::Explicit(_, _) => self.elab_spine(env, e, mode),
            SExpr::Lit(span, l) => {
                let (le, ty) = match l {
                    SLit::Int(n) => (Lit::Int(*n), Con::int()),
                    SLit::Float(x) => (Lit::Float(*x), Con::float()),
                    SLit::Str(s) => (Lit::Str(s.as_str().into()), Con::string()),
                    SLit::Bool(b) => (Lit::Bool(*b), Con::bool_()),
                    SLit::Unit => (Lit::Unit, Con::unit()),
                };
                let ee = Expr::lit(le);
                self.finish_mode(env, *span, ee, ty, mode)
            }
            SExpr::Fn(span, params, body) => match mode {
                Some(expected) => self.check_fn(env, *span, params, body, expected),
                None => self.infer_fn(env, *span, params, body),
            },
            SExpr::Record(span, fields) => {
                // Checking mode against a fully determined record type:
                // check each field against its expected type (so
                // polymorphic field values are instantiated).
                if let Some(expected) = mode {
                    let exp_h = hnf(env, &mut self.cx, expected);
                    if let Con::Record(row) = &*exp_h {
                        let row = *row;
                        let mut nf = normalize_row(env, &mut self.cx, &row);
                        // Reverse-engineering (§4.2) driven by the literal:
                        // an expected row `map f ?m` gets `?m` pre-solved to
                        // a skeleton with the literal's field names, making
                        // the expectation fully determined.
                        if nf.fields.is_empty() && nf.atoms.len() == 1 {
                            if let (Some((_, dom)), Some(meta)) =
                                (nf.atoms[0].map.clone(), nf.atoms[0].base_meta())
                            {
                                let mut skel = Vec::new();
                                let mut ok = true;
                                for (nc, _) in fields {
                                    let name = self.elab_field_name(env, nc)?;
                                    if !matches!(&*name, Con::Name(_)) {
                                        ok = false;
                                        break;
                                    }
                                    let a = self.cx.metas.fresh_con(
                                        dom.clone(),
                                        format!("element for field {name} at {span}"),
                                    );
                                    skel.push((name, a));
                                }
                                if ok {
                                    let sol = Con::row_of(dom.clone(), skel);
                                    debug_assert!(!self.cx.metas.occurs(meta, &sol));
                                    self.cx.metas.solve(meta, sol);
                                    self.cx.stats.reverse_engineered += 1;
                                    nf = normalize_row(env, &mut self.cx, &row);
                                }
                            }
                        }
                        let all_lit = nf
                            .fields
                            .iter()
                            .all(|(k, _)| matches!(k, FieldKey::Lit(_)));
                        if nf.atoms.is_empty() && all_lit && nf.fields.len() == fields.len()
                        {
                            return self.check_record(env, *span, fields, &nf, &exp_h);
                        }
                    }
                }
                let mut core_fields = Vec::new();
                let mut row_fields: Vec<(RCon, RCon)> = Vec::new();
                let mut seen: HashSet<String> = HashSet::new();
                // Literal field names are proved pairwise-distinct by the
                // `seen` set in O(1) each; only computed (neutral) names
                // need the disjointness prover. Without this, an n-field
                // literal costs O(n²) normalization work.
                let mut all_names_lit = true;
                for (nc, ve) in fields {
                    let name = self.elab_field_name(env, nc)?;
                    let name_is_lit = if let Con::Name(n) = &*name {
                        if !seen.insert(n.to_string()) {
                            return Err(ElabError::new(
                                *span,
                                format!("duplicate field #{n} in record literal"),
                            ));
                        }
                        true
                    } else {
                        false
                    };
                    let (ev, tv) = self.elab_expr(env, ve, None)?;
                    // Record fields are monomorphic (ML-style): a
                    // polymorphic field value is instantiated with fresh
                    // metavariables; annotate to keep polymorphism.
                    let (ev, tv) = self.instantiate_implicits(env, *span, ev, tv)?;
                    let lit_so_far = name_is_lit && all_names_lit;
                    if !lit_so_far && !row_fields.is_empty() {
                        let single = Con::row_one(name, tv);
                        let acc = Con::row_of(Kind::Type, row_fields.clone());
                        self.require_disjoint(
                            env,
                            *span,
                            single,
                            acc,
                            "record literal",
                        )?;
                    }
                    all_names_lit &= name_is_lit;
                    core_fields.push((name, ev));
                    row_fields.push((name, tv));
                }
                let ee = Expr::record(core_fields);
                let ty = Con::record(Con::row_of(Kind::Type, row_fields));
                self.finish_mode(env, *span, ee, ty, mode)
            }
            SExpr::Proj(span, inner, field) => {
                let (ee, te) = self.elab_expr(env, inner, None)?;
                let name = self.elab_field_name(env, field)?;
                let row = self.expect_record_row(env, *span, &te)?;
                let fty = self.field_type(env, *span, &row, &name)?;
                let out = Expr::proj(ee, name);
                self.finish_mode(env, *span, out, fty, mode)
            }
            SExpr::Cut(span, inner, field) => {
                let (ee, te) = self.elab_expr(env, inner, None)?;
                let name = self.elab_field_name(env, field)?;
                let row = self.expect_record_row(env, *span, &te)?;
                let rest = self.cut_row(env, *span, &row, &name)?;
                let out = Expr::cut(ee, name);
                self.finish_mode(env, *span, out, Con::record(rest), mode)
            }
            SExpr::Cat(span, a, b) => {
                let (ea, ta) = self.elab_expr(env, a, None)?;
                let (eb, tb) = self.elab_expr(env, b, None)?;
                let ra = self.expect_record_row(env, *span, &ta)?;
                let rb = self.expect_record_row(env, *span, &tb)?;
                self.require_disjoint(
                    env,
                    *span,
                    ra,
                    rb,
                    "record concatenation",
                )?;
                let out = Expr::rec_cat(ea, eb);
                self.finish_mode(env, *span, out, Con::record(Con::row_cat(ra, rb)), mode)
            }
            SExpr::BinOp(span, op, a, b) => {
                let fname = binop_name(op).ok_or_else(|| {
                    ElabError::new(*span, format!("unknown operator {op}"))
                })?;
                let call = SExpr::App(
                    *span,
                    Box::new(SExpr::App(
                        *span,
                        Box::new(SExpr::Var(*span, fname.to_string())),
                        a.clone(),
                    )),
                    b.clone(),
                );
                self.elab_expr(env, &call, mode)
            }
            SExpr::Let(span, decls, body) => {
                self.push_frame();
                let mut env2 = env.clone();
                let mut bindings = Vec::new();
                for d in decls {
                    if let Some(b) = self.elab_let_decl(&mut env2, d)? {
                        bindings.push(b);
                    }
                }
                let result = self.elab_expr(&env2, body, mode);
                self.pop_frame();
                let (mut ee, ty) = result?;
                for (sym, bty, bound) in bindings.into_iter().rev() {
                    ee = Expr::let_(sym, bty, bound, ee);
                }
                let _ = span;
                Ok((ee, ty))
            }
            SExpr::If(span, c, t, el) => {
                let (ec, _) = self.elab_expr(env, c, Some(&Con::bool_()))?;
                // Check both branches against a shared (possibly fresh)
                // type, so polymorphic branch expressions (e.g. `none`)
                // are instantiated.
                let target = match mode {
                    Some(m) => *m,
                    None => self
                        .cx
                        .metas
                        .fresh_con(Kind::Type, format!("type of if at {span}")),
                };
                let (et, _) = self.elab_expr(env, t, Some(&target))?;
                let (ee, _) = self.elab_expr(env, el, Some(&target))?;
                Ok((Expr::if_(ec, et, ee), target))
            }
            SExpr::Ann(span, inner, tc) => {
                let (ty, _) = self.elab_con(env, tc, Some(&Kind::Type))?;
                let (ee, _) = self.elab_expr(env, inner, Some(&ty))?;
                self.finish_mode(env, *span, ee, ty, mode)
            }
        }
    }

    /// Instantiates leading `Poly`/`Guarded` layers of `ty` with fresh
    /// metavariables / inferred proofs, rewriting the term accordingly.
    fn instantiate_implicits(
        &mut self,
        env: &Env,
        span: Span,
        mut ee: RExpr,
        mut ty: RCon,
    ) -> EResult<(RExpr, RCon)> {
        loop {
            let ty_h = hnf(env, &mut self.cx, &ty);
            match &*ty_h {
                Con::Poly(a, k, body) => {
                    let m = self.cx.metas.fresh_con(
                        k.clone(),
                        format!("implicit argument {a} at {span}"),
                    );
                    ee = Expr::capp(ee, m);
                    ty = subst(body, a, &m);
                }
                Con::Guarded(c1, c2, body) => {
                    self.require_disjoint(
                        env,
                        span,
                        *c1,
                        *c2,
                        "disjointness obligation",
                    )?;
                    ee = Expr::dapp(ee);
                    ty = *body;
                }
                _ => return Ok((ee, ty)),
            }
        }
    }

    /// In checking mode, unifies the inferred type with the expectation.
    fn finish_mode(
        &mut self,
        env: &Env,
        span: Span,
        ee: RExpr,
        ty: RCon,
        mode: Option<&RCon>,
    ) -> EResult<(RExpr, RCon)> {
        if let Some(expected) = mode {
            self.require_eq(
                env,
                span,
                ty,
                *expected,
                "type mismatch",
            )?;
        }
        Ok((ee, ty))
    }

    /// Checks a record literal field-by-field against a fully determined
    /// expected row.
    fn check_record(
        &mut self,
        env: &Env,
        span: Span,
        fields: &[(ur_syntax::ast::SCon, SExpr)],
        nf: &ur_core::row::RowNf,
        expected: &RCon,
    ) -> EResult<(RExpr, RCon)> {
        let mut core_fields = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        for (nc, ve) in fields {
            let name = self.elab_field_name(env, nc)?;
            let name_h = hnf(env, &mut self.cx, &name);
            let Con::Name(n) = &*name_h else {
                return Err(ElabError::new(
                    span,
                    format!("record field {name_h} must be a literal name here"),
                ));
            };
            if !seen.insert(n.to_string()) {
                return Err(ElabError::new(
                    span,
                    format!("duplicate field #{n} in record literal"),
                ));
            }
            let Some(want) = nf.field_lit(n) else {
                return Err(ElabError::new(
                    span,
                    format!("record type {expected} has no field #{n}"),
                ));
            };
            let want = *want;
            let (ev, _) = self.elab_expr(env, ve, Some(&want))?;
            core_fields.push((name_h, ev));
        }
        Ok((Expr::record(core_fields), (*expected)))
    }

    /// Requires `t` to be a record type, returning its row (introducing a
    /// metavariable when `t` is not yet determined).
    fn expect_record_row(&mut self, env: &Env, span: Span, t: &RCon) -> EResult<RCon> {
        let t_h = hnf(env, &mut self.cx, t);
        match &*t_h {
            Con::Record(r) => Ok(*r),
            _ => {
                let row = self
                    .cx
                    .metas
                    .fresh_con(Kind::row(Kind::Type), format!("record row at {span}"));
                self.require_eq(
                    env,
                    span,
                    t_h,
                    Con::record(row),
                    "record expected",
                )?;
                Ok(row)
            }
        }
    }

    /// The type of field `name` in `row`: direct lookup when possible,
    /// otherwise via the unification `row = [name = ?a] ++ ?rest`.
    fn field_type(&mut self, env: &Env, span: Span, row: &RCon, name: &RCon) -> EResult<RCon> {
        let nf = normalize_row(env, &mut self.cx, row);
        let name_h = hnf(env, &mut self.cx, name);
        for (key, v) in &nf.fields {
            let hit = match (&*name_h, key) {
                (Con::Name(n), FieldKey::Lit(m)) => ur_core::intern::names_eq(n, m),
                (_, FieldKey::Neutral(k)) => {
                    let k = *k;
                    ur_core::defeq::defeq(env, &mut self.cx, &name_h, &k)
                }
                _ => false,
            };
            if hit {
                // The declarative rule reads e : $([c = t] ++ c');
                // well-formedness of that concatenation is a disjointness
                // obligation (this is the prover's main workload in Fig. 5).
                let v = *v;
                let rest = self.cut_row_direct(env, &nf, &name_h);
                self.require_disjoint(
                    env,
                    span,
                    Con::row_one(name_h, v),
                    rest,
                    "field projection",
                )?;
                return Ok(v);
            }
        }
        if nf.atoms.is_empty() {
            return Err(ElabError::new(
                span,
                format!(
                    "record type ${} has no field {name_h}",
                    self.cx.metas.zonk(row)
                ),
            ));
        }
        let a = self
            .cx
            .metas
            .fresh_con(Kind::Type, format!("type of field {name_h} at {span}"));
        let rest = self
            .cx
            .metas
            .fresh_con(Kind::row(Kind::Type), format!("row rest at {span}"));
        let single = Con::row_one(name_h, a);
        self.require_disjoint(
            env,
            span,
            single,
            rest,
            "field projection",
        )?;
        self.require_eq(
            env,
            span,
            *row,
            Con::row_cat(single, rest),
            "field projection",
        )?;
        Ok(a)
    }

    /// The row of `nf` without field `name` (which must be present),
    /// used to phrase projection disjointness obligations.
    fn cut_row_direct(
        &mut self,
        env: &Env,
        nf: &ur_core::row::RowNf,
        name: &RCon,
    ) -> RCon {
        let mut out = nf.clone();
        out.fields.clear();
        let mut removed = false;
        for (key, v) in &nf.source_fields {
            let hit = !removed
                && match (&**name, key) {
                    (Con::Name(n), FieldKey::Lit(m)) => ur_core::intern::names_eq(n, m),
                    (_, FieldKey::Neutral(k)) => {
                        let k = *k;
                        ur_core::defeq::defeq(env, &mut self.cx, name, &k)
                    }
                    _ => false,
                };
            if hit {
                removed = true;
            } else {
                out.fields.push((key.clone(), (*v)));
            }
        }
        out.to_con()
    }

    /// The row remaining after cutting `name` from `row`.
    fn cut_row(&mut self, env: &Env, span: Span, row: &RCon, name: &RCon) -> EResult<RCon> {
        let nf = normalize_row(env, &mut self.cx, row);
        let name_h = hnf(env, &mut self.cx, name);
        if nf.atoms.is_empty() {
            // Fully determined: remove directly.
            let mut out = Vec::new();
            let mut found = false;
            for (key, v) in &nf.source_fields {
                let hit = !found
                    && match (&*name_h, key) {
                        (Con::Name(n), FieldKey::Lit(m)) => ur_core::intern::names_eq(n, m),
                        (_, FieldKey::Neutral(k)) => {
                            let k = *k;
                            ur_core::defeq::defeq(env, &mut self.cx, &name_h, &k)
                        }
                        _ => false,
                    };
                if hit {
                    found = true;
                } else {
                    out.push((key.to_con(), (*v)));
                }
            }
            if !found {
                return Err(ElabError::new(
                    span,
                    format!(
                        "record type ${} has no field {name_h} to remove",
                        self.cx.metas.zonk(row)
                    ),
                ));
            }
            let rest = Con::row_of(nf.kind_or_type(), out);
            self.require_disjoint(
                env,
                span,
                Con::row_one(name_h, Con::unit()),
                rest,
                "field removal",
            )?;
            return Ok(rest);
        }
        let a = self
            .cx
            .metas
            .fresh_con(Kind::Type, format!("type of removed field at {span}"));
        let rest = self
            .cx
            .metas
            .fresh_con(Kind::row(Kind::Type), format!("row rest at {span}"));
        let single = Con::row_one(name_h, a);
        self.require_disjoint(
            env,
            span,
            single,
            rest,
            "field removal",
        )?;
        self.require_eq(
            env,
            span,
            *row,
            Con::row_cat(single, rest),
            "field removal",
        )?;
        Ok(rest)
    }

    // ---------------- application spines ----------------

    fn elab_spine(
        &mut self,
        env: &Env,
        e: &SExpr,
        mode: Option<&RCon>,
    ) -> EResult<(RExpr, RCon)> {
        let mut args = Vec::new();
        let head = flatten_spine(e, &mut args);
        let span = e.span();
        // `@f ...`: pass folder arguments explicitly (real Ur's
        // explicitness marker).
        let (head, explicit_folders) = match head {
            SExpr::Explicit(_, inner) => (&**inner, true),
            other => (other, false),
        };
        let (mut ee, mut ty) = self.elab_head(env, head)?;
        let mut idx = 0;

        loop {
            let ty_h = hnf(env, &mut self.cx, &ty);
            match &*ty_h {
                Con::Poly(a, k, body) => {
                    if let Some(SpArg::C(c, cspan)) = args.get(idx) {
                        let (cc, _) = self.elab_con(env, c, Some(k))?;
                        ee = Expr::capp(ee, cc);
                        ty = subst(body, a, &cc);
                        let _ = cspan;
                        idx += 1;
                        continue;
                    }
                    let more_args = idx < args.len();
                    let must_instantiate = more_args
                        || mode.is_some_and(|m| {
                            let m_h = hnf(env, &mut self.cx, m);
                            !matches!(&*m_h, Con::Poly(_, _, _))
                        });
                    if must_instantiate {
                        let m = self.cx.metas.fresh_con(
                            k.clone(),
                            format!("implicit argument {a} at {span}"),
                        );
                        ee = Expr::capp(ee, m);
                        ty = subst(body, a, &m);
                        continue;
                    }
                    break;
                }
                Con::Guarded(c1, c2, body) => {
                    let explicit = matches!(args.get(idx), Some(SpArg::B(_)));
                    let more_args = idx < args.len();
                    let must_discharge = explicit
                        || more_args
                        || mode.is_some_and(|m| {
                            let m_h = hnf(env, &mut self.cx, m);
                            !matches!(&*m_h, Con::Guarded(_, _, _))
                        });
                    if !must_discharge {
                        break;
                    }
                    self.require_disjoint(
                        env,
                        span,
                        *c1,
                        *c2,
                        "disjointness obligation",
                    )?;
                    ee = Expr::dapp(ee);
                    ty = *body;
                    if explicit {
                        idx += 1;
                    }
                    continue;
                }
                Con::Arrow(dom, ran) => {
                    let Some(arg) = args.get(idx) else { break };
                    match arg {
                        SpArg::E(ae) => {
                            // Omitted folder arguments become holes filled
                            // after inference (§4.4) — unless the user
                            // passes a folder-typed variable explicitly.
                            if let Some((fk, row)) = self.folder_row(env, dom) {
                                if !explicit_folders && !self.arg_is_folder_var(env, ae) {
                                    let hole = Sym::fresh("fl");
                                    self.holes.push(Hole {
                                        sym: hole,
                                        row,
                                        elem_kind: fk,
                                        env: env.clone(),
                                        span,
                                    });
                                    ee = Expr::app(ee, Expr::var(&hole));
                                    ty = *ran;
                                    continue;
                                }
                            }
                            let dom = *dom;
                            let ran = *ran;
                            let (ea, _) = self.elab_expr(env, ae, Some(&dom))?;
                            ee = Expr::app(ee, ea);
                            ty = ran;
                            idx += 1;
                        }
                        SpArg::C(_, cspan) => {
                            return Err(ElabError::new(
                                *cspan,
                                format!(
                                    "explicit constructor argument given, but the function \
                                     expects a value of type {dom}"
                                ),
                            ))
                        }
                        SpArg::B(bspan) => {
                            return Err(ElabError::new(
                                *bspan,
                                "`!` used, but the function type has no constraint here"
                                    .to_string(),
                            ))
                        }
                    }
                }
                // A folder being *used* as a function: unfold its
                // definition.
                Con::App(_, _) if idx < args.len() => {
                    if let Some((k, row)) = ur_core::folder::as_folder_app(&ty_h) {
                        let k = self.cx.metas.zonk_kind(&k);
                        ty = unfold_folder(&k, &row);
                        continue;
                    }
                    if idx < args.len() {
                        return Err(ElabError::new(
                            span,
                            format!("expression of type {ty_h} is applied like a function"),
                        ));
                    }
                    break;
                }
                Con::Meta(_) => {
                    if let Some(SpArg::E(_)) = args.get(idx) {
                        let d = self
                            .cx
                            .metas
                            .fresh_con(Kind::Type, format!("argument type at {span}"));
                        let r = self
                            .cx
                            .metas
                            .fresh_con(Kind::Type, format!("result type at {span}"));
                        self.require_eq(
                            env,
                            span,
                            ty_h,
                            Con::arrow(d, r),
                            "application of unknown function",
                        )?;
                        continue;
                    }
                    break;
                }
                _ => {
                    if idx < args.len() {
                        return Err(ElabError::new(
                            span,
                            format!("expression of type {ty_h} is applied like a function"),
                        ));
                    }
                    break;
                }
            }
        }

        self.finish_mode(env, span, ee, ty, mode)
    }

    fn elab_head(&mut self, env: &Env, head: &SExpr) -> EResult<(RExpr, RCon)> {
        match head {
            SExpr::Var(span, x) => match self.lookup(x) {
                Some(Entry::Val(sym)) => {
                    let sym = *sym;
                    let ty = env.lookup_val(&sym).cloned().ok_or_else(|| {
                        ElabError::new(*span, format!("variable {x} escaped its scope"))
                    })?;
                    Ok((Expr::var(&sym), ty))
                }
                Some(Entry::CVar(_)) => Err(ElabError::new(
                    *span,
                    format!("{x} is a type-level variable, not a value"),
                )),
                None => Err(ElabError::new(*span, format!("unbound variable {x}"))),
            },
            other => self.elab_expr(env, other, None),
        }
    }

    /// If `t` head-normalizes to `folder r`, returns the element kind and
    /// `r`.
    fn folder_row(&mut self, env: &Env, t: &RCon) -> Option<(Kind, RCon)> {
        let t = hnf(env, &mut self.cx, t);
        let (head, args) = t.spine();
        let head = hnf(env, &mut self.cx, &head);
        match (&*head, args.len()) {
            (Con::Folder(k), 1) => Some((k.clone(), args[0])),
            _ => None,
        }
    }

    /// True when the surface argument is a variable whose type is a folder
    /// (so the user is passing a folder explicitly).
    fn arg_is_folder_var(&mut self, env: &Env, e: &SExpr) -> bool {
        if let SExpr::Var(_, x) = e {
            if let Some(Entry::Val(sym)) = self.lookup(x) {
                let sym = *sym;
                if let Some(t) = env.lookup_val(&sym).cloned() {
                    return self.folder_row(env, &t).is_some();
                }
            }
        }
        false
    }

    // ---------------- functions ----------------

    fn check_fn(
        &mut self,
        env: &Env,
        span: Span,
        params: &[SParam],
        body: &SExpr,
        expected: &RCon,
    ) -> EResult<(RExpr, RCon)> {
        self.push_frame();
        let result = self.check_fn_inner(env, span, params, body, expected);
        self.pop_frame();
        result
    }

    fn check_fn_inner(
        &mut self,
        env: &Env,
        span: Span,
        params: &[SParam],
        body: &SExpr,
        expected: &RCon,
    ) -> EResult<(RExpr, RCon)> {
        let Some(param) = params.first() else {
            let (ee, _) = self.elab_expr(env, body, Some(expected))?;
            return Ok((ee, (*expected)));
        };
        let mut exp_h = hnf(env, &mut self.cx, expected);
        // Folder values can be written literally (`fn [tf] step init => ...`);
        // unfold the expected folder type to its polymorphic fold form.
        if let Some((k, r)) = ur_core::folder::as_folder_app(&exp_h) {
            let k = self.cx.metas.zonk_kind(&k);
            exp_h = unfold_folder(&k, &r);
        }
        match (param, &*exp_h) {
            (SParam::CParam(x, kann), Con::Poly(a, k, t)) => {
                if let Some(kann) = kann {
                    let ka = self.elab_kind(kann);
                    unify_kind(&mut self.cx, &ka, k)
                        .map_err(|e| ElabError::new(span, e))?;
                }
                let sym = Sym::fresh(x.as_str());
                self.bind_scope(x, Entry::CVar(sym));
                let mut env2 = env.clone();
                env2.bind_con(sym, k.clone());
                let inner = subst(t, a, &Con::var(&sym));
                let (eb, _) = self.check_fn_inner(&env2, span, &params[1..], body, &inner)?;
                Ok((
                    Expr::clam(sym, k.clone(), eb),
                    exp_h,
                ))
            }
            (SParam::DParam(c1, c2), Con::Guarded(g1, g2, t)) => {
                // The binder *names* the assumption; the core term carries
                // the expected guard. (In the paper's §2.3 selector the
                // written `[rest ~ r]` stands for the substituted guard
                // `[rest ~ [nm = t] ++ r]`.) We unify the written
                // constructors best-effort to propagate metavariables, and
                // assume both forms as facts.
                let (cc1, _) = self.elab_con(env, c1, None)?;
                let (cc2, _) = self.elab_con(env, c2, None)?;
                let _ = unify(env, &mut self.cx, &cc1, g1);
                let _ = unify(env, &mut self.cx, &cc2, g2);
                let mut env2 = env.clone();
                env2.assume_disjoint(*g1, *g2);
                env2.assume_disjoint(cc1, cc2);
                let (eb, _) = self.check_fn_inner(&env2, span, &params[1..], body, t)?;
                Ok((
                    Expr::dlam(*g1, *g2, eb),
                    exp_h,
                ))
            }
            (SParam::VParam(x, tann), Con::Arrow(dom, ran)) => {
                if let Some(tann) = tann {
                    let (ta, _) = self.elab_con(env, tann, Some(&Kind::Type))?;
                    self.require_eq(
                        env,
                        span,
                        ta,
                        *dom,
                        "parameter annotation",
                    )?;
                }
                let sym = Sym::fresh(x.as_str());
                self.bind_scope(x, Entry::Val(sym));
                let mut env2 = env.clone();
                env2.bind_val(sym, *dom);
                let (eb, _) = self.check_fn_inner(&env2, span, &params[1..], body, ran)?;
                Ok((
                    Expr::lam(sym, *dom, eb),
                    exp_h,
                ))
            }
            (SParam::VParam(x, tann), Con::Meta(_)) => {
                // Unknown expected type: invent an arrow and retry.
                let dom = match tann {
                    Some(tann) => self.elab_con(env, tann, Some(&Kind::Type))?.0,
                    None => self
                        .cx
                        .metas
                        .fresh_con(Kind::Type, format!("parameter {x} at {span}")),
                };
                let ran = self
                    .cx
                    .metas
                    .fresh_con(Kind::Type, format!("function body type at {span}"));
                self.require_eq(
                    env,
                    span,
                    exp_h,
                    Con::arrow(dom, ran),
                    "function against unknown type",
                )?;
                let sym = Sym::fresh(x.as_str());
                self.bind_scope(x, Entry::Val(sym));
                let mut env2 = env.clone();
                env2.bind_val(sym, dom);
                let (eb, _) = self.check_fn_inner(&env2, span, &params[1..], body, &ran)?;
                Ok((Expr::lam(sym, dom, eb), exp_h))
            }
            (p, _) => Err(ElabError::new(
                span,
                format!(
                    "function parameter {} does not match expected type {}",
                    param_desc(p),
                    self.cx.metas.zonk(&exp_h)
                ),
            )),
        }
    }

    fn infer_fn(
        &mut self,
        env: &Env,
        span: Span,
        params: &[SParam],
        body: &SExpr,
    ) -> EResult<(RExpr, RCon)> {
        self.push_frame();
        let result = self.infer_fn_inner(env, span, params, body);
        self.pop_frame();
        result
    }

    fn infer_fn_inner(
        &mut self,
        env: &Env,
        span: Span,
        params: &[SParam],
        body: &SExpr,
    ) -> EResult<(RExpr, RCon)> {
        let Some(param) = params.first() else {
            let (ee, ty) = self.elab_expr(env, body, None)?;
            // The body of a *value* lambda is monomorphic (annotate the
            // result type to return something polymorphic).
            return self.instantiate_implicits(env, span, ee, ty);
        };
        match param {
            SParam::CParam(x, kann) => {
                let kind = match kann {
                    Some(k) => self.elab_kind(k),
                    None => self.cx.metas.fresh_kind(),
                };
                let sym = Sym::fresh(x.as_str());
                self.bind_scope(x, Entry::CVar(sym));
                let mut env2 = env.clone();
                env2.bind_con(sym, kind.clone());
                let (eb, tb) = self.infer_fn_inner(&env2, span, &params[1..], body)?;
                Ok((
                    Expr::clam(sym, kind.clone(), eb),
                    Con::poly(sym, kind, tb),
                ))
            }
            SParam::DParam(c1, c2) => {
                let k1 = Kind::row(self.cx.metas.fresh_kind());
                let k2 = Kind::row(self.cx.metas.fresh_kind());
                let (cc1, _) = self.elab_con(env, c1, Some(&k1))?;
                let (cc2, _) = self.elab_con(env, c2, Some(&k2))?;
                let mut env2 = env.clone();
                env2.assume_disjoint(cc1, cc2);
                let (eb, tb) = self.infer_fn_inner(&env2, span, &params[1..], body)?;
                Ok((
                    Expr::dlam(cc1, cc2, eb),
                    Con::guarded(cc1, cc2, tb),
                ))
            }
            SParam::VParam(x, tann) => {
                let dom = match tann {
                    Some(t) => self.elab_con(env, t, Some(&Kind::Type))?.0,
                    None => {
                        return Err(ElabError::new(
                            span,
                            format!(
                                "parameter {x} needs a type annotation (only metaprogram \
                                 *definitions* require annotations; uses do not)"
                            ),
                        ))
                    }
                };
                let sym = Sym::fresh(x.as_str());
                self.bind_scope(x, Entry::Val(sym));
                let mut env2 = env.clone();
                env2.bind_val(sym, dom);
                let (eb, tb) = self.infer_fn_inner(&env2, span, &params[1..], body)?;
                Ok((
                    Expr::lam(sym, dom, eb),
                    Con::arrow(dom, tb),
                ))
            }
        }
    }

    // ---------------- declarations ----------------

    pub(crate) fn elab_top_decl(&mut self, d: &SDecl) -> EResult<()> {
        match d {
            SDecl::ConAbs(_, name, k) => {
                let kind = self.elab_kind(k);
                let kind = finalize_kind(&self.cx, &kind);
                let sym = Sym::fresh(name.as_str());
                self.genv.bind_con(sym, kind.clone());
                self.bind_scope(name, Entry::CVar(sym));
                self.decls.push(ElabDecl::Con {
                    name: name.clone(),
                    sym,
                    kind,
                    def: None,
                });
                Ok(())
            }
            SDecl::ConDef(span, name, kann, c) => {
                let expect = kann.as_ref().map(|k| self.elab_kind(k));
                let env = self.genv.clone();
                let (cc, kind) = self.elab_con(&env, c, expect.as_ref())?;
                self.drain()?;
                let cc = finalize_con(&self.cx, &cc);
                let kind = finalize_kind(&self.cx, &kind);
                if let Some(m) = find_meta_con(&cc) {
                    return Err(ElabError::new(
                        *span,
                        format!(
                            "type definition {name} contains an undetermined part ({})",
                            self.cx.metas.origin_of(m)
                        ),
                    ));
                }
                let sym = Sym::fresh(name.as_str());
                self.genv.define_con(sym, kind.clone(), cc);
                self.bind_scope(name, Entry::CVar(sym));
                self.decls.push(ElabDecl::Con {
                    name: name.clone(),
                    sym,
                    kind,
                    def: Some(cc),
                });
                Ok(())
            }
            SDecl::ValAbs(span, name, t) => {
                let env = self.genv.clone();
                let (tc, _) = self.elab_con(&env, t, Some(&Kind::Type))?;
                self.drain()?;
                self.check_no_constraints(*span)?;
                let tc = finalize_con(&self.cx, &tc);
                let sym = Sym::fresh(name.as_str());
                self.genv.bind_val(sym, tc);
                self.bind_scope(name, Entry::Val(sym));
                self.decls.push(ElabDecl::Val {
                    name: name.clone(),
                    sym,
                    ty: tc,
                    body: None,
                });
                Ok(())
            }
            SDecl::Val(span, name, ann, e) => {
                let env = self.genv.clone();
                let (ee, ty) = match ann {
                    Some(t) => {
                        let (tc, _) = self.elab_con(&env, t, Some(&Kind::Type))?;
                        let (ee, _) = self.elab_expr(&env, e, Some(&tc))?;
                        (ee, tc)
                    }
                    None => self.elab_expr(&env, e, None)?,
                };
                self.finish_val(*span, name, ee, ty)
            }
            SDecl::Fun(span, name, params, ann, e) => {
                let body = match ann {
                    Some(t) => SExpr::Ann(*span, Box::new(e.clone()), t.clone()),
                    None => e.clone(),
                };
                let fn_expr = SExpr::Fn(*span, params.clone(), Box::new(body));
                let env = self.genv.clone();
                let (ee, ty) = self.elab_expr(&env, &fn_expr, None)?;
                self.finish_val(*span, name, ee, ty)
            }
        }
    }

    fn finish_val(&mut self, span: Span, name: &str, ee: RExpr, ty: RCon) -> EResult<()> {
        self.drain()?;
        let subs = self.fill_folders()?;
        self.drain()?;
        self.check_no_constraints(span)?;
        let mut ee = ee;
        for (hole, term) in subs {
            ee = replace_var(&ee, &hole, &term);
        }
        let ee = finalize_expr(&self.cx, &ee);
        let ty = finalize_con(&self.cx, &ty);
        if let Some(m) = find_meta_expr(&ee).or_else(|| find_meta_con(&ty)) {
            return Err(ElabError::new(
                span,
                format!(
                    "could not infer {} in declaration of {name}",
                    self.cx.metas.origin_of(m)
                ),
            ));
        }
        let sym = Sym::fresh(name);
        self.genv.bind_val(sym, ty);
        self.bind_scope(name, Entry::Val(sym));
        self.decls.push(ElabDecl::Val {
            name: name.to_string(),
            sym,
            ty,
            body: Some(ee),
        });
        Ok(())
    }

    /// Builds the E0900 diagnostic for an exhausted budget and resets the
    /// fuel so the session stays usable. The message names *which* budget
    /// ran out, how much of it was spent against its configured limit,
    /// and the `Limits` knob that raises it — so a user hitting E0900 on
    /// a legitimately large program knows exactly what to tune. (The
    /// "resource limit exhausted" prefix is what `error::classify` keys
    /// on; keep it stable.)
    pub(crate) fn resource_error(&mut self, span: Span, kind: ur_core::ResourceKind) -> ElabError {
        let limits = self.cx.fuel.limits;
        let (used, limit, knob) = match kind {
            ur_core::ResourceKind::NormSteps => (
                self.cx.fuel.norm_steps_used(),
                limits.max_norm_steps,
                "max_norm_steps",
            ),
            ur_core::ResourceKind::ProverPairs => (
                self.cx.fuel.prover_pairs_used(),
                limits.max_prover_pairs,
                "max_prover_pairs",
            ),
            ur_core::ResourceKind::Depth => (
                limits.max_depth as u64,
                limits.max_depth as u64,
                "max_depth",
            ),
            ur_core::ResourceKind::SolverRounds => (
                u64::from(limits.max_solver_rounds),
                u64::from(limits.max_solver_rounds),
                "max_solver_rounds",
            ),
        };
        self.cx.fuel.reset();
        ElabError::new(
            span,
            format!(
                "resource limit exhausted during inference: {kind} budget spent \
                 ({used} of {limit}; raise Limits::{knob} for larger programs)"
            ),
        )
        .with_code(ur_syntax::Code::ResourceExhausted)
    }

    fn check_no_constraints(&mut self, span: Span) -> EResult<()> {
        // Budget exhaustion dominates: leftover constraints are expected
        // when inference was cut short, and reporting them as "unsolved"
        // would bury the real cause.
        if let Some(kind) = self.cx.fuel.exhausted() {
            self.constraints.clear();
            return Err(self.resource_error(span, kind));
        }
        if let Some(p) = self.constraints.first() {
            let msg = match &p.goal {
                Goal::Eq(c1, c2) => format!(
                    "unsolved constraint ({}): {} = {}",
                    p.origin,
                    self.cx.metas.zonk(c1),
                    self.cx.metas.zonk(c2)
                ),
                Goal::Disj(c1, c2) => format!(
                    "unproved disjointness ({}): {} ~ {}",
                    p.origin,
                    self.cx.metas.zonk(c1),
                    self.cx.metas.zonk(c2)
                ),
            };
            let pspan = p.span;
            self.constraints.clear();
            let _ = span;
            return Err(ElabError::new(pspan, msg));
        }
        Ok(())
    }

    fn elab_let_decl(
        &mut self,
        env: &mut Env,
        d: &SDecl,
    ) -> EResult<Option<(Sym, RCon, RExpr)>> {
        match d {
            SDecl::Val(_, name, ann, e) => {
                let (ee, ty) = match ann {
                    Some(t) => {
                        let (tc, _) = self.elab_con(env, t, Some(&Kind::Type))?;
                        let (ee, _) = self.elab_expr(env, e, Some(&tc))?;
                        (ee, tc)
                    }
                    None => self.elab_expr(env, e, None)?,
                };
                let sym = Sym::fresh(name.as_str());
                env.bind_val(sym, ty);
                self.bind_scope(name, Entry::Val(sym));
                Ok(Some((sym, ty, ee)))
            }
            SDecl::Fun(span, name, params, ann, e) => {
                let body = match ann {
                    Some(t) => SExpr::Ann(*span, Box::new(e.clone()), t.clone()),
                    None => e.clone(),
                };
                let fn_expr = SExpr::Fn(*span, params.clone(), Box::new(body));
                let (ee, ty) = self.elab_expr(env, &fn_expr, None)?;
                let sym = Sym::fresh(name.as_str());
                env.bind_val(sym, ty);
                self.bind_scope(name, Entry::Val(sym));
                Ok(Some((sym, ty, ee)))
            }
            SDecl::ConDef(_, name, kann, c) => {
                let expect = kann.as_ref().map(|k| self.elab_kind(k));
                let (cc, kind) = self.elab_con(env, c, expect.as_ref())?;
                let sym = Sym::fresh(name.as_str());
                env.define_con(sym, kind.clone(), cc);
                // Also record globally so later core type checking can
                // unfold the definition.
                self.genv.define_con(sym, kind, cc);
                self.bind_scope(name, Entry::CVar(sym));
                Ok(None)
            }
            other => Err(ElabError::new(
                other.span(),
                "only `val`, `fun`, and `type`/`con` definitions may appear in `let`"
                    .to_string(),
            )),
        }
    }

    // ---------------- folder generation (§4.4) ----------------

    /// Generates folder instances for all pending holes. Returns the
    /// substitution from hole symbols to generated terms.
    fn fill_folders(&mut self) -> EResult<Vec<(Sym, RExpr)>> {
        let holes = std::mem::take(&mut self.holes);
        let mut subs = Vec::new();
        for h in holes {
            let row = self.cx.metas.zonk(&h.row);
            let nf = normalize_row(&h.env, &mut self.cx, &row);
            if !nf.atoms.is_empty() {
                return Err(ElabError::new(
                    h.span,
                    format!(
                        "cannot generate a folder: row {} is not fully determined",
                        self.cx.metas.zonk(&row)
                    ),
                ));
            }
            let mut fields = Vec::new();
            for (key, v) in &nf.source_fields {
                match key {
                    FieldKey::Lit(n) => {
                        fields.push(((*n), finalize_con(&self.cx, v)))
                    }
                    FieldKey::Neutral(c) => {
                        return Err(ElabError::new(
                            h.span,
                            format!(
                                "cannot generate a folder: field name {c} is not a literal"
                            ),
                        ))
                    }
                }
            }
            let elem_k = finalize_kind(&self.cx, &h.elem_kind);
            let term = gen_folder(&elem_k, &fields);
            self.cx.stats.folders_generated += 1;
            subs.push((h.sym, term));
        }
        Ok(subs)
    }
}

// ---------------- spine flattening ----------------

enum SpArg<'a> {
    E(&'a SExpr),
    C(&'a SCon, Span),
    B(Span),
}

fn flatten_spine<'a>(e: &'a SExpr, args: &mut Vec<SpArg<'a>>) -> &'a SExpr {
    match e {
        SExpr::App(_, f, a) => {
            let h = flatten_spine(f, args);
            args.push(SpArg::E(a));
            h
        }
        SExpr::CApp(span, f, c) => {
            let h = flatten_spine(f, args);
            args.push(SpArg::C(c, *span));
            h
        }
        SExpr::Bang(span, f) => {
            let h = flatten_spine(f, args);
            args.push(SpArg::B(*span));
            h
        }
        _ => e,
    }
}

fn param_desc(p: &SParam) -> String {
    match p {
        SParam::CParam(x, _) => format!("[{x}]"),
        SParam::DParam(_, _) => "[_ ~ _]".to_string(),
        SParam::VParam(x, _) => x.clone(),
    }
}

/// Sorts a diagnostic batch by source span. `sort_by_key` is stable, so
/// diagnostics sharing a span keep their declaration order — the same
/// final order whether the batch was produced sequentially or merged from
/// parallel workers.
pub(crate) fn sort_diags(diags: &mut ur_syntax::Diagnostics) {
    diags.sort_by_key(|d| d.span);
}

pub(crate) fn binop_name(op: &str) -> Option<&'static str> {
    Some(match op {
        "+" => "add",
        "-" => "sub",
        "*" => "mul",
        "/" => "div",
        "%" => "mod",
        "^" => "strcat",
        "==" => "eq",
        "!=" => "ne",
        "<" => "lt",
        "<=" => "le",
        ">" => "gt",
        ">=" => "ge",
        "&&" => "andb",
        "||" => "orb",
        _ => return None,
    })
}

// ---------------- finalization ----------------

/// Replaces unsolved kind metavariables by `Type` (GHC-style defaulting).
pub fn finalize_kind(cx: &Cx, k: &Kind) -> Kind {
    match cx.metas.resolve_kind(k) {
        Kind::Meta(_) => Kind::Type,
        Kind::Arrow(a, b) => Kind::arrow(finalize_kind(cx, &a), finalize_kind(cx, &b)),
        Kind::Pair(a, b) => Kind::pair(finalize_kind(cx, &a), finalize_kind(cx, &b)),
        Kind::Row(a) => Kind::row(finalize_kind(cx, &a)),
        other => other,
    }
}

/// Zonks and kind-defaults a constructor.
pub fn finalize_con(cx: &Cx, c: &RCon) -> RCon {
    let c = cx.metas.resolve(c);
    match &*c {
        Con::Var(_) | Con::Meta(_) | Con::Prim(_) | Con::Name(_) => c,
        Con::Arrow(a, b) => Con::arrow(finalize_con(cx, a), finalize_con(cx, b)),
        Con::Poly(s, k, t) => {
            Con::poly(*s, finalize_kind(cx, k), finalize_con(cx, t))
        }
        Con::Guarded(a, b, t) => Con::guarded(
            finalize_con(cx, a),
            finalize_con(cx, b),
            finalize_con(cx, t),
        ),
        Con::Lam(s, k, t) => Con::lam(*s, finalize_kind(cx, k), finalize_con(cx, t)),
        Con::App(f, a) => Con::app(finalize_con(cx, f), finalize_con(cx, a)),
        Con::Record(r) => Con::record(finalize_con(cx, r)),
        Con::RowNil(k) => Con::row_nil(finalize_kind(cx, k)),
        Con::RowOne(n, v) => Con::row_one(finalize_con(cx, n), finalize_con(cx, v)),
        Con::RowCat(a, b) => Con::row_cat(finalize_con(cx, a), finalize_con(cx, b)),
        Con::Map(k1, k2) => Con::map_c(finalize_kind(cx, k1), finalize_kind(cx, k2)),
        Con::Folder(k) => Con::folder(finalize_kind(cx, k)),
        Con::Pair(a, b) => Con::pair(finalize_con(cx, a), finalize_con(cx, b)),
        Con::Fst(a) => Con::fst(finalize_con(cx, a)),
        Con::Snd(a) => Con::snd(finalize_con(cx, a)),
    }
}

/// Zonks and kind-defaults every constructor inside an expression.
pub fn finalize_expr(cx: &Cx, e: &RExpr) -> RExpr {
    match &**e {
        Expr::Var(_) | Expr::Lit(_) | Expr::RecNil => *e,
        Expr::App(a, b) => Expr::app(finalize_expr(cx, a), finalize_expr(cx, b)),
        Expr::Lam(x, t, b) => Expr::lam(*x, finalize_con(cx, t), finalize_expr(cx, b)),
        Expr::CApp(a, c) => Expr::capp(finalize_expr(cx, a), finalize_con(cx, c)),
        Expr::CLam(a, k, b) => {
            Expr::clam(*a, finalize_kind(cx, k), finalize_expr(cx, b))
        }
        Expr::RecOne(n, v) => Expr::rec_one(finalize_con(cx, n), finalize_expr(cx, v)),
        Expr::RecCat(a, b) => Expr::rec_cat(finalize_expr(cx, a), finalize_expr(cx, b)),
        Expr::Proj(a, c) => Expr::proj(finalize_expr(cx, a), finalize_con(cx, c)),
        Expr::Cut(a, c) => Expr::cut(finalize_expr(cx, a), finalize_con(cx, c)),
        Expr::DLam(c1, c2, b) => Expr::dlam(
            finalize_con(cx, c1),
            finalize_con(cx, c2),
            finalize_expr(cx, b),
        ),
        Expr::DApp(a) => Expr::dapp(finalize_expr(cx, a)),
        Expr::Let(x, t, bound, body) => Expr::let_(
            *x,
            finalize_con(cx, t),
            finalize_expr(cx, bound),
            finalize_expr(cx, body),
        ),
        Expr::If(c, t, el) => Expr::if_(
            finalize_expr(cx, c),
            finalize_expr(cx, t),
            finalize_expr(cx, el),
        ),
    }
}

/// Finds any remaining metavariable in a constructor.
pub fn find_meta_con(c: &RCon) -> Option<MetaId> {
    match &**c {
        Con::Meta(m) => Some(*m),
        Con::Var(_) | Con::Prim(_) | Con::Name(_) | Con::Map(_, _) | Con::Folder(_)
        | Con::RowNil(_) => None,
        Con::Arrow(a, b)
        | Con::App(a, b)
        | Con::RowOne(a, b)
        | Con::RowCat(a, b)
        | Con::Pair(a, b) => find_meta_con(a).or_else(|| find_meta_con(b)),
        Con::Poly(_, _, t) | Con::Lam(_, _, t) => find_meta_con(t),
        Con::Guarded(a, b, t) => find_meta_con(a)
            .or_else(|| find_meta_con(b))
            .or_else(|| find_meta_con(t)),
        Con::Record(r) | Con::Fst(r) | Con::Snd(r) => find_meta_con(r),
    }
}

/// Finds any remaining metavariable in an expression's constructors.
pub fn find_meta_expr(e: &RExpr) -> Option<MetaId> {
    match &**e {
        Expr::Var(_) | Expr::Lit(_) | Expr::RecNil => None,
        Expr::App(a, b) | Expr::RecCat(a, b) => {
            find_meta_expr(a).or_else(|| find_meta_expr(b))
        }
        Expr::Lam(_, t, b) => find_meta_con(t).or_else(|| find_meta_expr(b)),
        Expr::CApp(a, c) => find_meta_expr(a).or_else(|| find_meta_con(c)),
        Expr::CLam(_, _, b) => find_meta_expr(b),
        Expr::RecOne(n, v) => find_meta_con(n).or_else(|| find_meta_expr(v)),
        Expr::Proj(a, c) | Expr::Cut(a, c) => {
            find_meta_expr(a).or_else(|| find_meta_con(c))
        }
        Expr::DLam(c1, c2, b) => find_meta_con(c1)
            .or_else(|| find_meta_con(c2))
            .or_else(|| find_meta_expr(b)),
        Expr::DApp(a) => find_meta_expr(a),
        Expr::Let(_, t, bound, body) => find_meta_con(t)
            .or_else(|| find_meta_expr(bound))
            .or_else(|| find_meta_expr(body)),
        Expr::If(c, t, el) => find_meta_expr(c)
            .or_else(|| find_meta_expr(t))
            .or_else(|| find_meta_expr(el)),
    }
}

/// Substitutes a closed expression for a variable (used to fill folder
/// holes; `repl` is closed, so no capture is possible).
pub fn replace_var(e: &RExpr, target: &Sym, repl: &RExpr) -> RExpr {
    match &**e {
        Expr::Var(x) => {
            if x == target {
                *repl
            } else {
                *e
            }
        }
        Expr::Lit(_) | Expr::RecNil => *e,
        Expr::App(a, b) => Expr::app(replace_var(a, target, repl), replace_var(b, target, repl)),
        Expr::Lam(x, t, b) => Expr::lam(
            *x,
            *t,
            replace_var(b, target, repl),
        ),
        Expr::CApp(a, c) => Expr::capp(replace_var(a, target, repl), *c),
        Expr::CLam(a, k, b) => Expr::clam(*a, k.clone(), replace_var(b, target, repl)),
        Expr::RecOne(n, v) => Expr::rec_one(*n, replace_var(v, target, repl)),
        Expr::RecCat(a, b) => {
            Expr::rec_cat(replace_var(a, target, repl), replace_var(b, target, repl))
        }
        Expr::Proj(a, c) => Expr::proj(replace_var(a, target, repl), *c),
        Expr::Cut(a, c) => Expr::cut(replace_var(a, target, repl), *c),
        Expr::DLam(c1, c2, b) => Expr::dlam(
            *c1,
            *c2,
            replace_var(b, target, repl),
        ),
        Expr::DApp(a) => Expr::dapp(replace_var(a, target, repl)),
        Expr::Let(x, t, bound, body) => Expr::let_(
            *x,
            *t,
            replace_var(bound, target, repl),
            replace_var(body, target, repl),
        ),
        Expr::If(c, t, el) => Expr::if_(
            replace_var(c, target, repl),
            replace_var(t, target, repl),
            replace_var(el, target, repl),
        ),
    }
}
