// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-infer — the Ur type-inference engine (paper §4)
//!
//! Implements the heuristic, domain-specific inference the paper argues
//! makes dependent-type-style record metaprogramming practical:
//!
//! * [`mod@unify`] — head-normalize-and-compare unification, the special **row
//!   unification** (§4.3), and **reverse-engineering unification** (§4.2);
//! * [`elab`] — bidirectional elaboration from surface syntax to core,
//!   implicit-argument insertion, the postpone-and-retry constraint loop,
//!   automatic disjointness proofs (§4.1, via `ur-core::disjoint`), and
//!   **folder generation** (§4.4);
//! * Figure-5 statistics are accumulated in the shared
//!   [`Cx`](ur_core::Cx).
//!
//! ## Example: the paper's §2 opener
//!
//! ```
//! use ur_infer::Elaborator;
//!
//! let mut elab = Elaborator::new();
//! let decls = elab
//!     .elab_source(
//!         "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
//!              (x : $([nm = t] ++ r)) = x.nm \
//!          val a : int = proj [#A] {A = 1, B = 2.3}",
//!     )
//!     .unwrap();
//! assert_eq!(decls.len(), 2);
//! assert!(elab.cx.stats.disjoint_prover_calls > 0);
//! ```

pub mod batch;
pub mod elab;
pub mod error;
pub mod unify;

pub use batch::{
    default_threads, elab_program_all_incremental, ConBind, DeclRecord, DepGraph, Outcome, Seed,
};
pub use elab::{ElabDecl, ElabSnapshot, Elaborator};
pub use error::{ElabError, EResult};
pub use unify::{unify, unify_kind, Unify};
pub use ur_core::{Limits, ResourceKind};
pub use ur_syntax::{Code, Diagnostic, Diagnostics};
