// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-core — Featherweight Ur, the core calculus
//!
//! This crate implements the core calculus of
//! *Ur: Statically-Typed Metaprogramming with Type-Level Record Computation*
//! (Chlipala, PLDI 2010), Section 3:
//!
//! * [`kind`] — kinds `Type | Name | k -> k | {k} | k * k` (Figure 1);
//! * [`con`] — constructors, including first-class names `#n`, record types
//!   `$c`, rows `[] | [c = c] | c ++ c`, and the `map` constant (Figure 1);
//! * [`expr`] — expressions, including record operations and guarded
//!   abstraction (Figure 1);
//! * [`kinding`] — the kinding judgment (Figure 2);
//! * [`row`] / [`defeq`] — definitional equality with the algebraic row laws
//!   (Figure 3), instrumented with the counters the paper reports in
//!   Figure 5;
//! * [`typing`] — the typing judgment (Figure 4);
//! * [`disjoint`] — the automatic disjointness prover (§4.1).
//!
//! Inference (unification, elaboration) lives in the `ur-infer` crate; this
//! crate provides the judgments those heuristics must respect.
//!
//! ## Example
//!
//! ```
//! use ur_core::prelude::*;
//!
//! let mut cx = Cx::new();
//! let env = Env::new();
//! // map (fn a :: Type => a) [A = int]  ≡  [A = int]   (identity law)
//! let a = Sym::fresh("a");
//! let idf = Con::lam(a.clone(), Kind::Type, Con::var(&a));
//! let row = Con::row_one(Con::name("A"), Con::int());
//! let mapped = Con::map_app(Kind::Type, Kind::Type, idf, row.clone());
//! assert!(ur_core::defeq::defeq(&env, &mut cx, &mapped, &row));
//! assert_eq!(cx.stats.law_map_identity, 1);
//! ```

pub mod arena;
pub mod codec;
pub mod con;
pub mod defeq;
pub mod disjoint;
pub mod env;
pub mod error;
pub mod expr;
pub mod failpoint;
pub mod fingerprint;
pub mod folder;
pub mod hnf;
pub mod intern;
pub mod kind;
pub mod kinding;
pub mod limits;
pub mod memo;
pub mod meta;
pub mod pretty;
pub mod row;
pub mod stats;
pub mod subst;
pub mod sym;
pub mod typing;

pub use limits::{Fuel, Limits, ResourceKind};
use meta::MetaCx;
use stats::Stats;

/// Which of the three nontrivial Figure-3 laws the normalizer may apply.
/// All are on by default; the ablation benches/tests disable them
/// selectively to demonstrate they are load-bearing (e.g. `toDb` from
/// §2.2 fails to elaborate without fusion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LawConfig {
    pub identity: bool,
    pub distrib: bool,
    pub fusion: bool,
}

impl Default for LawConfig {
    fn default() -> LawConfig {
        LawConfig {
            identity: true,
            distrib: true,
            fusion: true,
        }
    }
}

/// Mutable checking context threaded through every judgment: the
/// metavariable arena, the Figure-5 statistics counters, the law
/// configuration, the resource budget (see [`limits`]), and the memo
/// tables for the four expensive judgments (see [`memo`]).
#[derive(Clone, Debug, Default)]
pub struct Cx {
    pub metas: MetaCx,
    pub stats: Stats,
    pub laws: LawConfig,
    pub fuel: Fuel,
    pub memo: memo::Memo,
}

impl Cx {
    pub fn new() -> Cx {
        Cx::default()
    }

    /// A context with explicit resource limits.
    pub fn with_limits(limits: Limits) -> Cx {
        Cx {
            fuel: Fuel::new(limits),
            ..Cx::default()
        }
    }
}

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::con::{Con, MetaId, PrimType, RCon};
    pub use crate::env::Env;
    pub use crate::error::CoreError;
    pub use crate::expr::{Expr, Lit, RExpr};
    pub use crate::kind::Kind;
    pub use crate::limits::{Fuel, Limits, ResourceKind};
    pub use crate::meta::MetaCx;
    pub use crate::stats::Stats;
    pub use crate::sym::Sym;
    pub use crate::Cx;
}
