//! Capture-avoiding substitution over constructors.
//!
//! Only constructor-level substitution is needed: value-level evaluation is
//! environment-based (see `ur-eval`), and the typing rules substitute
//! constructors into types (for `e [c]` and beta reduction during
//! normalization).

use crate::con::{Con, RCon};
use crate::sym::Sym;
use std::collections::HashSet;

/// Collects the free constructor variables of `c` into `out`.
pub fn free_vars(c: &RCon, out: &mut HashSet<Sym>) {
    match &**c {
        Con::Var(s) => {
            out.insert(*s);
        }
        Con::Meta(_)
        | Con::Prim(_)
        | Con::Name(_)
        | Con::Map(_, _)
        | Con::Folder(_)
        | Con::RowNil(_) => {}
        Con::Arrow(a, b)
        | Con::App(a, b)
        | Con::RowOne(a, b)
        | Con::RowCat(a, b)
        | Con::Pair(a, b) => {
            free_vars(a, out);
            free_vars(b, out);
        }
        Con::Poly(s, _, t) | Con::Lam(s, _, t) => {
            let mut inner = HashSet::new();
            free_vars(t, &mut inner);
            inner.remove(s);
            out.extend(inner);
        }
        Con::Guarded(a, b, t) => {
            free_vars(a, out);
            free_vars(b, out);
            free_vars(t, out);
        }
        Con::Record(r) | Con::Fst(r) | Con::Snd(r) => free_vars(r, out),
    }
}

/// Returns the free constructor variables of `c`.
pub fn fv(c: &RCon) -> HashSet<Sym> {
    let mut out = HashSet::new();
    free_vars(c, &mut out);
    out
}

/// Substitutes `repl` for free occurrences of `target` in `c`,
/// alpha-renaming binders when they would capture free variables of `repl`.
pub fn subst(c: &RCon, target: &Sym, repl: &RCon) -> RCon {
    // O(1) fast path: the interner precomputes a has-var bit, so a term with
    // no variables at all (bound or free) cannot mention `target`.
    if !crate::intern::flags_of(c).has_var() {
        return *c;
    }
    // Fast path: nothing to do if `target` is not free in `c`.
    if !fv(c).contains(target) {
        return *c;
    }
    let repl_fv = fv(repl);
    go(c, target, repl, &repl_fv)
}

fn go(c: &RCon, target: &Sym, repl: &RCon, repl_fv: &HashSet<Sym>) -> RCon {
    // Variable-free subtrees are returned as-is without traversal.
    if !crate::intern::flags_of(c).has_var() {
        return *c;
    }
    match &**c {
        Con::Var(s) => {
            if s == target {
                *repl
            } else {
                *c
            }
        }
        Con::Meta(_)
        | Con::Prim(_)
        | Con::Name(_)
        | Con::Map(_, _)
        | Con::Folder(_)
        | Con::RowNil(_) => *c,
        Con::Arrow(a, b) => Con::arrow(go(a, target, repl, repl_fv), go(b, target, repl, repl_fv)),
        Con::App(a, b) => Con::app(go(a, target, repl, repl_fv), go(b, target, repl, repl_fv)),
        Con::RowOne(a, b) => {
            Con::row_one(go(a, target, repl, repl_fv), go(b, target, repl, repl_fv))
        }
        Con::RowCat(a, b) => {
            Con::row_cat(go(a, target, repl, repl_fv), go(b, target, repl, repl_fv))
        }
        Con::Pair(a, b) => Con::pair(go(a, target, repl, repl_fv), go(b, target, repl, repl_fv)),
        Con::Poly(s, k, t) => {
            let (s, t) = under_binder(s, t, target, repl, repl_fv);
            Con::poly(s, k.clone(), t)
        }
        Con::Lam(s, k, t) => {
            let (s, t) = under_binder(s, t, target, repl, repl_fv);
            Con::lam(s, k.clone(), t)
        }
        Con::Guarded(a, b, t) => Con::guarded(
            go(a, target, repl, repl_fv),
            go(b, target, repl, repl_fv),
            go(t, target, repl, repl_fv),
        ),
        Con::Record(r) => Con::record(go(r, target, repl, repl_fv)),
        Con::Fst(r) => Con::fst(go(r, target, repl, repl_fv)),
        Con::Snd(r) => Con::snd(go(r, target, repl, repl_fv)),
    }
}

/// Handles substitution under a binder `s`, renaming it if it shadows the
/// target or would capture a free variable of the replacement.
fn under_binder(
    s: &Sym,
    body: &RCon,
    target: &Sym,
    repl: &RCon,
    repl_fv: &HashSet<Sym>,
) -> (Sym, RCon) {
    if s == target {
        // The binder shadows the substitution target; stop here.
        return (*s, (*body));
    }
    if repl_fv.contains(s) {
        // Rename the binder to avoid capturing a free variable of `repl`.
        let fresh = s.rename();
        let renamed = go(body, s, &Con::var(&fresh), &HashSet::new());
        (fresh, go(&renamed, target, repl, repl_fv))
    } else {
        (*s, go(body, target, repl, repl_fv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;

    #[test]
    fn subst_variable() {
        let a = Sym::fresh("a");
        let c = Con::arrow(Con::var(&a), Con::int());
        let out = subst(&c, &a, &Con::string());
        match &*out {
            Con::Arrow(l, _) => assert!(matches!(&**l, Con::Prim(crate::con::PrimType::String))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_stops_at_shadowing_binder() {
        let a = Sym::fresh("a");
        // fn a :: Type => a — the bound `a` shadows.
        let c = Con::lam(a, Kind::Type, Con::var(&a));
        let out = subst(&c, &a, &Con::int());
        match &*out {
            Con::Lam(s, _, body) => match &**body {
                Con::Var(v) => assert_eq!(v, s),
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_avoids_capture() {
        let a = Sym::fresh("a");
        let b = Sym::fresh("b");
        // fn b :: Type => a, substituting a := b must rename the binder.
        let c = Con::lam(b, Kind::Type, Con::var(&a));
        let out = subst(&c, &a, &Con::var(&b));
        match &*out {
            Con::Lam(s, _, body) => {
                assert_ne!(s, &b, "binder must be renamed");
                match &**body {
                    Con::Var(v) => assert_eq!(v, &b, "body must reference the free b"),
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fv_of_open_term() {
        let a = Sym::fresh("a");
        let b = Sym::fresh("b");
        let c = Con::row_cat(
            Con::row_one(Con::name("X"), Con::var(&a)),
            Con::var(&b),
        );
        let vars = fv(&c);
        assert!(vars.contains(&a));
        assert!(vars.contains(&b));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn fv_excludes_bound() {
        let a = Sym::fresh("a");
        let c = Con::lam(a, Kind::Type, Con::var(&a));
        assert!(fv(&c).is_empty());
    }

    #[test]
    fn subst_no_op_shares_rc() {
        let a = Sym::fresh("a");
        let c = Con::arrow(Con::int(), Con::string());
        let out = subst(&c, &a, &Con::bool_());
        assert!(c == out);
    }
}
