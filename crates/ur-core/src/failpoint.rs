//! Deterministic fault injection ("failpoints").
//!
//! Production-grade recovery paths — the dead-worker fallback in the
//! parallel scheduler, memo-entry integrity rejection, fuel-accounting
//! audits — are unreachable from well-behaved inputs, so nothing in an
//! ordinary test run ever executes them. This module provides *named
//! fault sites* that the fragile layers consult, plus a seeded PRNG
//! schedule deciding which consultations actually inject a fault:
//!
//! * **Named sites** ([`Site`]): worker spawn/execution/send/stall in
//!   `ur-infer::batch`, memo-table load/store in [`crate::memo`],
//!   intern-table growth in [`crate::intern`], fuel accounting in
//!   [`crate::limits`], incremental-cache load/store in `ur-query`,
//!   WAL append/sync/corrupt/rotate + snapshot write in `ur-db`'s
//!   durability layer, and the `ur-serve` front door
//!   (accept/read/write/worker-wedge).
//! * **Seeded activation**: each site draws from a splitmix64 stream
//!   keyed by `(seed, site, hit index)`, so a given configuration
//!   produces the same fault schedule on every run — chaos tests print
//!   their seed and any failure reproduces from it.
//! * **Bounded chaos**: `max_per_site` caps how many times each site
//!   fires. The self-healing layers retry a bounded number of times, so
//!   capping the faults below the retry budget guarantees convergence to
//!   the clean result (see `docs/ROBUSTNESS.md`).
//! * **Zero cost when disabled**: without the `failpoints` cargo feature
//!   (the default), [`fire`] is a `const false` inline stub and every
//!   call site folds away; the memo integrity fields are not even
//!   compiled. Release builds ship with the feature off.
//!
//! Configuration is per-thread ([`install`]); the batch scheduler ships
//! the coordinator's config to its workers so one [`FpConfig`] governs a
//! whole parallel elaboration. The `UR_FAILPOINTS` environment variable
//! (`seed=42;max=3;worker_exec=500;memo_load=250`, rates in permille)
//! configures binaries without code changes ([`FpConfig::from_env`]).

use std::fmt;

/// Number of named sites (length of [`Site::ALL`]).
pub const NSITES: usize = 19;

/// A named fault-injection site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Worker-thread spawn in the batch scheduler fails; the pool runs
    /// smaller (possibly empty, degrading to sequential elaboration).
    WorkerSpawn,
    /// A worker dies mid-task (announces the death, sends no outcome).
    WorkerExec,
    /// A worker finishes a task but the outcome is lost in transit; the
    /// coordinator's watchdog must notice and re-dispatch.
    WorkerSend,
    /// A worker stalls briefly before responding, exercising the
    /// watchdog's patience without losing the result.
    WorkerStall,
    /// A memo-table load observes a corrupt entry; the per-entry
    /// integrity check must reject it and recompute.
    MemoLoad,
    /// A memo-table store writes a corrupt entry (detected on a later
    /// load by the integrity check).
    MemoStore,
    /// Intern-table growth hiccups (transient rehash); healed in place.
    InternGrow,
    /// Fuel accounting mischarges a burst of phantom steps; a resulting
    /// spurious exhaustion is healed by the bounded declaration retry.
    FuelCharge,
    /// Loading an on-disk incremental-cache entry observes corruption;
    /// the integrity tag must reject it and the declaration recomputes.
    CacheLoad,
    /// Storing an on-disk incremental-cache entry corrupts it in flight
    /// (detected by a later load's integrity check).
    CacheStore,
    /// Appending a record to the `ur-db` write-ahead log fails (simulated
    /// `write(2)` error, or a mid-record crash under `UR_DB_CRASH=abort`).
    WalAppend,
    /// The fsync sealing a WAL commit fails (or the process dies between
    /// the write and the sync) — the transaction must not be acknowledged.
    WalSync,
    /// Writing a snapshot during checkpoint compaction fails; the WAL is
    /// kept so no committed data is lost.
    SnapshotWrite,
    /// A WAL record reaches the disk with a corrupt CRC (torn write);
    /// recovery must truncate the tail at the last committed boundary.
    WalCorrupt,
    /// The WAL rotation that follows a successful snapshot rename fails
    /// (or the process dies in that window) — the freshly renamed
    /// snapshot and the full pre-checkpoint WAL coexist on disk, and
    /// recovery must recognize the stale log by its generation number
    /// rather than double-applying it.
    WalRotate,
    /// A freshly accepted serve connection dies before the handler takes
    /// over (simulated reset at accept time); the acceptor must keep
    /// accepting and the client sees a clean close, never a hang.
    ServeAccept,
    /// Reading a request line from a serve connection fails mid-line;
    /// the connection is torn down without corrupting the session or
    /// leaking its admission slot.
    ServeRead,
    /// Writing a response back to a serve client fails after the request
    /// was already executed — the classic acked-vs-applied ambiguity the
    /// durable-write gate in `ur-bench serve` has to survive.
    ServeWrite,
    /// A pool worker wedges (bounded stall past the watchdog budget);
    /// the supervisor must replace it and restore its sessions without
    /// wrong answers or acked-write loss.
    ServeWedge,
}

impl Site {
    /// Every site, in stable order (indexes into [`FpCounters::injected`]).
    pub const ALL: [Site; NSITES] = [
        Site::WorkerSpawn,
        Site::WorkerExec,
        Site::WorkerSend,
        Site::WorkerStall,
        Site::MemoLoad,
        Site::MemoStore,
        Site::InternGrow,
        Site::FuelCharge,
        Site::CacheLoad,
        Site::CacheStore,
        Site::WalAppend,
        Site::WalSync,
        Site::SnapshotWrite,
        Site::WalCorrupt,
        Site::WalRotate,
        Site::ServeAccept,
        Site::ServeRead,
        Site::ServeWrite,
        Site::ServeWedge,
    ];

    /// Stable index of this site.
    pub fn index(self) -> usize {
        match self {
            Site::WorkerSpawn => 0,
            Site::WorkerExec => 1,
            Site::WorkerSend => 2,
            Site::WorkerStall => 3,
            Site::MemoLoad => 4,
            Site::MemoStore => 5,
            Site::InternGrow => 6,
            Site::FuelCharge => 7,
            Site::CacheLoad => 8,
            Site::CacheStore => 9,
            Site::WalAppend => 10,
            Site::WalSync => 11,
            Site::SnapshotWrite => 12,
            Site::WalCorrupt => 13,
            Site::WalRotate => 14,
            Site::ServeAccept => 15,
            Site::ServeRead => 16,
            Site::ServeWrite => 17,
            Site::ServeWedge => 18,
        }
    }

    /// The configuration/reporting name of this site.
    pub fn name(self) -> &'static str {
        match self {
            Site::WorkerSpawn => "worker_spawn",
            Site::WorkerExec => "worker_exec",
            Site::WorkerSend => "worker_send",
            Site::WorkerStall => "worker_stall",
            Site::MemoLoad => "memo_load",
            Site::MemoStore => "memo_store",
            Site::InternGrow => "intern_grow",
            Site::FuelCharge => "fuel_charge",
            Site::CacheLoad => "cache_load",
            Site::CacheStore => "cache_store",
            Site::WalAppend => "wal_append",
            Site::WalSync => "wal_sync",
            Site::SnapshotWrite => "snapshot_write",
            Site::WalCorrupt => "wal_corrupt",
            Site::WalRotate => "wal_rotate",
            Site::ServeAccept => "serve_accept",
            Site::ServeRead => "serve_read",
            Site::ServeWrite => "serve_write",
            Site::ServeWedge => "serve_wedge",
        }
    }

    /// Parses a site name (as produced by [`Site::name`]).
    pub fn from_name(s: &str) -> Option<Site> {
        Site::ALL.iter().copied().find(|site| site.name() == s)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic fault schedule: a seed, a per-site activation rate in
/// permille (0..=1000), and a per-site cap on total fires.
///
/// `Copy + Send` so the batch scheduler can ship the coordinator's
/// schedule to worker threads inside its base snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpConfig {
    /// Seed of the activation PRNG. Printed by the chaos harnesses so
    /// any failure reproduces exactly.
    pub seed: u64,
    /// Cap on fires per site. Keep this *below* the retry budgets
    /// (`MAX_DECL_RETRIES`, the scheduler's task-retry cap) to guarantee
    /// the self-healing layers converge to the clean result.
    pub max_per_site: u32,
    rates: [u16; NSITES],
}

impl FpConfig {
    /// A schedule with the given seed and every rate zero.
    pub fn new(seed: u64) -> FpConfig {
        FpConfig {
            seed,
            max_per_site: 3,
            rates: [0; NSITES],
        }
    }

    /// Builder: sets `site`'s activation rate in permille (clamped to
    /// 1000).
    pub fn with_rate(mut self, site: Site, permille: u16) -> FpConfig {
        self.rates[site.index()] = permille.min(1000);
        self
    }

    /// Builder: sets the per-site fire cap.
    pub fn with_max_per_site(mut self, max: u32) -> FpConfig {
        self.max_per_site = max;
        self
    }

    /// `site`'s activation rate in permille.
    pub fn rate(&self, site: Site) -> u16 {
        self.rates[site.index()]
    }

    /// True when at least one site has a nonzero rate.
    pub fn any_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// Parses `seed=N;max=N;<site>=permille;...` (any order, `;` or `,`
    /// separated). Unknown keys and malformed entries yield `None` so a
    /// typo in `UR_FAILPOINTS` is loud, not silently ignored.
    pub fn parse(spec: &str) -> Option<FpConfig> {
        let mut cfg = FpConfig::new(0);
        for part in spec.split([';', ',']) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=')?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => cfg.seed = value.parse().ok()?,
                "max" => cfg.max_per_site = value.parse().ok()?,
                _ => {
                    let site = Site::from_name(key)?;
                    cfg.rates[site.index()] = value.parse::<u16>().ok()?.min(1000);
                }
            }
        }
        Some(cfg)
    }

    /// The schedule named by the `UR_FAILPOINTS` environment variable,
    /// if any ([`FpConfig::parse`] format).
    pub fn from_env() -> Option<FpConfig> {
        let spec = std::env::var("UR_FAILPOINTS").ok()?;
        FpConfig::parse(&spec)
    }
}

/// Per-thread fault-injection counters, merged across workers by the
/// batch coordinator with saturating arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpCounters {
    /// Faults injected per site ([`Site::index`] order).
    pub injected: [u64; NSITES],
    /// Memo entries rejected by the per-entry integrity check.
    pub integrity_rejections: u64,
}

impl FpCounters {
    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .fold(0u64, |acc, &n| acc.saturating_add(n))
    }

    /// Number of distinct sites that fired at least once.
    pub fn sites_exercised(&self) -> usize {
        self.injected.iter().filter(|&&n| n > 0).count()
    }

    /// Adds `other` into `self`, saturating at `u64::MAX` (the same
    /// contract as [`crate::stats::Stats::absorb`]).
    pub fn absorb(&mut self, other: &FpCounters) {
        for (a, b) in self.injected.iter_mut().zip(other.injected.iter()) {
            *a = a.saturating_add(*b);
        }
        self.integrity_rejections = self
            .integrity_rejections
            .saturating_add(other.integrity_rejections);
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FpConfig, FpCounters, Site, NSITES};
    use std::cell::RefCell;

    /// splitmix64: the standard 64-bit mixer; full-period, stateless here
    /// because we mix a composite key rather than advancing a stream.
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[derive(Default)]
    struct FpState {
        config: Option<FpConfig>,
        /// Total consultations per site (the PRNG stream position).
        hits: [u64; NSITES],
        counters: FpCounters,
    }

    thread_local! {
        static STATE: RefCell<FpState> = RefCell::new(FpState::default());
    }

    /// Installs (or clears, with `None`) this thread's fault schedule.
    /// Also resets the hit streams so a fresh install replays its
    /// schedule from the start; counters are left for [`take_counters`].
    pub fn install(config: Option<FpConfig>) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.config = config;
            s.hits = [0; NSITES];
        });
    }

    /// This thread's installed schedule, if any.
    pub fn config() -> Option<FpConfig> {
        STATE.with(|s| s.borrow().config)
    }

    /// True when a schedule with at least one nonzero rate is installed.
    pub fn active() -> bool {
        STATE.with(|s| s.borrow().config.is_some_and(|c| c.any_active()))
    }

    /// Consults `site`: true means *inject the fault now*. Deterministic
    /// given the installed config and the site's consultation count.
    pub fn fire(site: Site) -> bool {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let Some(cfg) = s.config else { return false };
            let ix = site.index();
            let rate = cfg.rate(site);
            if rate == 0 {
                return false;
            }
            let hit = s.hits[ix];
            s.hits[ix] = hit.wrapping_add(1);
            if s.counters.injected[ix] >= u64::from(cfg.max_per_site) {
                return false;
            }
            let draw = splitmix64(
                cfg.seed ^ (ix as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ hit,
            );
            if (draw % 1000) < u64::from(rate) {
                s.counters.injected[ix] = s.counters.injected[ix].saturating_add(1);
                true
            } else {
                false
            }
        })
    }

    /// This thread's counters (injected faults, integrity rejections),
    /// including any worker counters absorbed via [`absorb_counters`].
    pub fn counters() -> FpCounters {
        STATE.with(|s| s.borrow().counters)
    }

    /// Reads and clears this thread's counters (used by batch workers to
    /// ship per-task deltas to the coordinator).
    pub fn take_counters() -> FpCounters {
        STATE.with(|s| std::mem::take(&mut s.borrow_mut().counters))
    }

    /// Folds a worker's shipped counters into this thread's.
    pub fn absorb_counters(other: &FpCounters) {
        STATE.with(|s| s.borrow_mut().counters.absorb(other));
    }

    /// Records a memo-entry integrity rejection (called by [`crate::memo`]).
    pub fn note_integrity_rejection() {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.counters.integrity_rejections = s.counters.integrity_rejections.saturating_add(1);
        });
    }

    /// Faults injected so far at `site` on this thread (used by the
    /// declaration retry loop to decide whether an exhaustion is
    /// suspect).
    pub fn injected_at(site: Site) -> u64 {
        STATE.with(|s| s.borrow().counters.injected[site.index()])
    }

    /// Compile-time flag: the `failpoints` feature is on.
    pub const ENABLED: bool = true;
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::{FpConfig, FpCounters, Site};

    // Zero-cost stubs: `fire` is `const false`, so every call site's
    // fault branch folds away and release builds carry no failpoint
    // state at all.

    #[inline(always)]
    pub fn install(_config: Option<FpConfig>) {}

    #[inline(always)]
    pub fn config() -> Option<FpConfig> {
        None
    }

    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    #[inline(always)]
    pub fn fire(_site: Site) -> bool {
        false
    }

    #[inline(always)]
    pub fn counters() -> FpCounters {
        FpCounters::default()
    }

    #[inline(always)]
    pub fn take_counters() -> FpCounters {
        FpCounters::default()
    }

    #[inline(always)]
    pub fn absorb_counters(_other: &FpCounters) {}

    #[inline(always)]
    pub fn note_integrity_rejection() {}

    #[inline(always)]
    pub fn injected_at(_site: Site) -> u64 {
        0
    }

    /// Compile-time flag: the `failpoints` feature is off.
    pub const ENABLED: bool = false;
}

pub use imp::{
    absorb_counters, active, config, counters, fire, injected_at, install,
    note_integrity_rejection, take_counters, ENABLED,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_sites_and_meta_keys() {
        let cfg = FpConfig::parse("seed=42; max=5; worker_exec=500, memo_load=250")
            .expect("valid spec");
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.max_per_site, 5);
        assert_eq!(cfg.rate(Site::WorkerExec), 500);
        assert_eq!(cfg.rate(Site::MemoLoad), 250);
        assert_eq!(cfg.rate(Site::FuelCharge), 0);
        assert!(cfg.any_active());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(FpConfig::parse("bogus_site=10").is_none());
        assert!(FpConfig::parse("worker_exec").is_none());
        assert!(FpConfig::parse("seed=notanumber").is_none());
        // Empty spec is a valid (inert) schedule.
        let cfg = FpConfig::parse("").expect("empty is fine");
        assert!(!cfg.any_active());
    }

    #[test]
    fn rates_clamp_to_permille() {
        let cfg = FpConfig::new(1).with_rate(Site::MemoStore, 9999);
        assert_eq!(cfg.rate(Site::MemoStore), 1000);
    }

    #[test]
    fn site_names_round_trip() {
        for site in Site::ALL {
            assert_eq!(Site::from_name(site.name()), Some(site));
        }
        assert_eq!(Site::from_name("nope"), None);
    }

    #[test]
    fn counters_absorb_saturates() {
        let mut a = FpCounters::default();
        a.injected[0] = u64::MAX - 1;
        a.integrity_rejections = 2;
        let mut b = FpCounters::default();
        b.injected[0] = 10;
        b.injected[3] = 7;
        b.integrity_rejections = 5;
        a.absorb(&b);
        assert_eq!(a.injected[0], u64::MAX);
        assert_eq!(a.injected[3], 7);
        assert_eq!(a.integrity_rejections, 7);
        assert_eq!(a.sites_exercised(), 2);
        assert_eq!(a.total_injected(), u64::MAX);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn fire_is_deterministic_and_capped() {
        // Full-rate schedule: fires exactly `max_per_site` times, then
        // never again.
        install(Some(
            FpConfig::new(7)
                .with_rate(Site::InternGrow, 1000)
                .with_max_per_site(2),
        ));
        let fires: Vec<bool> = (0..6).map(|_| fire(Site::InternGrow)).collect();
        assert_eq!(fires, vec![true, true, false, false, false, false]);
        assert_eq!(injected_at(Site::InternGrow), 2);

        // Reinstalling the same schedule replays the same stream.
        let c1 = take_counters();
        install(Some(
            FpConfig::new(7)
                .with_rate(Site::InternGrow, 1000)
                .with_max_per_site(2),
        ));
        let fires2: Vec<bool> = (0..6).map(|_| fire(Site::InternGrow)).collect();
        assert_eq!(fires, fires2);
        assert_eq!(take_counters(), c1);
        install(None);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn partial_rates_follow_the_seeded_stream() {
        install(Some(
            FpConfig::new(0xC0FFEE)
                .with_rate(Site::MemoLoad, 500)
                .with_max_per_site(1000),
        ));
        let a: Vec<bool> = (0..64).map(|_| fire(Site::MemoLoad)).collect();
        install(Some(
            FpConfig::new(0xC0FFEE)
                .with_rate(Site::MemoLoad, 500)
                .with_max_per_site(1000),
        ));
        let b: Vec<bool> = (0..64).map(|_| fire(Site::MemoLoad)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f), "{a:?}");

        // A different seed gives a different schedule (overwhelmingly).
        install(Some(
            FpConfig::new(0xDECAF)
                .with_rate(Site::MemoLoad, 500)
                .with_max_per_site(1000),
        ));
        let c: Vec<bool> = (0..64).map(|_| fire(Site::MemoLoad)).collect();
        assert_ne!(a, c, "different seed, different schedule");
        let _ = take_counters();
        install(None);
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    // `ENABLED` is deliberately a constant here: the test pins the
    // compile-time contract of the disabled configuration.
    #[allow(clippy::assertions_on_constants)]
    fn disabled_stubs_are_inert() {
        install(Some(FpConfig::new(1).with_rate(Site::MemoLoad, 1000)));
        assert!(!active());
        assert!(!fire(Site::MemoLoad));
        assert_eq!(counters(), FpCounters::default());
        assert!(!ENABLED, "cfg(not(failpoints)) must report disabled");
    }
}
