//! Hash-consed constructor interning.
//!
//! Every smart constructor in [`crate::con`] routes through a thread-local
//! intern table, so structurally equal constructor trees share a single
//! `Rc<Con>` node. Consequences the rest of the engine builds on:
//!
//! * `Rc::ptr_eq` on canonical constructors *is* structural equality — the
//!   pre-normalization fast paths in `defeq`/`unify` become O(1) instead of
//!   deep walks that only fire on accidental sharing;
//! * every canonical node has a stable [`ConId`] usable as a `HashMap` key,
//!   which is what the [`crate::memo`] tables for `hnf`/`defeq`/row
//!   normalization/disjointness verdicts key on;
//! * every node carries precomputed [`Flags`] (has-var / has-meta /
//!   has-kind-meta), so "is this term closed?" checks in substitution,
//!   zonking, and the occurs check are one bit test instead of a traversal;
//! * name literals (`Con::Name`) intern their `Rc<str>` payload in the same
//!   table, so record-label comparison is pointer equality on the shared
//!   allocation (see [`names_eq`]).
//!
//! The table is thread-local rather than per-`Cx` because `RCon` is the
//! ubiquitous currency of the whole workspace and `Cx` is not threaded
//! through construction sites; `Cx` holds `Rc`s and is `!Send`, so terms
//! can never cross threads and per-thread canonicity is exactly as strong
//! as global canonicity. Canonical nodes are kept alive for the lifetime of
//! the thread (the arena owns one `Rc` per node), which is what makes the
//! pointer-keyed reverse index sound: a canonical `*const Con` can never be
//! freed and reused. Foreign `Rc<Con>` values (built without the smart
//! constructors, e.g. by hand in tests) are re-interned structurally on
//! each [`id_of`] call and are never pointer-cached.

use crate::con::{Con, PrimType, RCon};
use crate::kind::Kind;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// Identity of a canonical (interned) constructor node. `==` on `ConId` is
/// O(1) structural equality of the underlying trees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConId(pub u32);

impl ConId {
    /// The canonical constructor this id names, if it exists on this
    /// thread's table.
    pub fn rcon(self) -> Option<RCon> {
        resolve(self)
    }

    /// Spine decomposition on handles: `h a1 .. an` as ids. Mirrors
    /// [`Con::spine`] so code holding only `ConId`s never needs to clone
    /// the tree.
    pub fn spine(self) -> Option<(ConId, Vec<ConId>)> {
        let c = self.rcon()?;
        let (head, args) = c.spine();
        Some((id_of(&head), args.iter().map(id_of).collect()))
    }
}

/// Precomputed per-node facts, OR-ed bottom-up over children at intern
/// time. All three are *syntactic* and conservative: `HAS_VAR` counts bound
/// occurrences too, and `HAS_META` means a `Con::Meta` node is physically
/// present (whether or not it is solved in some `MetaCx`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Flags(u8);

impl Flags {
    const HAS_VAR: u8 = 1;
    const HAS_META: u8 = 1 << 1;
    const HAS_KMETA: u8 = 1 << 2;

    /// Contains a `Con::Var` node (free *or* bound).
    pub fn has_var(self) -> bool {
        self.0 & Flags::HAS_VAR != 0
    }

    /// Contains a `Con::Meta` node.
    pub fn has_meta(self) -> bool {
        self.0 & Flags::HAS_META != 0
    }

    /// Contains a `Kind::Meta` inside an embedded kind annotation.
    pub fn has_kmeta(self) -> bool {
        self.0 & Flags::HAS_KMETA != 0
    }

    /// No variables and no (constructor or kind) metavariables anywhere.
    pub fn is_closed(self) -> bool {
        self.0 == 0
    }
}

/// Snapshot of the thread-local table's size and hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Canonical constructor nodes allocated.
    pub nodes: u64,
    /// Intern requests answered by an existing node.
    pub hits: u64,
    /// Intern requests that allocated a new node.
    pub misses: u64,
    /// Distinct name literals interned.
    pub names: u64,
    /// Name-intern requests answered by an existing allocation.
    pub name_hits: u64,
    /// Name-intern requests that allocated.
    pub name_misses: u64,
}

/// Shallow structural key: the variant discriminant plus child *ids* and
/// leaf data. Hashing/equality on `Key` is O(arity), never a deep walk.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Var(u32),
    Meta(u32),
    Prim(PrimType),
    Arrow(ConId, ConId),
    Poly(u32, Kind, ConId),
    Guarded(ConId, ConId, ConId),
    Lam(u32, Kind, ConId),
    App(ConId, ConId),
    Name(Rc<str>),
    Record(ConId),
    RowNil(Kind),
    RowOne(ConId, ConId),
    RowCat(ConId, ConId),
    Map(Kind, Kind),
    Folder(Kind),
    Pair(ConId, ConId),
    Fst(ConId),
    Snd(ConId),
}

struct Node {
    con: RCon,
    flags: Flags,
    hash: u64,
}

#[derive(Default)]
struct Interner {
    map: HashMap<Key, ConId>,
    nodes: Vec<Node>,
    /// Reverse index for canonical pointers only; see module docs for why
    /// this is sound (canonical nodes are immortal on their thread).
    by_ptr: HashMap<*const Con, ConId>,
    names: HashSet<Rc<str>>,
    hits: u64,
    misses: u64,
    name_hits: u64,
    name_misses: u64,
}

impl Interner {
    fn intern_name(&mut self, s: Rc<str>) -> Rc<str> {
        if let Some(canon) = self.names.get(&*s) {
            self.name_hits += 1;
            return Rc::clone(canon);
        }
        self.name_misses += 1;
        self.names.insert(Rc::clone(&s));
        s
    }

    /// The id of `c`, interning it if it is foreign (not built by the
    /// smart constructors).
    fn id_of(&mut self, c: &RCon) -> ConId {
        if let Some(&id) = self.by_ptr.get(&Rc::as_ptr(c)) {
            return id;
        }
        self.intern_con(c)
    }

    /// The canonical node for `id` plus a clone of its `Rc`.
    fn canon(&mut self, c: &RCon) -> (ConId, RCon) {
        let id = self.id_of(c);
        (id, Rc::clone(&self.nodes[id.0 as usize].con))
    }

    /// Computes the shallow key of `con` and a structurally identical `Con`
    /// whose children are all canonical (so a freshly allocated node only
    /// ever points at canonical subterms).
    fn prepare(&mut self, con: &Con) -> (Key, Con) {
        match con {
            Con::Var(s) => (Key::Var(s.id()), Con::Var(s.clone())),
            Con::Meta(m) => (Key::Meta(m.0), Con::Meta(*m)),
            Con::Prim(p) => (Key::Prim(*p), Con::Prim(*p)),
            Con::Arrow(a, b) => {
                let (ia, ca) = self.canon(a);
                let (ib, cb) = self.canon(b);
                (Key::Arrow(ia, ib), Con::Arrow(ca, cb))
            }
            Con::Poly(s, k, t) => {
                let (it, ct) = self.canon(t);
                (Key::Poly(s.id(), k.clone(), it), Con::Poly(s.clone(), k.clone(), ct))
            }
            Con::Guarded(a, b, t) => {
                let (ia, ca) = self.canon(a);
                let (ib, cb) = self.canon(b);
                let (it, ct) = self.canon(t);
                (Key::Guarded(ia, ib, it), Con::Guarded(ca, cb, ct))
            }
            Con::Lam(s, k, t) => {
                let (it, ct) = self.canon(t);
                (Key::Lam(s.id(), k.clone(), it), Con::Lam(s.clone(), k.clone(), ct))
            }
            Con::App(f, a) => {
                let (i_f, cf) = self.canon(f);
                let (ia, ca) = self.canon(a);
                (Key::App(i_f, ia), Con::App(cf, ca))
            }
            Con::Name(n) => {
                let n = self.intern_name(Rc::clone(n));
                (Key::Name(Rc::clone(&n)), Con::Name(n))
            }
            Con::Record(r) => {
                let (ir, cr) = self.canon(r);
                (Key::Record(ir), Con::Record(cr))
            }
            Con::RowNil(k) => (Key::RowNil(k.clone()), Con::RowNil(k.clone())),
            Con::RowOne(n, v) => {
                let (i_n, cn) = self.canon(n);
                let (iv, cv) = self.canon(v);
                (Key::RowOne(i_n, iv), Con::RowOne(cn, cv))
            }
            Con::RowCat(a, b) => {
                let (ia, ca) = self.canon(a);
                let (ib, cb) = self.canon(b);
                (Key::RowCat(ia, ib), Con::RowCat(ca, cb))
            }
            Con::Map(k1, k2) => {
                (Key::Map(k1.clone(), k2.clone()), Con::Map(k1.clone(), k2.clone()))
            }
            Con::Folder(k) => (Key::Folder(k.clone()), Con::Folder(k.clone())),
            Con::Pair(a, b) => {
                let (ia, ca) = self.canon(a);
                let (ib, cb) = self.canon(b);
                (Key::Pair(ia, ib), Con::Pair(ca, cb))
            }
            Con::Fst(c) => {
                let (ic, cc) = self.canon(c);
                (Key::Fst(ic), Con::Fst(cc))
            }
            Con::Snd(c) => {
                let (ic, cc) = self.canon(c);
                (Key::Snd(ic), Con::Snd(cc))
            }
        }
    }

    fn child_flags(&self, id: ConId) -> u8 {
        self.nodes[id.0 as usize].flags.0
    }

    fn kind_bit(k: &Kind) -> u8 {
        if k.is_ground() {
            0
        } else {
            Flags::HAS_KMETA
        }
    }

    fn flags_of_key(&self, key: &Key) -> Flags {
        let bits = match key {
            Key::Var(_) => Flags::HAS_VAR,
            Key::Meta(_) => Flags::HAS_META,
            Key::Prim(_) | Key::Name(_) => 0,
            Key::Arrow(a, b)
            | Key::App(a, b)
            | Key::RowOne(a, b)
            | Key::RowCat(a, b)
            | Key::Pair(a, b) => self.child_flags(*a) | self.child_flags(*b),
            Key::Poly(_, k, t) | Key::Lam(_, k, t) => {
                self.child_flags(*t) | Interner::kind_bit(k)
            }
            Key::Guarded(a, b, t) => {
                self.child_flags(*a) | self.child_flags(*b) | self.child_flags(*t)
            }
            Key::Record(r) | Key::Fst(r) | Key::Snd(r) => self.child_flags(*r),
            Key::RowNil(k) | Key::Folder(k) => Interner::kind_bit(k),
            Key::Map(k1, k2) => Interner::kind_bit(k1) | Interner::kind_bit(k2),
        };
        Flags(bits)
    }

    fn intern_con(&mut self, con: &Con) -> ConId {
        let (key, canonical) = self.prepare(con);
        if let Some(&id) = self.map.get(&key) {
            self.hits += 1;
            return id;
        }
        self.misses += 1;
        // failpoint `intern_grow`: a simulated growth hiccup on the
        // hash-cons map — force an immediate shrink-and-rehash before the
        // insert. Semantically invisible (same entries, same ids), but it
        // exercises the capacity-change path deterministically so the
        // chaos harness can prove table growth never perturbs results.
        if crate::failpoint::fire(crate::failpoint::Site::InternGrow) {
            self.map.shrink_to_fit();
            self.map.reserve(self.map.len() + 64);
        }
        let flags = self.flags_of_key(&key);
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let hash = h.finish();
        let rcon: RCon = Rc::new(canonical);
        let id = ConId(self.nodes.len() as u32);
        self.by_ptr.insert(Rc::as_ptr(&rcon), id);
        self.nodes.push(Node { con: rcon, flags, hash });
        self.map.insert(key, id);
        id
    }

    fn intern(&mut self, con: Con) -> RCon {
        let id = self.intern_con(&con);
        Rc::clone(&self.nodes[id.0 as usize].con)
    }

    fn stats(&self) -> InternStats {
        InternStats {
            nodes: self.nodes.len() as u64,
            hits: self.hits,
            misses: self.misses,
            names: self.names.len() as u64,
            name_hits: self.name_hits,
            name_misses: self.name_misses,
        }
    }
}

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::default());
}

/// Interns `con`, returning the canonical shared node. This is the single
/// funnel all `Con` smart constructors go through; it never calls back
/// into user code, so the thread-local borrow cannot be re-entered.
pub(crate) fn mk(con: Con) -> RCon {
    INTERNER.with(|i| i.borrow_mut().intern(con))
}

/// The canonical id of `c` (interning foreign terms structurally).
pub fn id_of(c: &RCon) -> ConId {
    INTERNER.with(|i| i.borrow_mut().id_of(c))
}

/// Precomputed flags of `c`.
pub fn flags_of(c: &RCon) -> Flags {
    INTERNER.with(|i| {
        let mut i = i.borrow_mut();
        let id = i.id_of(c);
        i.nodes[id.0 as usize].flags
    })
}

/// The stable structural hash of `c` (computed once at intern time).
pub fn hash_of(c: &RCon) -> u64 {
    INTERNER.with(|i| {
        let mut i = i.borrow_mut();
        let id = i.id_of(c);
        i.nodes[id.0 as usize].hash
    })
}

/// Resolves an id back to its canonical node.
pub fn resolve(id: ConId) -> Option<RCon> {
    INTERNER.with(|i| i.borrow().nodes.get(id.0 as usize).map(|n| Rc::clone(&n.con)))
}

/// Interns a name literal's string payload; repeated labels share one
/// allocation, so [`names_eq`] usually decides by pointer.
pub fn intern_name(n: impl Into<Rc<str>>) -> Rc<str> {
    INTERNER.with(|i| i.borrow_mut().intern_name(n.into()))
}

/// Label equality with the pointer fast path the name table enables.
pub fn names_eq(a: &Rc<str>, b: &Rc<str>) -> bool {
    Rc::ptr_eq(a, b) || a == b
}

/// Current table size and hit/miss counters for this thread.
pub fn table_stats() -> InternStats {
    INTERNER.with(|i| i.borrow().stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;

    #[test]
    fn structurally_equal_terms_share_one_node() {
        let a = Con::arrow(Con::int(), Con::string());
        let b = Con::arrow(Con::int(), Con::string());
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(id_of(&a), id_of(&b));
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let a = Con::arrow(Con::int(), Con::string());
        let b = Con::arrow(Con::string(), Con::int());
        assert!(!Rc::ptr_eq(&a, &b));
        assert_ne!(id_of(&a), id_of(&b));
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn foreign_terms_are_reinterned_structurally() {
        let canonical = Con::arrow(Con::int(), Con::int());
        let foreign: RCon = Rc::new(Con::Arrow(Con::int(), Con::int()));
        assert!(!Rc::ptr_eq(&canonical, &foreign));
        assert_eq!(id_of(&canonical), id_of(&foreign));
    }

    #[test]
    fn resolve_round_trips() {
        let c = Con::record(Con::row_nil(Kind::Type));
        let id = id_of(&c);
        let back = resolve(id).unwrap();
        assert!(Rc::ptr_eq(&c, &back));
    }

    #[test]
    fn flags_track_vars_and_metas() {
        use crate::con::MetaId;
        let closed = Con::arrow(Con::int(), Con::string());
        assert!(flags_of(&closed).is_closed());

        let v = Con::var(&Sym::fresh("a"));
        assert!(flags_of(&v).has_var());
        assert!(!flags_of(&v).has_meta());

        let m = Con::meta(MetaId(901_000));
        assert!(flags_of(&m).has_meta());

        let nested = Con::pair(Con::int(), m);
        assert!(flags_of(&nested).has_meta());
        assert!(!nested.is_meta());

        let kmeta = Con::row_nil(Kind::Meta(crate::kind::KMetaId(901_001)));
        assert!(flags_of(&kmeta).has_kmeta());
        assert!(!flags_of(&kmeta).is_closed());
    }

    #[test]
    fn binders_with_distinct_syms_do_not_collide() {
        let (x, y) = (Sym::fresh("x"), Sym::fresh("y"));
        let lx = Con::lam(x.clone(), Kind::Type, Con::var(&x));
        let ly = Con::lam(y.clone(), Kind::Type, Con::var(&y));
        assert!(!Rc::ptr_eq(&lx, &ly));
        // ... but rebuilding the *same* binder does collide.
        let lx2 = Con::lam(x.clone(), Kind::Type, Con::var(&x));
        assert!(Rc::ptr_eq(&lx, &lx2));
    }

    #[test]
    fn names_share_one_allocation() {
        let a = Con::name("SharedLabel");
        let b = Con::name(String::from("SharedLabel"));
        assert!(Rc::ptr_eq(&a, &b));
        match (&*a, &*b) {
            (Con::Name(na), Con::Name(nb)) => assert!(names_eq(na, nb)),
            _ => panic!("expected names"),
        }
    }

    #[test]
    fn spine_on_handles_matches_spine_on_trees() {
        let f = Con::var(&Sym::fresh("f"));
        let app = Con::apps(Rc::clone(&f), [Con::int(), Con::string()]);
        let (head, args) = id_of(&app).spine().unwrap();
        assert_eq!(head, id_of(&f));
        assert_eq!(args, vec![id_of(&Con::int()), id_of(&Con::string())]);
    }

    #[test]
    fn table_stats_count_hits() {
        let before = table_stats();
        let _ = Con::arrow(Con::unit(), Con::unit());
        let _ = Con::arrow(Con::unit(), Con::unit());
        let after = table_stats();
        assert!(after.hits > before.hits, "second build must hit the table");
        assert!(after.nodes >= before.nodes);
    }
}
