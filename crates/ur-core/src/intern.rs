//! Hash-consing façade over the shared [`crate::arena`].
//!
//! Historically this module owned a *thread-local* intern table and the
//! rest of the workspace spoke to it through free functions (`id_of`,
//! `flags_of`, `resolve`, ...). The table now lives in the global sharded
//! arena — `RCon`/`RExpr` *are* arena ids — and this module keeps the old
//! entry points alive as thin forwarders so call sites and the mental
//! model ("every canonical node has a stable `ConId`") survive unchanged:
//!
//! * `==` on canonical constructors *is* structural equality — the
//!   pre-normalization fast paths in `defeq`/`unify` are O(1);
//! * every canonical node has a stable [`ConId`] usable as a `HashMap`
//!   key, which is what the [`crate::memo`] tables for `hnf`/`defeq`/row
//!   normalization/disjointness verdicts key on — and, post-arena, those
//!   keys mean the same term on *every* thread;
//! * every node carries precomputed [`Flags`] (has-var / has-meta /
//!   has-kind-meta), so "is this term closed?" checks in substitution,
//!   zonking, and the occurs check are one bit test instead of a
//!   traversal;
//! * name literals (`Con::Name`) intern their string payload as an
//!   [`IStr`], so record-label comparison is `u32` equality.

use crate::arena::{self, IStr};
use crate::con::RCon;

pub use crate::arena::{ArenaStats, ConId, Flags};

/// Snapshot of the arena's size and hit/miss counters, in the shape the
/// PR 3-era per-worker counters used (`nodes`/`hits`/`misses` cover
/// constructor and expression interning combined).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Canonical term nodes allocated (constructors + expressions).
    pub nodes: u64,
    /// Intern requests answered by an existing node.
    pub hits: u64,
    /// Intern requests that allocated a new node.
    pub misses: u64,
    /// Distinct strings interned (labels, symbol names, literals).
    pub names: u64,
    /// String-intern requests answered by an existing allocation.
    pub name_hits: u64,
    /// String-intern requests that allocated.
    pub name_misses: u64,
}

/// The canonical id of `c` — the handle *is* the id.
pub fn id_of(c: &RCon) -> ConId {
    *c
}

/// Precomputed flags of `c`.
pub fn flags_of(c: &RCon) -> Flags {
    c.flags()
}

/// The stable structural hash of `c` (computed once at intern time).
pub fn hash_of(c: &RCon) -> u64 {
    c.node_hash()
}

/// Resolves an id back to its canonical node (identity on live ids).
pub fn resolve(id: ConId) -> Option<RCon> {
    Some(id)
}

/// Interns a string; repeated labels share one id, so [`names_eq`] is a
/// `u32` compare.
pub fn intern_name(n: impl Into<IStr>) -> IStr {
    n.into()
}

/// Label equality — O(1) on interned handles.
pub fn names_eq(a: &IStr, b: &IStr) -> bool {
    a == b
}

/// Current arena size and hit/miss counters (process-global).
pub fn table_stats() -> InternStats {
    let s = arena::stats();
    InternStats {
        nodes: s.con_nodes + s.expr_nodes,
        hits: s.hits,
        misses: s.misses,
        names: s.strings,
        name_hits: s.str_hits,
        name_misses: s.str_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;
    use crate::kind::Kind;
    use crate::sym::Sym;

    #[test]
    fn structurally_equal_terms_share_one_node() {
        let a = Con::arrow(Con::int(), Con::string());
        let b = Con::arrow(Con::int(), Con::string());
        assert_eq!(a, b);
        assert_eq!(id_of(&a), id_of(&b));
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let a = Con::arrow(Con::int(), Con::string());
        let b = Con::arrow(Con::string(), Con::int());
        assert_ne!(a, b);
        assert_ne!(id_of(&a), id_of(&b));
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn resolve_round_trips() {
        let c = Con::record(Con::row_nil(Kind::Type));
        let id = id_of(&c);
        let back = resolve(id).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn flags_track_vars_and_metas() {
        use crate::con::MetaId;
        let closed = Con::arrow(Con::int(), Con::string());
        assert!(flags_of(&closed).is_closed());

        let v = Con::var(&Sym::fresh("a"));
        assert!(flags_of(&v).has_var());
        assert!(!flags_of(&v).has_meta());

        let m = Con::meta(MetaId(901_000));
        assert!(flags_of(&m).has_meta());

        let nested = Con::pair(Con::int(), m);
        assert!(flags_of(&nested).has_meta());
        assert!(!nested.is_meta());

        let kmeta = Con::row_nil(Kind::Meta(crate::kind::KMetaId(901_001)));
        assert!(flags_of(&kmeta).has_kmeta());
        assert!(!flags_of(&kmeta).is_closed());
    }

    #[test]
    fn binders_with_distinct_syms_do_not_collide() {
        let (x, y) = (Sym::fresh("x"), Sym::fresh("y"));
        let lx = Con::lam(x, Kind::Type, Con::var(&x));
        let ly = Con::lam(y, Kind::Type, Con::var(&y));
        assert_ne!(lx, ly);
        // ... but rebuilding the *same* binder does collide.
        let lx2 = Con::lam(x, Kind::Type, Con::var(&x));
        assert_eq!(lx, lx2);
    }

    #[test]
    fn names_share_one_allocation() {
        let a = Con::name("SharedLabel");
        let b = Con::name(String::from("SharedLabel"));
        assert_eq!(a, b);
        match (&*a, &*b) {
            (Con::Name(na), Con::Name(nb)) => assert!(names_eq(na, nb)),
            _ => panic!("expected names"),
        }
    }

    #[test]
    fn spine_on_handles_matches_spine_on_trees() {
        let f = Con::var(&Sym::fresh("f"));
        let app = Con::apps(f, [Con::int(), Con::string()]);
        let (head, args) = id_of(&app).spine();
        assert_eq!(head, id_of(&f));
        assert_eq!(args, vec![id_of(&Con::int()), id_of(&Con::string())]);
    }

    #[test]
    fn table_stats_count_hits() {
        let before = table_stats();
        let _ = Con::arrow(Con::unit(), Con::unit());
        let _ = Con::arrow(Con::unit(), Con::unit());
        let after = table_stats();
        assert!(after.hits > before.hits, "second build must hit the table");
        assert!(after.nodes >= before.nodes);
    }
}
