//! Interned symbols with globally unique identities.
//!
//! Every binder in elaborated core syntax carries a [`Sym`]. Two symbols are
//! equal exactly when their unique ids are equal; the textual name is kept
//! only for display (as an arena-interned [`IStr`], which makes `Sym`
//! `Copy + Send`). Elaboration freshens all binders, so symbol identity
//! doubles as a cheap alpha-equivalence discipline, while substitution still
//! freshens defensively (see [`crate::subst`]).

use crate::arena::IStr;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

static NEXT_SYM: AtomicU32 = AtomicU32::new(1);

/// A named symbol with a globally unique id.
///
/// Equality, ordering, and hashing consider only the id. The id supply is
/// process-global, so symbols minted on different worker threads can never
/// collide and terms carrying them may cross threads freely.
///
/// ```
/// use ur_core::sym::Sym;
/// let a = Sym::fresh("x");
/// let b = Sym::fresh("x");
/// assert_ne!(a, b);
/// assert_eq!(a.name(), b.name());
/// ```
#[derive(Clone, Copy)]
pub struct Sym {
    name: IStr,
    id: u32,
}

impl Sym {
    /// Creates a new symbol with a fresh unique id.
    pub fn fresh(name: impl Into<IStr>) -> Sym {
        Sym {
            name: name.into(),
            id: NEXT_SYM.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Creates a fresh symbol reusing this symbol's textual name.
    ///
    /// Used by capture-avoiding substitution to rename binders.
    pub fn rename(&self) -> Sym {
        Sym {
            name: self.name,
            id: NEXT_SYM.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The textual (source) name.
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The interned name handle.
    pub fn name_istr(&self) -> IStr {
        self.name
    }

    /// The unique id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Reassembles a symbol from parts produced by [`Sym::name_istr`] and
    /// [`Sym::id`] — for same-process codecs (e.g. the bytecode chunk
    /// round-trip in `ur-eval`). The id must have been minted by
    /// [`Sym::fresh`]/[`Sym::rename`] in this process, or uniqueness is
    /// forfeited.
    pub fn from_raw(name: IStr, id: u32) -> Sym {
        Sym { name, id }
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_symbols_are_distinct() {
        let syms: Vec<Sym> = (0..100).map(|_| Sym::fresh("a")).collect();
        let ids: HashSet<u32> = syms.iter().map(|s| s.id()).collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn rename_preserves_name() {
        let a = Sym::fresh("widget");
        let b = a.rename();
        assert_eq!(b.name(), "widget");
        assert_ne!(a, b);
    }

    #[test]
    fn display_shows_name_only() {
        let a = Sym::fresh("nm");
        assert_eq!(a.to_string(), "nm");
    }

    #[test]
    fn debug_includes_id() {
        let a = Sym::fresh("nm");
        assert!(format!("{a:?}").starts_with("nm#"));
    }

    #[test]
    fn hash_and_eq_agree() {
        let a = Sym::fresh("x");
        let a2 = a;
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&a2));
    }

    #[test]
    fn syms_are_copy_and_send() {
        fn assert_copy_send<T: Copy + Send + Sync>() {}
        assert_copy_send::<Sym>();
    }
}
