//! Memo tables for the four expensive judgments: head normalization,
//! definitional equality, row normalization, and disjointness verdicts.
//!
//! All four tables key on canonical [`ConId`]s (see [`crate::intern`]) plus
//! the *semantic generation* of the [`crate::env::Env`] the judgment ran
//! under: two envs share a generation only when they have identical
//! constructor bindings and disjointness facts, so a `(ConId, env_gen)` key
//! pins down every input the judgment reads — except the metavariable
//! store.
//!
//! Metavariable solutions are **write-once and monotone**: `MetaCx::solve`
//! / `solve_kind` assert the slot was unsolved, and elaborator error
//! recovery never rolls the store back. Each entry therefore records the
//! meta generation at store time and is served only while no further
//! solution has been recorded — *unless* the entry is `stable`, meaning no
//! future solution can change it:
//!
//! * `hnf` results containing no `Con::Meta` node (hnf never reads kinds,
//!   so kind metas are irrelevant to it);
//! * `defeq == true` (solving metas only makes more terms equal, never
//!   fewer);
//! * row normal forms all of whose components are meta-free, con and kind
//!   alike (`normalize_row` zonks kinds into `elem_kind`);
//! * prover verdicts `Proved` and `Refuted` (both are preserved under
//!   refinement: literal-name evidence cannot change, and fact matches are
//!   `defeq`-based, which is monotone). `NotYet` is exactly the verdict
//!   that later solutions revise, so it is generation-guarded.
//!
//! Law configuration is part of the judgment semantics too: if
//! [`crate::Cx::laws`] changes between calls, every table is cleared.
//!
//! Fuel interaction (see `docs/PERFORMANCE.md`): callers never store a
//! result computed under exhausted fuel (it would be a degenerate value,
//! not the judgment's answer), and a cache hit still charges one
//! normalization step so cached elaboration remains fuel-bounded.

use crate::con::RCon;
use crate::disjoint::ProveResult;
use crate::intern::{self, ConId};
use crate::row::{FieldKey, RowNf};
use crate::LawConfig;
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct Entry<T> {
    value: T,
    /// Meta generation at store time; ignored when `stable`.
    meta_gen: u64,
    /// True when no future meta solution can change the value.
    stable: bool,
    /// Per-entry integrity tag, checked on every load. Only compiled
    /// under the `failpoints` feature (the chaos harness corrupts
    /// entries through the `memo_store`/`memo_load` sites and this check
    /// is what detects them); production builds carry no tag.
    #[cfg(feature = "failpoints")]
    check: u64,
}

impl<T: Clone + IntegrityTag> Entry<T> {
    fn new(value: T, meta_gen: u64, stable: bool) -> Entry<T> {
        #[cfg(feature = "failpoints")]
        let check = value.tag();
        Entry {
            value,
            meta_gen,
            stable,
            #[cfg(feature = "failpoints")]
            check,
        }
    }

    fn get(&self, meta_gen: u64) -> Option<T> {
        if self.stable || self.meta_gen == meta_gen {
            Some(self.value.clone())
        } else {
            None
        }
    }

    /// True when the stored tag still matches the value.
    #[cfg(feature = "failpoints")]
    fn verify(&self) -> bool {
        self.check == self.value.tag()
    }

    /// Corrupts the entry's tag (simulating a torn write); only the
    /// chaos harness ever calls this, via the `memo_store` site.
    #[cfg(feature = "failpoints")]
    fn corrupt(&mut self) {
        self.check ^= 0xDEAD_BEEF_DEAD_BEEF;
    }
}

/// A cheap content fingerprint for memo values, backing the per-entry
/// integrity check. Collisions only weaken *fault detection* (a corrupt
/// entry slipping through the chaos harness), never correctness of the
/// clean path, so a fast non-cryptographic mix is plenty. `tag` is only
/// called under the `failpoints` feature; the bound stays in both
/// configurations so the table types don't fork.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
trait IntegrityTag {
    fn tag(&self) -> u64;
}

#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

impl IntegrityTag for RCon {
    fn tag(&self) -> u64 {
        intern::hash_of(self)
    }
}

impl IntegrityTag for bool {
    fn tag(&self) -> u64 {
        u64::from(*self)
    }
}

impl IntegrityTag for ProveResult {
    fn tag(&self) -> u64 {
        match self {
            ProveResult::Proved => 1,
            ProveResult::NotYet => 2,
            ProveResult::Refuted => 3,
        }
    }
}

impl IntegrityTag for RowNf {
    fn tag(&self) -> u64 {
        let key_tag = |k: &FieldKey| match k {
            FieldKey::Lit(n) => n.bytes().fold(FNV_BASIS, |h, b| fnv_mix(h, u64::from(b))),
            FieldKey::Neutral(c) => intern::hash_of(c),
        };
        let mut h = FNV_BASIS;
        h = fnv_mix(h, self.fields.len() as u64);
        for (k, v) in &self.fields {
            h = fnv_mix(h, key_tag(k));
            h = fnv_mix(h, intern::hash_of(v));
        }
        h = fnv_mix(h, self.source_fields.len() as u64);
        for (k, _) in &self.source_fields {
            h = fnv_mix(h, key_tag(k));
        }
        h = fnv_mix(h, self.atoms.len() as u64);
        for a in &self.atoms {
            h = fnv_mix(h, intern::hash_of(&a.base));
            if let Some((f, _)) = &a.map {
                h = fnv_mix(h, intern::hash_of(f));
            }
        }
        h
    }
}

/// Unordered pair key: `defeq` and the prover are symmetric, so both
/// orientations of a query share one entry.
fn pair_key(a: ConId, b: ConId, env_gen: u64) -> (ConId, ConId, u64) {
    if a <= b {
        (a, b, env_gen)
    } else {
        (b, a, env_gen)
    }
}

/// True when every constructor and kind in `nf` is meta-free, so the
/// normal form can never be refined by later solutions.
fn row_nf_stable(nf: &RowNf) -> bool {
    let con_ok = |c: &RCon| {
        let f = intern::flags_of(c);
        !f.has_meta() && !f.has_kmeta()
    };
    let key_ok = |k: &FieldKey| match k {
        FieldKey::Lit(_) => true,
        FieldKey::Neutral(c) => con_ok(c),
    };
    nf.elem_kind.as_ref().is_none_or(|k| k.is_ground())
        && nf.fields.iter().all(|(k, v)| key_ok(k) && con_ok(v))
        && nf
            .atoms
            .iter()
            .all(|a| con_ok(&a.base) && a.map.as_ref().is_none_or(|(f, k)| con_ok(f) && k.is_ground()))
}

/// The per-[`crate::Cx`] memo store.
#[derive(Clone, Debug)]
pub struct Memo {
    /// Master switch; benches flip this off for uncached comparison runs.
    /// When disabled, callers skip both lookups and stores.
    pub enabled: bool,
    laws: Option<LawConfig>,
    hnf: HashMap<(ConId, u64), Entry<RCon>>,
    defeq: HashMap<(ConId, ConId, u64), Entry<bool>>,
    rows: HashMap<(ConId, u64), Entry<RowNf>>,
    disjoint: HashMap<(ConId, ConId, u64), Entry<ProveResult>>,
}

impl Default for Memo {
    fn default() -> Memo {
        Memo {
            enabled: true,
            laws: None,
            hnf: HashMap::new(),
            defeq: HashMap::new(),
            rows: HashMap::new(),
            disjoint: HashMap::new(),
        }
    }
}

/// Loads `key` from `table`, consulting the `memo_load` failpoint and the
/// per-entry integrity check. A corrupt entry (whether injected at store
/// time or "bit-rotted" by the load fault) is evicted and counted, and
/// the load misses — the caller recomputes, so faults never change
/// results, only work. Without `failpoints` this is a plain lookup.
fn load<K, T>(table: &mut HashMap<K, Entry<T>>, key: K, meta_gen: u64) -> Option<T>
where
    K: Eq + std::hash::Hash,
    T: Clone + IntegrityTag,
{
    #[cfg(feature = "failpoints")]
    if let Some(e) = table.get_mut(&key) {
        if crate::failpoint::fire(crate::failpoint::Site::MemoLoad) {
            e.corrupt();
        }
        if !e.verify() {
            table.remove(&key);
            crate::failpoint::note_integrity_rejection();
            return None;
        }
    }
    table.get(&key).and_then(|e| e.get(meta_gen))
}

/// Inserts `entry`, letting the `memo_store` failpoint simulate a torn
/// write (corrupt tag, detected and rejected by a later [`load`]).
fn store<K, T>(table: &mut HashMap<K, Entry<T>>, key: K, entry: Entry<T>)
where
    K: Eq + std::hash::Hash,
    T: Clone + IntegrityTag,
{
    #[cfg(feature = "failpoints")]
    let entry = {
        let mut entry = entry;
        if crate::failpoint::fire(crate::failpoint::Site::MemoStore) {
            entry.corrupt();
        }
        entry
    };
    table.insert(key, entry);
}

impl Memo {
    /// Clears every table when the law configuration differs from the one
    /// the entries were computed under (law toggles change `defeq`, row
    /// normalization, and prover outcomes).
    pub fn check_laws(&mut self, laws: LawConfig) {
        if self.laws != Some(laws) {
            self.hnf.clear();
            self.defeq.clear();
            self.rows.clear();
            self.disjoint.clear();
            self.laws = Some(laws);
        }
    }

    pub fn hnf_get(&mut self, c: ConId, env_gen: u64, meta_gen: u64) -> Option<RCon> {
        load(&mut self.hnf, (c, env_gen), meta_gen)
    }

    pub fn hnf_put(&mut self, c: ConId, env_gen: u64, meta_gen: u64, out: &RCon) {
        let stable = !intern::flags_of(out).has_meta();
        store(
            &mut self.hnf,
            (c, env_gen),
            Entry::new(RCon::clone(out), meta_gen, stable),
        );
    }

    pub fn defeq_get(&mut self, a: ConId, b: ConId, env_gen: u64, meta_gen: u64) -> Option<bool> {
        load(&mut self.defeq, pair_key(a, b, env_gen), meta_gen)
    }

    pub fn defeq_put(&mut self, a: ConId, b: ConId, env_gen: u64, meta_gen: u64, eq: bool) {
        store(
            &mut self.defeq,
            pair_key(a, b, env_gen),
            Entry::new(eq, meta_gen, eq),
        );
    }

    pub fn row_get(&mut self, c: ConId, env_gen: u64, meta_gen: u64) -> Option<RowNf> {
        load(&mut self.rows, (c, env_gen), meta_gen)
    }

    pub fn row_put(&mut self, c: ConId, env_gen: u64, meta_gen: u64, nf: &RowNf) {
        let stable = row_nf_stable(nf);
        store(
            &mut self.rows,
            (c, env_gen),
            Entry::new(nf.clone(), meta_gen, stable),
        );
    }

    pub fn disjoint_get(
        &mut self,
        a: ConId,
        b: ConId,
        env_gen: u64,
        meta_gen: u64,
    ) -> Option<ProveResult> {
        load(&mut self.disjoint, pair_key(a, b, env_gen), meta_gen)
    }

    pub fn disjoint_put(
        &mut self,
        a: ConId,
        b: ConId,
        env_gen: u64,
        meta_gen: u64,
        out: ProveResult,
    ) {
        let stable = matches!(out, ProveResult::Proved | ProveResult::Refuted);
        store(
            &mut self.disjoint,
            pair_key(a, b, env_gen),
            Entry::new(out, meta_gen, stable),
        );
    }

    /// Entry counts per table `(hnf, defeq, rows, disjoint)`, for
    /// instrumentation.
    pub fn table_sizes(&self) -> (usize, usize, usize, usize) {
        (self.hnf.len(), self.defeq.len(), self.rows.len(), self.disjoint.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;
    use crate::kind::Kind;

    #[test]
    fn defeq_true_survives_meta_generations() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        let b = intern::id_of(&Con::int());
        m.defeq_put(a, b, 0, 0, true);
        assert_eq!(m.defeq_get(a, b, 0, 99), Some(true));
        // ... and is symmetric in the key.
        assert_eq!(m.defeq_get(b, a, 0, 99), Some(true));
    }

    #[test]
    fn defeq_false_is_generation_guarded() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        let b = intern::id_of(&Con::float());
        m.defeq_put(a, b, 0, 3, false);
        assert_eq!(m.defeq_get(a, b, 0, 3), Some(false));
        assert_eq!(m.defeq_get(a, b, 0, 4), None);
    }

    #[test]
    fn notyet_is_generation_guarded_but_proved_is_not() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::row_nil(Kind::Type));
        let b = intern::id_of(&Con::int());
        m.disjoint_put(a, b, 0, 1, ProveResult::NotYet);
        assert_eq!(m.disjoint_get(a, b, 0, 2), None);
        m.disjoint_put(a, b, 0, 1, ProveResult::Proved);
        assert_eq!(m.disjoint_get(a, b, 0, 2), Some(ProveResult::Proved));
    }

    #[test]
    fn law_change_clears_tables() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        m.check_laws(LawConfig::default());
        m.defeq_put(a, a, 0, 0, true);
        m.check_laws(LawConfig::default());
        assert_eq!(m.defeq_get(a, a, 0, 0), Some(true), "same laws keep entries");
        m.check_laws(LawConfig { identity: false, ..LawConfig::default() });
        assert_eq!(m.defeq_get(a, a, 0, 0), None, "law flip clears entries");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn corrupt_store_is_rejected_on_load_and_recomputable() {
        use crate::failpoint::{self, FpConfig, Site};
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        // Corrupt the very first store deterministically.
        failpoint::install(Some(
            FpConfig::new(11).with_rate(Site::MemoStore, 1000).with_max_per_site(1),
        ));
        m.defeq_put(a, a, 0, 0, true);
        let before = failpoint::counters().integrity_rejections;
        assert_eq!(m.defeq_get(a, a, 0, 0), None, "corrupt entry must not be served");
        assert_eq!(
            failpoint::counters().integrity_rejections,
            before + 1,
            "rejection must be counted"
        );
        // The entry was evicted; a clean re-store heals the table.
        m.defeq_put(a, a, 0, 0, true);
        assert_eq!(m.defeq_get(a, a, 0, 0), Some(true));
        let _ = failpoint::take_counters();
        failpoint::install(None);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn load_fault_evicts_and_recomputes() {
        use crate::failpoint::{self, FpConfig, Site};
        let mut m = Memo::default();
        let c = Con::row_one(Con::name("A"), Con::int());
        let id = intern::id_of(&c);
        m.hnf_put(id, 0, 0, &c);
        failpoint::install(Some(
            FpConfig::new(5).with_rate(Site::MemoLoad, 1000).with_max_per_site(1),
        ));
        assert_eq!(m.hnf_get(id, 0, 0), None, "bit-rotted load must miss");
        assert_eq!(failpoint::counters().integrity_rejections, 1);
        // Fault budget spent: a fresh store now round-trips.
        m.hnf_put(id, 0, 0, &c);
        assert!(m.hnf_get(id, 0, 0).is_some());
        let _ = failpoint::take_counters();
        failpoint::install(None);
    }

    #[test]
    fn meta_bearing_hnf_results_are_guarded() {
        let mut m = Memo::default();
        let c = Con::meta(crate::con::MetaId(902_000));
        let id = intern::id_of(&c);
        m.hnf_put(id, 0, 5, &c);
        assert!(m.hnf_get(id, 0, 5).is_some());
        assert!(m.hnf_get(id, 0, 6).is_none());
        // A meta-free result is stable across generations.
        let ground = Con::int();
        m.hnf_put(id, 0, 5, &ground);
        assert!(m.hnf_get(id, 0, 6).is_some());
    }
}
