//! Memo tables for the four expensive judgments: head normalization,
//! definitional equality, row normalization, and disjointness verdicts.
//!
//! All four tables key on canonical [`ConId`]s (see [`crate::intern`]) plus
//! the *semantic generation* of the [`crate::env::Env`] the judgment ran
//! under: two envs share a generation only when they have identical
//! constructor bindings and disjointness facts, so a `(ConId, env_gen)` key
//! pins down every input the judgment reads — except the metavariable
//! store.
//!
//! Metavariable solutions are **write-once and monotone**: `MetaCx::solve`
//! / `solve_kind` assert the slot was unsolved, and elaborator error
//! recovery never rolls the store back. Each entry therefore records the
//! meta generation at store time and is served only while no further
//! solution has been recorded — *unless* the entry is `stable`, meaning no
//! future solution can change it:
//!
//! * `hnf` results containing no `Con::Meta` node (hnf never reads kinds,
//!   so kind metas are irrelevant to it);
//! * `defeq == true` (solving metas only makes more terms equal, never
//!   fewer);
//! * row normal forms all of whose components are meta-free, con and kind
//!   alike (`normalize_row` zonks kinds into `elem_kind`);
//! * prover verdicts `Proved` and `Refuted` (both are preserved under
//!   refinement: literal-name evidence cannot change, and fact matches are
//!   `defeq`-based, which is monotone). `NotYet` is exactly the verdict
//!   that later solutions revise, so it is generation-guarded.
//!
//! Law configuration is part of the judgment semantics too: if
//! [`crate::Cx::laws`] changes between calls, every table is cleared.
//!
//! On top of the per-`Cx` tables sits **one process-global stable-entry
//! layer** (sharded, `RwLock`-protected): stable entries whose key terms
//! are meta-free are published there and fetched by every worker, so N
//! workers no longer each pay for the same ground judgment. See the
//! "global stable-entry layer" section below for the soundness argument.
//!
//! Fuel interaction (see `docs/PERFORMANCE.md`): callers never store a
//! result computed under exhausted fuel (it would be a degenerate value,
//! not the judgment's answer), and a cache hit still charges one
//! normalization step so cached elaboration remains fuel-bounded.

use crate::con::RCon;
use crate::disjoint::ProveResult;
use crate::intern::{self, ConId};
use crate::row::{FieldKey, RowNf};
use crate::LawConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

#[derive(Clone, Debug)]
struct Entry<T> {
    value: T,
    /// Meta generation at store time; ignored when `stable`.
    meta_gen: u64,
    /// True when no future meta solution can change the value.
    stable: bool,
    /// Per-entry integrity tag, checked on every load. Only compiled
    /// under the `failpoints` feature (the chaos harness corrupts
    /// entries through the `memo_store`/`memo_load` sites and this check
    /// is what detects them); production builds carry no tag.
    #[cfg(feature = "failpoints")]
    check: u64,
}

impl<T: Clone + IntegrityTag> Entry<T> {
    fn new(value: T, meta_gen: u64, stable: bool) -> Entry<T> {
        #[cfg(feature = "failpoints")]
        let check = value.tag();
        Entry {
            value,
            meta_gen,
            stable,
            #[cfg(feature = "failpoints")]
            check,
        }
    }

    fn get(&self, meta_gen: u64) -> Option<T> {
        if self.stable || self.meta_gen == meta_gen {
            Some(self.value.clone())
        } else {
            None
        }
    }

    /// True when the stored tag still matches the value.
    #[cfg(feature = "failpoints")]
    fn verify(&self) -> bool {
        self.check == self.value.tag()
    }

    /// Corrupts the entry's tag (simulating a torn write); only the
    /// chaos harness ever calls this, via the `memo_store` site.
    #[cfg(feature = "failpoints")]
    fn corrupt(&mut self) {
        self.check ^= 0xDEAD_BEEF_DEAD_BEEF;
    }
}

/// A cheap content fingerprint for memo values, backing the per-entry
/// integrity check. Collisions only weaken *fault detection* (a corrupt
/// entry slipping through the chaos harness), never correctness of the
/// clean path, so a fast non-cryptographic mix is plenty. `tag` is only
/// called under the `failpoints` feature; the bound stays in both
/// configurations so the table types don't fork.
#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
trait IntegrityTag {
    fn tag(&self) -> u64;
}

#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

#[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

impl IntegrityTag for RCon {
    fn tag(&self) -> u64 {
        intern::hash_of(self)
    }
}

impl IntegrityTag for bool {
    fn tag(&self) -> u64 {
        u64::from(*self)
    }
}

impl IntegrityTag for ProveResult {
    fn tag(&self) -> u64 {
        match self {
            ProveResult::Proved => 1,
            ProveResult::NotYet => 2,
            ProveResult::Refuted => 3,
        }
    }
}

impl IntegrityTag for RowNf {
    fn tag(&self) -> u64 {
        let key_tag = |k: &FieldKey| match k {
            FieldKey::Lit(n) => n.bytes().fold(FNV_BASIS, |h, b| fnv_mix(h, u64::from(b))),
            FieldKey::Neutral(c) => intern::hash_of(c),
        };
        let mut h = FNV_BASIS;
        h = fnv_mix(h, self.fields.len() as u64);
        for (k, v) in &self.fields {
            h = fnv_mix(h, key_tag(k));
            h = fnv_mix(h, intern::hash_of(v));
        }
        h = fnv_mix(h, self.source_fields.len() as u64);
        for (k, _) in &self.source_fields {
            h = fnv_mix(h, key_tag(k));
        }
        h = fnv_mix(h, self.atoms.len() as u64);
        for a in &self.atoms {
            h = fnv_mix(h, intern::hash_of(&a.base));
            if let Some((f, _)) = &a.map {
                h = fnv_mix(h, intern::hash_of(f));
            }
        }
        h
    }
}

// ---------------- global stable-entry layer ----------------
//
// With the arena, a `ConId` means the same term on every thread and env
// generations come from one process-global counter, so *stable* entries
// (those no future meta solution can change) are valid process-wide.
// They live in one shared, sharded table: each per-`Cx` [`Memo`] stays
// the first level (and the only home of generation-guarded entries,
// since meta generations are per-`Cx`), and stable results are published
// to / fetched from the global layer so a judgment one worker paid for
// is a hit on every other worker. Law bits join the key because
// different `Cx`s may run under different law configurations
// simultaneously — the global layer is never cleared on a law flip,
// entries for other configurations simply live under other keys. The
// whole layer *is* cleared by [`crate::arena::try_reset`] (registered as
// an `on_reset` hook at first use): ids die with the arena generation.

/// Packs the law configuration into key bits.
fn law_bits(l: LawConfig) -> u64 {
    u64::from(l.identity) | (u64::from(l.distrib) << 1) | (u64::from(l.fusion) << 2)
}

/// True when `c` may participate in a *global* memo key. `MetaId`/`KMetaId`
/// are per-`Cx` dense indexes, so `Con::Meta(3)` names different
/// metavariables in different workers even though it interns to one
/// `ConId`; only meta-free terms (con *and* kind metas) mean the same
/// judgment input process-wide. Free variables are fine: `Sym` ids come
/// from one process-global counter.
fn globally_keyable(c: &RCon) -> bool {
    let f = intern::flags_of(c);
    !f.has_meta() && !f.has_kmeta()
}

const G_SHARDS: usize = 16;

#[derive(Default)]
struct GShard {
    hnf: RwLock<HashMap<(ConId, u64, u64), RCon>>,
    defeq: RwLock<HashMap<(ConId, ConId, u64, u64), bool>>,
    rows: RwLock<HashMap<(ConId, u64, u64), RowNf>>,
    disjoint: RwLock<HashMap<(ConId, ConId, u64, u64), ProveResult>>,
}

struct Global {
    shards: [GShard; G_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| {
        crate::arena::on_reset(clear_global);
        Global {
            shards: std::array::from_fn(|_| GShard::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    })
}

fn gshard(c: ConId, env_gen: u64) -> &'static GShard {
    let g = global();
    let ix = (c.0 as u64 ^ env_gen.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize % G_SHARDS;
    &g.shards[ix]
}

fn gnote(hit: bool) {
    let g = global();
    if hit {
        g.hits.fetch_add(1, Ordering::Relaxed);
    } else {
        g.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drops every entry in the global stable-entry layer. Runs as an arena
/// reset hook; also callable directly from tests.
pub fn clear_global() {
    let g = global();
    for s in &g.shards {
        write_lock(&s.hnf).clear();
        write_lock(&s.defeq).clear();
        write_lock(&s.rows).clear();
        write_lock(&s.disjoint).clear();
    }
}

/// Total entries in the global layer `(hnf, defeq, rows, disjoint)`.
pub fn global_sizes() -> (usize, usize, usize, usize) {
    let g = global();
    let mut out = (0, 0, 0, 0);
    for s in &g.shards {
        out.0 += read_lock(&s.hnf).len();
        out.1 += read_lock(&s.defeq).len();
        out.2 += read_lock(&s.rows).len();
        out.3 += read_lock(&s.disjoint).len();
    }
    out
}

/// Lifetime `(hits, misses)` of the global layer's lookups.
pub fn global_hit_stats() -> (u64, u64) {
    let g = global();
    (g.hits.load(Ordering::Relaxed), g.misses.load(Ordering::Relaxed))
}

/// Unordered pair key: `defeq` and the prover are symmetric, so both
/// orientations of a query share one entry.
fn pair_key(a: ConId, b: ConId, env_gen: u64) -> (ConId, ConId, u64) {
    if a <= b {
        (a, b, env_gen)
    } else {
        (b, a, env_gen)
    }
}

/// True when every constructor and kind in `nf` is meta-free, so the
/// normal form can never be refined by later solutions.
fn row_nf_stable(nf: &RowNf) -> bool {
    let con_ok = |c: &RCon| {
        let f = intern::flags_of(c);
        !f.has_meta() && !f.has_kmeta()
    };
    let key_ok = |k: &FieldKey| match k {
        FieldKey::Lit(_) => true,
        FieldKey::Neutral(c) => con_ok(c),
    };
    nf.elem_kind.as_ref().is_none_or(|k| k.is_ground())
        && nf.fields.iter().all(|(k, v)| key_ok(k) && con_ok(v))
        && nf
            .atoms
            .iter()
            .all(|a| con_ok(&a.base) && a.map.as_ref().is_none_or(|(f, k)| con_ok(f) && k.is_ground()))
}

/// The per-[`crate::Cx`] memo store.
#[derive(Clone, Debug)]
pub struct Memo {
    /// Master switch; benches flip this off for uncached comparison runs.
    /// When disabled, callers skip both lookups and stores.
    pub enabled: bool,
    laws: Option<LawConfig>,
    hnf: HashMap<(ConId, u64), Entry<RCon>>,
    defeq: HashMap<(ConId, ConId, u64), Entry<bool>>,
    rows: HashMap<(ConId, u64), Entry<RowNf>>,
    disjoint: HashMap<(ConId, ConId, u64), Entry<ProveResult>>,
}

impl Default for Memo {
    fn default() -> Memo {
        Memo {
            enabled: true,
            laws: None,
            hnf: HashMap::new(),
            defeq: HashMap::new(),
            rows: HashMap::new(),
            disjoint: HashMap::new(),
        }
    }
}

/// Loads `key` from `table`, consulting the `memo_load` failpoint and the
/// per-entry integrity check. A corrupt entry (whether injected at store
/// time or "bit-rotted" by the load fault) is evicted and counted, and
/// the load misses — the caller recomputes, so faults never change
/// results, only work. Without `failpoints` this is a plain lookup.
fn load<K, T>(table: &mut HashMap<K, Entry<T>>, key: K, meta_gen: u64) -> Option<T>
where
    K: Eq + std::hash::Hash,
    T: Clone + IntegrityTag,
{
    #[cfg(feature = "failpoints")]
    if let Some(e) = table.get_mut(&key) {
        if crate::failpoint::fire(crate::failpoint::Site::MemoLoad) {
            e.corrupt();
        }
        if !e.verify() {
            table.remove(&key);
            crate::failpoint::note_integrity_rejection();
            return None;
        }
    }
    table.get(&key).and_then(|e| e.get(meta_gen))
}

/// Inserts `entry`, letting the `memo_store` failpoint simulate a torn
/// write (corrupt tag, detected and rejected by a later [`load`]).
fn store<K, T>(table: &mut HashMap<K, Entry<T>>, key: K, entry: Entry<T>)
where
    K: Eq + std::hash::Hash,
    T: Clone + IntegrityTag,
{
    #[cfg(feature = "failpoints")]
    let entry = {
        let mut entry = entry;
        if crate::failpoint::fire(crate::failpoint::Site::MemoStore) {
            entry.corrupt();
        }
        entry
    };
    table.insert(key, entry);
}

impl Memo {
    /// Clears every table when the law configuration differs from the one
    /// the entries were computed under (law toggles change `defeq`, row
    /// normalization, and prover outcomes).
    pub fn check_laws(&mut self, laws: LawConfig) {
        if self.laws != Some(laws) {
            self.hnf.clear();
            self.defeq.clear();
            self.rows.clear();
            self.disjoint.clear();
            self.laws = Some(laws);
        }
    }

    pub fn hnf_get(&mut self, c: ConId, env_gen: u64, meta_gen: u64) -> Option<RCon> {
        if let Some(v) = load(&mut self.hnf, (c, env_gen), meta_gen) {
            return Some(v);
        }
        if !globally_keyable(&c) {
            return None;
        }
        let lb = law_bits(self.laws?);
        let hit = read_lock(&gshard(c, env_gen).hnf).get(&(c, env_gen, lb)).copied();
        gnote(hit.is_some());
        let v = hit?;
        // Promote into the local table (stable by construction), bypassing
        // `store` so a `memo_store` fault can't corrupt a value the global
        // layer already holds clean.
        self.hnf.insert((c, env_gen), Entry::new(v, meta_gen, true));
        Some(v)
    }

    pub fn hnf_put(&mut self, c: ConId, env_gen: u64, meta_gen: u64, out: &RCon) {
        let stable = !intern::flags_of(out).has_meta();
        if stable && globally_keyable(&c) {
            if let Some(laws) = self.laws {
                write_lock(&gshard(c, env_gen).hnf)
                    .insert((c, env_gen, law_bits(laws)), *out);
            }
        }
        store(
            &mut self.hnf,
            (c, env_gen),
            Entry::new(RCon::clone(out), meta_gen, stable),
        );
    }

    pub fn defeq_get(&mut self, a: ConId, b: ConId, env_gen: u64, meta_gen: u64) -> Option<bool> {
        let k = pair_key(a, b, env_gen);
        if let Some(v) = load(&mut self.defeq, k, meta_gen) {
            return Some(v);
        }
        if !globally_keyable(&a) || !globally_keyable(&b) {
            return None;
        }
        let lb = law_bits(self.laws?);
        let hit = read_lock(&gshard(k.0, env_gen).defeq).get(&(k.0, k.1, k.2, lb)).copied();
        gnote(hit.is_some());
        let v = hit?;
        self.defeq.insert(k, Entry::new(v, meta_gen, true));
        Some(v)
    }

    pub fn defeq_put(&mut self, a: ConId, b: ConId, env_gen: u64, meta_gen: u64, eq: bool) {
        let k = pair_key(a, b, env_gen);
        // Meta-free inputs can't be refined by later solutions, so *both*
        // verdicts are final process-wide (the local `false` stays
        // generation-guarded only because the local table doesn't re-check
        // keyability on load).
        if globally_keyable(&a) && globally_keyable(&b) {
            if let Some(laws) = self.laws {
                write_lock(&gshard(k.0, env_gen).defeq)
                    .insert((k.0, k.1, k.2, law_bits(laws)), eq);
            }
        }
        store(&mut self.defeq, k, Entry::new(eq, meta_gen, eq));
    }

    pub fn row_get(&mut self, c: ConId, env_gen: u64, meta_gen: u64) -> Option<RowNf> {
        if let Some(v) = load(&mut self.rows, (c, env_gen), meta_gen) {
            return Some(v);
        }
        if !globally_keyable(&c) {
            return None;
        }
        let lb = law_bits(self.laws?);
        let hit = read_lock(&gshard(c, env_gen).rows).get(&(c, env_gen, lb)).cloned();
        gnote(hit.is_some());
        let v = hit?;
        self.rows.insert((c, env_gen), Entry::new(v.clone(), meta_gen, true));
        Some(v)
    }

    pub fn row_put(&mut self, c: ConId, env_gen: u64, meta_gen: u64, nf: &RowNf) {
        let stable = row_nf_stable(nf);
        if stable && globally_keyable(&c) {
            if let Some(laws) = self.laws {
                write_lock(&gshard(c, env_gen).rows)
                    .insert((c, env_gen, law_bits(laws)), nf.clone());
            }
        }
        store(
            &mut self.rows,
            (c, env_gen),
            Entry::new(nf.clone(), meta_gen, stable),
        );
    }

    pub fn disjoint_get(
        &mut self,
        a: ConId,
        b: ConId,
        env_gen: u64,
        meta_gen: u64,
    ) -> Option<ProveResult> {
        let k = pair_key(a, b, env_gen);
        if let Some(v) = load(&mut self.disjoint, k, meta_gen) {
            return Some(v);
        }
        if !globally_keyable(&a) || !globally_keyable(&b) {
            return None;
        }
        let lb = law_bits(self.laws?);
        let hit = read_lock(&gshard(k.0, env_gen).disjoint).get(&(k.0, k.1, k.2, lb)).copied();
        gnote(hit.is_some());
        let v = hit?;
        self.disjoint.insert(k, Entry::new(v, meta_gen, true));
        Some(v)
    }

    pub fn disjoint_put(
        &mut self,
        a: ConId,
        b: ConId,
        env_gen: u64,
        meta_gen: u64,
        out: ProveResult,
    ) {
        let k = pair_key(a, b, env_gen);
        let stable = matches!(out, ProveResult::Proved | ProveResult::Refuted);
        if stable && globally_keyable(&a) && globally_keyable(&b) {
            if let Some(laws) = self.laws {
                write_lock(&gshard(k.0, env_gen).disjoint)
                    .insert((k.0, k.1, k.2, law_bits(laws)), out);
            }
        }
        store(&mut self.disjoint, k, Entry::new(out, meta_gen, stable));
    }

    /// Entry counts per table `(hnf, defeq, rows, disjoint)`, for
    /// instrumentation.
    pub fn table_sizes(&self) -> (usize, usize, usize, usize) {
        (self.hnf.len(), self.defeq.len(), self.rows.len(), self.disjoint.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;
    use crate::kind::Kind;

    #[test]
    fn defeq_true_survives_meta_generations() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        let b = intern::id_of(&Con::int());
        m.defeq_put(a, b, 0, 0, true);
        assert_eq!(m.defeq_get(a, b, 0, 99), Some(true));
        // ... and is symmetric in the key.
        assert_eq!(m.defeq_get(b, a, 0, 99), Some(true));
    }

    #[test]
    fn defeq_false_is_generation_guarded() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        let b = intern::id_of(&Con::float());
        m.defeq_put(a, b, 0, 3, false);
        assert_eq!(m.defeq_get(a, b, 0, 3), Some(false));
        assert_eq!(m.defeq_get(a, b, 0, 4), None);
    }

    #[test]
    fn notyet_is_generation_guarded_but_proved_is_not() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::row_nil(Kind::Type));
        let b = intern::id_of(&Con::int());
        m.disjoint_put(a, b, 0, 1, ProveResult::NotYet);
        assert_eq!(m.disjoint_get(a, b, 0, 2), None);
        m.disjoint_put(a, b, 0, 1, ProveResult::Proved);
        assert_eq!(m.disjoint_get(a, b, 0, 2), Some(ProveResult::Proved));
    }

    #[test]
    fn law_change_clears_tables() {
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        m.check_laws(LawConfig::default());
        m.defeq_put(a, a, 0, 0, true);
        m.check_laws(LawConfig::default());
        assert_eq!(m.defeq_get(a, a, 0, 0), Some(true), "same laws keep entries");
        m.check_laws(LawConfig { identity: false, ..LawConfig::default() });
        assert_eq!(m.defeq_get(a, a, 0, 0), None, "law flip clears entries");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn corrupt_store_is_rejected_on_load_and_recomputable() {
        use crate::failpoint::{self, FpConfig, Site};
        let mut m = Memo::default();
        let a = intern::id_of(&Con::int());
        // Corrupt the very first store deterministically.
        failpoint::install(Some(
            FpConfig::new(11).with_rate(Site::MemoStore, 1000).with_max_per_site(1),
        ));
        m.defeq_put(a, a, 0, 0, true);
        let before = failpoint::counters().integrity_rejections;
        assert_eq!(m.defeq_get(a, a, 0, 0), None, "corrupt entry must not be served");
        assert_eq!(
            failpoint::counters().integrity_rejections,
            before + 1,
            "rejection must be counted"
        );
        // The entry was evicted; a clean re-store heals the table.
        m.defeq_put(a, a, 0, 0, true);
        assert_eq!(m.defeq_get(a, a, 0, 0), Some(true));
        let _ = failpoint::take_counters();
        failpoint::install(None);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn load_fault_evicts_and_recomputes() {
        use crate::failpoint::{self, FpConfig, Site};
        let mut m = Memo::default();
        let c = Con::row_one(Con::name("A"), Con::int());
        let id = intern::id_of(&c);
        m.hnf_put(id, 0, 0, &c);
        failpoint::install(Some(
            FpConfig::new(5).with_rate(Site::MemoLoad, 1000).with_max_per_site(1),
        ));
        assert_eq!(m.hnf_get(id, 0, 0), None, "bit-rotted load must miss");
        assert_eq!(failpoint::counters().integrity_rejections, 1);
        // Fault budget spent: a fresh store now round-trips.
        m.hnf_put(id, 0, 0, &c);
        assert!(m.hnf_get(id, 0, 0).is_some());
        let _ = failpoint::take_counters();
        failpoint::install(None);
    }

    /// Serializes tests that touch the process-global stable layer, so a
    /// `clear_global` in one test can't wipe another's entries mid-flight.
    fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: std::sync::Mutex<()> = std::sync::Mutex::new(());
        L.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn stable_entries_are_shared_across_memos() {
        let _g = global_test_lock();
        let laws = LawConfig::default();
        let env_gen = crate::env::fresh_gen();
        let c = intern::id_of(&Con::arrow(Con::int(), Con::string()));
        let nf = Con::int();

        let mut producer = Memo::default();
        producer.check_laws(laws);
        producer.hnf_put(c, env_gen, 0, &nf);
        producer.defeq_put(c, c, env_gen, 0, true);

        // A different worker's Memo sees the published entries.
        let mut consumer = Memo::default();
        consumer.check_laws(laws);
        let (h0, _) = global_hit_stats();
        assert_eq!(consumer.hnf_get(c, env_gen, 42), Some(nf));
        assert_eq!(consumer.defeq_get(c, c, env_gen, 42), Some(true));
        let (h1, _) = global_hit_stats();
        assert!(h1 >= h0 + 2, "both lookups must count as global hits");

        // ... and the hit was promoted into the consumer's local table.
        assert!(consumer.table_sizes().0 >= 1);
    }

    #[test]
    fn different_laws_do_not_share_entries() {
        let _g = global_test_lock();
        let env_gen = crate::env::fresh_gen();
        let c = intern::id_of(&Con::arrow(Con::string(), Con::int()));

        let mut producer = Memo::default();
        producer.check_laws(LawConfig::default());
        producer.hnf_put(c, env_gen, 0, &Con::int());

        let mut consumer = Memo::default();
        consumer.check_laws(LawConfig { fusion: false, ..LawConfig::default() });
        assert_eq!(
            consumer.hnf_get(c, env_gen, 0),
            None,
            "entries computed under other law configurations must not leak"
        );
    }

    #[test]
    fn meta_bearing_keys_never_go_global() {
        let _g = global_test_lock();
        let env_gen = crate::env::fresh_gen();
        // `MetaId`s are per-Cx, so this ConId names *different* metas in
        // different workers — it must stay confined to its own Memo.
        let c = intern::id_of(&Con::meta(crate::con::MetaId(903_000)));

        let mut producer = Memo::default();
        producer.check_laws(LawConfig::default());
        producer.hnf_put(c, env_gen, 0, &Con::int());
        producer.defeq_put(c, c, env_gen, 0, true);

        let mut consumer = Memo::default();
        consumer.check_laws(LawConfig::default());
        assert_eq!(consumer.hnf_get(c, env_gen, 0), None);
        assert_eq!(consumer.defeq_get(c, c, env_gen, 0), None);
    }

    #[test]
    fn clear_global_drops_shared_entries() {
        let _g = global_test_lock();
        let env_gen = crate::env::fresh_gen();
        let c = intern::id_of(&Con::pair(Con::int(), Con::string()));

        let mut producer = Memo::default();
        producer.check_laws(LawConfig::default());
        producer.hnf_put(c, env_gen, 0, &Con::int());
        let (hnf, _, _, _) = global_sizes();
        assert!(hnf >= 1);

        clear_global();

        let mut consumer = Memo::default();
        consumer.check_laws(LawConfig::default());
        assert_eq!(consumer.hnf_get(c, env_gen, 0), None, "reset must drop global entries");
        // The producer still has its own local copy.
        assert_eq!(producer.hnf_get(c, env_gen, 0), Some(Con::int()));
    }

    #[test]
    fn meta_bearing_hnf_results_are_guarded() {
        let mut m = Memo::default();
        let c = Con::meta(crate::con::MetaId(902_000));
        let id = intern::id_of(&c);
        m.hnf_put(id, 0, 5, &c);
        assert!(m.hnf_get(id, 0, 5).is_some());
        assert!(m.hnf_get(id, 0, 6).is_none());
        // A meta-free result is stable across generations.
        let ground = Con::int();
        m.hnf_put(id, 0, 5, &ground);
        assert!(m.hnf_get(id, 0, 6).is_some());
    }
}
