//! Constructors (type-level terms) of Featherweight Ur (paper Figure 1).
//!
//! ```text
//! c, t ::= t1 -> t2 | a | x :: k -> t | c c | fn a :: k => c
//!        | #n | $c | [] | [c = c] | c ++ c | map | [c ~ c] => t
//! ```
//!
//! extended with primitive base types, pairs (`(c, c)`, `c.1`, `c.2`) needed
//! by the §2.2/§6 case studies, and constructor metavariables used during
//! inference.

use crate::arena::{mk_con, IStr};
use crate::kind::Kind;
use crate::sym::Sym;
use std::fmt;

pub use crate::arena::ConId;

/// Identifier of a constructor metavariable (unification variable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MetaId(pub u32);

impl fmt::Display for MetaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// Primitive base types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrimType {
    Int,
    Float,
    String,
    Bool,
    Unit,
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimType::Int => "int",
            PrimType::Float => "float",
            PrimType::String => "string",
            PrimType::Bool => "bool",
            PrimType::Unit => "unit",
        };
        write!(f, "{s}")
    }
}

/// Canonical constructor handle. The AST is immutable, shared, and
/// hash-consed in the global [`crate::arena`]: all smart constructors
/// intern, so structurally equal trees share one id and `==` on `RCon` is
/// a complete O(1) structural-equality test on canonically built terms.
/// The handle is `Copy + Send + Sync` and derefs to the `'static` node.
pub type RCon = ConId;

/// A constructor: the compile-time language of Ur. Types are the
/// constructors of kind `Type`. Child positions hold canonical ids, so
/// the enum value *is* its own shallow intern key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Con {
    /// A constructor variable `a` (bound by `Lam`, `Poly`, or the
    /// environment).
    Var(Sym),
    /// A metavariable introduced during inference.
    Meta(MetaId),
    /// A primitive base type.
    Prim(PrimType),
    /// Function type `t1 -> t2`.
    Arrow(RCon, RCon),
    /// Polymorphic function type `a :: k -> t` (the variable may appear in
    /// `t`).
    Poly(Sym, Kind, RCon),
    /// Guarded type `[c1 ~ c2] => t` (disjointness-constrained).
    Guarded(RCon, RCon, RCon),
    /// Constructor-level function `fn a :: k => c`.
    Lam(Sym, Kind, RCon),
    /// Application `c1 c2`.
    App(RCon, RCon),
    /// Name literal `#n`.
    Name(IStr),
    /// Record type former `$c`, for `c :: {Type}`.
    Record(RCon),
    /// Empty row `[]` at element kind `k`.
    RowNil(Kind),
    /// Singleton row `[c1 = c2]`.
    RowOne(RCon, RCon),
    /// Row concatenation `c1 ++ c2`.
    RowCat(RCon, RCon),
    /// The `map` constant at kinds `(k1 -> k2) -> {k1} -> {k2}`.
    Map(Kind, Kind),
    /// The compiler-known `folder` type family at kind `{k} -> Type`
    /// (paper §2.1/§4.4). Real Ur defines `folder` as a kind-polymorphic
    /// library type; Featherweight Ur has no kind polymorphism, so we make
    /// it a kind-indexed built-in. Applications `folder r` unfold on
    /// demand to the polymorphic fold type (see `unfold_folder` in
    /// `ur-infer`).
    Folder(Kind),
    /// Type-level pair `(c1, c2)`.
    Pair(RCon, RCon),
    /// First projection `c.1`.
    Fst(RCon),
    /// Second projection `c.2`.
    Snd(RCon),
}

impl Con {
    pub fn var(s: &Sym) -> RCon {
        mk_con(Con::Var(*s))
    }

    pub fn meta(id: MetaId) -> RCon {
        mk_con(Con::Meta(id))
    }

    pub fn prim(p: PrimType) -> RCon {
        mk_con(Con::Prim(p))
    }

    pub fn int() -> RCon {
        Con::prim(PrimType::Int)
    }

    pub fn float() -> RCon {
        Con::prim(PrimType::Float)
    }

    pub fn string() -> RCon {
        Con::prim(PrimType::String)
    }

    pub fn bool_() -> RCon {
        Con::prim(PrimType::Bool)
    }

    pub fn unit() -> RCon {
        Con::prim(PrimType::Unit)
    }

    pub fn arrow(a: RCon, b: RCon) -> RCon {
        mk_con(Con::Arrow(a, b))
    }

    pub fn poly(s: Sym, k: Kind, body: RCon) -> RCon {
        mk_con(Con::Poly(s, k, body))
    }

    pub fn guarded(c1: RCon, c2: RCon, t: RCon) -> RCon {
        mk_con(Con::Guarded(c1, c2, t))
    }

    pub fn lam(s: Sym, k: Kind, body: RCon) -> RCon {
        mk_con(Con::Lam(s, k, body))
    }

    pub fn app(f: RCon, a: RCon) -> RCon {
        mk_con(Con::App(f, a))
    }

    /// n-ary application.
    pub fn apps(f: RCon, args: impl IntoIterator<Item = RCon>) -> RCon {
        args.into_iter().fold(f, Con::app)
    }

    pub fn name(n: impl Into<IStr>) -> RCon {
        mk_con(Con::Name(n.into()))
    }

    pub fn record(row: RCon) -> RCon {
        mk_con(Con::Record(row))
    }

    pub fn row_nil(k: Kind) -> RCon {
        mk_con(Con::RowNil(k))
    }

    pub fn row_one(n: RCon, v: RCon) -> RCon {
        mk_con(Con::RowOne(n, v))
    }

    pub fn row_cat(a: RCon, b: RCon) -> RCon {
        mk_con(Con::RowCat(a, b))
    }

    /// Builds a literal row `[n1 = v1] ++ ... ++ [nk = vk]` from
    /// (name, value) pairs, or `[]` at `elem_kind` when empty.
    ///
    /// The concatenations form a *balanced* tree: `++` is associative
    /// (Figure 3), and `log2(n)` depth keeps every recursive term walker
    /// (normalization, zonking, drop) from consuming stack linear in
    /// field count — a 5,000-field row is legitimate input.
    pub fn row_of(elem_kind: Kind, fields: Vec<(RCon, RCon)>) -> RCon {
        fn build(fields: &mut std::vec::Drain<(RCon, RCon)>, n: usize, k: &Kind) -> RCon {
            match n {
                0 => Con::row_nil(k.clone()),
                1 => match fields.next() {
                    Some((name, v)) => Con::row_one(name, v),
                    None => Con::row_nil(k.clone()),
                },
                _ => {
                    let half = n / 2;
                    let l = build(fields, half, k);
                    let r = build(fields, n - half, k);
                    Con::row_cat(l, r)
                }
            }
        }
        let mut fields = fields;
        let n = fields.len();
        let mut drain = fields.drain(..);
        build(&mut drain, n, &elem_kind)
    }

    /// The bare `map` constant at kinds `(k1 -> k2) -> {k1} -> {k2}`.
    pub fn map_c(k1: Kind, k2: Kind) -> RCon {
        mk_con(Con::Map(k1, k2))
    }

    /// `map` fully applied: `map f r` at the given kinds.
    pub fn map_app(k1: Kind, k2: Kind, f: RCon, r: RCon) -> RCon {
        Con::app(Con::app(Con::map_c(k1, k2), f), r)
    }

    /// The `folder` family at element kind `k`.
    pub fn folder(k: Kind) -> RCon {
        mk_con(Con::Folder(k))
    }

    pub fn pair(a: RCon, b: RCon) -> RCon {
        mk_con(Con::Pair(a, b))
    }

    pub fn fst(c: RCon) -> RCon {
        mk_con(Con::Fst(c))
    }

    pub fn snd(c: RCon) -> RCon {
        mk_con(Con::Snd(c))
    }

    /// True for metavariable occurrences.
    pub fn is_meta(&self) -> bool {
        matches!(self, Con::Meta(_))
    }
}

impl ConId {
    /// If this constructor is a spine `h a1 ... an`, returns the head and
    /// arguments. O(spine length); children are handles, so nothing is
    /// cloned.
    pub fn spine(self) -> (RCon, Vec<RCon>) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Con::App(f, a) = &*cur {
            args.push(*a);
            cur = *f;
        }
        args.reverse();
        (cur, args)
    }

    /// The canonical intern-arena handle for this constructor — the handle
    /// *is* its own id now; kept for source compatibility with the
    /// `Rc`-era API.
    pub fn intern_id(self) -> ConId {
        self
    }
}

impl fmt::Display for Con {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_con(self, f, 0)
    }
}

impl fmt::Display for ConId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_con(self, f, 0)
    }
}

impl fmt::Debug for ConId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.get(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_decomposition() {
        let f = Con::var(&Sym::fresh("f"));
        let a = Con::int();
        let b = Con::string();
        let app = Con::apps(f, [a, b]);
        let (head, args) = app.spine();
        assert_eq!(head, f);
        assert_eq!(args.len(), 2);
        assert_eq!(args[0], a);
        assert_eq!(args[1], b);
    }

    #[test]
    fn row_of_empty_is_nil() {
        let r = Con::row_of(Kind::Type, vec![]);
        assert!(matches!(&*r, Con::RowNil(Kind::Type)));
    }

    #[test]
    fn row_of_builds_balanced_cats() {
        // Three fields: balanced split is 1 + 2, so the root is a cat of
        // a single field and a two-field cat.
        let r = Con::row_of(
            Kind::Type,
            vec![
                (Con::name("A"), Con::int()),
                (Con::name("B"), Con::float()),
                (Con::name("C"), Con::bool_()),
            ],
        );
        match &*r {
            Con::RowCat(l, rr) => {
                assert!(matches!(&**l, Con::RowOne(_, _)));
                assert!(matches!(&**rr, Con::RowCat(_, _)));
            }
            other => panic!("expected RowCat, got {other:?}"),
        }
    }

    #[test]
    fn row_of_depth_is_logarithmic() {
        fn depth(c: &RCon) -> usize {
            match &**c {
                Con::RowCat(a, b) => 1 + depth(a).max(depth(b)),
                _ => 1,
            }
        }
        let r = Con::row_of(
            Kind::Type,
            (0..1024).map(|i| (Con::name(format!("F{i}")), Con::int())).collect(),
        );
        assert!(depth(&r) <= 12, "depth {} for 1024 fields", depth(&r));
    }

    #[test]
    fn handles_are_copy_and_send() {
        fn assert_copy_send<T: Copy + Send + Sync>() {}
        assert_copy_send::<RCon>();
    }

    #[test]
    fn prim_display() {
        assert_eq!(PrimType::Int.to_string(), "int");
        assert_eq!(PrimType::Unit.to_string(), "unit");
    }
}
