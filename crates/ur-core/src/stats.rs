//! Inference-statistics counters, the instrumentation behind the paper's
//! Figure 5.
//!
//! The paper reports, per case-study component, "how many times the main
//! type inference procedure invoked the disjointness prover, along with how
//! many times inference applied the map-over-identity-function, map
//! distributivity, and map fusion laws". [`Stats`] counts exactly those
//! events (plus a few extra counters useful for the ablation benches).

use std::fmt;

/// Counters incremented by normalization, unification, and the disjointness
/// prover.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Invocations of the disjointness prover on a goal (Fig. 5 "Disj.").
    pub disjoint_prover_calls: u64,
    /// Applications of `map (fn a => a) c = c` (Fig. 5 "Id.").
    pub law_map_identity: u64,
    /// Applications of `map f (c1 ++ c2) = map f c1 ++ map f c2`
    /// (Fig. 5 "Dist.").
    pub law_map_distrib: u64,
    /// Applications of `map f (map g c) = map (fn a => f (g a)) c`
    /// (Fig. 5 "Fuse").
    pub law_map_fusion: u64,
    /// Row normalizations performed.
    pub row_normalizations: u64,
    /// Unification subproblems attempted.
    pub unify_calls: u64,
    /// Constraints postponed at least once.
    pub constraints_postponed: u64,
    /// Folder instances generated automatically (§4.4).
    pub folders_generated: u64,
    /// Reverse-engineering unification successes (§4.2).
    pub reverse_engineered: u64,
    /// `hnf` memo-table hits / misses (see `ur_core::memo`).
    pub hnf_memo_hits: u64,
    pub hnf_memo_misses: u64,
    /// `defeq` memo-table hits / misses.
    pub defeq_memo_hits: u64,
    pub defeq_memo_misses: u64,
    /// Row-normalization memo-table hits / misses.
    pub row_memo_hits: u64,
    pub row_memo_misses: u64,
    /// Disjointness-prover verdict memo hits / misses.
    pub disjoint_memo_hits: u64,
    pub disjoint_memo_misses: u64,
    /// Snapshot of the shared intern arena (filled by
    /// [`Stats::capture_intern`]): canonical nodes, intern hits/misses,
    /// and distinct name literals. Process-global since the arena refactor
    /// (they were per-worker tables before).
    pub intern_nodes: u64,
    pub intern_hits: u64,
    pub intern_misses: u64,
    pub intern_names: u64,
    /// Approximate resident bytes of the shared arena (terms + strings);
    /// a gauge, captured by [`Stats::capture_intern`].
    pub arena_bytes: u64,
    /// Constructor nodes in the most / least loaded arena shard — the
    /// spread is the sharding balance at capture time.
    pub arena_shard_max: u64,
    pub arena_shard_min: u64,
    /// Times an arena shard lock was contended (try-lock failed and the
    /// intern had to block).
    pub arena_contention: u64,
    /// Global stable-entry memo layer hits / misses (see
    /// `ur_core::memo::global_hit_stats`); process-wide, captured by
    /// [`Stats::capture_intern`].
    pub gmemo_hits: u64,
    pub gmemo_misses: u64,
    /// Parallel batches elaborated (scheduler invocations that actually
    /// fanned out to workers; see `ur_infer::batch`).
    pub par_batches: u64,
    /// Declarations elaborated on worker threads.
    pub par_decls: u64,
    /// Worker threads spawned across all parallel batches.
    pub par_workers: u64,
    /// Tasks re-dispatched after a watchdog timeout or worker death.
    pub par_retries: u64,
    /// Worker threads observed dead (announced or vanished) mid-batch.
    pub par_worker_deaths: u64,
    /// Watchdog deadline expirations (each triggers requeue/fallback).
    pub watchdog_trips: u64,
    /// Circuit-breaker activations in `Session` (degrade parallel →
    /// sequential and/or memo off).
    pub breaker_trips: u64,
    /// Batches that ran degraded because the breaker was open.
    pub breaker_degraded_batches: u64,
    /// Whole-declaration retries after a suspect resource exhaustion.
    pub decl_retries: u64,
    /// Snapshot of the thread-local failpoint counters (filled by
    /// [`Stats::capture_failpoints`]): faults injected and memo entries
    /// rejected by the per-entry integrity check. Always zero without
    /// the `failpoints` feature.
    pub fp_faults_injected: u64,
    pub fp_memo_rejections: u64,
    /// Incremental-engine queries issued (one per declaration per
    /// rebuild; see `ur-query`).
    pub queries_total: u64,
    /// Declarations verified green and reused without re-elaboration.
    pub green_reused: u64,
    /// Declarations recomputed because their inputs changed (red).
    pub red_recomputed: u64,
    /// On-disk cache entries loaded and accepted.
    pub disk_hits: u64,
    /// On-disk cache entries rejected (bad magic/version/env, integrity
    /// mismatch, or undecodable payload) and recomputed instead.
    pub disk_rejections: u64,
    /// On-disk cache store attempts that failed (full disk, permissions,
    /// injected `CacheStore` I/O faults). The cache stays cold for those
    /// entries; this counter makes the failure visible in `:stats`.
    pub disk_store_errs: u64,
    /// Top-level evaluations executed by the bytecode VM (`ur-eval::vm`).
    pub eval_vm_runs: u64,
    /// Top-level evaluations executed by the tree-walking interpreter
    /// (the differential oracle).
    pub eval_interp_runs: u64,
    /// Bytecode instructions dispatched by the VM (including closure
    /// bodies invoked from builtins during interpreter runs).
    pub eval_vm_ops: u64,
    /// Declaration bodies lowered to bytecode chunks.
    pub eval_chunks_compiled: u64,
    /// VM runs served from the per-declaration chunk cache.
    pub eval_chunk_hits: u64,
    /// Wall-clock nanoseconds spent inside top-level VM dispatch loops.
    pub eval_dispatch_ns: u64,
    /// Connections accepted by the `ur-serve` front door (the serve
    /// layer folds its cross-thread gauges into snapshots it hands out;
    /// zero outside `--listen`/`--serve`).
    pub srv_accepted: u64,
    /// Requests admitted to a worker queue.
    pub srv_requests: u64,
    /// Requests or connections shed by admission control (queue full,
    /// connection cap, draining) with an explicit `overloaded` response.
    pub srv_shed: u64,
    /// Requests whose wall-clock deadline expired before or during
    /// execution (answered with a structured E0900-style degradation).
    pub srv_deadline_expired: u64,
    /// Pool workers killed and replaced by the supervisor (wedge or
    /// panic), each restored from snapshot + replay.
    pub srv_worker_restarts: u64,
    /// In-flight requests completed during graceful drain.
    pub srv_drained: u64,
    /// Storage-engine statements executed through an index probe
    /// (copied from the session's `DbStats` by snapshot surfaces; zero
    /// when no database work ran).
    pub db_index_probes: u64,
    /// Storage-engine statements executed as full table scans.
    pub db_full_scans: u64,
    /// Planner fallbacks: scans chosen despite the table having indexes
    /// (float operands, no probeable conjunct).
    pub db_planner_fallbacks: u64,
    /// Reads served from read-only MVCC snapshot handles.
    pub db_snapshot_reads: u64,
    /// Superseded row versions reclaimed at checkpoints.
    pub db_versions_gcd: u64,
}

impl Stats {
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds every counter of `other` into `self`, saturating at
    /// `u64::MAX`. The parallel scheduler folds per-worker deltas into the
    /// coordinator's stats, so wrap-around here would corrupt whole-run
    /// metrics the same way it would in [`crate::limits::Fuel`].
    pub fn absorb(&mut self, other: &Stats) {
        macro_rules! add {
            ($($field:ident),+ $(,)?) => {
                $(self.$field = self.$field.saturating_add(other.$field);)+
            };
        }
        add!(
            disjoint_prover_calls,
            law_map_identity,
            law_map_distrib,
            law_map_fusion,
            row_normalizations,
            unify_calls,
            constraints_postponed,
            folders_generated,
            reverse_engineered,
            hnf_memo_hits,
            hnf_memo_misses,
            defeq_memo_hits,
            defeq_memo_misses,
            row_memo_hits,
            row_memo_misses,
            disjoint_memo_hits,
            disjoint_memo_misses,
            intern_nodes,
            intern_hits,
            intern_misses,
            intern_names,
            arena_bytes,
            arena_shard_max,
            arena_shard_min,
            arena_contention,
            gmemo_hits,
            gmemo_misses,
            par_batches,
            par_decls,
            par_workers,
            par_retries,
            par_worker_deaths,
            watchdog_trips,
            breaker_trips,
            breaker_degraded_batches,
            decl_retries,
            fp_faults_injected,
            fp_memo_rejections,
            queries_total,
            green_reused,
            red_recomputed,
            disk_hits,
            disk_rejections,
            disk_store_errs,
            eval_vm_runs,
            eval_interp_runs,
            eval_vm_ops,
            eval_chunks_compiled,
            eval_chunk_hits,
            eval_dispatch_ns,
            srv_accepted,
            srv_requests,
            srv_shed,
            srv_deadline_expired,
            srv_worker_restarts,
            srv_drained,
            db_index_probes,
            db_full_scans,
            db_planner_fallbacks,
            db_snapshot_reads,
            db_versions_gcd,
        );
    }

    /// Copies the shared arena's size and hit/miss counters into this
    /// snapshot (they are process-global, not per-`Cx`, so they are
    /// captured on demand rather than incremented by the judgments).
    /// Also captures the arena gauges (bytes, shard balance, lock
    /// contention) and the global memo layer's hit/miss totals.
    pub fn capture_intern(&mut self) {
        let t = crate::intern::table_stats();
        self.intern_nodes = t.nodes;
        self.intern_hits = t.hits;
        self.intern_misses = t.misses;
        self.intern_names = t.names;
        let a = crate::arena::stats();
        self.arena_bytes = a.bytes;
        self.arena_shard_max = a.con_per_shard.iter().copied().max().unwrap_or(0);
        self.arena_shard_min = a.con_per_shard.iter().copied().min().unwrap_or(0);
        self.arena_contention = a.contention;
        let (gh, gm) = crate::memo::global_hit_stats();
        self.gmemo_hits = gh;
        self.gmemo_misses = gm;
    }

    /// Copies the thread-local failpoint counters into this snapshot
    /// (like [`Stats::capture_intern`], they are thread-global and
    /// captured on demand). No-op totals without the `failpoints`
    /// feature.
    pub fn capture_failpoints(&mut self) {
        let c = crate::failpoint::counters();
        self.fp_faults_injected = c.total_injected();
        self.fp_memo_rejections = c.integrity_rejections;
    }

    /// The difference `self - earlier`, counter-wise, saturating at zero.
    ///
    /// Counters that ran *backwards* (i.e. `earlier` is not actually an
    /// earlier snapshot of `self`, e.g. because the context was reset
    /// between the two samples) clamp to 0 instead of panicking.
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            disjoint_prover_calls: self
                .disjoint_prover_calls
                .saturating_sub(earlier.disjoint_prover_calls),
            law_map_identity: self.law_map_identity.saturating_sub(earlier.law_map_identity),
            law_map_distrib: self.law_map_distrib.saturating_sub(earlier.law_map_distrib),
            law_map_fusion: self.law_map_fusion.saturating_sub(earlier.law_map_fusion),
            row_normalizations: self
                .row_normalizations
                .saturating_sub(earlier.row_normalizations),
            unify_calls: self.unify_calls.saturating_sub(earlier.unify_calls),
            constraints_postponed: self
                .constraints_postponed
                .saturating_sub(earlier.constraints_postponed),
            folders_generated: self.folders_generated.saturating_sub(earlier.folders_generated),
            reverse_engineered: self
                .reverse_engineered
                .saturating_sub(earlier.reverse_engineered),
            hnf_memo_hits: self.hnf_memo_hits.saturating_sub(earlier.hnf_memo_hits),
            hnf_memo_misses: self.hnf_memo_misses.saturating_sub(earlier.hnf_memo_misses),
            defeq_memo_hits: self.defeq_memo_hits.saturating_sub(earlier.defeq_memo_hits),
            defeq_memo_misses: self.defeq_memo_misses.saturating_sub(earlier.defeq_memo_misses),
            row_memo_hits: self.row_memo_hits.saturating_sub(earlier.row_memo_hits),
            row_memo_misses: self.row_memo_misses.saturating_sub(earlier.row_memo_misses),
            disjoint_memo_hits: self
                .disjoint_memo_hits
                .saturating_sub(earlier.disjoint_memo_hits),
            disjoint_memo_misses: self
                .disjoint_memo_misses
                .saturating_sub(earlier.disjoint_memo_misses),
            intern_nodes: self.intern_nodes.saturating_sub(earlier.intern_nodes),
            intern_hits: self.intern_hits.saturating_sub(earlier.intern_hits),
            intern_misses: self.intern_misses.saturating_sub(earlier.intern_misses),
            intern_names: self.intern_names.saturating_sub(earlier.intern_names),
            arena_bytes: self.arena_bytes.saturating_sub(earlier.arena_bytes),
            arena_shard_max: self.arena_shard_max.saturating_sub(earlier.arena_shard_max),
            arena_shard_min: self.arena_shard_min.saturating_sub(earlier.arena_shard_min),
            arena_contention: self.arena_contention.saturating_sub(earlier.arena_contention),
            gmemo_hits: self.gmemo_hits.saturating_sub(earlier.gmemo_hits),
            gmemo_misses: self.gmemo_misses.saturating_sub(earlier.gmemo_misses),
            par_batches: self.par_batches.saturating_sub(earlier.par_batches),
            par_decls: self.par_decls.saturating_sub(earlier.par_decls),
            par_workers: self.par_workers.saturating_sub(earlier.par_workers),
            par_retries: self.par_retries.saturating_sub(earlier.par_retries),
            par_worker_deaths: self
                .par_worker_deaths
                .saturating_sub(earlier.par_worker_deaths),
            watchdog_trips: self.watchdog_trips.saturating_sub(earlier.watchdog_trips),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            breaker_degraded_batches: self
                .breaker_degraded_batches
                .saturating_sub(earlier.breaker_degraded_batches),
            decl_retries: self.decl_retries.saturating_sub(earlier.decl_retries),
            fp_faults_injected: self
                .fp_faults_injected
                .saturating_sub(earlier.fp_faults_injected),
            fp_memo_rejections: self
                .fp_memo_rejections
                .saturating_sub(earlier.fp_memo_rejections),
            queries_total: self.queries_total.saturating_sub(earlier.queries_total),
            green_reused: self.green_reused.saturating_sub(earlier.green_reused),
            red_recomputed: self.red_recomputed.saturating_sub(earlier.red_recomputed),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            disk_rejections: self.disk_rejections.saturating_sub(earlier.disk_rejections),
            disk_store_errs: self.disk_store_errs.saturating_sub(earlier.disk_store_errs),
            eval_vm_runs: self.eval_vm_runs.saturating_sub(earlier.eval_vm_runs),
            eval_interp_runs: self.eval_interp_runs.saturating_sub(earlier.eval_interp_runs),
            eval_vm_ops: self.eval_vm_ops.saturating_sub(earlier.eval_vm_ops),
            eval_chunks_compiled: self
                .eval_chunks_compiled
                .saturating_sub(earlier.eval_chunks_compiled),
            eval_chunk_hits: self.eval_chunk_hits.saturating_sub(earlier.eval_chunk_hits),
            eval_dispatch_ns: self.eval_dispatch_ns.saturating_sub(earlier.eval_dispatch_ns),
            srv_accepted: self.srv_accepted.saturating_sub(earlier.srv_accepted),
            srv_requests: self.srv_requests.saturating_sub(earlier.srv_requests),
            srv_shed: self.srv_shed.saturating_sub(earlier.srv_shed),
            srv_deadline_expired: self
                .srv_deadline_expired
                .saturating_sub(earlier.srv_deadline_expired),
            srv_worker_restarts: self
                .srv_worker_restarts
                .saturating_sub(earlier.srv_worker_restarts),
            srv_drained: self.srv_drained.saturating_sub(earlier.srv_drained),
            db_index_probes: self.db_index_probes.saturating_sub(earlier.db_index_probes),
            db_full_scans: self.db_full_scans.saturating_sub(earlier.db_full_scans),
            db_planner_fallbacks: self
                .db_planner_fallbacks
                .saturating_sub(earlier.db_planner_fallbacks),
            db_snapshot_reads: self
                .db_snapshot_reads
                .saturating_sub(earlier.db_snapshot_reads),
            db_versions_gcd: self.db_versions_gcd.saturating_sub(earlier.db_versions_gcd),
        }
    }

    /// Copies the storage-engine planner/MVCC counters out of a
    /// database's [`DbStats`]-shaped numbers (passed as plain values so
    /// `ur-core` stays independent of `ur-db`). Snapshot surfaces call
    /// this with the session database's live counters.
    pub fn capture_db(&mut self, probes: u64, scans: u64, fallbacks: u64, snap_reads: u64, gcd: u64) {
        self.db_index_probes = probes;
        self.db_full_scans = scans;
        self.db_planner_fallbacks = fallbacks;
        self.db_snapshot_reads = snap_reads;
        self.db_versions_gcd = gcd;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "disj={} id={} dist={} fuse={} (rows={} unify={} postponed={} folders={} reveng={})",
            self.disjoint_prover_calls,
            self.law_map_identity,
            self.law_map_distrib,
            self.law_map_fusion,
            self.row_normalizations,
            self.unify_calls,
            self.constraints_postponed,
            self.folders_generated,
            self.reverse_engineered,
        )?;
        write!(
            f,
            " cache[hnf={}/{} defeq={}/{} rows={}/{} disj={}/{}]",
            self.hnf_memo_hits,
            self.hnf_memo_misses,
            self.defeq_memo_hits,
            self.defeq_memo_misses,
            self.row_memo_hits,
            self.row_memo_misses,
            self.disjoint_memo_hits,
            self.disjoint_memo_misses,
        )?;
        write!(
            f,
            " intern[nodes={} names={} hits={} misses={}]",
            self.intern_nodes, self.intern_names, self.intern_hits, self.intern_misses,
        )?;
        let hit_rate = {
            let total = self.intern_hits + self.intern_misses;
            if total == 0 { 0.0 } else { self.intern_hits as f64 * 100.0 / total as f64 }
        };
        write!(
            f,
            " arena[bytes={} shard_max={} shard_min={} contention={} hit_rate={hit_rate:.1}%]",
            self.arena_bytes, self.arena_shard_max, self.arena_shard_min, self.arena_contention,
        )?;
        write!(
            f,
            " gmemo[hits={} misses={}]",
            self.gmemo_hits, self.gmemo_misses,
        )?;
        write!(
            f,
            " par[batches={} decls={} workers={}]",
            self.par_batches, self.par_decls, self.par_workers,
        )?;
        write!(
            f,
            " heal[retries={} deaths={} watchdog={} decl_retries={} breaker={}/{}]",
            self.par_retries,
            self.par_worker_deaths,
            self.watchdog_trips,
            self.decl_retries,
            self.breaker_trips,
            self.breaker_degraded_batches,
        )?;
        write!(
            f,
            " faults[injected={} memo_rejected={}]",
            self.fp_faults_injected, self.fp_memo_rejections,
        )?;
        write!(
            f,
            " incr[queries={} green={} red={} disk={}/{} disk_store_err={}]",
            self.queries_total,
            self.green_reused,
            self.red_recomputed,
            self.disk_hits,
            self.disk_rejections,
            self.disk_store_errs,
        )?;
        write!(
            f,
            " eval[vm_runs={} interp_runs={} ops={} chunks={} chunk_hits={} dispatch_ns={}]",
            self.eval_vm_runs,
            self.eval_interp_runs,
            self.eval_vm_ops,
            self.eval_chunks_compiled,
            self.eval_chunk_hits,
            self.eval_dispatch_ns,
        )?;
        write!(
            f,
            " serve[accepted={} requests={} shed={} deadline_expired={} restarts={} drained={}]",
            self.srv_accepted,
            self.srv_requests,
            self.srv_shed,
            self.srv_deadline_expired,
            self.srv_worker_restarts,
            self.srv_drained,
        )?;
        write!(
            f,
            " db[probes={} scans={} fallbacks={} snap_reads={} gcd={}]",
            self.db_index_probes,
            self.db_full_scans,
            self.db_planner_fallbacks,
            self.db_snapshot_reads,
            self.db_versions_gcd,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds() {
        let mut a = Stats::new();
        a.disjoint_prover_calls = 3;
        let mut b = Stats::new();
        b.disjoint_prover_calls = 4;
        b.law_map_fusion = 1;
        a.absorb(&b);
        assert_eq!(a.disjoint_prover_calls, 7);
        assert_eq!(a.law_map_fusion, 1);
    }

    #[test]
    fn since_subtracts() {
        let mut early = Stats::new();
        early.unify_calls = 10;
        let mut late = early.clone();
        late.unify_calls = 25;
        late.law_map_identity = 2;
        let d = late.since(&early);
        assert_eq!(d.unify_calls, 15);
        assert_eq!(d.law_map_identity, 2);
    }

    #[test]
    fn since_saturates_when_earlier_is_ahead() {
        // Regression: `since` used to panic when `earlier` was not in fact
        // an earlier snapshot (counters ran backwards, e.g. after a
        // context reset). It must clamp to zero instead.
        let mut early = Stats::new();
        early.unify_calls = 50;
        early.disjoint_prover_calls = 9;
        let mut late = Stats::new();
        late.unify_calls = 10;
        late.law_map_identity = 3;
        let d = late.since(&early);
        assert_eq!(d.unify_calls, 0);
        assert_eq!(d.disjoint_prover_calls, 0);
        assert_eq!(d.law_map_identity, 3);
    }

    #[test]
    fn display_mentions_all_figure5_columns() {
        let s = Stats::new().to_string();
        for key in ["disj=", "id=", "dist=", "fuse="] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn display_mentions_cache_and_intern_counters() {
        let s = Stats::new().to_string();
        for key in ["cache[hnf=", "defeq=", "rows=", "intern[nodes=", "names="] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn absorb_saturates_at_ceiling() {
        let mut a = Stats::new();
        a.unify_calls = u64::MAX - 1;
        let mut b = Stats::new();
        b.unify_calls = 10;
        a.absorb(&b);
        assert_eq!(a.unify_calls, u64::MAX);
    }

    #[test]
    fn display_mentions_parallel_counters() {
        let s = Stats::new().to_string();
        for key in ["par[batches=", "decls=", "workers="] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn display_mentions_healing_and_fault_counters() {
        let s = Stats::new().to_string();
        for key in [
            "heal[retries=",
            "deaths=",
            "watchdog=",
            "decl_retries=",
            "breaker=",
            "faults[injected=",
            "memo_rejected=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn absorb_and_since_cover_healing_counters() {
        let mut a = Stats::new();
        a.par_retries = 2;
        a.watchdog_trips = u64::MAX - 1;
        let mut b = Stats::new();
        b.par_retries = 3;
        b.watchdog_trips = 10;
        b.par_worker_deaths = 1;
        b.breaker_trips = 1;
        b.breaker_degraded_batches = 4;
        b.decl_retries = 5;
        b.fp_faults_injected = 6;
        b.fp_memo_rejections = 7;
        a.absorb(&b);
        assert_eq!(a.par_retries, 5);
        assert_eq!(a.watchdog_trips, u64::MAX, "saturating add");
        assert_eq!(a.par_worker_deaths, 1);
        assert_eq!(a.breaker_trips, 1);
        assert_eq!(a.breaker_degraded_batches, 4);
        assert_eq!(a.decl_retries, 5);
        assert_eq!(a.fp_faults_injected, 6);
        assert_eq!(a.fp_memo_rejections, 7);

        let d = a.since(&b);
        assert_eq!(d.par_retries, 2);
        assert_eq!(d.fp_faults_injected, 0);
        let d2 = b.since(&a);
        assert_eq!(d2.par_retries, 0, "saturating sub");
    }

    #[test]
    fn display_mentions_incremental_counters() {
        let s = Stats::new().to_string();
        for key in ["incr[queries=", "green=", "red=", "disk=", "disk_store_err="] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn absorb_and_since_cover_disk_store_errs() {
        let mut a = Stats::new();
        a.disk_store_errs = 2;
        let mut b = Stats::new();
        b.disk_store_errs = 3;
        a.absorb(&b);
        assert_eq!(a.disk_store_errs, 5);
        assert_eq!(a.since(&b).disk_store_errs, 2);
        assert_eq!(b.since(&a).disk_store_errs, 0, "saturating sub");
    }

    #[test]
    fn absorb_and_since_cover_incremental_counters() {
        let mut a = Stats::new();
        a.queries_total = 5;
        a.disk_hits = u64::MAX - 1;
        let mut b = Stats::new();
        b.queries_total = 7;
        b.green_reused = 4;
        b.red_recomputed = 3;
        b.disk_hits = 10;
        b.disk_rejections = 2;
        a.absorb(&b);
        assert_eq!(a.queries_total, 12);
        assert_eq!(a.green_reused, 4);
        assert_eq!(a.red_recomputed, 3);
        assert_eq!(a.disk_hits, u64::MAX, "saturating add");
        assert_eq!(a.disk_rejections, 2);

        let d = a.since(&b);
        assert_eq!(d.queries_total, 5);
        assert_eq!(d.green_reused, 0);
        let d2 = b.since(&a);
        assert_eq!(d2.queries_total, 0, "saturating sub");
    }

    #[test]
    fn display_mentions_eval_counters() {
        let s = Stats::new().to_string();
        for key in [
            "eval[vm_runs=",
            "interp_runs=",
            "ops=",
            "chunks=",
            "chunk_hits=",
            "dispatch_ns=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn absorb_and_since_cover_eval_counters() {
        let mut a = Stats::new();
        a.eval_vm_runs = 5;
        a.eval_vm_ops = u64::MAX - 1;
        let mut b = Stats::new();
        b.eval_vm_runs = 2;
        b.eval_interp_runs = 3;
        b.eval_vm_ops = 10;
        b.eval_chunks_compiled = 4;
        b.eval_chunk_hits = 6;
        b.eval_dispatch_ns = 123;
        a.absorb(&b);
        assert_eq!(a.eval_vm_runs, 7);
        assert_eq!(a.eval_interp_runs, 3);
        assert_eq!(a.eval_vm_ops, u64::MAX, "saturating add");
        assert_eq!(a.eval_chunks_compiled, 4);
        assert_eq!(a.eval_chunk_hits, 6);
        assert_eq!(a.eval_dispatch_ns, 123);

        let d = a.since(&b);
        assert_eq!(d.eval_vm_runs, 5);
        assert_eq!(d.eval_chunks_compiled, 0);
        let d2 = b.since(&a);
        assert_eq!(d2.eval_vm_runs, 0, "saturating sub");
    }

    #[test]
    fn display_mentions_serve_counters() {
        let s = Stats::new().to_string();
        for key in [
            "serve[accepted=",
            "requests=",
            "shed=",
            "deadline_expired=",
            "restarts=",
            "drained=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn absorb_and_since_cover_serve_counters() {
        let mut a = Stats::new();
        a.srv_accepted = 5;
        a.srv_shed = u64::MAX - 1;
        let mut b = Stats::new();
        b.srv_accepted = 2;
        b.srv_requests = 9;
        b.srv_shed = 10;
        b.srv_deadline_expired = 3;
        b.srv_worker_restarts = 4;
        b.srv_drained = 6;
        a.absorb(&b);
        assert_eq!(a.srv_accepted, 7);
        assert_eq!(a.srv_requests, 9);
        assert_eq!(a.srv_shed, u64::MAX, "saturating add");
        assert_eq!(a.srv_deadline_expired, 3);
        assert_eq!(a.srv_worker_restarts, 4);
        assert_eq!(a.srv_drained, 6);

        let d = a.since(&b);
        assert_eq!(d.srv_accepted, 5);
        assert_eq!(d.srv_worker_restarts, 0);
        let d2 = b.since(&a);
        assert_eq!(d2.srv_accepted, 0, "saturating sub");
    }

    #[test]
    fn display_mentions_db_counters() {
        let s = Stats::new().to_string();
        for key in [
            "db[probes=",
            "scans=",
            "fallbacks=",
            "snap_reads=",
            "gcd=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn absorb_since_and_capture_cover_db_counters() {
        let mut a = Stats::new();
        a.db_index_probes = 5;
        a.db_full_scans = u64::MAX - 1;
        let mut b = Stats::new();
        b.db_index_probes = 2;
        b.db_full_scans = 10;
        b.db_planner_fallbacks = 3;
        b.db_snapshot_reads = 4;
        b.db_versions_gcd = 6;
        a.absorb(&b);
        assert_eq!(a.db_index_probes, 7);
        assert_eq!(a.db_full_scans, u64::MAX, "saturating add");
        assert_eq!(a.db_planner_fallbacks, 3);
        assert_eq!(a.db_snapshot_reads, 4);
        assert_eq!(a.db_versions_gcd, 6);

        let d = a.since(&b);
        assert_eq!(d.db_index_probes, 5);
        assert_eq!(d.db_planner_fallbacks, 0);
        let d2 = b.since(&a);
        assert_eq!(d2.db_index_probes, 0, "saturating sub");

        let mut c = Stats::new();
        c.capture_db(1, 2, 3, 4, 5);
        assert_eq!(
            (
                c.db_index_probes,
                c.db_full_scans,
                c.db_planner_fallbacks,
                c.db_snapshot_reads,
                c.db_versions_gcd
            ),
            (1, 2, 3, 4, 5)
        );
    }

    #[test]
    fn capture_failpoints_is_zero_without_faults() {
        let mut s = Stats::new();
        s.fp_faults_injected = 99;
        s.capture_failpoints();
        // No schedule installed on this thread: counters read zero (and
        // with the feature off they are always zero).
        assert_eq!(s.fp_faults_injected, crate::failpoint::counters().total_injected());
        assert_eq!(s.fp_memo_rejections, crate::failpoint::counters().integrity_rejections);
    }

    #[test]
    fn capture_intern_reads_live_table() {
        use crate::con::Con;
        // Force at least one arena node to exist.
        let _ = Con::arrow(Con::int(), Con::bool_());
        let mut s = Stats::new();
        s.capture_intern();
        assert!(s.intern_nodes > 0);
        assert!(s.arena_bytes > 0, "arena gauge must be captured");
        assert!(s.arena_shard_max >= s.arena_shard_min);
    }

    #[test]
    fn display_mentions_arena_and_global_memo_counters() {
        let s = Stats::new().to_string();
        for key in [
            "arena[bytes=",
            "shard_max=",
            "shard_min=",
            "contention=",
            "hit_rate=",
            "gmemo[hits=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
