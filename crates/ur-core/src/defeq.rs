//! Definitional equality of constructors (paper Figure 3).
//!
//! The congruence/beta rules are realized by comparing head normal forms;
//! the row laws (unit, commutativity, associativity, `map` equations,
//! identity, distributivity, fusion) by comparing canonical row normal
//! forms from [`crate::row`]. Functions are compared up to alpha and
//! one-sided eta expansion.

use crate::con::{Con, RCon};
use crate::env::Env;
use crate::hnf::{hnf, is_row_shaped};
use crate::kind::Kind;
use crate::row::{normalize_row, FieldKey, RowNf};
use crate::subst::subst;
use crate::Cx;

/// Kind equality, after resolving solved kind metavariables.
pub fn kinds_eq(cx: &MutCxRef<'_>, k1: &Kind, k2: &Kind) -> bool {
    fn go(cx: &crate::meta::MetaCx, k1: &Kind, k2: &Kind) -> bool {
        let k1 = cx.resolve_kind(k1);
        let k2 = cx.resolve_kind(k2);
        match (&k1, &k2) {
            (Kind::Type, Kind::Type) | (Kind::Name, Kind::Name) => true,
            (Kind::Meta(a), Kind::Meta(b)) => a == b,
            (Kind::Arrow(a1, b1), Kind::Arrow(a2, b2))
            | (Kind::Pair(a1, b1), Kind::Pair(a2, b2)) => go(cx, a1, a2) && go(cx, b1, b2),
            (Kind::Row(a), Kind::Row(b)) => go(cx, a, b),
            _ => false,
        }
    }
    go(cx.0, k1, k2)
}

/// A shared view of the metavariable context, so kind comparison does not
/// require `&mut`.
pub struct MutCxRef<'a>(pub &'a crate::meta::MetaCx);

/// Definitional equality `c1 = c2` in context `env`.
///
/// Increments the Figure-5 law counters in `cx.stats` as normalization
/// applies the algebraic laws.
///
/// Fuel-bounded: charges one recursion level per subproblem. On
/// exhaustion (`cx.fuel` sticky-exhausted) it answers `false` — the
/// conservative direction; the elaborator checks [`crate::limits::Fuel::
/// exhausted`] and reports a resource diagnostic instead of a plain
/// mismatch.
/// Memoized (see [`crate::memo`]): queries are keyed by the unordered
/// pair of canonical intern ids plus the env's semantic generation.
/// Hash-consing makes reflexivity O(1): structurally equal canonical
/// terms are pointer-equal before any normalization happens.
pub fn defeq(env: &Env, cx: &mut Cx, c1: &RCon, c2: &RCon) -> bool {
    if !cx.fuel.descend() {
        return false;
    }
    if c1 == c2 {
        cx.fuel.ascend();
        return true;
    }
    let key = if cx.memo.enabled {
        cx.memo.check_laws(cx.laws);
        let (i1, i2) = (crate::intern::id_of(c1), crate::intern::id_of(c2));
        if i1 == i2 {
            // Foreign (hand-built) duplicates of one canonical term.
            cx.fuel.ascend();
            return true;
        }
        let (env_gen, meta_gen) = (env.generation(), cx.metas.generation());
        if let Some(eq) = cx.memo.defeq_get(i1, i2, env_gen, meta_gen) {
            cx.stats.defeq_memo_hits += 1;
            let _ = cx.fuel.step();
            cx.fuel.ascend();
            return eq;
        }
        cx.stats.defeq_memo_misses += 1;
        Some((i1, i2, env_gen))
    } else {
        None
    };
    let out = defeq_inner(env, cx, c1, c2);
    if let Some((i1, i2, env_gen)) = key {
        if cx.fuel.exhausted().is_none() {
            cx.memo.defeq_put(i1, i2, env_gen, cx.metas.generation(), out);
        }
    }
    cx.fuel.ascend();
    out
}

fn defeq_inner(env: &Env, cx: &mut Cx, c1: &RCon, c2: &RCon) -> bool {
    let c1 = hnf(env, cx, c1);
    let c2 = hnf(env, cx, c2);
    if c1 == c2 {
        return true;
    }

    // Row-shaped on either side: go through canonical row normal forms.
    // (A bare neutral of row kind also normalizes, to a single atom.)
    if is_row_shaped(env, cx, &c1) || is_row_shaped(env, cx, &c2) {
        let n1 = normalize_row(env, cx, &c1);
        let n2 = normalize_row(env, cx, &c2);
        return row_nf_eq(env, cx, &n1, &n2);
    }

    // `folder r` against a polymorphic type: unfold the folder definition.
    // (Two folder applications compare structurally below, without
    // unfolding.)
    if matches!(&*c2, Con::Poly(_, _, _)) {
        if let Some((k, r)) = crate::folder::as_folder_app(&c1) {
            let unfolded = crate::folder::unfold_folder(&k, &r);
            return defeq(env, cx, &unfolded, &c2);
        }
    }
    if matches!(&*c1, Con::Poly(_, _, _)) {
        if let Some((k, r)) = crate::folder::as_folder_app(&c2) {
            let unfolded = crate::folder::unfold_folder(&k, &r);
            return defeq(env, cx, &c1, &unfolded);
        }
    }

    match (&*c1, &*c2) {
        (Con::Var(a), Con::Var(b)) => a == b,
        (Con::Meta(a), Con::Meta(b)) => a == b,
        (Con::Prim(a), Con::Prim(b)) => a == b,
        (Con::Name(a), Con::Name(b)) => crate::intern::names_eq(a, b),
        (Con::Arrow(a1, b1), Con::Arrow(a2, b2)) => {
            defeq(env, cx, a1, a2) && defeq(env, cx, b1, b2)
        }
        (Con::Poly(s1, k1, t1), Con::Poly(s2, k2, t2)) => {
            if !kinds_eq(&MutCxRef(&cx.metas), k1, k2) {
                return false;
            }
            alpha_eq_body(env, cx, s1, t1, s2, t2, k1)
        }
        (Con::Lam(s1, k1, t1), Con::Lam(s2, k2, t2)) => {
            if !kinds_eq(&MutCxRef(&cx.metas), k1, k2) {
                return false;
            }
            alpha_eq_body(env, cx, s1, t1, s2, t2, k1)
        }
        // One-sided eta: fn a => f a  =  f
        (Con::Lam(s, k, body), _) => eta_eq(env, cx, s, k, body, &c2),
        (_, Con::Lam(s, k, body)) => eta_eq(env, cx, s, k, body, &c1),
        (Con::Guarded(a1, b1, t1), Con::Guarded(a2, b2, t2)) => {
            let guards_match = (defeq(env, cx, a1, a2) && defeq(env, cx, b1, b2))
                || (defeq(env, cx, a1, b2) && defeq(env, cx, b1, a2));
            guards_match && defeq(env, cx, t1, t2)
        }
        (Con::App(f1, a1), Con::App(f2, a2)) => {
            defeq(env, cx, f1, f2) && defeq(env, cx, a1, a2)
        }
        (Con::Record(r1), Con::Record(r2)) => {
            let n1 = normalize_row(env, cx, r1);
            let n2 = normalize_row(env, cx, r2);
            row_nf_eq(env, cx, &n1, &n2)
        }
        (Con::Map(k1a, k2a), Con::Map(k1b, k2b)) => {
            kinds_eq(&MutCxRef(&cx.metas), k1a, k1b) && kinds_eq(&MutCxRef(&cx.metas), k2a, k2b)
        }
        (Con::Folder(k1), Con::Folder(k2)) => kinds_eq(&MutCxRef(&cx.metas), k1, k2),
        (Con::Pair(a1, b1), Con::Pair(a2, b2)) => {
            defeq(env, cx, a1, a2) && defeq(env, cx, b1, b2)
        }
        (Con::Fst(a), Con::Fst(b)) | (Con::Snd(a), Con::Snd(b)) => defeq(env, cx, a, b),
        _ => false,
    }
}

/// Alpha-equality of binder bodies: substitute a shared fresh variable.
fn alpha_eq_body(
    env: &Env,
    cx: &mut Cx,
    s1: &crate::sym::Sym,
    t1: &RCon,
    s2: &crate::sym::Sym,
    t2: &RCon,
    k: &Kind,
) -> bool {
    let fresh = s1.rename();
    let v = Con::var(&fresh);
    let mut env2 = env.clone();
    env2.bind_con(fresh, k.clone());
    let b1 = subst(t1, s1, &v);
    let b2 = subst(t2, s2, &v);
    defeq(&env2, cx, &b1, &b2)
}

/// Eta: `fn a :: k => body` equals `other` if `body = other a`.
fn eta_eq(
    env: &Env,
    cx: &mut Cx,
    s: &crate::sym::Sym,
    k: &Kind,
    body: &RCon,
    other: &RCon,
) -> bool {
    let fresh = s.rename();
    let v = Con::var(&fresh);
    let mut env2 = env.clone();
    env2.bind_con(fresh, k.clone());
    let b = subst(body, s, &v);
    let expanded = Con::app(*other, v);
    defeq(&env2, cx, &b, &expanded)
}

/// Equality of row normal forms: match fields (literal keys by name,
/// neutral keys by definitional equality) and atoms as multisets.
pub fn row_nf_eq(env: &Env, cx: &mut Cx, n1: &RowNf, n2: &RowNf) -> bool {
    if n1.fields.len() != n2.fields.len() || n1.atoms.len() != n2.atoms.len() {
        return false;
    }
    // Match fields: clone the second side and cross off matches.
    let mut remaining: Vec<(FieldKey, RCon)> = n2.fields.clone();
    'outer: for (k1, v1) in &n1.fields {
        for i in 0..remaining.len() {
            let (k2, v2) = &remaining[i];
            let keys_match = match (k1, k2) {
                (FieldKey::Lit(a), FieldKey::Lit(b)) => crate::intern::names_eq(a, b),
                (FieldKey::Neutral(a), FieldKey::Neutral(b)) => defeq(env, cx, a, b),
                _ => false,
            };
            if keys_match {
                let v2 = *v2;
                if !defeq(env, cx, v1, &v2) {
                    return false;
                }
                remaining.remove(i);
                continue 'outer;
            }
        }
        return false;
    }

    let mut remaining_atoms = n2.atoms.clone();
    'outer2: for a1 in &n1.atoms {
        for i in 0..remaining_atoms.len() {
            let a2 = remaining_atoms[i].clone();
            if !defeq(env, cx, &a1.base, &a2.base) {
                continue;
            }
            let maps_match = match (&a1.map, &a2.map) {
                (None, None) => true,
                (Some((f1, _)), Some((f2, _))) => defeq(env, cx, f1, f2),
                _ => false,
            };
            if maps_match {
                remaining_atoms.remove(i);
                continue 'outer2;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    fn lit_row(names: &[(&str, RCon)]) -> RCon {
        Con::row_of(
            Kind::Type,
            names
                .iter()
                .map(|(n, c)| (Con::name(*n), (*c)))
                .collect(),
        )
    }

    #[test]
    fn reflexive_on_prims() {
        let (env, mut cx) = setup();
        assert!(defeq(&env, &mut cx, &Con::int(), &Con::int()));
        assert!(!defeq(&env, &mut cx, &Con::int(), &Con::float()));
    }

    #[test]
    fn concat_commutative() {
        let (env, mut cx) = setup();
        let ab = Con::row_cat(
            lit_row(&[("A", Con::int())]),
            lit_row(&[("B", Con::float())]),
        );
        let ba = Con::row_cat(
            lit_row(&[("B", Con::float())]),
            lit_row(&[("A", Con::int())]),
        );
        assert!(defeq(&env, &mut cx, &ab, &ba));
    }

    #[test]
    fn concat_associative_under_abstraction() {
        // (r1 ++ r2) ++ r3 = r1 ++ (r2 ++ r3) with abstract row variables —
        // exactly the `acat` motivating example from the paper's §1, which
        // needs an explicit proof in Coq but holds definitionally in Ur.
        let (mut env, mut cx) = setup();
        let mut vars = Vec::new();
        for n in ["r1", "r2", "r3"] {
            let s = Sym::fresh(n);
            env.bind_con(s, Kind::row(Kind::Type));
            vars.push(Con::var(&s));
        }
        let left = Con::row_cat(
            Con::row_cat(vars[0], vars[1]),
            vars[2],
        );
        let right = Con::row_cat(
            vars[0],
            Con::row_cat(vars[1], vars[2]),
        );
        assert!(defeq(&env, &mut cx, &left, &right));
    }

    #[test]
    fn map_fusion_equality() {
        // map f (map g r) = map (fn x => f (g x)) r, with all of f, g, r
        // abstract — requires the fusion law (§2.2's key example).
        let (mut env, mut cx) = setup();
        let f = Sym::fresh("f");
        let g = Sym::fresh("g");
        let r = Sym::fresh("r");
        env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
        env.bind_con(g, Kind::arrow(Kind::Type, Kind::Type));
        env.bind_con(r, Kind::row(Kind::Type));
        let nested = Con::map_app(
            Kind::Type,
            Kind::Type,
            Con::var(&f),
            Con::map_app(Kind::Type, Kind::Type, Con::var(&g), Con::var(&r)),
        );
        let x = Sym::fresh("x");
        let composed = Con::lam(
            x,
            Kind::Type,
            Con::app(Con::var(&f), Con::app(Con::var(&g), Con::var(&x))),
        );
        let fused = Con::map_app(Kind::Type, Kind::Type, composed, Con::var(&r));
        assert!(defeq(&env, &mut cx, &nested, &fused));
        assert!(cx.stats.law_map_fusion >= 1);
    }

    #[test]
    fn map_distributivity_equality() {
        let (mut env, mut cx) = setup();
        let f = Sym::fresh("f");
        let r1 = Sym::fresh("r1");
        let r2 = Sym::fresh("r2");
        env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
        env.bind_con(r1, Kind::row(Kind::Type));
        env.bind_con(r2, Kind::row(Kind::Type));
        let mapped_cat = Con::map_app(
            Kind::Type,
            Kind::Type,
            Con::var(&f),
            Con::row_cat(Con::var(&r1), Con::var(&r2)),
        );
        let cat_mapped = Con::row_cat(
            Con::map_app(Kind::Type, Kind::Type, Con::var(&f), Con::var(&r1)),
            Con::map_app(Kind::Type, Kind::Type, Con::var(&f), Con::var(&r2)),
        );
        assert!(defeq(&env, &mut cx, &mapped_cat, &cat_mapped));
        assert!(cx.stats.law_map_distrib >= 1);
    }

    #[test]
    fn map_identity_equality() {
        let (mut env, mut cx) = setup();
        let r = Sym::fresh("r");
        env.bind_con(r, Kind::row(Kind::Type));
        let a = Sym::fresh("a");
        let idf = Con::lam(a, Kind::Type, Con::var(&a));
        let mapped = Con::map_app(Kind::Type, Kind::Type, idf, Con::var(&r));
        assert!(defeq(&env, &mut cx, &mapped, &Con::var(&r)));
        assert!(cx.stats.law_map_identity >= 1);
    }

    #[test]
    fn fusion_corollary_from_paper_section_2_2() {
        // $(map (fn p => exp [] (snd p)) r) = $(map (exp []) (map snd r))
        let (mut env, mut cx) = setup();
        let exp = Sym::fresh("exp");
        // exp :: {Type} -> Type -> Type
        env.bind_con(
            exp,
            Kind::arrow(Kind::row(Kind::Type), Kind::arrow(Kind::Type, Kind::Type)),
        );
        let r = Sym::fresh("r");
        let pair_k = Kind::pair(Kind::Type, Kind::Type);
        env.bind_con(r, Kind::row(pair_k.clone()));

        let exp_nil = Con::app(Con::var(&exp), Con::row_nil(Kind::Type));

        // left: map (fn p => exp [] (snd p)) r
        let p = Sym::fresh("p");
        let lam = Con::lam(
            p,
            pair_k.clone(),
            Con::app(exp_nil, Con::snd(Con::var(&p))),
        );
        let left = Con::map_app(pair_k.clone(), Kind::Type, lam, Con::var(&r));

        // right: map (exp []) (map snd r)
        let q = Sym::fresh("q");
        let snd_fn = Con::lam(q, pair_k.clone(), Con::snd(Con::var(&q)));
        let inner = Con::map_app(pair_k.clone(), Kind::Type, snd_fn, Con::var(&r));
        let right = Con::map_app(Kind::Type, Kind::Type, exp_nil, inner);

        let lrec = Con::record(left);
        let rrec = Con::record(right);
        assert!(defeq(&env, &mut cx, &lrec, &rrec));
        assert!(cx.stats.law_map_fusion >= 1);
    }

    #[test]
    fn alpha_equality_of_polys() {
        let (env, mut cx) = setup();
        let a = Sym::fresh("a");
        let b = Sym::fresh("b");
        let p1 = Con::poly(a, Kind::Type, Con::arrow(Con::var(&a), Con::var(&a)));
        let p2 = Con::poly(b, Kind::Type, Con::arrow(Con::var(&b), Con::var(&b)));
        assert!(defeq(&env, &mut cx, &p1, &p2));
    }

    #[test]
    fn guard_symmetry() {
        let (mut env, mut cx) = setup();
        let r1 = Sym::fresh("r1");
        let r2 = Sym::fresh("r2");
        env.bind_con(r1, Kind::row(Kind::Type));
        env.bind_con(r2, Kind::row(Kind::Type));
        let g1 = Con::guarded(Con::var(&r1), Con::var(&r2), Con::int());
        let g2 = Con::guarded(Con::var(&r2), Con::var(&r1), Con::int());
        assert!(defeq(&env, &mut cx, &g1, &g2));
    }

    #[test]
    fn distinct_rows_not_equal() {
        let (env, mut cx) = setup();
        let r1 = lit_row(&[("A", Con::int())]);
        let r2 = lit_row(&[("A", Con::float())]);
        let r3 = lit_row(&[("B", Con::int())]);
        assert!(!defeq(&env, &mut cx, &r1, &r2));
        assert!(!defeq(&env, &mut cx, &r1, &r3));
    }

    #[test]
    fn record_types_compare_via_rows() {
        let (env, mut cx) = setup();
        let t1 = Con::record(Con::row_cat(
            lit_row(&[("A", Con::int())]),
            lit_row(&[("B", Con::float())]),
        ));
        let t2 = Con::record(lit_row(&[("B", Con::float()), ("A", Con::int())]));
        assert!(defeq(&env, &mut cx, &t1, &t2));
    }

    #[test]
    fn eta_equality() {
        let (mut env, mut cx) = setup();
        let f = Sym::fresh("f");
        env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
        let a = Sym::fresh("a");
        let eta = Con::lam(
            a,
            Kind::Type,
            Con::app(Con::var(&f), Con::var(&a)),
        );
        assert!(defeq(&env, &mut cx, &eta, &Con::var(&f)));
    }
}
