//! Typing contexts.
//!
//! A single context `G` carries, as in the paper (§3.2): kinding assertions
//! `a :: k` (with an optional transparent definition, for `type`
//! declarations), typing assertions `x : t`, and row disjointness
//! assumptions `c1 ~ c2`.

use crate::con::RCon;
use crate::kind::Kind;
use crate::sym::Sym;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global supply of semantic generations. Generation 0 is reserved for
/// the empty context; every *mutation* that the memoized judgments can
/// observe stamps the env with a fresh number, so two envs sharing a
/// generation are guaranteed to agree on constructor bindings and
/// disjointness facts.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique semantic generation. Public so tests (and any
/// embedder building synthetic envs) can reserve generations that no real
/// env will ever carry.
pub fn fresh_gen() -> u64 {
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// Binding of a constructor variable: its kind and, when transparent, its
/// definition (unfolded on demand during head normalization).
#[derive(Clone, Debug)]
pub struct CBind {
    pub kind: Kind,
    pub def: Option<RCon>,
}

/// A typing context. Cloning is cheap enough at our scale; scopes are
/// handled by clone-and-extend.
///
/// Each env carries a *semantic generation* used as a memo-table key
/// component (see [`crate::memo`]): clones share their source's
/// generation, and any mutation visible to the memoized judgments —
/// constructor bindings and disjointness facts — stamps a fresh one.
/// Value bindings (`bind_val`) deliberately do **not** bump the
/// generation: `hnf`/`defeq`/row normalization/the prover never read
/// them, and top-level elaboration extends the global env with one `val`
/// per declaration, so keeping the generation stable across `bind_val`
/// is what makes cross-declaration cache hits possible.
#[derive(Clone, Debug, Default)]
pub struct Env {
    cons: HashMap<Sym, CBind>,
    vals: HashMap<Sym, RCon>,
    facts: Vec<(RCon, RCon)>,
    /// All empty envs are interchangeable, so they share generation 0
    /// (the `u64` default); [`fresh_gen`] starts at 1.
    sem_gen: u64,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    /// The semantic generation: envs with equal generations have
    /// identical constructor bindings and disjointness facts.
    pub fn generation(&self) -> u64 {
        self.sem_gen
    }

    /// Adds an abstract constructor variable `a :: k`.
    pub fn bind_con(&mut self, a: Sym, k: Kind) {
        self.cons.insert(a, CBind { kind: k, def: None });
        self.sem_gen = fresh_gen();
    }

    /// Adds a transparent constructor definition `a :: k = c`.
    pub fn define_con(&mut self, a: Sym, k: Kind, c: RCon) {
        self.cons.insert(a, CBind { kind: k, def: Some(c) });
        self.sem_gen = fresh_gen();
    }

    /// Adds a value binding `x : t` (no generation bump; see type docs).
    pub fn bind_val(&mut self, x: Sym, t: RCon) {
        self.vals.insert(x, t);
    }

    /// Records a disjointness assumption `c1 ~ c2`.
    pub fn assume_disjoint(&mut self, c1: RCon, c2: RCon) {
        self.facts.push((c1, c2));
        self.sem_gen = fresh_gen();
    }

    /// Looks up a constructor variable.
    pub fn lookup_con(&self, a: &Sym) -> Option<&CBind> {
        self.cons.get(a)
    }

    /// Looks up a value variable's type.
    pub fn lookup_val(&self, x: &Sym) -> Option<&RCon> {
        self.vals.get(x)
    }

    /// All recorded disjointness assumptions.
    pub fn facts(&self) -> &[(RCon, RCon)] {
        &self.facts
    }

    /// Number of value bindings (used by tests).
    pub fn val_count(&self) -> usize {
        self.vals.len()
    }

    /// Iterates over all value bindings.
    pub fn vals(&self) -> impl Iterator<Item = (&Sym, &RCon)> {
        self.vals.iter()
    }

    /// Iterates over all constructor bindings.
    pub fn cons(&self) -> impl Iterator<Item = (&Sym, &CBind)> {
        self.cons.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;

    #[test]
    fn bind_and_lookup_con() {
        let mut env = Env::new();
        let a = Sym::fresh("a");
        env.bind_con(a, Kind::Type);
        let b = env.lookup_con(&a).unwrap();
        assert_eq!(b.kind, Kind::Type);
        assert!(b.def.is_none());
    }

    #[test]
    fn transparent_definition() {
        let mut env = Env::new();
        let a = Sym::fresh("meta");
        env.define_con(a, Kind::arrow(Kind::Type, Kind::Type), Con::int());
        assert!(env.lookup_con(&a).unwrap().def.is_some());
    }

    #[test]
    fn val_binding() {
        let mut env = Env::new();
        let x = Sym::fresh("x");
        env.bind_val(x, Con::int());
        assert!(env.lookup_val(&x).is_some());
        assert!(env.lookup_val(&Sym::fresh("x")).is_none());
    }

    #[test]
    fn generations_track_semantic_mutations() {
        let mut env = Env::new();
        assert_eq!(env.generation(), 0, "empty envs share generation 0");
        let g0 = env.generation();
        env.bind_val(Sym::fresh("x"), Con::int());
        assert_eq!(env.generation(), g0, "val bindings keep the generation");
        env.bind_con(Sym::fresh("a"), Kind::Type);
        let g1 = env.generation();
        assert_ne!(g1, g0);
        let clone = env.clone();
        assert_eq!(clone.generation(), g1, "clones share their source's generation");
        env.assume_disjoint(Con::name("A"), Con::name("B"));
        assert_ne!(env.generation(), g1);
        assert_eq!(clone.generation(), g1);
    }

    #[test]
    fn facts_accumulate() {
        let mut env = Env::new();
        env.assume_disjoint(Con::name("A"), Con::name("B"));
        let inner = {
            let mut e = env.clone();
            e.assume_disjoint(Con::name("C"), Con::name("D"));
            e
        };
        assert_eq!(env.facts().len(), 1);
        assert_eq!(inner.facts().len(), 2);
    }
}
