//! Metavariable contexts: arenas of constructor and kind unification
//! variables.
//!
//! The elaborator allocates a fresh [`MetaId`] for every implicit argument
//! and wildcard; unification solves them by writing into the arena.
//! [`MetaCx::resolve`] follows solution chains (path compression is not
//! needed at our scale; chains are short).

use crate::con::{Con, MetaId, RCon};
use crate::kind::{KMetaId, Kind};

/// One constructor metavariable: its kind and, once solved, its value.
#[derive(Clone, Debug)]
struct MetaEntry {
    kind: Kind,
    solution: Option<RCon>,
    /// Human-readable origin, for error messages ("implicit argument r of
    /// mkTable").
    origin: String,
}

/// One kind metavariable.
#[derive(Clone, Debug, Default)]
struct KMetaEntry {
    solution: Option<Kind>,
}

/// Arena of constructor and kind metavariables.
///
/// Solutions are write-once ([`MetaCx::solve`] / [`MetaCx::solve_kind`]
/// panic on re-solve), which makes the solution state *monotone*: it only
/// ever gains equations. The memo tables in [`crate::memo`] rely on this
/// by tagging entries with [`MetaCx::generation`], which counts recorded
/// solutions. Allocating fresh metas does not bump the generation — a new
/// metavariable cannot occur in any previously cached term.
#[derive(Clone, Debug, Default)]
pub struct MetaCx {
    metas: Vec<MetaEntry>,
    kmetas: Vec<KMetaEntry>,
    gen: u64,
}

impl MetaCx {
    pub fn new() -> MetaCx {
        MetaCx::default()
    }

    /// Number of solutions (constructor and kind) recorded so far.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Allocates a fresh constructor metavariable of the given kind.
    pub fn fresh(&mut self, kind: Kind, origin: impl Into<String>) -> MetaId {
        let id = MetaId(self.metas.len() as u32);
        self.metas.push(MetaEntry {
            kind,
            solution: None,
            origin: origin.into(),
        });
        id
    }

    /// Allocates a fresh constructor metavariable and returns it as a
    /// constructor.
    pub fn fresh_con(&mut self, kind: Kind, origin: impl Into<String>) -> RCon {
        Con::meta(self.fresh(kind, origin))
    }

    /// Allocates a fresh kind metavariable.
    pub fn fresh_kind(&mut self) -> Kind {
        let id = KMetaId(self.kmetas.len() as u32);
        self.kmetas.push(KMetaEntry::default());
        Kind::Meta(id)
    }

    /// The declared kind of a metavariable.
    pub fn kind_of(&self, id: MetaId) -> &Kind {
        &self.metas[id.0 as usize].kind
    }

    /// The origin string of a metavariable.
    pub fn origin_of(&self, id: MetaId) -> &str {
        &self.metas[id.0 as usize].origin
    }

    /// The solution, if any (not followed transitively).
    pub fn solution(&self, id: MetaId) -> Option<&RCon> {
        self.metas[id.0 as usize].solution.as_ref()
    }

    /// Records a solution for an unsolved metavariable.
    ///
    /// # Panics
    ///
    /// Panics if the metavariable was already solved; callers must check
    /// first (re-solving indicates a unifier bug).
    pub fn solve(&mut self, id: MetaId, c: RCon) {
        let entry = &mut self.metas[id.0 as usize];
        assert!(
            entry.solution.is_none(),
            "metavariable {id} already solved"
        );
        entry.solution = Some(c);
        self.gen += 1;
    }

    /// Records a solution for a kind metavariable.
    ///
    /// # Panics
    ///
    /// Panics if already solved.
    pub fn solve_kind(&mut self, id: KMetaId, k: Kind) {
        let entry = &mut self.kmetas[id.0 as usize];
        assert!(entry.solution.is_none(), "kind metavariable {id} already solved");
        entry.solution = Some(k);
        // Kind solutions invalidate caches too: `normalize_row` zonks
        // kinds into `RowNf::elem_kind`.
        self.gen += 1;
    }

    /// Follows metavariable solutions at the head of `c` until reaching a
    /// non-meta constructor or an unsolved metavariable.
    pub fn resolve(&self, c: &RCon) -> RCon {
        let mut cur = *c;
        loop {
            match &*cur {
                Con::Meta(id) => match self.solution(*id) {
                    Some(sol) => cur = *sol,
                    None => return cur,
                },
                _ => return cur,
            }
        }
    }

    /// Follows kind-metavariable solutions at the head of `k`.
    pub fn resolve_kind(&self, k: &Kind) -> Kind {
        let mut cur = k.clone();
        loop {
            match cur {
                Kind::Meta(id) => match &self.kmetas[id.0 as usize].solution {
                    Some(sol) => cur = sol.clone(),
                    None => return Kind::Meta(id),
                },
                other => return other,
            }
        }
    }

    /// Fully substitutes solved kind metavariables throughout `k`.
    pub fn zonk_kind(&self, k: &Kind) -> Kind {
        match self.resolve_kind(k) {
            Kind::Arrow(a, b) => Kind::arrow(self.zonk_kind(&a), self.zonk_kind(&b)),
            Kind::Row(a) => Kind::row(self.zonk_kind(&a)),
            Kind::Pair(a, b) => Kind::pair(self.zonk_kind(&a), self.zonk_kind(&b)),
            other => other,
        }
    }

    /// Fully substitutes solved metavariables (constructor and kind)
    /// throughout `c`.
    pub fn zonk(&self, c: &RCon) -> RCon {
        // Precomputed-flag fast path: a term with no Con::Meta and no
        // Kind::Meta anywhere cannot be changed by zonking.
        {
            let f = crate::intern::flags_of(c);
            if !f.has_meta() && !f.has_kmeta() {
                return *c;
            }
        }
        let c = self.resolve(c);
        match &*c {
            Con::Var(_) | Con::Meta(_) | Con::Prim(_) | Con::Name(_) => c,
            Con::Arrow(a, b) => Con::arrow(self.zonk(a), self.zonk(b)),
            Con::Poly(s, k, t) => Con::poly(*s, self.zonk_kind(k), self.zonk(t)),
            Con::Guarded(a, b, t) => Con::guarded(self.zonk(a), self.zonk(b), self.zonk(t)),
            Con::Lam(s, k, t) => Con::lam(*s, self.zonk_kind(k), self.zonk(t)),
            Con::App(f, a) => Con::app(self.zonk(f), self.zonk(a)),
            Con::Record(r) => Con::record(self.zonk(r)),
            Con::RowNil(k) => Con::row_nil(self.zonk_kind(k)),
            Con::RowOne(n, v) => Con::row_one(self.zonk(n), self.zonk(v)),
            Con::RowCat(a, b) => Con::row_cat(self.zonk(a), self.zonk(b)),
            Con::Map(k1, k2) => Con::map_c(self.zonk_kind(k1), self.zonk_kind(k2)),
            Con::Folder(k) => Con::folder(self.zonk_kind(k)),
            Con::Pair(a, b) => Con::pair(self.zonk(a), self.zonk(b)),
            Con::Fst(a) => Con::fst(self.zonk(a)),
            Con::Snd(a) => Con::snd(self.zonk(a)),
        }
    }

    /// Number of allocated constructor metavariables.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True if no constructor metavariables were allocated.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Iterator over unsolved constructor metavariables.
    pub fn unsolved(&self) -> impl Iterator<Item = MetaId> + '_ {
        self.metas
            .iter()
            .enumerate()
            .filter(|(_, e)| e.solution.is_none())
            .map(|(i, _)| MetaId(i as u32))
    }

    /// True if `c` contains an occurrence of `id` (after resolving solved
    /// metas). Used as the occurs check.
    pub fn occurs(&self, id: MetaId, c: &RCon) -> bool {
        // Fast path: `occurs` only resolves metas that occur syntactically,
        // so a term whose flags say "no Con::Meta" cannot contain `id`.
        if !crate::intern::flags_of(c).has_meta() {
            return false;
        }
        let c = self.resolve(c);
        match &*c {
            Con::Meta(m) => *m == id,
            Con::Var(_) | Con::Prim(_) | Con::Name(_) | Con::Map(_, _) | Con::Folder(_) => {
                false
            }
            Con::Arrow(a, b) | Con::RowCat(a, b) | Con::RowOne(a, b) | Con::Pair(a, b) => {
                self.occurs(id, a) || self.occurs(id, b)
            }
            Con::App(a, b) => self.occurs(id, a) || self.occurs(id, b),
            Con::Poly(_, _, t) | Con::Lam(_, _, t) => self.occurs(id, t),
            Con::Guarded(a, b, t) => {
                self.occurs(id, a) || self.occurs(id, b) || self.occurs(id, t)
            }
            Con::Record(r) | Con::Fst(r) | Con::Snd(r) => self.occurs(id, r),
            Con::RowNil(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::PrimType;

    #[test]
    fn fresh_and_solve() {
        let mut cx = MetaCx::new();
        let m = cx.fresh(Kind::Type, "test");
        assert!(cx.solution(m).is_none());
        cx.solve(m, Con::int());
        assert_eq!(&**cx.solution(m).unwrap(), &Con::Prim(PrimType::Int));
    }

    #[test]
    #[should_panic(expected = "already solved")]
    fn double_solve_panics() {
        let mut cx = MetaCx::new();
        let m = cx.fresh(Kind::Type, "test");
        cx.solve(m, Con::int());
        cx.solve(m, Con::float());
    }

    #[test]
    fn generation_counts_solutions_only() {
        let mut cx = MetaCx::new();
        assert_eq!(cx.generation(), 0);
        let m = cx.fresh(Kind::Type, "t");
        let k = cx.fresh_kind();
        assert_eq!(cx.generation(), 0, "allocation must not bump the generation");
        cx.solve(m, Con::int());
        assert_eq!(cx.generation(), 1);
        if let Kind::Meta(id) = k {
            cx.solve_kind(id, Kind::Type);
        }
        assert_eq!(cx.generation(), 2, "kind solutions bump the generation too");
    }

    #[test]
    fn resolve_follows_chains() {
        let mut cx = MetaCx::new();
        let m1 = cx.fresh(Kind::Type, "a");
        let m2 = cx.fresh(Kind::Type, "b");
        cx.solve(m1, Con::meta(m2));
        cx.solve(m2, Con::int());
        let r = cx.resolve(&Con::meta(m1));
        assert_eq!(&*r, &Con::Prim(PrimType::Int));
    }

    #[test]
    fn zonk_rewrites_deeply() {
        let mut cx = MetaCx::new();
        let m = cx.fresh(Kind::Type, "t");
        cx.solve(m, Con::int());
        let c = Con::arrow(Con::meta(m), Con::string());
        let z = cx.zonk(&c);
        match &*z {
            Con::Arrow(a, _) => assert_eq!(&**a, &Con::Prim(PrimType::Int)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn occurs_check() {
        let mut cx = MetaCx::new();
        let m = cx.fresh(Kind::Type, "t");
        let other = cx.fresh(Kind::Type, "u");
        let c = Con::arrow(Con::meta(m), Con::int());
        assert!(cx.occurs(m, &c));
        assert!(!cx.occurs(other, &c));
    }

    #[test]
    fn occurs_through_solutions() {
        let mut cx = MetaCx::new();
        let m1 = cx.fresh(Kind::Type, "a");
        let m2 = cx.fresh(Kind::Type, "b");
        cx.solve(m2, Con::arrow(Con::meta(m1), Con::int()));
        assert!(cx.occurs(m1, &Con::meta(m2)));
    }

    #[test]
    fn kind_meta_resolution() {
        let mut cx = MetaCx::new();
        let k = cx.fresh_kind();
        if let Kind::Meta(id) = k {
            cx.solve_kind(id, Kind::Type);
        }
        assert_eq!(cx.resolve_kind(&k), Kind::Type);
        let deep = Kind::arrow(k.clone(), Kind::Name);
        assert_eq!(cx.zonk_kind(&deep), Kind::arrow(Kind::Type, Kind::Name));
    }

    #[test]
    fn unsolved_iterator() {
        let mut cx = MetaCx::new();
        let a = cx.fresh(Kind::Type, "a");
        let b = cx.fresh(Kind::Type, "b");
        cx.solve(a, Con::int());
        let unsolved: Vec<MetaId> = cx.unsolved().collect();
        assert_eq!(unsolved, vec![b]);
    }
}
