//! The kinding judgment `G |- c :: k` (paper Figure 2, plus the standard
//! F-omega rules).

use crate::con::{Con, RCon};
use crate::defeq::{kinds_eq, MutCxRef};
use crate::env::Env;
use crate::error::CoreError;
use crate::kind::Kind;
use crate::Cx;

/// Computes the kind of `c` in `env`.
///
/// This checker does *not* verify the disjointness side condition on row
/// concatenation — during inference that side condition becomes a queued
/// constraint. Use [`kind_of_strict`] to additionally enforce it, as the
/// declarative Figure 2 rules do.
///
/// # Errors
///
/// Returns a [`CoreError`] when `c` is ill-kinded or mentions unbound
/// variables.
pub fn kind_of(env: &Env, cx: &mut Cx, c: &RCon) -> Result<Kind, CoreError> {
    kind_of_inner(env, cx, c, false)
}

/// Like [`kind_of`], but also requires every row concatenation to have
/// provably disjoint operands (Figure 2's side condition `G |- c1 ~ c2`).
///
/// # Errors
///
/// Additionally fails with [`CoreError::DisjointnessFailed`] when a
/// concatenation's disjointness cannot be proved.
pub fn kind_of_strict(env: &Env, cx: &mut Cx, c: &RCon) -> Result<Kind, CoreError> {
    kind_of_inner(env, cx, c, true)
}

fn kind_of_inner(env: &Env, cx: &mut Cx, c: &RCon, strict: bool) -> Result<Kind, CoreError> {
    match &**c {
        Con::Var(a) => env
            .lookup_con(a)
            .map(|b| b.kind.clone())
            .ok_or(CoreError::UnboundConVar(*a)),
        Con::Meta(m) => Ok(cx.metas.kind_of(*m).clone()),
        Con::Prim(_) => Ok(Kind::Type),
        Con::Arrow(t1, t2) => {
            expect_kind(env, cx, t1, &Kind::Type, "function domain", strict)?;
            expect_kind(env, cx, t2, &Kind::Type, "function range", strict)?;
            Ok(Kind::Type)
        }
        Con::Poly(a, k, t) => {
            let mut env2 = env.clone();
            env2.bind_con(*a, k.clone());
            expect_kind(&env2, cx, t, &Kind::Type, "polymorphic body", strict)?;
            Ok(Kind::Type)
        }
        Con::Guarded(c1, c2, t) => {
            let k1 = kind_of_inner(env, cx, c1, strict)?;
            let k2 = kind_of_inner(env, cx, c2, strict)?;
            expect_row(cx, c1, &k1)?;
            expect_row(cx, c2, &k2)?;
            let mut env2 = env.clone();
            env2.assume_disjoint(*c1, *c2);
            expect_kind(&env2, cx, t, &Kind::Type, "guarded body", strict)?;
            Ok(Kind::Type)
        }
        Con::Lam(a, k, body) => {
            let mut env2 = env.clone();
            env2.bind_con(*a, k.clone());
            let kb = kind_of_inner(&env2, cx, body, strict)?;
            Ok(Kind::arrow(k.clone(), kb))
        }
        Con::App(f, a) => {
            let kf = kind_of_inner(env, cx, f, strict)?;
            match cx.metas.resolve_kind(&kf) {
                Kind::Arrow(dom, ran) => {
                    let ka = kind_of_inner(env, cx, a, strict)?;
                    if !kinds_eq(&MutCxRef(&cx.metas), &ka, &dom) {
                        return Err(CoreError::KindMismatch {
                            expected: (*dom).clone(),
                            got: ka,
                            context: format!("argument of {f}"),
                        });
                    }
                    Ok((*ran).clone())
                }
                other => Err(CoreError::NotArrowKind(*f, other)),
            }
        }
        Con::Name(_) => Ok(Kind::Name),
        Con::Record(r) => {
            expect_kind(env, cx, r, &Kind::row(Kind::Type), "record row", strict)?;
            Ok(Kind::Type)
        }
        Con::RowNil(k) => Ok(Kind::row(k.clone())),
        Con::RowOne(n, v) => {
            expect_kind(env, cx, n, &Kind::Name, "field name", strict)?;
            let kv = kind_of_inner(env, cx, v, strict)?;
            Ok(Kind::row(kv))
        }
        Con::RowCat(a, b) => {
            let ka = kind_of_inner(env, cx, a, strict)?;
            let kb = kind_of_inner(env, cx, b, strict)?;
            if !kinds_eq(&MutCxRef(&cx.metas), &ka, &kb) {
                return Err(CoreError::KindMismatch {
                    expected: ka,
                    got: kb,
                    context: "row concatenation".to_string(),
                });
            }
            expect_row(cx, a, &ka)?;
            if strict {
                match crate::disjoint::prove(env, cx, a, b) {
                    crate::disjoint::ProveResult::Proved => {}
                    _ => {
                        return Err(CoreError::DisjointnessFailed {
                            left: *a,
                            right: *b,
                        })
                    }
                }
            }
            Ok(ka)
        }
        Con::Folder(k) => Ok(Kind::arrow(Kind::row(k.clone()), Kind::Type)),
        Con::Map(k1, k2) => Ok(Kind::arrow(
            Kind::arrow(k1.clone(), k2.clone()),
            Kind::arrow(Kind::row(k1.clone()), Kind::row(k2.clone())),
        )),
        Con::Pair(a, b) => {
            let ka = kind_of_inner(env, cx, a, strict)?;
            let kb = kind_of_inner(env, cx, b, strict)?;
            Ok(Kind::pair(ka, kb))
        }
        Con::Fst(p) => {
            let kp = kind_of_inner(env, cx, p, strict)?;
            match cx.metas.resolve_kind(&kp) {
                Kind::Pair(a, _) => Ok((*a).clone()),
                other => Err(CoreError::NotPairKind(*p, other)),
            }
        }
        Con::Snd(p) => {
            let kp = kind_of_inner(env, cx, p, strict)?;
            match cx.metas.resolve_kind(&kp) {
                Kind::Pair(_, b) => Ok((*b).clone()),
                other => Err(CoreError::NotPairKind(*p, other)),
            }
        }
    }
}

fn expect_kind(
    env: &Env,
    cx: &mut Cx,
    c: &RCon,
    want: &Kind,
    context: &str,
    strict: bool,
) -> Result<(), CoreError> {
    let got = kind_of_inner(env, cx, c, strict)?;
    if kinds_eq(&MutCxRef(&cx.metas), &got, want) {
        Ok(())
    } else {
        Err(CoreError::KindMismatch {
            expected: want.clone(),
            got,
            context: context.to_string(),
        })
    }
}

fn expect_row(cx: &Cx, c: &RCon, k: &Kind) -> Result<(), CoreError> {
    match cx.metas.resolve_kind(k) {
        Kind::Row(_) | Kind::Meta(_) => Ok(()),
        other => Err(CoreError::KindMismatch {
            expected: Kind::row(Kind::Type),
            got: other,
            context: format!("row expected for {c}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    #[test]
    fn prims_are_types() {
        let (env, mut cx) = setup();
        assert_eq!(kind_of(&env, &mut cx, &Con::int()).unwrap(), Kind::Type);
    }

    #[test]
    fn names_have_kind_name() {
        let (env, mut cx) = setup();
        assert_eq!(
            kind_of(&env, &mut cx, &Con::name("A")).unwrap(),
            Kind::Name
        );
    }

    #[test]
    fn rows_and_records() {
        let (env, mut cx) = setup();
        let row = Con::row_one(Con::name("A"), Con::int());
        assert_eq!(
            kind_of(&env, &mut cx, &row).unwrap(),
            Kind::row(Kind::Type)
        );
        assert_eq!(
            kind_of(&env, &mut cx, &Con::record(row)).unwrap(),
            Kind::Type
        );
    }

    #[test]
    fn record_of_non_type_row_rejected() {
        let (env, mut cx) = setup();
        let row = Con::row_one(Con::name("A"), Con::name("B")); // {Name}
        assert!(kind_of(&env, &mut cx, &Con::record(row)).is_err());
    }

    #[test]
    fn unbound_var_errors() {
        let (env, mut cx) = setup();
        let a = Sym::fresh("a");
        assert!(matches!(
            kind_of(&env, &mut cx, &Con::var(&a)),
            Err(CoreError::UnboundConVar(_))
        ));
    }

    #[test]
    fn poly_guarded_types() {
        // nm :: Name -> r :: {Type} -> [[nm = int] ~ r] => $([nm = int] ++ r) -> int
        let (env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        let r = Sym::fresh("r");
        let single = Con::row_one(Con::var(&nm), Con::int());
        let t = Con::poly(
            nm,
            Kind::Name,
            Con::poly(
                r,
                Kind::row(Kind::Type),
                Con::guarded(
                    single,
                    Con::var(&r),
                    Con::arrow(
                        Con::record(Con::row_cat(single, Con::var(&r))),
                        Con::int(),
                    ),
                ),
            ),
        );
        assert_eq!(kind_of(&env, &mut cx, &t).unwrap(), Kind::Type);
    }

    #[test]
    fn map_constant_kind() {
        let (env, mut cx) = setup();
        let m = Con::map_c(Kind::Type, Kind::Type);
        let k = kind_of(&env, &mut cx, &m).unwrap();
        assert_eq!(
            k,
            Kind::arrow(
                Kind::arrow(Kind::Type, Kind::Type),
                Kind::arrow(Kind::row(Kind::Type), Kind::row(Kind::Type))
            )
        );
    }

    #[test]
    fn applied_map_kind() {
        let (mut env, mut cx) = setup();
        let rv = Sym::fresh("r");
        env.bind_con(rv, Kind::row(Kind::Type));
        let a = Sym::fresh("a");
        let f = Con::lam(a, Kind::Type, Con::var(&a));
        let m = Con::map_app(Kind::Type, Kind::Type, f, Con::var(&rv));
        assert_eq!(kind_of(&env, &mut cx, &m).unwrap(), Kind::row(Kind::Type));
    }

    #[test]
    fn pairs_and_projections() {
        let (env, mut cx) = setup();
        let p = Con::pair(Con::int(), Con::name("A"));
        assert_eq!(
            kind_of(&env, &mut cx, &p).unwrap(),
            Kind::pair(Kind::Type, Kind::Name)
        );
        assert_eq!(kind_of(&env, &mut cx, &Con::fst(p)).unwrap(), Kind::Type);
        assert_eq!(kind_of(&env, &mut cx, &Con::snd(p)).unwrap(), Kind::Name);
    }

    #[test]
    fn app_kind_mismatch_rejected() {
        let (env, mut cx) = setup();
        let a = Sym::fresh("a");
        let f = Con::lam(a, Kind::Name, Con::var(&a));
        let app = Con::app(f, Con::int()); // int :: Type, wanted Name
        assert!(kind_of(&env, &mut cx, &app).is_err());
    }

    #[test]
    fn strict_kinding_rejects_overlapping_concat() {
        let (env, mut cx) = setup();
        let r1 = Con::row_one(Con::name("A"), Con::int());
        let r2 = Con::row_one(Con::name("A"), Con::float());
        let cat = Con::row_cat(r1, r2);
        assert!(kind_of(&env, &mut cx, &cat).is_ok());
        assert!(kind_of_strict(&env, &mut cx, &cat).is_err());
    }

    #[test]
    fn strict_kinding_accepts_disjoint_concat() {
        let (env, mut cx) = setup();
        let r1 = Con::row_one(Con::name("A"), Con::int());
        let r2 = Con::row_one(Con::name("B"), Con::float());
        let cat = Con::row_cat(r1, r2);
        assert_eq!(
            kind_of_strict(&env, &mut cx, &cat).unwrap(),
            Kind::row(Kind::Type)
        );
    }

    #[test]
    fn row_cat_elem_kind_mismatch_rejected() {
        let (env, mut cx) = setup();
        let r1 = Con::row_one(Con::name("A"), Con::int()); // {Type}
        let r2 = Con::row_one(Con::name("B"), Con::name("C")); // {Name}
        assert!(kind_of(&env, &mut cx, &Con::row_cat(r1, r2)).is_err());
    }
}
