//! Kinds of Featherweight Ur (paper Figure 1), extended with pair kinds.
//!
//! ```text
//! k ::= Type | Name | k -> k | {k} | k * k
//! ```
//!
//! The paper's case studies additionally use records of *pairs* of types
//! (kind `{Type * Type}`, §2.2) and triples (§6, spreadsheet); we therefore
//! include binary product kinds, from which triples are built by nesting.
//!
//! Kind metavariables ([`Kind::Meta`]) exist only during inference: the
//! elaborator creates them for un-annotated constructor binders and solves
//! them by first-order kind unification (see `ur-infer`).

use std::fmt;
use std::sync::Arc;

/// Identifier of a kind metavariable allocated in a [`crate::meta::MetaCx`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct KMetaId(pub u32);

impl fmt::Display for KMetaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?k{}", self.0)
    }
}

/// A kind, classifying constructors.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    /// Kind of ordinary types (`Type`).
    Type,
    /// Kind of field names (`Name`).
    Name,
    /// Kind of type-level functions (`k1 -> k2`).
    Arrow(Arc<Kind>, Arc<Kind>),
    /// Kind of type-level records / rows (`{k}`).
    Row(Arc<Kind>),
    /// Kind of type-level pairs (`k1 * k2`).
    Pair(Arc<Kind>, Arc<Kind>),
    /// A kind metavariable (inference only).
    Meta(KMetaId),
}

impl Kind {
    /// `k1 -> k2`.
    pub fn arrow(k1: Kind, k2: Kind) -> Kind {
        Kind::Arrow(Arc::new(k1), Arc::new(k2))
    }

    /// `{k}`.
    pub fn row(k: Kind) -> Kind {
        Kind::Row(Arc::new(k))
    }

    /// `k1 * k2`.
    pub fn pair(k1: Kind, k2: Kind) -> Kind {
        Kind::Pair(Arc::new(k1), Arc::new(k2))
    }

    /// True if this kind contains no metavariables.
    pub fn is_ground(&self) -> bool {
        match self {
            Kind::Type | Kind::Name => true,
            Kind::Arrow(a, b) | Kind::Pair(a, b) => a.is_ground() && b.is_ground(),
            Kind::Row(k) => k.is_ground(),
            Kind::Meta(_) => false,
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_kind(self, f, 0)
    }
}

/// Precedence levels: 0 = arrow (lowest), 1 = pair, 2 = atom.
fn fmt_kind(k: &Kind, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match k {
        Kind::Type => write!(f, "Type"),
        Kind::Name => write!(f, "Name"),
        Kind::Meta(m) => write!(f, "{m}"),
        Kind::Row(inner) => {
            write!(f, "{{")?;
            fmt_kind(inner, f, 0)?;
            write!(f, "}}")
        }
        Kind::Arrow(a, b) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            fmt_kind(a, f, 1)?;
            write!(f, " -> ")?;
            fmt_kind(b, f, 0)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Kind::Pair(a, b) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            fmt_kind(a, f, 2)?;
            write!(f, " * ")?;
            fmt_kind(b, f, 1)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple() {
        assert_eq!(Kind::Type.to_string(), "Type");
        assert_eq!(Kind::Name.to_string(), "Name");
        assert_eq!(Kind::row(Kind::Type).to_string(), "{Type}");
    }

    #[test]
    fn display_arrow_right_assoc() {
        let k = Kind::arrow(Kind::Type, Kind::arrow(Kind::Type, Kind::Name));
        assert_eq!(k.to_string(), "Type -> Type -> Name");
    }

    #[test]
    fn display_arrow_left_parenthesized() {
        let k = Kind::arrow(Kind::arrow(Kind::Type, Kind::Type), Kind::Name);
        assert_eq!(k.to_string(), "(Type -> Type) -> Name");
    }

    #[test]
    fn display_row_of_pairs() {
        let k = Kind::row(Kind::pair(Kind::Type, Kind::Type));
        assert_eq!(k.to_string(), "{Type * Type}");
    }

    #[test]
    fn display_nested_pair() {
        // Triples as used by the spreadsheet case study.
        let k = Kind::pair(Kind::Type, Kind::pair(Kind::Type, Kind::Type));
        assert_eq!(k.to_string(), "Type * Type * Type");
        let k2 = Kind::pair(Kind::pair(Kind::Type, Kind::Type), Kind::Type);
        assert_eq!(k2.to_string(), "(Type * Type) * Type");
    }

    #[test]
    fn groundness() {
        assert!(Kind::arrow(Kind::Type, Kind::row(Kind::Name)).is_ground());
        assert!(!Kind::arrow(Kind::Meta(KMetaId(0)), Kind::Type).is_ground());
    }
}
