//! Pretty-printing of constructors and expressions, in the paper's ASCII
//! surface notation.
//!
//! Precedence levels (constructors): 0 = `->`/poly/guard (lowest),
//! 1 = `++`, 2 = application, 3 = atoms.

use crate::con::Con;
use crate::expr::Expr;
use std::fmt;

/// Formats a constructor at the given ambient precedence.
pub fn fmt_con(c: &Con, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match c {
        Con::Var(s) => write!(f, "{s}"),
        Con::Meta(m) => write!(f, "{m}"),
        Con::Prim(p) => write!(f, "{p}"),
        Con::Name(n) => write!(f, "#{n}"),
        Con::Arrow(a, b) => {
            paren(f, prec > 0, |f| {
                fmt_con(a, f, 1)?;
                write!(f, " -> ")?;
                fmt_con(b, f, 0)
            })
        }
        Con::Poly(s, k, t) => paren(f, prec > 0, |f| {
            write!(f, "{s} :: {k} -> ")?;
            fmt_con(t, f, 0)
        }),
        Con::Guarded(c1, c2, t) => paren(f, prec > 0, |f| {
            write!(f, "[")?;
            fmt_guard_side(c1, f)?;
            write!(f, " ~ ")?;
            fmt_guard_side(c2, f)?;
            write!(f, "] => ")?;
            fmt_con(t, f, 0)
        }),
        Con::Lam(s, k, body) => paren(f, prec > 0, |f| {
            write!(f, "fn {s} :: {k} => ")?;
            fmt_con(body, f, 0)
        }),
        Con::App(a, b) => paren(f, prec > 2, |f| {
            fmt_con(a, f, 2)?;
            write!(f, " ")?;
            fmt_con(b, f, 3)
        }),
        Con::Record(r) => {
            write!(f, "$")?;
            fmt_con(r, f, 3)
        }
        Con::RowNil(_) => write!(f, "[]"),
        Con::RowOne(n, v) => {
            write!(f, "[")?;
            fmt_con(n, f, 0)?;
            write!(f, " = ")?;
            fmt_con(v, f, 0)?;
            write!(f, "]")
        }
        Con::RowCat(a, b) => paren(f, prec > 1, |f| {
            fmt_con(a, f, 2)?;
            write!(f, " ++ ")?;
            fmt_con(b, f, 1)
        }),
        Con::Map(_, _) => write!(f, "map"),
        Con::Folder(_) => write!(f, "folder"),
        Con::Pair(a, b) => {
            write!(f, "(")?;
            fmt_con(a, f, 0)?;
            write!(f, ", ")?;
            fmt_con(b, f, 0)?;
            write!(f, ")")
        }
        Con::Fst(p) => {
            fmt_con(p, f, 3)?;
            write!(f, ".1")
        }
        Con::Snd(p) => {
            fmt_con(p, f, 3)?;
            write!(f, ".2")
        }
    }
}

/// Formats one side of a disjointness guard. Rows whose field values are
/// all `unit` came from the `[nm]` constraint shorthand and are printed
/// back that way (`[nm, mn2]`), as in the paper.
fn fmt_guard_side(c: &Con, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    fn unit_names<'a>(c: &'a Con, out: &mut Vec<&'a Con>) -> bool {
        match c {
            Con::RowOne(n, v) => {
                if matches!(&**v, Con::Prim(crate::con::PrimType::Unit)) {
                    out.push(n);
                    true
                } else {
                    false
                }
            }
            Con::RowCat(a, b) => unit_names(a, out) && unit_names(b, out),
            _ => false,
        }
    }
    let mut names = Vec::new();
    if unit_names(c, &mut names) && !names.is_empty() {
        write!(f, "[")?;
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            fmt_con(n, f, 0)?;
        }
        write!(f, "]")
    } else {
        fmt_con(c, f, 0)
    }
}

/// Formats an expression at the given ambient precedence
/// (0 = lowest, 2 = application, 3 = atoms).
pub fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match e {
        Expr::Var(s) => write!(f, "{s}"),
        Expr::Lit(l) => write!(f, "{l}"),
        Expr::App(a, b) => paren(f, prec > 2, |f| {
            fmt_expr(a, f, 2)?;
            write!(f, " ")?;
            fmt_expr(b, f, 3)
        }),
        Expr::Lam(x, t, body) => paren(f, prec > 0, |f| {
            write!(f, "fn {x} : ")?;
            fmt_con(t, f, 1)?;
            write!(f, " => ")?;
            fmt_expr(body, f, 0)
        }),
        Expr::CApp(e, c) => paren(f, prec > 2, |f| {
            fmt_expr(e, f, 2)?;
            write!(f, " [")?;
            fmt_con(c, f, 0)?;
            write!(f, "]")
        }),
        Expr::CLam(a, k, body) => paren(f, prec > 0, |f| {
            write!(f, "fn [{a} :: {k}] => ")?;
            fmt_expr(body, f, 0)
        }),
        Expr::RecNil => write!(f, "{{}}"),
        Expr::RecOne(n, e) => {
            write!(f, "{{")?;
            fmt_con(n, f, 0)?;
            write!(f, " = ")?;
            fmt_expr(e, f, 0)?;
            write!(f, "}}")
        }
        Expr::RecCat(a, b) => paren(f, prec > 1, |f| {
            fmt_expr(a, f, 2)?;
            write!(f, " ++ ")?;
            fmt_expr(b, f, 1)
        }),
        Expr::Proj(e, c) => {
            fmt_expr(e, f, 3)?;
            write!(f, ".")?;
            fmt_con(c, f, 3)
        }
        Expr::Cut(e, c) => paren(f, prec > 1, |f| {
            fmt_expr(e, f, 2)?;
            write!(f, " -- ")?;
            fmt_con(c, f, 3)
        }),
        Expr::DLam(c1, c2, body) => paren(f, prec > 0, |f| {
            write!(f, "fn [")?;
            fmt_con(c1, f, 0)?;
            write!(f, " ~ ")?;
            fmt_con(c2, f, 0)?;
            write!(f, "] => ")?;
            fmt_expr(body, f, 0)
        }),
        Expr::DApp(e) => paren(f, prec > 2, |f| {
            fmt_expr(e, f, 2)?;
            write!(f, " !")
        }),
        Expr::Let(x, t, bound, body) => paren(f, prec > 0, |f| {
            write!(f, "let {x} : ")?;
            fmt_con(t, f, 0)?;
            write!(f, " = ")?;
            fmt_expr(bound, f, 0)?;
            write!(f, " in ")?;
            fmt_expr(body, f, 0)
        }),
        Expr::If(c, t, e) => paren(f, prec > 0, |f| {
            write!(f, "if ")?;
            fmt_expr(c, f, 0)?;
            write!(f, " then ")?;
            fmt_expr(t, f, 0)?;
            write!(f, " else ")?;
            fmt_expr(e, f, 0)
        }),
    }
}

fn paren(
    f: &mut fmt::Formatter<'_>,
    needed: bool,
    inner: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if needed {
        write!(f, "(")?;
        inner(f)?;
        write!(f, ")")
    } else {
        inner(f)
    }
}

#[cfg(test)]
mod tests {
    use crate::con::Con;
    use crate::expr::{Expr, Lit};
    use crate::kind::Kind;
    use crate::sym::Sym;

    #[test]
    fn con_display_examples() {
        let a = Sym::fresh("a");
        let poly = Con::poly(a, Kind::Type, Con::arrow(Con::var(&a), Con::var(&a)));
        assert_eq!(poly.to_string(), "a :: Type -> a -> a");
    }

    #[test]
    fn row_display() {
        let r = Con::row_cat(
            Con::row_one(Con::name("A"), Con::int()),
            Con::row_one(Con::name("B"), Con::float()),
        );
        assert_eq!(r.to_string(), "[#A = int] ++ [#B = float]");
        assert_eq!(Con::record(r).to_string(), "$([#A = int] ++ [#B = float])");
    }

    #[test]
    fn guarded_display() {
        let g = Con::guarded(
            Con::row_one(Con::name("A"), Con::int()),
            Con::row_nil(Kind::Type),
            Con::int(),
        );
        assert_eq!(g.to_string(), "[[#A = int] ~ []] => int");
    }

    #[test]
    fn expr_display() {
        let x = Sym::fresh("x");
        let e = Expr::lam(
            x,
            Con::int(),
            Expr::proj(Expr::var(&x), Con::name("A")),
        );
        assert_eq!(e.to_string(), "fn x : int => x.#A");
    }

    #[test]
    fn app_display_parenthesizes_args() {
        let f = Sym::fresh("f");
        let e = Expr::app(
            Expr::var(&f),
            Expr::app(Expr::var(&f), Expr::lit(Lit::Int(1))),
        );
        assert_eq!(e.to_string(), "f (f 1)");
    }

    #[test]
    fn shared_interned_subterms_print_as_trees() {
        // Hash-consing collapses repeated subterms into one shared node;
        // printing must still expand the DAG into full tree notation.
        let sub = Con::arrow(Con::int(), Con::int());
        let c = Con::pair(sub, sub);
        assert_eq!(c.to_string(), "(int -> int, int -> int)");
    }

    #[test]
    fn bang_display() {
        let f = Sym::fresh("f");
        assert_eq!(Expr::dapp(Expr::var(&f)).to_string(), "f !");
    }
}
