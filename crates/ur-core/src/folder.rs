//! The compiler-known `folder` type family (paper §2.1, §4.4).
//!
//! `folder r` is the type of permutations of the fields of `r`, definable
//! in source Ur as a first-class polymorphic fold:
//!
//! ```text
//! type folder (r :: {k}) =
//!   tf :: ({k} -> Type) ->
//!   (nm :: Name -> t :: k -> r :: {k} -> [[nm = t] ~ r] =>
//!      tf r -> tf ([nm = t] ++ r)) ->
//!   tf [] -> tf r
//! ```
//!
//! Real Ur makes this kind-polymorphic in its library; Featherweight Ur
//! has no kind polymorphism, so [`Con::Folder`] is a kind-indexed
//! built-in whose applications unfold on demand to the type above.
//! Instances are *generated* by the elaborator after inference (§4.4),
//! using [`gen_folder`], with the permutation implied by source field
//! order.

use crate::arena::IStr;
use crate::con::{Con, RCon};
use crate::expr::{Expr, RExpr};
use crate::kind::Kind;
use crate::sym::Sym;

/// The type of a fold step function, abstracted over the accumulator
/// family variable `tf`:
///
/// ```text
/// nm :: Name -> t :: k -> r :: {k} -> [[nm = t] ~ r] =>
///    tf r -> tf ([nm = t] ++ r)
/// ```
pub fn folder_step_type(k: &Kind, tf: &Sym) -> RCon {
    let nm = Sym::fresh("nm");
    let t = Sym::fresh("t");
    let r = Sym::fresh("r");
    let single = Con::row_one(Con::var(&nm), Con::var(&t));
    Con::poly(
        nm,
        Kind::Name,
        Con::poly(
            t,
            k.clone(),
            Con::poly(
                r,
                Kind::row(k.clone()),
                Con::guarded(
                    single,
                    Con::var(&r),
                    Con::arrow(
                        Con::app(Con::var(tf), Con::var(&r)),
                        Con::app(Con::var(tf), Con::row_cat(single, Con::var(&r))),
                    ),
                ),
            ),
        ),
    )
}

/// The `folder` type unfolded at element kind `k` and row `r`.
pub fn unfold_folder(k: &Kind, r: &RCon) -> RCon {
    let tf = Sym::fresh("tf");
    let step_ty = folder_step_type(k, &tf);
    Con::poly(
        tf,
        Kind::arrow(Kind::row(k.clone()), Kind::Type),
        Con::arrow(
            step_ty,
            Con::arrow(
                Con::app(Con::var(&tf), Con::row_nil(k.clone())),
                Con::app(Con::var(&tf), *r),
            ),
        ),
    )
}

/// If `t` is a saturated folder application `folder r`, returns the
/// element kind and row.
pub fn as_folder_app(t: &RCon) -> Option<(Kind, RCon)> {
    let (head, args) = t.spine();
    match (&*head, args.len()) {
        (Con::Folder(k), 1) => Some((k.clone(), args[0])),
        _ => None,
    }
}

/// Generates the folder *value* for a literal row, in the given field
/// order (§4.4):
///
/// ```text
/// fn [tf :: {k} -> Type] => fn step : STEP => fn init : tf [] =>
///   step [#f1] [t1] [[f2 = t2, ...]] !
///     (step [#f2] [t2] [[f3 = t3, ...]] ! (... (step [#fn] [tn] [[]] ! init)))
/// ```
///
/// The outermost `step` call processes the *first* field, so a fold whose
/// step prepends output (like `mkTable`) lists fields in source order.
pub fn gen_folder(k: &Kind, fields: &[(IStr, RCon)]) -> RExpr {
    let tf = Sym::fresh("tf");
    let step = Sym::fresh("step");
    let init = Sym::fresh("init");
    let step_ty = folder_step_type(k, &tf);
    let mut body = Expr::var(&init);
    let mut acc_row = Con::row_nil(k.clone());
    for (name, ty) in fields.iter().rev() {
        let call = Expr::capp(
            Expr::capp(
                Expr::capp(Expr::var(&step), Con::name(*name)),
                *ty,
            ),
            acc_row,
        );
        body = Expr::app(Expr::dapp(call), body);
        acc_row = Con::row_cat(
            Con::row_one(Con::name(*name), *ty),
            acc_row,
        );
    }
    Expr::clam(
        tf,
        Kind::arrow(Kind::row(k.clone()), Kind::Type),
        Expr::lam(
            step,
            step_ty,
            Expr::lam(
                init,
                Con::app(Con::var(&tf), Con::row_nil(k.clone())),
                body,
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defeq::defeq;
    use crate::env::Env;
    use crate::typing::type_of;
    use crate::Cx;

    #[test]
    fn as_folder_app_recognizes() {
        let r = Con::row_one(Con::name("A"), Con::int());
        let t = Con::app(Con::folder(Kind::Type), r);
        let (k, row) = as_folder_app(&t).unwrap();
        assert_eq!(k, Kind::Type);
        assert_eq!(&*row, &*r);
        assert!(as_folder_app(&Con::int()).is_none());
    }

    #[test]
    fn generated_folder_typechecks_against_unfolding() {
        // The generated folder for [A = int, B = float] must have the
        // unfolded folder type.
        let env = Env::new();
        let mut cx = Cx::new();
        let fields: Vec<(IStr, RCon)> = vec![
            ("A".into(), Con::int()),
            ("B".into(), Con::float()),
        ];
        let term = gen_folder(&Kind::Type, &fields);
        let got = type_of(&env, &mut cx, &term).expect("folder term typechecks");
        let row = Con::row_of(
            Kind::Type,
            vec![
                (Con::name("A"), Con::int()),
                (Con::name("B"), Con::float()),
            ],
        );
        let want = unfold_folder(&Kind::Type, &row);
        assert!(
            defeq(&env, &mut cx, &got, &want),
            "got {got}\nwant {want}"
        );
    }

    #[test]
    fn generated_folder_for_empty_row_typechecks() {
        let env = Env::new();
        let mut cx = Cx::new();
        let term = gen_folder(&Kind::Type, &[]);
        let got = type_of(&env, &mut cx, &term).expect("empty folder typechecks");
        let want = unfold_folder(&Kind::Type, &Con::row_nil(Kind::Type));
        assert!(defeq(&env, &mut cx, &got, &want));
    }

    #[test]
    fn generated_folder_at_pair_kind_typechecks() {
        // toDb-style folders over {Type * Type}.
        let env = Env::new();
        let mut cx = Cx::new();
        let pk = Kind::pair(Kind::Type, Kind::Type);
        let fields: Vec<(IStr, RCon)> =
            vec![("A".into(), Con::pair(Con::int(), Con::string()))];
        let term = gen_folder(&pk, &fields);
        let got = type_of(&env, &mut cx, &term).expect("pair-kind folder typechecks");
        let row = Con::row_one(Con::name("A"), Con::pair(Con::int(), Con::string()));
        let want = unfold_folder(&pk, &row);
        assert!(defeq(&env, &mut cx, &got, &want));
    }
}
