//! Minimal, panic-free binary codec for the on-disk incremental cache.
//!
//! The workspace deliberately carries no serialization dependency, so
//! cache payloads are written with this hand-rolled byte writer/reader
//! pair: fixed-width little-endian integers, length-prefixed UTF-8
//! strings, and strict `0`/`1` booleans. Every read returns `Option` —
//! a truncated or bit-flipped file must surface as `None`, never as a
//! panic — and string/byte lengths are validated against the remaining
//! input before allocating, so a corrupt length field cannot trigger a
//! huge allocation.

/// Append-only byte buffer writer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over an immutable byte slice; all reads are bounds-checked.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Strict boolean: anything other than 0 or 1 is corruption.
    pub fn get_bool(&mut self) -> Option<bool> {
        match self.get_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    pub fn get_u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Some(u32::from_le_bytes(b))
    }

    pub fn get_u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }

    pub fn get_i64(&mut self) -> Option<i64> {
        self.get_u64().map(|v| v as i64)
    }

    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    pub fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return None;
        }
        self.take(len as usize)
    }

    pub fn get_str(&mut self) -> Option<String> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).ok().map(str::to_string)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_bool(), Some(true));
        assert_eq!(r.get_bool(), Some(false));
        assert_eq!(r.get_u32(), Some(0xdead_beef));
        assert_eq!(r.get_u64(), Some(u64::MAX));
        assert_eq!(r.get_i64(), Some(-42));
        assert_eq!(r.get_f64(), Some(3.5));
        assert_eq!(r.get_str().as_deref(), Some("héllo"));
        assert_eq!(r.get_bytes(), Some(&[1u8, 2, 3][..]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_yields_none() {
        let mut w = ByteWriter::new();
        w.put_u64(123);
        w.put_str("payload");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            // Either the u64 or the string must fail before `cut` bytes
            // run out; nothing may panic.
            let got_u64 = r.get_u64();
            let got_str = r.get_str();
            if cut < bytes.len() {
                assert!(got_u64.is_none() || got_str.is_none());
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims a huge string
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str(), None);
        assert_eq!(ByteReader::new(&bytes).get_bytes(), None);
    }

    #[test]
    fn invalid_bool_and_utf8_are_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.get_bool(), None);
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).get_str(), None);
    }
}
