//! Stable 64-bit content fingerprints.
//!
//! The incremental engine (`ur-query`) keys persisted cache entries by
//! fingerprints that must be **stable across processes, platforms, and
//! Rust releases**. `std::collections::hash_map::DefaultHasher` makes no
//! such promise, so this module hand-rolls FNV-1a with a splitmix64
//! finalizer: FNV gives cheap, well-understood byte mixing; the final
//! avalanche pass compensates for FNV's weak high bits so fingerprints
//! can be truncated or xor-combined safely.
//!
//! Framing matters: multi-field hashes must not collide under
//! concatenation shuffles (`"ab" + "c"` vs `"a" + "bc"`), so
//! [`Fnv64::write_str`] length-prefixes its input and the combinators in
//! this module always write fixed-width little-endian integers.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finalizer: a fast, high-quality avalanche permutation.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental FNV-1a hasher with stable output.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed string write, so consecutive strings cannot be
    /// re-split without changing the hash.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Finishes with an avalanche pass; does not consume the hasher.
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

/// Fingerprint of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Fingerprint of a string (framed, so `hash_str(s)` differs from
/// `hash_bytes(s.as_bytes())`).
pub fn hash_str(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(s);
    h.finish()
}

/// Order-dependent combination of two fingerprints.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(a);
    h.write_u64(b);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_str("val x = 5"), hash_str("val x = 5"));
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        let mut a = Fnv64::new();
        a.write_u64(7);
        a.write_str("x");
        let mut b = Fnv64::new();
        b.write_u64(7);
        b.write_str("x");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_inputs() {
        assert_ne!(hash_str("a"), hash_str("b"));
        assert_ne!(hash_str(""), hash_bytes(b""));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn string_framing_prevents_resplits() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mix_is_order_dependent() {
        let (a, b) = (hash_str("left"), hash_str("right"));
        assert_ne!(mix(a, b), mix(b, a));
        assert_ne!(mix(a, b), a);
        assert_ne!(mix(a, b), b);
    }

    #[test]
    fn finish_does_not_consume_state() {
        let mut h = Fnv64::new();
        h.write_str("one");
        let first = h.finish();
        assert_eq!(first, h.finish());
        h.write_str("two");
        assert_ne!(first, h.finish());
    }
}
