//! Cross-thread transfer of core terms.
//!
//! The core AST is deliberately `!Send`: constructors are hash-consed
//! `Rc` nodes interned in a thread-local table ([`crate::intern`]), and
//! symbol names share `Rc<str>` allocations. The parallel batch scheduler
//! (`ur-infer::batch`) still needs to ship elaborated declarations and
//! environment snapshots between the coordinator and its workers, so this
//! module defines *portable* deep-copied mirrors of [`Sym`], [`Kind`],
//! [`Con`], and [`Expr`] built from owned `String`/`Box` storage (all
//! `Send`), plus an [`Importer`] that rebuilds native terms on the
//! destination thread through the ordinary smart constructors — i.e.
//! re-interns them into that thread's table.
//!
//! Two invariants make this sound:
//!
//! - **Symbol identity survives the round trip.** `Sym` ids come from one
//!   process-global counter and equality/hashing consider only the id, so
//!   [`Sym::from_raw`] rebuilds a symbol `==` to the original even though
//!   the `Rc<str>` allocation differs. The [`Importer`] additionally
//!   caches one rebuilt `Sym` per id so a transferred environment and the
//!   terms referring into it agree on pointer identity of names.
//! - **Interning keys binders by sym id**, not by allocation, so a
//!   re-imported term hash-conses exactly like a locally built one.
//!
//! Metavariables ([`Con::Meta`], [`Kind::Meta`]) are *per-context*
//! indices and do not transfer meaningfully between `MetaCx`s. The
//! elaborator only exports finalized (meta-free) declarations, so the
//! mirror types carry the raw index purely to keep conversion total and
//! panic-free.

use crate::con::{Con, MetaId, PrimType, RCon};
use crate::env::Env;
use crate::expr::{Expr, Lit, RExpr};
use crate::kind::{KMetaId, Kind};
use crate::sym::Sym;
use std::collections::HashMap;

/// Portable mirror of [`Sym`]: the textual name plus the globally unique
/// id, with no shared allocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PSym {
    pub name: String,
    pub id: u32,
}

/// Portable mirror of [`Kind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PKind {
    Type,
    Name,
    Arrow(Box<PKind>, Box<PKind>),
    Row(Box<PKind>),
    Pair(Box<PKind>, Box<PKind>),
    Meta(u32),
}

/// Portable mirror of [`Con`].
#[derive(Clone, Debug, PartialEq)]
pub enum PCon {
    Var(PSym),
    Meta(u32),
    Prim(PrimType),
    Arrow(Box<PCon>, Box<PCon>),
    Poly(PSym, PKind, Box<PCon>),
    Guarded(Box<PCon>, Box<PCon>, Box<PCon>),
    Lam(PSym, PKind, Box<PCon>),
    App(Box<PCon>, Box<PCon>),
    Name(String),
    Record(Box<PCon>),
    RowNil(PKind),
    RowOne(Box<PCon>, Box<PCon>),
    RowCat(Box<PCon>, Box<PCon>),
    Map(PKind, PKind),
    Folder(PKind),
    Pair(Box<PCon>, Box<PCon>),
    Fst(Box<PCon>),
    Snd(Box<PCon>),
}

/// Portable mirror of [`Lit`].
#[derive(Clone, Debug, PartialEq)]
pub enum PLit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Unit,
}

/// Portable mirror of [`Expr`].
#[derive(Clone, Debug, PartialEq)]
pub enum PExpr {
    Var(PSym),
    Lit(PLit),
    App(Box<PExpr>, Box<PExpr>),
    Lam(PSym, PCon, Box<PExpr>),
    CApp(Box<PExpr>, PCon),
    CLam(PSym, PKind, Box<PExpr>),
    RecNil,
    RecOne(PCon, Box<PExpr>),
    RecCat(Box<PExpr>, Box<PExpr>),
    Proj(Box<PExpr>, PCon),
    Cut(Box<PExpr>, PCon),
    DLam(PCon, PCon, Box<PExpr>),
    DApp(Box<PExpr>),
    Let(PSym, PCon, Box<PExpr>, Box<PExpr>),
    If(Box<PExpr>, Box<PExpr>, Box<PExpr>),
}

/// Portable constructor binding: one `cons` entry of an [`Env`].
#[derive(Clone, Debug, PartialEq)]
pub struct PConBind {
    pub sym: PSym,
    pub kind: PKind,
    pub def: Option<PCon>,
}

/// Portable snapshot of an [`Env`]'s semantic content (constructor
/// bindings, value typings, disjointness facts). Entries are sorted by
/// sym id so a snapshot is deterministic regardless of `HashMap` order.
#[derive(Clone, Debug, Default)]
pub struct PEnv {
    pub cons: Vec<PConBind>,
    pub vals: Vec<(PSym, PCon)>,
    pub facts: Vec<(PCon, PCon)>,
}

// Compile-time proof that the portable mirrors actually cross threads.
const _: () = {
    const fn is_send<T: Send>() {}
    is_send::<PSym>();
    is_send::<PKind>();
    is_send::<PCon>();
    is_send::<PExpr>();
    is_send::<PConBind>();
    is_send::<PEnv>();
};

/// Captures a [`Sym`] as a portable value.
pub fn export_sym(s: &Sym) -> PSym {
    PSym {
        name: s.name().to_string(),
        id: s.id(),
    }
}

/// Captures a [`Kind`] as a portable value.
pub fn export_kind(k: &Kind) -> PKind {
    match k {
        Kind::Type => PKind::Type,
        Kind::Name => PKind::Name,
        Kind::Arrow(a, b) => PKind::Arrow(Box::new(export_kind(a)), Box::new(export_kind(b))),
        Kind::Row(k) => PKind::Row(Box::new(export_kind(k))),
        Kind::Pair(a, b) => PKind::Pair(Box::new(export_kind(a)), Box::new(export_kind(b))),
        Kind::Meta(KMetaId(n)) => PKind::Meta(*n),
    }
}

/// Captures a [`Con`] as a portable value.
pub fn export_con(c: &Con) -> PCon {
    match c {
        Con::Var(s) => PCon::Var(export_sym(s)),
        Con::Meta(MetaId(n)) => PCon::Meta(*n),
        Con::Prim(p) => PCon::Prim(*p),
        Con::Arrow(a, b) => PCon::Arrow(Box::new(export_con(a)), Box::new(export_con(b))),
        Con::Poly(s, k, t) => {
            PCon::Poly(export_sym(s), export_kind(k), Box::new(export_con(t)))
        }
        Con::Guarded(c1, c2, t) => PCon::Guarded(
            Box::new(export_con(c1)),
            Box::new(export_con(c2)),
            Box::new(export_con(t)),
        ),
        Con::Lam(s, k, b) => PCon::Lam(export_sym(s), export_kind(k), Box::new(export_con(b))),
        Con::App(f, a) => PCon::App(Box::new(export_con(f)), Box::new(export_con(a))),
        Con::Name(n) => PCon::Name(n.to_string()),
        Con::Record(r) => PCon::Record(Box::new(export_con(r))),
        Con::RowNil(k) => PCon::RowNil(export_kind(k)),
        Con::RowOne(n, v) => PCon::RowOne(Box::new(export_con(n)), Box::new(export_con(v))),
        Con::RowCat(a, b) => PCon::RowCat(Box::new(export_con(a)), Box::new(export_con(b))),
        Con::Map(k1, k2) => PCon::Map(export_kind(k1), export_kind(k2)),
        Con::Folder(k) => PCon::Folder(export_kind(k)),
        Con::Pair(a, b) => PCon::Pair(Box::new(export_con(a)), Box::new(export_con(b))),
        Con::Fst(c) => PCon::Fst(Box::new(export_con(c))),
        Con::Snd(c) => PCon::Snd(Box::new(export_con(c))),
    }
}

/// Captures an [`Expr`] as a portable value.
pub fn export_expr(e: &Expr) -> PExpr {
    match e {
        Expr::Var(s) => PExpr::Var(export_sym(s)),
        Expr::Lit(l) => PExpr::Lit(match l {
            Lit::Int(n) => PLit::Int(*n),
            Lit::Float(x) => PLit::Float(*x),
            Lit::Str(s) => PLit::Str(s.to_string()),
            Lit::Bool(b) => PLit::Bool(*b),
            Lit::Unit => PLit::Unit,
        }),
        Expr::App(f, a) => PExpr::App(Box::new(export_expr(f)), Box::new(export_expr(a))),
        Expr::Lam(x, t, b) => {
            PExpr::Lam(export_sym(x), export_con(t), Box::new(export_expr(b)))
        }
        Expr::CApp(e, c) => PExpr::CApp(Box::new(export_expr(e)), export_con(c)),
        Expr::CLam(a, k, b) => {
            PExpr::CLam(export_sym(a), export_kind(k), Box::new(export_expr(b)))
        }
        Expr::RecNil => PExpr::RecNil,
        Expr::RecOne(n, e) => PExpr::RecOne(export_con(n), Box::new(export_expr(e))),
        Expr::RecCat(a, b) => PExpr::RecCat(Box::new(export_expr(a)), Box::new(export_expr(b))),
        Expr::Proj(e, c) => PExpr::Proj(Box::new(export_expr(e)), export_con(c)),
        Expr::Cut(e, c) => PExpr::Cut(Box::new(export_expr(e)), export_con(c)),
        Expr::DLam(c1, c2, b) => {
            PExpr::DLam(export_con(c1), export_con(c2), Box::new(export_expr(b)))
        }
        Expr::DApp(e) => PExpr::DApp(Box::new(export_expr(e))),
        Expr::Let(x, t, bound, body) => PExpr::Let(
            export_sym(x),
            export_con(t),
            Box::new(export_expr(bound)),
            Box::new(export_expr(body)),
        ),
        Expr::If(c, t, e) => PExpr::If(
            Box::new(export_expr(c)),
            Box::new(export_expr(t)),
            Box::new(export_expr(e)),
        ),
    }
}

/// Captures an [`Env`]'s semantic content as a portable snapshot, with
/// entries sorted by sym id for determinism.
pub fn export_env(env: &Env) -> PEnv {
    let mut cons: Vec<PConBind> = env
        .cons()
        .map(|(s, b)| PConBind {
            sym: export_sym(s),
            kind: export_kind(&b.kind),
            def: b.def.as_deref().map(export_con),
        })
        .collect();
    cons.sort_by_key(|b| b.sym.id);
    let mut vals: Vec<(PSym, PCon)> = env
        .vals()
        .map(|(s, t)| (export_sym(s), export_con(t)))
        .collect();
    vals.sort_by_key(|(s, _)| s.id);
    let facts = env
        .facts()
        .iter()
        .map(|(c1, c2)| (export_con(c1), export_con(c2)))
        .collect();
    PEnv { cons, vals, facts }
}

/// Rebuilds native terms from portable mirrors on the current thread,
/// re-interning constructors through the thread-local table.
///
/// One importer caches one rebuilt [`Sym`] per id, so everything imported
/// through it shares symbol instances; since `Sym` equality is id-only
/// this is an optimization, not a correctness requirement — but it keeps
/// `Rc<str>` allocations from multiplying.
#[derive(Default)]
pub struct Importer {
    syms: HashMap<u32, Sym>,
}

impl Importer {
    pub fn new() -> Importer {
        Importer::default()
    }

    /// Rebuilds a symbol, preserving its global id.
    pub fn sym(&mut self, p: &PSym) -> Sym {
        self.syms
            .entry(p.id)
            .or_insert_with(|| Sym::from_raw(p.name.as_str(), p.id))
            .clone()
    }

    /// Rebuilds a kind.
    pub fn kind(&mut self, p: &PKind) -> Kind {
        match p {
            PKind::Type => Kind::Type,
            PKind::Name => Kind::Name,
            PKind::Arrow(a, b) => Kind::arrow(self.kind(a), self.kind(b)),
            PKind::Row(k) => Kind::row(self.kind(k)),
            PKind::Pair(a, b) => Kind::pair(self.kind(a), self.kind(b)),
            PKind::Meta(n) => Kind::Meta(KMetaId(*n)),
        }
    }

    /// Rebuilds a constructor through the smart constructors, interning
    /// it into this thread's table.
    pub fn con(&mut self, p: &PCon) -> RCon {
        match p {
            PCon::Var(s) => {
                let s = self.sym(s);
                Con::var(&s)
            }
            PCon::Meta(n) => Con::meta(MetaId(*n)),
            PCon::Prim(t) => Con::prim(*t),
            PCon::Arrow(a, b) => Con::arrow(self.con(a), self.con(b)),
            PCon::Poly(s, k, t) => {
                let s = self.sym(s);
                let k = self.kind(k);
                Con::poly(s, k, self.con(t))
            }
            PCon::Guarded(c1, c2, t) => Con::guarded(self.con(c1), self.con(c2), self.con(t)),
            PCon::Lam(s, k, b) => {
                let s = self.sym(s);
                let k = self.kind(k);
                Con::lam(s, k, self.con(b))
            }
            PCon::App(f, a) => Con::app(self.con(f), self.con(a)),
            PCon::Name(n) => Con::name(n.as_str()),
            PCon::Record(r) => Con::record(self.con(r)),
            PCon::RowNil(k) => Con::row_nil(self.kind(k)),
            PCon::RowOne(n, v) => Con::row_one(self.con(n), self.con(v)),
            PCon::RowCat(a, b) => Con::row_cat(self.con(a), self.con(b)),
            PCon::Map(k1, k2) => Con::map_c(self.kind(k1), self.kind(k2)),
            PCon::Folder(k) => Con::folder(self.kind(k)),
            PCon::Pair(a, b) => Con::pair(self.con(a), self.con(b)),
            PCon::Fst(c) => Con::fst(self.con(c)),
            PCon::Snd(c) => Con::snd(self.con(c)),
        }
    }

    /// Rebuilds an expression.
    pub fn expr(&mut self, p: &PExpr) -> RExpr {
        match p {
            PExpr::Var(s) => {
                let s = self.sym(s);
                Expr::var(&s)
            }
            PExpr::Lit(l) => Expr::lit(match l {
                PLit::Int(n) => Lit::Int(*n),
                PLit::Float(x) => Lit::Float(*x),
                PLit::Str(s) => Lit::Str(s.as_str().into()),
                PLit::Bool(b) => Lit::Bool(*b),
                PLit::Unit => Lit::Unit,
            }),
            PExpr::App(f, a) => Expr::app(self.expr(f), self.expr(a)),
            PExpr::Lam(x, t, b) => {
                let x = self.sym(x);
                let t = self.con(t);
                Expr::lam(x, t, self.expr(b))
            }
            PExpr::CApp(e, c) => {
                let e = self.expr(e);
                Expr::capp(e, self.con(c))
            }
            PExpr::CLam(a, k, b) => {
                let a = self.sym(a);
                let k = self.kind(k);
                Expr::clam(a, k, self.expr(b))
            }
            PExpr::RecNil => Expr::rec_nil(),
            PExpr::RecOne(n, e) => {
                let n = self.con(n);
                Expr::rec_one(n, self.expr(e))
            }
            PExpr::RecCat(a, b) => Expr::rec_cat(self.expr(a), self.expr(b)),
            PExpr::Proj(e, c) => {
                let e = self.expr(e);
                Expr::proj(e, self.con(c))
            }
            PExpr::Cut(e, c) => {
                let e = self.expr(e);
                Expr::cut(e, self.con(c))
            }
            PExpr::DLam(c1, c2, b) => {
                let c1 = self.con(c1);
                let c2 = self.con(c2);
                Expr::dlam(c1, c2, self.expr(b))
            }
            PExpr::DApp(e) => Expr::dapp(self.expr(e)),
            PExpr::Let(x, t, bound, body) => {
                let x = self.sym(x);
                let t = self.con(t);
                let bound = self.expr(bound);
                Expr::let_(x, t, bound, self.expr(body))
            }
            PExpr::If(c, t, e) => {
                let c = self.expr(c);
                let t = self.expr(t);
                Expr::if_(c, t, self.expr(e))
            }
        }
    }

    /// Rebuilds an environment snapshot into a fresh [`Env`].
    pub fn env(&mut self, p: &PEnv) -> Env {
        let mut env = Env::new();
        for b in &p.cons {
            let sym = self.sym(&b.sym);
            let kind = self.kind(&b.kind);
            match &b.def {
                Some(def) => {
                    let def = self.con(def);
                    env.define_con(sym, kind, def);
                }
                None => env.bind_con(sym, kind),
            }
        }
        for (s, t) in &p.vals {
            let sym = self.sym(s);
            let t = self.con(t);
            env.bind_val(sym, t);
        }
        for (c1, c2) in &p.facts {
            let c1 = self.con(c1);
            let c2 = self.con(c2);
            env.assume_disjoint(c1, c2);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_con() -> RCon {
        let a = Sym::fresh("a");
        let row = Con::row_cat(
            Con::row_one(Con::name("X"), Con::int()),
            Con::row_one(Con::name("Y"), Con::var(&a)),
        );
        Con::poly(
            a.clone(),
            Kind::Type,
            Con::guarded(
                Con::row_one(Con::name("X"), Con::int()),
                Con::var(&a),
                Con::arrow(Con::record(row), Con::string()),
            ),
        )
    }

    #[test]
    fn con_round_trip_is_identity() {
        let c = sample_con();
        let p = export_con(&c);
        let mut imp = Importer::new();
        let back = imp.con(&p);
        // Same thread + same sym ids + hash-consing => pointer equality.
        assert!(std::rc::Rc::ptr_eq(&c, &back));
    }

    #[test]
    fn importer_caches_syms_by_id() {
        let s = Sym::fresh("x");
        let p = export_sym(&s);
        let mut imp = Importer::new();
        let s1 = imp.sym(&p);
        let s2 = imp.sym(&p);
        assert_eq!(s1, s);
        assert_eq!(s1.id(), s.id());
        assert_eq!(s1.name(), "x");
        assert_eq!(s1, s2);
    }

    #[test]
    fn expr_round_trip_preserves_structure() {
        let x = Sym::fresh("x");
        let e = Expr::lam(
            x.clone(),
            Con::int(),
            Expr::if_(
                Expr::lit(Lit::Bool(true)),
                Expr::var(&x),
                Expr::lit(Lit::Int(3)),
            ),
        );
        let p = export_expr(&e);
        let mut imp = Importer::new();
        let back = imp.expr(&p);
        assert_eq!(*e, *back);
    }

    #[test]
    fn env_round_trip_preserves_bindings_and_facts() {
        let mut env = Env::new();
        let a = Sym::fresh("a");
        let x = Sym::fresh("x");
        env.bind_con(a.clone(), Kind::row(Kind::Type));
        env.define_con(Sym::fresh("t"), Kind::Type, Con::int());
        env.bind_val(x.clone(), Con::record(Con::var(&a)));
        env.assume_disjoint(Con::name("A"), Con::var(&a));

        let p = export_env(&env);
        let mut imp = Importer::new();
        let back = imp.env(&p);

        let b = back.lookup_con(&a).expect("con binding survives");
        assert_eq!(b.kind, Kind::row(Kind::Type));
        let t = back.lookup_val(&x).expect("val binding survives");
        assert!(std::rc::Rc::ptr_eq(t, env.lookup_val(&x).expect("orig")));
        assert_eq!(back.facts().len(), 1);
    }

    #[test]
    fn export_env_is_deterministically_ordered() {
        let mut env = Env::new();
        for i in 0..32 {
            env.bind_con(Sym::fresh(format!("c{i}")), Kind::Type);
            env.bind_val(Sym::fresh(format!("v{i}")), Con::int());
        }
        let a = export_env(&env);
        let b = export_env(&env);
        assert_eq!(a.cons, b.cons);
        assert_eq!(a.vals, b.vals);
        let mut ids: Vec<u32> = a.cons.iter().map(|c| c.sym.id).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(ids, sorted);
        ids = a.vals.iter().map(|(s, _)| s.id).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(ids, sorted);
    }

    #[test]
    fn cross_thread_round_trip() {
        // The real use: export on one thread, rebuild on another, ship the
        // portable form back, and confirm the original thread re-interns
        // it to the identical hash-consed node.
        let c = sample_con();
        let p = export_con(&c);
        let handle = std::thread::spawn(move || {
            let mut imp = Importer::new();
            let rebuilt = imp.con(&p);
            export_con(&rebuilt)
        });
        let p2 = handle.join().expect("worker thread");
        let mut imp = Importer::new();
        let back = imp.con(&p2);
        assert!(std::rc::Rc::ptr_eq(&c, &back));
    }
}
