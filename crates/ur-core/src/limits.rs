//! Resource limits (fuel) for the inference judgments.
//!
//! The §4 judgments — head normalization, definitional equality, row
//! normalization, the disjointness prover — recurse over untrusted input.
//! Pathological programs (10k-deep `map` nests, 5k-field wide rows,
//! metavariable cycles) would otherwise hang or overflow the stack.
//!
//! [`Fuel`] lives in [`crate::Cx`], which is already threaded `&mut`
//! through every judgment, so no signature changes are needed. Each
//! judgment *charges* fuel on entry; when a budget runs out the fuel
//! becomes **sticky-exhausted**: every further charge fails immediately,
//! so the whole judgment tree unwinds quickly, each level returning a
//! conservative degenerate value (`hnf` returns its input unreduced,
//! `defeq` returns `false`, the prover returns `NotYet`, unification
//! postpones). The elaborator observes [`Fuel::exhausted`] at declaration
//! boundaries and turns it into a structured `ResourceExhausted`
//! diagnostic, then calls [`Fuel::reset`] so later declarations get a
//! fresh budget.

use std::fmt;

/// Which budget ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// Recursion depth of `hnf`/`defeq`/row collection (guards the stack).
    Depth,
    /// Total normalization steps (guards against non-termination).
    NormSteps,
    /// Disjointness-prover piece pairs (guards the §4.1 cross product).
    ProverPairs,
    /// Postponed-constraint solver rounds (guards the retry loop).
    SolverRounds,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Depth => write!(f, "recursion depth"),
            ResourceKind::NormSteps => write!(f, "normalization steps"),
            ResourceKind::ProverPairs => write!(f, "disjointness-prover pairs"),
            ResourceKind::SolverRounds => write!(f, "constraint-solver rounds"),
        }
    }
}

/// Configurable budgets. The defaults are far above anything a legitimate
/// program needs (the entire Figure-5 suite stays under 1% of each) while
/// still bounding adversarial input to well under a second of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum recursion depth for the core judgments.
    pub max_depth: usize,
    /// Maximum total normalization steps between [`Fuel::reset`]s.
    pub max_norm_steps: u64,
    /// Maximum disjointness piece-pair checks between resets.
    pub max_prover_pairs: u64,
    /// Maximum postponed-constraint rounds per elaboration fixed point.
    pub max_solver_rounds: u32,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_depth: 512,
            max_norm_steps: 2_000_000,
            max_prover_pairs: 2_000_000,
            // Every round of the fixed-point loop must solve at least one
            // constraint, so round count is bounded by queue size; large
            // generated programs legitimately need hundreds of rounds.
            max_solver_rounds: 4096,
        }
    }
}

impl Limits {
    /// Effectively no limits (for trusted, already-checked input).
    pub fn unlimited() -> Limits {
        Limits {
            max_depth: usize::MAX,
            max_norm_steps: u64::MAX,
            max_prover_pairs: u64::MAX,
            max_solver_rounds: u32::MAX,
        }
    }

    /// Tight limits for tests that want exhaustion to trigger quickly.
    pub fn strict() -> Limits {
        Limits {
            max_depth: 64,
            max_norm_steps: 10_000,
            max_prover_pairs: 10_000,
            max_solver_rounds: 8,
        }
    }

    /// Maps a wall-clock deadline budget to fuel ceilings, for serving:
    /// a request that arrives with `deadline_ms` of budget left gets a
    /// step budget it can plausibly spend inside that window, so a slow
    /// elaboration degrades to a structured E0900 diagnostic instead of
    /// wedging its worker past the deadline.
    ///
    /// The conversion is deliberately conservative
    /// ([`DEADLINE_STEPS_PER_MS`] is a low-end steps/ms figure): a tight
    /// deadline must *reliably* exhaust rather than occasionally sneak
    /// through on a fast machine, because the supervisor treats the fuel
    /// ceiling — not wall-clock preemption, which Rust threads don't
    /// have — as the mechanism that keeps workers responsive. Depth is
    /// never scaled below [`Limits::strict`]'s (it guards the stack, not
    /// time), and no budget ever exceeds the [`Limits::default`] one.
    pub fn for_deadline_ms(deadline_ms: u64) -> Limits {
        let d = Limits::default();
        let steps = deadline_ms
            .saturating_mul(DEADLINE_STEPS_PER_MS)
            .clamp(1, d.max_norm_steps);
        Limits {
            max_depth: d.max_depth,
            max_norm_steps: steps,
            max_prover_pairs: steps.min(d.max_prover_pairs),
            max_solver_rounds: d.max_solver_rounds,
        }
    }
}

/// Conservative lower-bound estimate of normalization steps per
/// millisecond used by [`Limits::for_deadline_ms`]. Measured throughput
/// on the Figure-5 studies is 10-50x higher; the low figure biases tight
/// deadlines toward deterministic E0900 degradation over machine-speed
/// lottery.
pub const DEADLINE_STEPS_PER_MS: u64 = 2_000;

/// Mutable fuel state charged by the judgments. See the module docs for
/// the sticky-exhaustion protocol.
#[derive(Clone, Debug)]
pub struct Fuel {
    pub limits: Limits,
    depth: usize,
    norm_steps: u64,
    prover_pairs: u64,
    /// Total steps ever charged, *not* cleared by [`Fuel::reset`]. The
    /// elaborator resets fuel at every declaration boundary, so this is
    /// the only whole-run normalization-work metric (used by the
    /// interning benchmark to compare cached vs. uncached runs).
    lifetime_norm_steps: u64,
    exhausted: Option<ResourceKind>,
}

impl Default for Fuel {
    fn default() -> Fuel {
        Fuel::new(Limits::default())
    }
}

impl Fuel {
    pub fn new(limits: Limits) -> Fuel {
        Fuel {
            limits,
            depth: 0,
            norm_steps: 0,
            prover_pairs: 0,
            lifetime_norm_steps: 0,
            exhausted: None,
        }
    }

    /// The budget that ran out, if any. Sticky until [`Fuel::reset`].
    pub fn exhausted(&self) -> Option<ResourceKind> {
        self.exhausted
    }

    /// Records exhaustion of `kind` (the first one wins).
    pub fn exhaust(&mut self, kind: ResourceKind) {
        if self.exhausted.is_none() {
            self.exhausted = Some(kind);
        }
    }

    /// Enters one recursion level. `false` means the budget is gone (or
    /// already was): the caller must return its degenerate value *without*
    /// calling [`Fuel::ascend`].
    #[must_use]
    pub fn descend(&mut self) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        if self.depth >= self.limits.max_depth {
            self.exhausted = Some(ResourceKind::Depth);
            return false;
        }
        self.depth += 1;
        true
    }

    /// Leaves a recursion level entered with a successful [`Fuel::descend`].
    pub fn ascend(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Charges one normalization step.
    #[must_use]
    pub fn step(&mut self) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        // failpoint `fuel_charge`: mischarge a phantom burst of a quarter
        // budget. A few fires push an innocent declaration over its limit,
        // producing a *spurious* exhaustion — exactly the accounting bug
        // the elaborator's bounded declaration retry must heal (the burst
        // is deliberately kept out of `lifetime_norm_steps`, which records
        // real work only).
        if crate::failpoint::fire(crate::failpoint::Site::FuelCharge) {
            let burst = self.limits.max_norm_steps / 4 + 1;
            self.norm_steps = self.norm_steps.saturating_add(burst);
        }
        if self.norm_steps >= self.limits.max_norm_steps {
            self.exhausted = Some(ResourceKind::NormSteps);
            return false;
        }
        self.norm_steps += 1;
        // Saturating: the lifetime counter is merged across worker
        // threads by the parallel scheduler, where wrap-around would
        // silently corrupt the whole-run metric.
        self.lifetime_norm_steps = self.lifetime_norm_steps.saturating_add(1);
        true
    }

    /// Charges one disjointness piece-pair check.
    #[must_use]
    pub fn prover_pair(&mut self) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        if self.prover_pairs >= self.limits.max_prover_pairs {
            self.exhausted = Some(ResourceKind::ProverPairs);
            return false;
        }
        self.prover_pairs += 1;
        true
    }

    /// Steps charged since the last reset (for instrumentation).
    pub fn norm_steps_used(&self) -> u64 {
        self.norm_steps
    }

    /// Prover pairs charged since the last reset (for instrumentation).
    pub fn prover_pairs_used(&self) -> u64 {
        self.prover_pairs
    }

    /// Total normalization steps charged over the fuel's whole lifetime,
    /// across [`Fuel::reset`]s.
    pub fn lifetime_norm_steps(&self) -> u64 {
        self.lifetime_norm_steps
    }

    /// Folds `steps` lifetime normalization steps charged elsewhere (a
    /// worker thread's fuel) into this fuel's whole-run metric.
    /// Saturates instead of wrapping so merging many workers near the
    /// `u64` ceiling pins the metric at `u64::MAX` rather than cycling
    /// back through small values.
    pub fn absorb_lifetime(&mut self, steps: u64) {
        self.lifetime_norm_steps = self.lifetime_norm_steps.saturating_add(steps);
    }

    /// Clears exhaustion and all counters — called by the elaborator at
    /// declaration boundaries after reporting a `ResourceExhausted`
    /// diagnostic, so later declarations get a fresh budget.
    pub fn reset(&mut self) {
        self.depth = 0;
        self.norm_steps = 0;
        self.prover_pairs = 0;
        self.exhausted = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_budget_is_sticky() {
        let mut f = Fuel::new(Limits {
            max_depth: 2,
            ..Limits::default()
        });
        assert!(f.descend());
        assert!(f.descend());
        assert!(!f.descend());
        assert_eq!(f.exhausted(), Some(ResourceKind::Depth));
        // Sticky: even after ascending, further charges fail.
        f.ascend();
        f.ascend();
        assert!(!f.descend());
        assert!(!f.step());
        f.reset();
        assert!(f.descend());
        assert_eq!(f.exhausted(), None);
    }

    #[test]
    fn step_budget_exhausts() {
        let mut f = Fuel::new(Limits {
            max_norm_steps: 3,
            ..Limits::default()
        });
        assert!(f.step());
        assert!(f.step());
        assert!(f.step());
        assert!(!f.step());
        assert_eq!(f.exhausted(), Some(ResourceKind::NormSteps));
    }

    #[test]
    fn prover_budget_exhausts() {
        let mut f = Fuel::new(Limits {
            max_prover_pairs: 1,
            ..Limits::default()
        });
        assert!(f.prover_pair());
        assert!(!f.prover_pair());
        assert_eq!(f.exhausted(), Some(ResourceKind::ProverPairs));
    }

    #[test]
    fn lifetime_steps_survive_reset() {
        let mut f = Fuel::new(Limits::default());
        assert!(f.step());
        assert!(f.step());
        f.reset();
        assert!(f.step());
        assert_eq!(f.norm_steps_used(), 1);
        assert_eq!(f.lifetime_norm_steps(), 3);
    }

    #[test]
    fn lifetime_merge_saturates_instead_of_wrapping() {
        let mut f = Fuel::new(Limits::default());
        assert!(f.step());
        assert_eq!(f.lifetime_norm_steps(), 1);
        // Merging a worker that itself saturated must not wrap to 0.
        f.absorb_lifetime(u64::MAX);
        assert_eq!(f.lifetime_norm_steps(), u64::MAX);
        f.absorb_lifetime(17);
        assert_eq!(f.lifetime_norm_steps(), u64::MAX);
        // step() on a saturated counter stays pinned too.
        assert!(f.step());
        assert_eq!(f.lifetime_norm_steps(), u64::MAX);
        // reset() never clears the lifetime metric.
        f.reset();
        assert_eq!(f.lifetime_norm_steps(), u64::MAX);
    }

    #[test]
    fn lifetime_merge_accumulates_normally_below_ceiling() {
        let mut a = Fuel::new(Limits::default());
        let mut b = Fuel::new(Limits::default());
        assert!(a.step());
        assert!(b.step());
        assert!(b.step());
        a.absorb_lifetime(b.lifetime_norm_steps());
        assert_eq!(a.lifetime_norm_steps(), 3);
    }

    #[test]
    fn deadline_limits_scale_and_clamp() {
        let tiny = Limits::for_deadline_ms(1);
        assert_eq!(tiny.max_norm_steps, DEADLINE_STEPS_PER_MS);
        assert_eq!(tiny.max_prover_pairs, DEADLINE_STEPS_PER_MS);
        // Depth guards the stack, not time: never scaled down.
        assert_eq!(tiny.max_depth, Limits::default().max_depth);

        // Zero budget still leaves one step so exhaustion is reported
        // through the normal sticky path, not a panic.
        assert_eq!(Limits::for_deadline_ms(0).max_norm_steps, 1);

        // Monotone in the deadline, capped at the default budget.
        let a = Limits::for_deadline_ms(10);
        let b = Limits::for_deadline_ms(100);
        assert!(a.max_norm_steps < b.max_norm_steps);
        let huge = Limits::for_deadline_ms(u64::MAX);
        assert_eq!(huge, Limits::default());
    }

    #[test]
    fn unlimited_never_exhausts_in_practice() {
        let mut f = Fuel::new(Limits::unlimited());
        for _ in 0..10_000 {
            assert!(f.descend());
            assert!(f.step());
            assert!(f.prover_pair());
        }
        assert_eq!(f.exhausted(), None);
    }
}
