//! Canonical row normalization — the computational heart of Ur.
//!
//! Definitional equality of rows (paper Figure 3) includes unit,
//! commutativity, and associativity of `++`, the defining equations of
//! `map`, and three algebraic laws:
//!
//! ```text
//! map (fn a => a) c            = c                       (identity)
//! map f (c1 ++ c2)             = map f c1 ++ map f c2    (distributivity)
//! map f (map g c)              = map (fn a => f (g a)) c (fusion)
//! ```
//!
//! We realize the whole equational theory by a *canonicalizing normalizer*:
//! every row denotes a multiset of literal fields, neutral-name fields, and
//! neutral row atoms each under at most one (fused) `map`. Commutativity
//! and associativity hold because the normal form is order-canonical;
//! the three laws above are applied as rewrites and counted in
//! [`crate::stats::Stats`], which is how we regenerate the paper's
//! Figure 5 columns.

use crate::arena::IStr;
use crate::con::{Con, MetaId, RCon};
use crate::env::Env;
use crate::hnf::hnf;
use crate::kind::Kind;
use crate::sym::Sym;
use crate::Cx;

/// The name position of a field in normal form: either a literal name
/// `#n` or a neutral constructor of kind `Name` (e.g. a bound variable
/// `nm`).
#[derive(Clone, Debug)]
pub enum FieldKey {
    Lit(IStr),
    Neutral(RCon),
}

impl FieldKey {
    /// A stable, unambiguous sorting key.
    pub fn canon(&self) -> String {
        match self {
            FieldKey::Lit(n) => format!("#{n}"),
            FieldKey::Neutral(c) => canon_con(c),
        }
    }

    /// The underlying constructor.
    pub fn to_con(&self) -> RCon {
        match self {
            FieldKey::Lit(n) => Con::name(*n),
            FieldKey::Neutral(c) => *c,
        }
    }
}

/// A neutral row component: `base` is a neutral constructor of row kind
/// (an unsolved metavariable, an abstract variable, or a neutral
/// application), optionally under one fused `map`.
#[derive(Clone, Debug)]
pub struct RowAtom {
    /// The mapped function together with its domain kind, if any.
    pub map: Option<(RCon, Kind)>,
    /// The neutral row this atom stands for.
    pub base: RCon,
}

impl RowAtom {
    /// Rebuilds the constructor this atom denotes, at result element kind
    /// `out_kind`.
    pub fn to_con(&self, out_kind: &Kind) -> RCon {
        match &self.map {
            None => self.base,
            Some((f, dom)) => Con::map_app(
                dom.clone(),
                out_kind.clone(),
                *f,
                self.base,
            ),
        }
    }

    /// If the base is an unsolved metavariable, its id.
    pub fn base_meta(&self) -> Option<MetaId> {
        match &*self.base {
            Con::Meta(id) => Some(*id),
            _ => None,
        }
    }

    pub fn canon(&self) -> String {
        match &self.map {
            None => canon_con(&self.base),
            Some((f, _)) => format!("map({})({})", canon_con(f), canon_con(&self.base)),
        }
    }
}

/// Canonical row normal form: a multiset of fields plus a multiset of
/// neutral atoms, both kept sorted by a canonical key.
#[derive(Clone, Debug, Default)]
pub struct RowNf {
    /// Element kind of the row, when it could be determined syntactically.
    pub elem_kind: Option<Kind>,
    /// Literal and neutral-name fields, sorted by [`FieldKey::canon`].
    pub fields: Vec<(FieldKey, RCon)>,
    /// The same fields in *source order* (the order they were written or
    /// produced before canonical sorting). §4.4: the compiler generates
    /// omitted folders "using the permutation implied by the order in
    /// which fields appear", so the elaborator needs this order.
    pub source_fields: Vec<(FieldKey, RCon)>,
    /// Neutral row components, sorted by [`RowAtom::canon`].
    pub atoms: Vec<RowAtom>,
}

impl RowNf {
    /// True when the row is literally empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.atoms.is_empty()
    }

    /// Total number of components (fields + atoms).
    pub fn pieces(&self) -> usize {
        self.fields.len() + self.atoms.len()
    }

    /// If the whole row is a single bare unsolved metavariable, its id.
    pub fn single_meta(&self) -> Option<MetaId> {
        if self.fields.is_empty() && self.atoms.len() == 1 && self.atoms[0].map.is_none() {
            self.atoms[0].base_meta()
        } else {
            None
        }
    }

    /// The element kind, defaulting to `Type` when undetermined.
    pub fn kind_or_type(&self) -> Kind {
        self.elem_kind.clone().unwrap_or(Kind::Type)
    }

    /// Rebuilds a constructor denoting this normal form.
    pub fn to_con(&self) -> RCon {
        let k = self.kind_or_type();
        let mut parts: Vec<RCon> = Vec::new();
        for (key, v) in &self.fields {
            parts.push(Con::row_one(key.to_con(), *v));
        }
        for atom in &self.atoms {
            parts.push(atom.to_con(&k));
        }
        let mut it = parts.into_iter();
        match it.next() {
            None => Con::row_nil(k),
            Some(first) => it.fold(first, Con::row_cat),
        }
    }

    fn sort(&mut self) {
        self.fields.sort_by_key(|f| f.0.canon());
        self.atoms.sort_by_key(|a| a.canon());
    }

    /// Looks up a literal field by name.
    pub fn field_lit(&self, name: &str) -> Option<&RCon> {
        self.fields.iter().find_map(|(k, v)| match k {
            FieldKey::Lit(n) if &**n == name => Some(v),
            _ => None,
        })
    }

    /// Names of all literal fields, in canonical order.
    pub fn lit_names(&self) -> Vec<IStr> {
        self.fields
            .iter()
            .filter_map(|(k, _)| match k {
                FieldKey::Lit(n) => Some(*n),
                _ => None,
            })
            .collect()
    }
}

/// Normalizes a row-kinded constructor to canonical form, applying and
/// counting the Figure-3 laws.
///
/// Memoized (see [`crate::memo`]). The `row_normalizations` counter is
/// charged *before* the table lookup so it keeps counting calls, as
/// Figure 5 does; the law counters by contrast only advance on misses
/// (a cached normal form replays no rewrites).
pub fn normalize_row(env: &Env, cx: &mut Cx, c: &RCon) -> RowNf {
    cx.stats.row_normalizations += 1;
    let key = if cx.memo.enabled {
        cx.memo.check_laws(cx.laws);
        let id = crate::intern::id_of(c);
        let (env_gen, meta_gen) = (env.generation(), cx.metas.generation());
        if let Some(nf) = cx.memo.row_get(id, env_gen, meta_gen) {
            cx.stats.row_memo_hits += 1;
            let _ = cx.fuel.step();
            return nf;
        }
        cx.stats.row_memo_misses += 1;
        Some((id, env_gen))
    } else {
        None
    };
    let mut nf = RowNf::default();
    collect(env, cx, c, &mut nf);
    nf.source_fields = nf.fields.clone();
    nf.sort();
    if let Some((id, env_gen)) = key {
        if cx.fuel.exhausted().is_none() {
            cx.memo.row_put(id, env_gen, cx.metas.generation(), &nf);
        }
    }
    nf
}

fn collect(env: &Env, cx: &mut Cx, c: &RCon, nf: &mut RowNf) {
    // Fuel-bounded: on exhaustion the remaining subtree is kept as one
    // opaque neutral atom — sound (it only makes fewer rows equal), and
    // the elaborator reports the exhaustion as a resource diagnostic.
    if !cx.fuel.descend() {
        nf.atoms.push(RowAtom {
            map: None,
            base: (*c),
        });
        return;
    }
    collect_inner(env, cx, c, nf);
    cx.fuel.ascend();
}

fn collect_inner(env: &Env, cx: &mut Cx, c: &RCon, nf: &mut RowNf) {
    let c = hnf(env, cx, c);
    match &*c {
        Con::RowNil(k) => {
            if nf.elem_kind.is_none() {
                nf.elem_kind = Some(k.clone());
            }
        }
        Con::RowOne(n, v) => {
            let n = hnf(env, cx, n);
            let key = match &*n {
                Con::Name(s) => FieldKey::Lit(*s),
                _ => FieldKey::Neutral(n),
            };
            nf.fields.push((key, (*v)));
        }
        Con::RowCat(_, _) => {
            // Wide rows are the common case; walk the concat tree with an
            // explicit worklist so field count costs no call stack (a
            // 5,000-field record is a 5,000-deep concat chain).
            let mut work = vec![c];
            while let Some(part) = work.pop() {
                let part = hnf(env, cx, &part);
                if let Con::RowCat(a, b) = &*part {
                    work.push(*b);
                    work.push(*a);
                } else {
                    collect(env, cx, &part, nf);
                }
            }
        }
        Con::App(_, _) => {
            let (head, args) = c.spine();
            let head = hnf(env, cx, &head);
            if let (Con::Map(k1, k2), 2) = (&*head, args.len()) {
                if nf.elem_kind.is_none() {
                    nf.elem_kind = Some(cx.metas.zonk_kind(k2));
                }
                collect_map(env, cx, &args[0], &args[1], k1, nf);
            } else {
                nf.atoms.push(RowAtom { map: None, base: c });
            }
        }
        // Neutral: abstract variable, unsolved metavariable, or stuck
        // projection.
        _ => {
            nf.atoms.push(RowAtom { map: None, base: c });
        }
    }
}

/// Adds `map f r` to `nf`, applying the map laws.
fn collect_map(env: &Env, cx: &mut Cx, f: &RCon, r: &RCon, dom: &Kind, nf: &mut RowNf) {
    let mut sub = RowNf::default();
    collect(env, cx, r, &mut sub);

    // Identity law: map (fn a => a) c = c.
    if cx.laws.identity && is_identity(env, cx, f) {
        cx.stats.law_map_identity += 1;
        nf.fields.extend(sub.fields);
        nf.atoms.extend(sub.atoms);
        return;
    }

    // Distributivity: pushing the map across >1 components.
    if sub.pieces() > 1 {
        if !cx.laws.distrib {
            // Law disabled: keep `map f <sub>` as one opaque component.
            nf.atoms.push(RowAtom {
                map: Some(((*f), dom.clone())),
                base: sub.to_con(),
            });
            return;
        }
        cx.stats.law_map_distrib += 1;
    }

    // map f ([n = v] ++ r) = [n = f v] ++ map f r   (map-cons)
    for (key, v) in sub.fields {
        let applied = hnf(env, cx, &Con::app(*f, v));
        nf.fields.push((key, applied));
    }
    for atom in sub.atoms {
        match atom.map {
            None => nf.atoms.push(RowAtom {
                map: Some(((*f), dom.clone())),
                base: atom.base,
            }),
            Some((g, g_dom)) => {
                if !cx.laws.fusion {
                    // Law disabled: the inner map stays opaque.
                    nf.atoms.push(RowAtom {
                        map: Some(((*f), dom.clone())),
                        base: Con::map_app(
                            g_dom.clone(),
                            dom.clone(),
                            g,
                            atom.base,
                        ),
                    });
                    continue;
                }
                // Fusion: map f (map g c) = map (fn a => f (g a)) c.
                cx.stats.law_map_fusion += 1;
                let a = Sym::fresh("a");
                let composed = Con::lam(
                    a,
                    g_dom.clone(),
                    Con::app(*f, Con::app(g, Con::var(&a))),
                );
                // The composition may itself be an identity (e.g.
                // `fst (same a)`), in which case the identity law applies
                // to the fused map.
                if cx.laws.identity && is_identity(env, cx, &composed) {
                    cx.stats.law_map_identity += 1;
                    nf.atoms.push(RowAtom {
                        map: None,
                        base: atom.base,
                    });
                } else {
                    nf.atoms.push(RowAtom {
                        map: Some((composed, g_dom)),
                        base: atom.base,
                    });
                }
            }
        }
    }
}

/// Recognizes (type-level) identity functions up to head normalization.
pub fn is_identity(env: &Env, cx: &mut Cx, f: &RCon) -> bool {
    let f = hnf(env, cx, f);
    match &*f {
        Con::Lam(x, _, body) => {
            let body = hnf(env, cx, body);
            matches!(&*body, Con::Var(y) if y == x)
        }
        _ => false,
    }
}

/// Produces an unambiguous canonical string for a constructor, used only
/// for deterministic ordering of normal-form components (never shown to
/// users).
pub fn canon_con(c: &RCon) -> String {
    let mut s = String::new();
    canon_into(c, &mut s);
    s
}

fn canon_into(c: &RCon, out: &mut String) {
    use std::fmt::Write;
    match &**c {
        Con::Var(v) => {
            let _ = write!(out, "v{}:{}", v.id(), v.name());
        }
        Con::Meta(m) => {
            let _ = write!(out, "?{}", m.0);
        }
        Con::Prim(p) => {
            let _ = write!(out, "p{p}");
        }
        Con::Name(n) => {
            let _ = write!(out, "#{n}");
        }
        Con::Arrow(a, b) => bin(out, "->", a, b),
        Con::App(a, b) => bin(out, "@", a, b),
        Con::RowOne(a, b) => bin(out, "=", a, b),
        Con::RowCat(a, b) => bin(out, "++", a, b),
        Con::Pair(a, b) => bin(out, ",", a, b),
        Con::Poly(s, k, t) => {
            let _ = write!(out, "all(v{}::{k}.", s.id());
            canon_into(t, out);
            out.push(')');
        }
        Con::Lam(s, k, t) => {
            let _ = write!(out, "lam(v{}::{k}.", s.id());
            canon_into(t, out);
            out.push(')');
        }
        Con::Guarded(a, b, t) => {
            out.push_str("grd(");
            canon_into(a, out);
            out.push('~');
            canon_into(b, out);
            out.push('.');
            canon_into(t, out);
            out.push(')');
        }
        Con::Record(r) => {
            out.push('$');
            canon_into(r, out);
        }
        Con::RowNil(k) => {
            let _ = write!(out, "nil[{k}]");
        }
        Con::Map(k1, k2) => {
            let _ = write!(out, "map[{k1};{k2}]");
        }
        Con::Folder(k) => {
            let _ = write!(out, "folder[{k}]");
        }
        Con::Fst(r) => {
            out.push_str("fst(");
            canon_into(r, out);
            out.push(')');
        }
        Con::Snd(r) => {
            out.push_str("snd(");
            canon_into(r, out);
            out.push(')');
        }
    }
}

fn bin(out: &mut String, op: &str, a: &RCon, b: &RCon) {
    out.push('(');
    canon_into(a, out);
    out.push_str(op);
    canon_into(b, out);
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::PrimType;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    fn lit_row(names: &[(&str, RCon)]) -> RCon {
        Con::row_of(
            Kind::Type,
            names
                .iter()
                .map(|(n, c)| (Con::name(*n), (*c)))
                .collect(),
        )
    }

    #[test]
    fn empty_row_normalizes_empty() {
        let (env, mut cx) = setup();
        let nf = normalize_row(&env, &mut cx, &Con::row_nil(Kind::Type));
        assert!(nf.is_empty());
        assert_eq!(nf.elem_kind, Some(Kind::Type));
    }

    #[test]
    fn fields_are_sorted_canonically() {
        let (env, mut cx) = setup();
        let r = lit_row(&[("B", Con::float()), ("A", Con::int())]);
        let nf = normalize_row(&env, &mut cx, &r);
        let names: Vec<String> = nf.lit_names().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn concat_is_commutative_in_nf() {
        let (env, mut cx) = setup();
        let ab = Con::row_cat(
            lit_row(&[("A", Con::int())]),
            lit_row(&[("B", Con::float())]),
        );
        let ba = Con::row_cat(
            lit_row(&[("B", Con::float())]),
            lit_row(&[("A", Con::int())]),
        );
        let n1 = normalize_row(&env, &mut cx, &ab);
        let n2 = normalize_row(&env, &mut cx, &ba);
        assert_eq!(canon_con(&n1.to_con()), canon_con(&n2.to_con()));
    }

    #[test]
    fn concat_is_associative_in_nf() {
        let (env, mut cx) = setup();
        let a = lit_row(&[("A", Con::int())]);
        let b = lit_row(&[("B", Con::float())]);
        let c = lit_row(&[("C", Con::bool_())]);
        let left = Con::row_cat(Con::row_cat(a, b), c);
        let right = Con::row_cat(a, Con::row_cat(b, c));
        let n1 = normalize_row(&env, &mut cx, &left);
        let n2 = normalize_row(&env, &mut cx, &right);
        assert_eq!(canon_con(&n1.to_con()), canon_con(&n2.to_con()));
    }

    #[test]
    fn nil_is_identity_for_concat() {
        let (env, mut cx) = setup();
        let a = lit_row(&[("A", Con::int())]);
        let wrapped = Con::row_cat(Con::row_nil(Kind::Type), a);
        let n1 = normalize_row(&env, &mut cx, &wrapped);
        let n2 = normalize_row(&env, &mut cx, &a);
        assert_eq!(canon_con(&n1.to_con()), canon_con(&n2.to_con()));
    }

    #[test]
    fn map_identity_law_counts() {
        let (env, mut cx) = setup();
        let a = Sym::fresh("a");
        let idf = Con::lam(a, Kind::Type, Con::var(&a));
        let r = lit_row(&[("A", Con::int())]);
        let m = Con::map_app(Kind::Type, Kind::Type, idf, r);
        let nf = normalize_row(&env, &mut cx, &m);
        assert_eq!(cx.stats.law_map_identity, 1);
        assert_eq!(nf.fields.len(), 1);
        match &*cx.metas.resolve(nf.field_lit("A").unwrap()) {
            Con::Prim(PrimType::Int) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn map_cons_applies_function() {
        let (env, mut cx) = setup();
        // map (fn a => a -> a) [A = int]  =  [A = int -> int]
        let a = Sym::fresh("a");
        let f = Con::lam(
            a,
            Kind::Type,
            Con::arrow(Con::var(&a), Con::var(&a)),
        );
        let r = lit_row(&[("A", Con::int())]);
        let m = Con::map_app(Kind::Type, Kind::Type, f, r);
        let nf = normalize_row(&env, &mut cx, &m);
        match &**nf.field_lit("A").unwrap() {
            Con::Arrow(l, r) => {
                assert!(matches!(&**l, Con::Prim(PrimType::Int)));
                assert!(matches!(&**r, Con::Prim(PrimType::Int)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn map_distributivity_counts() {
        let (mut env, mut cx) = setup();
        let rv = Sym::fresh("r");
        env.bind_con(rv, Kind::row(Kind::Type));
        let a = Sym::fresh("a");
        let f = Con::lam(
            a,
            Kind::Type,
            Con::arrow(Con::var(&a), Con::var(&a)),
        );
        // map f ([A = int] ++ r): one literal field plus one atom.
        let r = Con::row_cat(lit_row(&[("A", Con::int())]), Con::var(&rv));
        let m = Con::map_app(Kind::Type, Kind::Type, f, r);
        let nf = normalize_row(&env, &mut cx, &m);
        assert_eq!(cx.stats.law_map_distrib, 1);
        assert_eq!(nf.fields.len(), 1);
        assert_eq!(nf.atoms.len(), 1);
        assert!(nf.atoms[0].map.is_some());
    }

    #[test]
    fn map_fusion_counts() {
        let (mut env, mut cx) = setup();
        let rv = Sym::fresh("r");
        env.bind_con(rv, Kind::row(Kind::Type));
        let mk = |sym: &str| {
            let a = Sym::fresh(sym);
            Con::lam(
                a,
                Kind::Type,
                Con::arrow(Con::var(&a), Con::var(&a)),
            )
        };
        let inner = Con::map_app(Kind::Type, Kind::Type, mk("g"), Con::var(&rv));
        let outer = Con::map_app(Kind::Type, Kind::Type, mk("f"), inner);
        let nf = normalize_row(&env, &mut cx, &outer);
        assert_eq!(cx.stats.law_map_fusion, 1);
        assert_eq!(nf.atoms.len(), 1);
        // The fused atom carries a composed function.
        let (f, _) = nf.atoms[0].map.as_ref().unwrap();
        assert!(matches!(&**f, Con::Lam(_, _, _)));
    }

    #[test]
    fn single_meta_detection() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh(Kind::row(Kind::Type), "r");
        let nf = normalize_row(&env, &mut cx, &Con::meta(m));
        assert_eq!(nf.single_meta(), Some(m));
        let catted = Con::row_cat(
            Con::meta(m),
            Con::row_one(Con::name("A"), Con::int()),
        );
        let nf2 = normalize_row(&env, &mut cx, &catted);
        assert_eq!(nf2.single_meta(), None);
        assert_eq!(nf2.pieces(), 2);
    }

    #[test]
    fn solved_meta_row_is_spliced() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh(Kind::row(Kind::Type), "r");
        cx.metas.solve(m, lit_row(&[("B", Con::float())]));
        let catted = Con::row_cat(
            Con::meta(m),
            Con::row_one(Con::name("A"), Con::int()),
        );
        let nf = normalize_row(&env, &mut cx, &catted);
        assert_eq!(nf.fields.len(), 2);
        assert!(nf.atoms.is_empty());
    }

    #[test]
    fn to_con_roundtrip_preserves_nf() {
        let (mut env, mut cx) = setup();
        let rv = Sym::fresh("r");
        env.bind_con(rv, Kind::row(Kind::Type));
        let r = Con::row_cat(
            lit_row(&[("B", Con::float()), ("A", Con::int())]),
            Con::var(&rv),
        );
        let nf = normalize_row(&env, &mut cx, &r);
        let rebuilt = nf.to_con();
        let nf2 = normalize_row(&env, &mut cx, &rebuilt);
        assert_eq!(canon_con(&nf.to_con()), canon_con(&nf2.to_con()));
    }

    #[test]
    fn neutral_field_keys_survive() {
        let (mut env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        env.bind_con(nm, Kind::Name);
        let r = Con::row_one(Con::var(&nm), Con::int());
        let nf = normalize_row(&env, &mut cx, &r);
        assert_eq!(nf.fields.len(), 1);
        assert!(matches!(nf.fields[0].0, FieldKey::Neutral(_)));
    }
}
