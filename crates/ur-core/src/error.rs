//! Error type shared by the core judgments.

use crate::con::RCon;
use crate::kind::Kind;
use crate::sym::Sym;
use std::fmt;

/// Errors raised by kinding, typing, and disjointness checking.
#[derive(Clone, Debug)]
pub enum CoreError {
    /// A constructor variable was not bound in the context.
    UnboundConVar(Sym),
    /// A value variable was not bound in the context.
    UnboundVar(Sym),
    /// A constructor had kind `got` where `expected` was required.
    KindMismatch {
        expected: Kind,
        got: Kind,
        context: String,
    },
    /// A constructor was expected to have a function kind.
    NotArrowKind(RCon, Kind),
    /// A constructor was expected to have a pair kind.
    NotPairKind(RCon, Kind),
    /// An expression of function type was required.
    NotFunction(RCon),
    /// An expression of polymorphic type was required.
    NotPolymorphic(RCon),
    /// An expression of guarded type was required.
    NotGuarded(RCon),
    /// An expression of record type was required.
    NotRecord(RCon),
    /// Projection or cut of a field that the record does not (provably)
    /// contain.
    FieldMissing { record_type: RCon, field: RCon },
    /// Two types failed definitional equality.
    TypeMismatch { expected: RCon, got: RCon },
    /// A disjointness obligation could not be proved.
    DisjointnessFailed { left: RCon, right: RCon },
    /// A disjointness obligation is definitely violated (shared literal
    /// name).
    DisjointnessRefuted {
        left: RCon,
        right: RCon,
        name: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnboundConVar(s) => write!(f, "unbound constructor variable {s}"),
            CoreError::UnboundVar(s) => write!(f, "unbound variable {s}"),
            CoreError::KindMismatch {
                expected,
                got,
                context,
            } => write!(f, "kind mismatch in {context}: expected {expected}, got {got}"),
            CoreError::NotArrowKind(c, k) => {
                write!(f, "constructor {c} has kind {k}, not a function kind")
            }
            CoreError::NotPairKind(c, k) => {
                write!(f, "constructor {c} has kind {k}, not a pair kind")
            }
            CoreError::NotFunction(t) => write!(f, "expected a function, but type is {t}"),
            CoreError::NotPolymorphic(t) => {
                write!(f, "expected a polymorphic value, but type is {t}")
            }
            CoreError::NotGuarded(t) => {
                write!(f, "expected a guarded (constraint) type, but type is {t}")
            }
            CoreError::NotRecord(t) => write!(f, "expected a record, but type is {t}"),
            CoreError::FieldMissing { record_type, field } => {
                write!(f, "record type {record_type} has no (provable) field {field}")
            }
            CoreError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            CoreError::DisjointnessFailed { left, right } => {
                write!(f, "cannot prove disjointness {left} ~ {right}")
            }
            CoreError::DisjointnessRefuted { left, right, name } => write!(
                f,
                "rows {left} and {right} share the field name #{name}; they are not disjoint"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;

    #[test]
    fn display_is_informative() {
        let e = CoreError::TypeMismatch {
            expected: Con::int(),
            got: Con::string(),
        };
        let s = e.to_string();
        assert!(s.contains("int"));
        assert!(s.contains("string"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::UnboundVar(Sym::fresh("x")));
        assert!(e.to_string().contains("unbound"));
    }
}
