//! The typing judgment `G |- e : t` (paper Figure 4).
//!
//! This is a *checker* for elaborated core terms: elaboration (in
//! `ur-infer`) produces fully explicit terms, and this judgment
//! re-validates them — a strong internal consistency check used throughout
//! the test suite. The congruence rule (`e : t` and `t = t'` imply
//! `e : t'`) is realized by calling [`crate::defeq::defeq`] at every
//! comparison point.

use crate::con::{Con, RCon};
use crate::defeq::defeq;
use crate::disjoint::{prove, ProveResult};
use crate::env::Env;
use crate::error::CoreError;
use crate::expr::{Expr, Lit, RExpr};
use crate::hnf::hnf;
use crate::kind::Kind;
use crate::kinding::kind_of;
use crate::row::{normalize_row, FieldKey};
use crate::subst::subst;
use crate::Cx;

/// Computes the type of `e` in `env`.
///
/// # Errors
///
/// Returns a [`CoreError`] if `e` is ill-typed.
pub fn type_of(env: &Env, cx: &mut Cx, e: &RExpr) -> Result<RCon, CoreError> {
    match &**e {
        Expr::Var(x) => env
            .lookup_val(x)
            .cloned()
            .ok_or(CoreError::UnboundVar(*x)),
        Expr::Lit(l) => Ok(match l {
            Lit::Int(_) => Con::int(),
            Lit::Float(_) => Con::float(),
            Lit::Str(_) => Con::string(),
            Lit::Bool(_) => Con::bool_(),
            Lit::Unit => Con::unit(),
        }),
        Expr::App(e1, e2) => {
            let t1 = type_of(env, cx, e1)?;
            let t1 = hnf(env, cx, &t1);
            match &*t1 {
                Con::Arrow(dom, ran) => {
                    let t2 = type_of(env, cx, e2)?;
                    if !defeq(env, cx, &t2, dom) {
                        return Err(CoreError::TypeMismatch {
                            expected: (*dom),
                            got: t2,
                        });
                    }
                    Ok(*ran)
                }
                _ => Err(CoreError::NotFunction(t1)),
            }
        }
        Expr::Lam(x, t, body) => {
            expect_type_kind(env, cx, t)?;
            let mut env2 = env.clone();
            env2.bind_val(*x, *t);
            let tb = type_of(&env2, cx, body)?;
            Ok(Con::arrow(*t, tb))
        }
        Expr::CApp(e, c) => {
            let t = type_of(env, cx, e)?;
            let t = hnf(env, cx, &t);
            // A folder being applied: unfold its definition on demand.
            let t = match crate::folder::as_folder_app(&t) {
                Some((k, r)) => crate::folder::unfold_folder(&k, &r),
                None => t,
            };
            match &*t {
                Con::Poly(a, k, body) => {
                    let kc = kind_of(env, cx, c)?;
                    if !crate::defeq::kinds_eq(&crate::defeq::MutCxRef(&cx.metas), &kc, k) {
                        return Err(CoreError::KindMismatch {
                            expected: k.clone(),
                            got: kc,
                            context: format!("constructor argument {c}"),
                        });
                    }
                    Ok(subst(body, a, c))
                }
                _ => Err(CoreError::NotPolymorphic(t)),
            }
        }
        Expr::CLam(a, k, body) => {
            let mut env2 = env.clone();
            env2.bind_con(*a, k.clone());
            let tb = type_of(&env2, cx, body)?;
            Ok(Con::poly(*a, k.clone(), tb))
        }
        Expr::RecNil => Ok(Con::record(Con::row_nil(Kind::Type))),
        Expr::RecOne(n, e) => {
            let kn = kind_of(env, cx, n)?;
            if !crate::defeq::kinds_eq(&crate::defeq::MutCxRef(&cx.metas), &kn, &Kind::Name) {
                return Err(CoreError::KindMismatch {
                    expected: Kind::Name,
                    got: kn,
                    context: format!("record field name {n}"),
                });
            }
            let t = type_of(env, cx, e)?;
            Ok(Con::record(Con::row_one(*n, t)))
        }
        Expr::RecCat(e1, e2) => {
            let t1 = type_of(env, cx, e1)?;
            let r1 = expect_record(env, cx, &t1)?;
            let t2 = type_of(env, cx, e2)?;
            let r2 = expect_record(env, cx, &t2)?;
            match prove(env, cx, &r1, &r2) {
                ProveResult::Proved => Ok(Con::record(Con::row_cat(r1, r2))),
                _ => Err(CoreError::DisjointnessFailed {
                    left: r1,
                    right: r2,
                }),
            }
        }
        Expr::Proj(e, c) => {
            let t = type_of(env, cx, e)?;
            let r = expect_record(env, cx, &t)?;
            lookup_field(env, cx, &r, c)
        }
        Expr::Cut(e, c) => {
            let t = type_of(env, cx, e)?;
            let r = expect_record(env, cx, &t)?;
            let rest = remove_field(env, cx, &r, c)?;
            Ok(Con::record(rest))
        }
        Expr::DLam(c1, c2, body) => {
            let mut env2 = env.clone();
            env2.assume_disjoint(*c1, *c2);
            let tb = type_of(&env2, cx, body)?;
            Ok(Con::guarded(*c1, *c2, tb))
        }
        Expr::DApp(e) => {
            let t = type_of(env, cx, e)?;
            let t = hnf(env, cx, &t);
            match &*t {
                Con::Guarded(c1, c2, body) => match prove(env, cx, c1, c2) {
                    ProveResult::Proved => Ok(*body),
                    _ => Err(CoreError::DisjointnessFailed {
                        left: (*c1),
                        right: (*c2),
                    }),
                },
                _ => Err(CoreError::NotGuarded(t)),
            }
        }
        Expr::Let(x, t, bound, body) => {
            let tb = type_of(env, cx, bound)?;
            if !defeq(env, cx, &tb, t) {
                return Err(CoreError::TypeMismatch {
                    expected: (*t),
                    got: tb,
                });
            }
            let mut env2 = env.clone();
            env2.bind_val(*x, *t);
            type_of(&env2, cx, body)
        }
        Expr::If(c, th, el) => {
            let tc = type_of(env, cx, c)?;
            if !defeq(env, cx, &tc, &Con::bool_()) {
                return Err(CoreError::TypeMismatch {
                    expected: Con::bool_(),
                    got: tc,
                });
            }
            let tt = type_of(env, cx, th)?;
            let te = type_of(env, cx, el)?;
            if !defeq(env, cx, &tt, &te) {
                return Err(CoreError::TypeMismatch {
                    expected: tt,
                    got: te,
                });
            }
            Ok(tt)
        }
    }
}

fn expect_type_kind(env: &Env, cx: &mut Cx, t: &RCon) -> Result<(), CoreError> {
    let k = kind_of(env, cx, t)?;
    if crate::defeq::kinds_eq(&crate::defeq::MutCxRef(&cx.metas), &k, &Kind::Type) {
        Ok(())
    } else {
        Err(CoreError::KindMismatch {
            expected: Kind::Type,
            got: k,
            context: format!("type annotation {t}"),
        })
    }
}

/// Requires `t` to head-normalize to a record type `$r` and returns `r`.
pub fn expect_record(env: &Env, cx: &mut Cx, t: &RCon) -> Result<RCon, CoreError> {
    let t = hnf(env, cx, t);
    match &*t {
        Con::Record(r) => Ok(*r),
        _ => Err(CoreError::NotRecord(t)),
    }
}

/// Finds the type of field `c` in row `r` (the rule
/// `G |- e : $([c = t] ++ c')  ==>  G |- e.c : t`).
pub fn lookup_field(env: &Env, cx: &mut Cx, r: &RCon, c: &RCon) -> Result<RCon, CoreError> {
    let nf = normalize_row(env, cx, r);
    let c_hnf = hnf(env, cx, c);
    for (key, v) in &nf.fields {
        let matches = match (&*c_hnf, key) {
            (Con::Name(n), FieldKey::Lit(m)) => crate::intern::names_eq(n, m),
            (_, FieldKey::Neutral(k)) => {
                let k = *k;
                defeq(env, cx, &c_hnf, &k)
            }
            _ => false,
        };
        if matches {
            return Ok(*v);
        }
    }
    Err(CoreError::FieldMissing {
        record_type: Con::record(*r),
        field: (*c),
    })
}

/// Computes the row remaining after removing field `c` from `r` (for
/// `e -- c`).
pub fn remove_field(env: &Env, cx: &mut Cx, r: &RCon, c: &RCon) -> Result<RCon, CoreError> {
    let nf = normalize_row(env, cx, r);
    let c_hnf = hnf(env, cx, c);
    let mut out = nf.clone();
    let mut found = false;
    out.fields.clear();
    for (key, v) in &nf.fields {
        let matches = !found
            && match (&*c_hnf, key) {
                (Con::Name(n), FieldKey::Lit(m)) => crate::intern::names_eq(n, m),
                (_, FieldKey::Neutral(k)) => {
                    let k = *k;
                    defeq(env, cx, &c_hnf, &k)
                }
                _ => false,
            };
        if matches {
            found = true;
        } else {
            out.fields.push((key.clone(), (*v)));
        }
    }
    if !found {
        return Err(CoreError::FieldMissing {
            record_type: Con::record(*r),
            field: (*c),
        });
    }
    Ok(out.to_con())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    fn int_lit(n: i64) -> RExpr {
        Expr::lit(Lit::Int(n))
    }

    #[test]
    fn literals() {
        let (env, mut cx) = setup();
        let t_int = type_of(&env, &mut cx, &int_lit(3)).unwrap();
        assert!(defeq(&env, &mut cx, &t_int, &Con::int()));
        let t_bool = type_of(&env, &mut cx, &Expr::lit(Lit::Bool(true))).unwrap();
        assert!(defeq(&env, &mut cx, &t_bool, &Con::bool_()));
    }

    #[test]
    fn lambda_and_application() {
        let (env, mut cx) = setup();
        let x = Sym::fresh("x");
        let f = Expr::lam(x, Con::int(), Expr::var(&x));
        let t = type_of(&env, &mut cx, &f).unwrap();
        assert!(defeq(&env, &mut cx, &t, &Con::arrow(Con::int(), Con::int())));
        let app = Expr::app(f, int_lit(1));
        let t2 = type_of(&env, &mut cx, &app).unwrap();
        assert!(defeq(&env, &mut cx, &t2, &Con::int()));
    }

    #[test]
    fn application_type_mismatch() {
        let (env, mut cx) = setup();
        let x = Sym::fresh("x");
        let f = Expr::lam(x, Con::int(), Expr::var(&x));
        let app = Expr::app(f, Expr::lit(Lit::Str("no".into())));
        assert!(matches!(
            type_of(&env, &mut cx, &app),
            Err(CoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn record_literal_and_projection() {
        let (env, mut cx) = setup();
        // {A = 1, B = 2.3}.A : int
        let rec = Expr::record(vec![
            (Con::name("A"), int_lit(1)),
            (Con::name("B"), Expr::lit(Lit::Float(2.3))),
        ]);
        let t = type_of(&env, &mut cx, &rec).unwrap();
        let expected = Con::record(Con::row_of(
            Kind::Type,
            vec![
                (Con::name("A"), Con::int()),
                (Con::name("B"), Con::float()),
            ],
        ));
        assert!(defeq(&env, &mut cx, &t, &expected));
        let proj = Expr::proj(rec, Con::name("A"));
        let tp = type_of(&env, &mut cx, &proj).unwrap();
        assert!(defeq(&env, &mut cx, &tp, &Con::int()));
    }

    #[test]
    fn record_concat_requires_disjointness() {
        let (env, mut cx) = setup();
        let r1 = Expr::record(vec![(Con::name("A"), int_lit(1))]);
        let r2 = Expr::record(vec![(Con::name("A"), int_lit(2))]);
        let cat = Expr::rec_cat(r1, r2);
        assert!(matches!(
            type_of(&env, &mut cx, &cat),
            Err(CoreError::DisjointnessFailed { .. })
        ));
    }

    #[test]
    fn record_cut() {
        let (env, mut cx) = setup();
        let rec = Expr::record(vec![
            (Con::name("A"), int_lit(1)),
            (Con::name("B"), Expr::lit(Lit::Float(2.3))),
        ]);
        let cut = Expr::cut(rec, Con::name("A"));
        let t = type_of(&env, &mut cx, &cut).unwrap();
        let expected = Con::record(Con::row_one(Con::name("B"), Con::float()));
        assert!(defeq(&env, &mut cx, &t, &expected));
    }

    #[test]
    fn cut_missing_field_fails() {
        let (env, mut cx) = setup();
        let rec = Expr::record(vec![(Con::name("A"), int_lit(1))]);
        let cut = Expr::cut(rec, Con::name("Z"));
        assert!(matches!(
            type_of(&env, &mut cx, &cut),
            Err(CoreError::FieldMissing { .. })
        ));
    }

    #[test]
    fn paper_proj_function_typechecks() {
        // fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r]
        //          (x : $([nm = t] ++ r)) = x.nm
        let (env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        let t = Sym::fresh("t");
        let r = Sym::fresh("r");
        let x = Sym::fresh("x");
        let single = Con::row_one(Con::var(&nm), Con::var(&t));
        let body = Expr::clam(
            nm,
            Kind::Name,
            Expr::clam(
                t,
                Kind::Type,
                Expr::clam(
                    r,
                    Kind::row(Kind::Type),
                    Expr::dlam(
                        single,
                        Con::var(&r),
                        Expr::lam(
                            x,
                            Con::record(Con::row_cat(single, Con::var(&r))),
                            Expr::proj(Expr::var(&x), Con::var(&nm)),
                        ),
                    ),
                ),
            ),
        );
        let ty = type_of(&env, &mut cx, &body).unwrap();
        // Expected: nm :: Name -> t :: Type -> r :: {Type} ->
        //           [[nm = t] ~ r] => $([nm = t] ++ r) -> t
        let expected = Con::poly(
            nm,
            Kind::Name,
            Con::poly(
                t,
                Kind::Type,
                Con::poly(
                    r,
                    Kind::row(Kind::Type),
                    Con::guarded(
                        single,
                        Con::var(&r),
                        Con::arrow(
                            Con::record(Con::row_cat(single, Con::var(&r))),
                            Con::var(&t),
                        ),
                    ),
                ),
            ),
        );
        assert!(defeq(&env, &mut cx, &ty, &expected));
    }

    #[test]
    fn paper_proj_applied_reduces_to_int() {
        // proj [#A] [int] [[B = float]] ! {A = 1, B = 2.3} : int
        let (env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        let t = Sym::fresh("t");
        let r = Sym::fresh("r");
        let x = Sym::fresh("x");
        let single = Con::row_one(Con::var(&nm), Con::var(&t));
        let proj = Expr::clam(
            nm,
            Kind::Name,
            Expr::clam(
                t,
                Kind::Type,
                Expr::clam(
                    r,
                    Kind::row(Kind::Type),
                    Expr::dlam(
                        single,
                        Con::var(&r),
                        Expr::lam(
                            x,
                            Con::record(Con::row_cat(single, Con::var(&r))),
                            Expr::proj(Expr::var(&x), Con::var(&nm)),
                        ),
                    ),
                ),
            ),
        );
        let call = Expr::app(
            Expr::dapp(Expr::capp(
                Expr::capp(
                    Expr::capp(proj, Con::name("A")),
                    Con::int(),
                ),
                Con::row_one(Con::name("B"), Con::float()),
            )),
            Expr::record(vec![
                (Con::name("A"), int_lit(1)),
                (Con::name("B"), Expr::lit(Lit::Float(2.3))),
            ]),
        );
        let ty = type_of(&env, &mut cx, &call).unwrap();
        assert!(defeq(&env, &mut cx, &ty, &Con::int()));
    }

    #[test]
    fn dapp_on_unprovable_guard_fails() {
        let (env, mut cx) = setup();
        let body = Expr::dlam(
            Con::row_one(Con::name("A"), Con::int()),
            Con::row_one(Con::name("A"), Con::float()),
            Expr::lit(Lit::Unit),
        );
        let forced = Expr::dapp(body);
        assert!(matches!(
            type_of(&env, &mut cx, &forced),
            Err(CoreError::DisjointnessFailed { .. })
        ));
    }

    #[test]
    fn let_checks_annotation() {
        let (env, mut cx) = setup();
        let x = Sym::fresh("x");
        let good = Expr::let_(x, Con::int(), int_lit(1), Expr::var(&x));
        assert!(type_of(&env, &mut cx, &good).is_ok());
        let bad = Expr::let_(
            x,
            Con::string(),
            int_lit(1),
            Expr::var(&x),
        );
        assert!(type_of(&env, &mut cx, &bad).is_err());
    }

    #[test]
    fn if_branches_must_agree() {
        let (env, mut cx) = setup();
        let good = Expr::if_(Expr::lit(Lit::Bool(true)), int_lit(1), int_lit(2));
        assert!(type_of(&env, &mut cx, &good).is_ok());
        let bad = Expr::if_(
            Expr::lit(Lit::Bool(true)),
            int_lit(1),
            Expr::lit(Lit::Str("x".into())),
        );
        assert!(type_of(&env, &mut cx, &bad).is_err());
        let bad_cond = Expr::if_(int_lit(0), int_lit(1), int_lit(2));
        assert!(type_of(&env, &mut cx, &bad_cond).is_err());
    }

    #[test]
    fn projection_by_neutral_name_under_binder() {
        // fn [nm :: Name] => fn (x : $[nm = int]) => x.nm
        let (env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        let x = Sym::fresh("x");
        let e = Expr::clam(
            nm,
            Kind::Name,
            Expr::lam(
                x,
                Con::record(Con::row_one(Con::var(&nm), Con::int())),
                Expr::proj(Expr::var(&x), Con::var(&nm)),
            ),
        );
        let t = type_of(&env, &mut cx, &e).unwrap();
        match &*t {
            Con::Poly(_, _, inner) => match &**inner {
                Con::Arrow(_, ran) => {
                    assert!(matches!(&**ran, Con::Prim(crate::con::PrimType::Int)))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
