//! Automatic proof of row disjointness (paper §4.1).
//!
//! Following the paper, each side of an assumption or goal `r1 ~ r2` is
//! decomposed by a function `D` into a finite set of atomic *pieces*:
//!
//! ```text
//! D([c1 = c2])  = { [c1] }          (a singleton name)
//! D(c1 ++ c2)   = D(c1) ∪ D(c2)
//! D(x)          = { x }             (a neutral row)
//! D(map f c)    = D(c)
//! D([])         = ∅
//! ```
//!
//! Known constraints contribute the symmetric Cartesian product of their
//! decompositions to a fact database; a goal is proved when every cross
//! pair of its decompositions is either two distinct literal names or is
//! found in the database. A pair of *equal* literal names refutes the goal
//! outright, and an unsolved metavariable in goal position means "not
//! provable yet" — the inference engine re-queues such goals (§4.1: "we
//! hope that when we revisit this constraint after solving other
//! constraints first, some unification variables will have been
//! determined").

use crate::arena::IStr;
use crate::con::RCon;
use crate::defeq::defeq;
use crate::env::Env;
use crate::row::{normalize_row, FieldKey};
use crate::Cx;

/// An atomic piece of a decomposed row.
#[derive(Clone, Debug)]
pub enum Piece {
    /// A literal field name.
    Name(IStr),
    /// A neutral constructor: either a name-kinded neutral (from a field
    /// with a variable name) or a row-kinded neutral (an abstract row).
    Neutral(RCon),
}

/// Outcome of a disjointness proof attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProveResult {
    /// The goal is proved.
    Proved,
    /// The goal cannot be decided yet (unsolved metavariables or missing
    /// facts); it may become provable after more unification.
    NotYet,
    /// The goal is definitely false: both sides contain the same literal
    /// name.
    Refuted,
}

/// Decomposes a row into atomic pieces. Returns `None` if the row contains
/// an unsolved metavariable (so decomposition is incomplete), along with
/// the pieces found so far.
pub fn decompose(env: &Env, cx: &mut Cx, c: &RCon) -> (Vec<Piece>, bool) {
    let nf = normalize_row(env, cx, c);
    let mut pieces = Vec::new();
    let mut complete = true;
    for (key, _) in &nf.fields {
        match key {
            FieldKey::Lit(n) => pieces.push(Piece::Name(*n)),
            FieldKey::Neutral(c) => pieces.push(Piece::Neutral(*c)),
        }
    }
    for atom in &nf.atoms {
        // D(map f c) = D(c): the atom's base, ignoring any map.
        if atom.base_meta().is_some() {
            complete = false;
        }
        pieces.push(Piece::Neutral(atom.base));
    }
    (pieces, complete)
}

fn pieces_eq(env: &Env, cx: &mut Cx, a: &Piece, b: &Piece) -> bool {
    match (a, b) {
        (Piece::Name(x), Piece::Name(y)) => crate::intern::names_eq(x, y),
        (Piece::Neutral(x), Piece::Neutral(y)) => defeq(env, cx, x, y),
        _ => false,
    }
}

/// The fact database: all atomic disjointness pairs implied by the
/// context's assumptions.
pub struct FactDb {
    facts: Vec<(Piece, Piece)>,
}

impl FactDb {
    /// Builds the database from the assumptions recorded in `env`,
    /// decomposing each side and taking the symmetric Cartesian product.
    pub fn from_env(env: &Env, cx: &mut Cx) -> FactDb {
        let mut facts = Vec::new();
        for (c1, c2) in env.facts().to_vec() {
            let (p1, _) = decompose(env, cx, &c1);
            let (p2, _) = decompose(env, cx, &c2);
            for a in &p1 {
                for b in &p2 {
                    // Fuel-bounded: a truncated database only loses facts,
                    // so goals degrade to `NotYet`, never to `Proved`.
                    if !cx.fuel.prover_pair() {
                        return FactDb { facts };
                    }
                    facts.push((a.clone(), b.clone()));
                    facts.push((b.clone(), a.clone()));
                }
            }
        }
        FactDb { facts }
    }

    /// Checks whether `a ~ b` is a recorded atomic fact.
    pub fn contains(&self, env: &Env, cx: &mut Cx, a: &Piece, b: &Piece) -> bool {
        self.facts
            .iter()
            .any(|(fa, fb)| pieces_eq(env, cx, fa, a) && pieces_eq(env, cx, fb, b))
    }

    /// Number of atomic facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are recorded.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// Attempts to prove the disjointness goal `c1 ~ c2` under `env`'s
/// assumptions. Increments the Figure-5 "Disj." counter.
///
/// Memoized (see [`crate::memo`]) on the unordered pair of canonical
/// intern ids — the prover is symmetric in its two sides. `Proved` and
/// `Refuted` verdicts are stable under further meta solving; `NotYet` is
/// exactly the verdict revisited after more unification, so it is
/// generation-guarded. The call counter is charged before the lookup so
/// Figure-5 "Disj." still counts prover *invocations*.
pub fn prove(env: &Env, cx: &mut Cx, c1: &RCon, c2: &RCon) -> ProveResult {
    cx.stats.disjoint_prover_calls += 1;
    let key = if cx.memo.enabled {
        cx.memo.check_laws(cx.laws);
        let (i1, i2) = (crate::intern::id_of(c1), crate::intern::id_of(c2));
        let (env_gen, meta_gen) = (env.generation(), cx.metas.generation());
        if let Some(out) = cx.memo.disjoint_get(i1, i2, env_gen, meta_gen) {
            cx.stats.disjoint_memo_hits += 1;
            let _ = cx.fuel.prover_pair();
            return out;
        }
        cx.stats.disjoint_memo_misses += 1;
        Some((i1, i2, env_gen))
    } else {
        None
    };
    let out = prove_uncached(env, cx, c1, c2);
    if let Some((i1, i2, env_gen)) = key {
        if cx.fuel.exhausted().is_none() {
            cx.memo.disjoint_put(i1, i2, env_gen, cx.metas.generation(), out);
        }
    }
    out
}

fn prove_uncached(env: &Env, cx: &mut Cx, c1: &RCon, c2: &RCon) -> ProveResult {
    let (p1, complete1) = decompose(env, cx, c1);
    let (p2, complete2) = decompose(env, cx, c2);
    let db = FactDb::from_env(env, cx);

    let mut pending = false;
    for a in &p1 {
        for b in &p2 {
            // Fuel-bounded: wide goals (≥5k fields per side mean ≥25M
            // pairs) bail out with `NotYet`; the elaborator reports the
            // exhaustion as a resource diagnostic.
            if !cx.fuel.prover_pair() {
                return ProveResult::NotYet;
            }
            match (a, b) {
                (Piece::Name(x), Piece::Name(y)) => {
                    if crate::intern::names_eq(x, y) {
                        return ProveResult::Refuted;
                    }
                }
                _ => {
                    if !db.contains(env, cx, a, b) {
                        pending = true;
                    }
                }
            }
        }
    }
    // Unproved neutral pairs may become provable after more unification,
    // and an incomplete decomposition (unsolved metavariable) may still
    // hide shared names; both mean "not yet".
    if pending || !complete1 || !complete2 {
        return ProveResult::NotYet;
    }
    ProveResult::Proved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;
    use crate::kind::Kind;
    use crate::sym::Sym;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    fn lit_row(names: &[&str]) -> RCon {
        Con::row_of(
            Kind::Type,
            names
                .iter()
                .map(|n| (Con::name(*n), Con::int()))
                .collect(),
        )
    }

    #[test]
    fn distinct_literal_names_proved() {
        let (env, mut cx) = setup();
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A", "B"]), &lit_row(&["C"])),
            ProveResult::Proved
        );
        assert_eq!(cx.stats.disjoint_prover_calls, 1);
    }

    #[test]
    fn shared_literal_name_refuted() {
        let (env, mut cx) = setup();
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A", "B"]), &lit_row(&["B", "C"])),
            ProveResult::Refuted
        );
    }

    #[test]
    fn abstract_rows_need_facts() {
        let (mut env, mut cx) = setup();
        let r = Sym::fresh("r");
        env.bind_con(r, Kind::row(Kind::Type));
        // Goal [A] ~ r with no assumption: not provable yet.
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A"]), &Con::var(&r)),
            ProveResult::NotYet
        );
        // With the assumption [A] ~ r in context, it is proved.
        env.assume_disjoint(lit_row(&["A"]), Con::var(&r));
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A"]), &Con::var(&r)),
            ProveResult::Proved
        );
    }

    #[test]
    fn facts_decompose_concatenations() {
        // Assume ([A] ++ [B]) ~ (r1 ++ r2); then [B] ~ r1 follows.
        let (mut env, mut cx) = setup();
        let r1 = Sym::fresh("r1");
        let r2 = Sym::fresh("r2");
        env.bind_con(r1, Kind::row(Kind::Type));
        env.bind_con(r2, Kind::row(Kind::Type));
        env.assume_disjoint(
            lit_row(&["A", "B"]),
            Con::row_cat(Con::var(&r1), Con::var(&r2)),
        );
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["B"]), &Con::var(&r1)),
            ProveResult::Proved
        );
        assert_eq!(
            prove(&env, &mut cx, &Con::var(&r2), &lit_row(&["A"])),
            ProveResult::Proved
        );
    }

    #[test]
    fn map_is_transparent_to_disjointness() {
        // Assume [A] ~ r; then [A] ~ map f r follows, since D(map f r) = D(r).
        let (mut env, mut cx) = setup();
        let r = Sym::fresh("r");
        let f = Sym::fresh("f");
        env.bind_con(r, Kind::row(Kind::Type));
        env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
        env.assume_disjoint(lit_row(&["A"]), Con::var(&r));
        let mapped = Con::map_app(Kind::Type, Kind::Type, Con::var(&f), Con::var(&r));
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A"]), &mapped),
            ProveResult::Proved
        );
    }

    #[test]
    fn selector_style_composition() {
        // The §2.3 accumulator: from facts [nm] ~ r and rest ~ r, prove
        // ([nm = t] ++ rest) ~ r.
        let (mut env, mut cx) = setup();
        let nm = Sym::fresh("nm");
        let r = Sym::fresh("r");
        let rest = Sym::fresh("rest");
        env.bind_con(nm, Kind::Name);
        env.bind_con(r, Kind::row(Kind::Type));
        env.bind_con(rest, Kind::row(Kind::Type));
        let single = Con::row_one(Con::var(&nm), Con::int());
        env.assume_disjoint(single, Con::var(&r));
        env.assume_disjoint(Con::var(&rest), Con::var(&r));
        let goal_left = Con::row_cat(single, Con::var(&rest));
        assert_eq!(
            prove(&env, &mut cx, &goal_left, &Con::var(&r)),
            ProveResult::Proved
        );
    }

    #[test]
    fn unsolved_meta_defers() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh(Kind::row(Kind::Type), "r");
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A"]), &Con::meta(m)),
            ProveResult::NotYet
        );
        // Once solved to something disjoint, the goal is proved.
        cx.metas.solve(m, lit_row(&["B"]));
        assert_eq!(
            prove(&env, &mut cx, &lit_row(&["A"]), &Con::meta(m)),
            ProveResult::Proved
        );
    }

    #[test]
    fn empty_rows_trivially_disjoint() {
        let (env, mut cx) = setup();
        assert_eq!(
            prove(
                &env,
                &mut cx,
                &Con::row_nil(Kind::Type),
                &lit_row(&["A", "B"])
            ),
            ProveResult::Proved
        );
    }

    #[test]
    fn prover_calls_are_counted() {
        let (env, mut cx) = setup();
        for _ in 0..5 {
            let _ = prove(&env, &mut cx, &lit_row(&["A"]), &lit_row(&["B"]));
        }
        assert_eq!(cx.stats.disjoint_prover_calls, 5);
    }
}
