//! The shared, sharded intern arena for core terms.
//!
//! Every canonical [`Con`], [`Expr`], and name string in the process lives
//! in one global arena. Handles ([`ConId`], [`ExprId`], [`IStr`]) are
//! `Copy + Send + Sync` `u32`s that deref to `'static` references, so:
//!
//! * `==` on handles *is* structural equality (hash-consing gives each
//!   shallow key exactly one id), replacing the `Rc::ptr_eq` fast paths;
//! * terms cross threads freely — the parallel batch scheduler in
//!   `ur-infer` ships elaborated declarations between workers directly,
//!   with no per-worker re-interning and no portable mirror layer;
//! * memo tables can be shared process-wide, because a `ConId` means the
//!   same term on every thread.
//!
//! ## Sharding and lock discipline
//!
//! The arena is split into [`NUM_SHARDS`] shards selected by the top bits
//! of the shallow-key hash. Each shard holds a `RwLock`ed hash-cons map
//! plus a set of append-only storage segments whose slots never move:
//! segment capacities grow geometrically and segments are never freed, so
//! a `&Slot` taken from a published index is valid for the life of the
//! process (or until an explicit quiescent [`try_reset`]). Lookups take a
//! read lock; only a miss takes the write lock. `try_*` is attempted
//! first and failures bump a contention counter, which `:stats` surfaces.
//!
//! An id is `shard << SHARD_SHIFT | index`; deref loads the shard's
//! `published` watermark with `Acquire` and indexes the segment directly,
//! so the hot read path after a hit is lock-free. Publication order is:
//! write the slot, `Release`-store the watermark, then insert into the
//! map and return the id — any thread that can *name* an id observed it
//! via a synchronizing edge (the map's lock, a channel send, a mutex),
//! which carries the slot contents with it.
//!
//! ## Growth bound
//!
//! Hash-consing bounds growth by the number of *distinct* shallow keys,
//! and [`try_reset`] provides the generation story: a [`Session`]-scoped
//! [`ArenaLease`] counts live users, and when the count is zero the arena
//! may be drained in place (slots dropped, maps cleared, generation
//! bumped; the string table survives because `IStr`s may outlive terms in
//! diagnostics). See `tests/arena_growth.rs` for the 100-cycle bound.

use crate::con::Con;
use crate::expr::{Expr, Lit};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Number of shards; must be a power of two.
pub const NUM_SHARDS: usize = 16;
/// Bits of an id reserved for the within-shard index.
const SHARD_SHIFT: u32 = 28;
const INDEX_MASK: u32 = (1 << SHARD_SHIFT) - 1;
/// Slots in segment 0; segment `s` holds `SEG_BASE << s` slots.
const SEG_BASE: usize = 1 << 10;
/// Enough segments to cover the 28-bit index space.
const NUM_SEGS: usize = 20;

/// Identity of a canonical (interned) constructor node. `==` on `ConId` is
/// O(1) structural equality of the underlying trees; the handle derefs to
/// the canonical `Con` (with `'static` lifetime via [`ConId::get`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConId(pub u32);

/// Identity of a canonical (interned) expression node; same contract as
/// [`ConId`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// An interned string handle (record labels, symbol names, string
/// literals). `==` is O(1); derefs to `&'static str`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IStr(u32);

/// Precomputed per-node facts, OR-ed bottom-up over children at intern
/// time. All three are *syntactic* and conservative: `HAS_VAR` counts bound
/// occurrences too, and `HAS_META` means a `Con::Meta` node is physically
/// present (whether or not it is solved in some `MetaCx`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Flags(pub(crate) u8);

impl Flags {
    pub(crate) const HAS_VAR: u8 = 1;
    pub(crate) const HAS_META: u8 = 1 << 1;
    pub(crate) const HAS_KMETA: u8 = 1 << 2;

    /// Contains a `Con::Var` node (free *or* bound).
    pub fn has_var(self) -> bool {
        self.0 & Flags::HAS_VAR != 0
    }

    /// Contains a `Con::Meta` node.
    pub fn has_meta(self) -> bool {
        self.0 & Flags::HAS_META != 0
    }

    /// Contains a `Kind::Meta` inside an embedded kind annotation.
    pub fn has_kmeta(self) -> bool {
        self.0 & Flags::HAS_KMETA != 0
    }

    /// No variables and no (constructor or kind) metavariables anywhere.
    pub fn is_closed(self) -> bool {
        self.0 == 0
    }
}

// ---------------------------------------------------------------------------
// Generic sharded store
// ---------------------------------------------------------------------------

struct Slot<T> {
    val: T,
    hash: u64,
    flags: u8,
}

struct Shard<T: 'static> {
    /// Hash-cons map from shallow key to within-shard index. The key type
    /// is a wrapper so `Expr` can hash float literals by bit pattern.
    map: RwLock<HashMap<KeyWrap<T>, u32>>,
    /// Append-only storage segments; slot addresses are stable for the
    /// life of the process (segments are allocated once and reused across
    /// resets).
    segs: [AtomicPtr<Slot<T>>; NUM_SEGS],
    /// Number of fully initialized slots, `Release`-published after each
    /// slot write so lock-free readers see initialized memory.
    published: AtomicU32,
}

/// Map key wrapper: hashes/compares via [`ArenaVal::key_hash`] /
/// [`ArenaVal::key_eq`] so `Expr` float literals use bit equality (a NaN
/// literal still hash-conses to a single node).
struct KeyWrap<T> {
    hash: u64,
    val: T,
}

impl<T: ArenaVal> PartialEq for KeyWrap<T> {
    fn eq(&self, other: &KeyWrap<T>) -> bool {
        self.hash == other.hash && self.val.key_eq(&other.val)
    }
}
impl<T: ArenaVal> Eq for KeyWrap<T> {}
impl<T: ArenaVal> Hash for KeyWrap<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Values storable in a sharded intern store. `key_hash`/`key_eq` define
/// the *shallow* structural key: children are already ids, so both are
/// O(arity) and never walk the tree.
pub(crate) trait ArenaVal: Clone + 'static {
    fn key_hash(&self) -> u64;
    fn key_eq(&self, other: &Self) -> bool;
}

impl ArenaVal for Con {
    fn key_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
    fn key_eq(&self, other: &Con) -> bool {
        self == other
    }
}

impl ArenaVal for Expr {
    fn key_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        hash_expr_shallow(self, &mut h);
        h.finish()
    }
    fn key_eq(&self, other: &Expr) -> bool {
        match (self, other) {
            // Bit equality on float literals so the key is Eq-lawful
            // (NaN == NaN here; -0.0 and 0.0 get distinct nodes).
            (Expr::Lit(Lit::Float(a)), Expr::Lit(Lit::Float(b))) => a.to_bits() == b.to_bits(),
            _ => self == other,
        }
    }
}

fn hash_expr_shallow<H: Hasher>(e: &Expr, h: &mut H) {
    std::mem::discriminant(e).hash(h);
    match e {
        Expr::Var(s) => s.hash(h),
        Expr::Lit(l) => {
            match l {
                Lit::Int(n) => {
                    0u8.hash(h);
                    n.hash(h);
                }
                Lit::Float(x) => {
                    1u8.hash(h);
                    x.to_bits().hash(h);
                }
                Lit::Str(s) => {
                    2u8.hash(h);
                    s.hash(h);
                }
                Lit::Bool(b) => {
                    3u8.hash(h);
                    b.hash(h);
                }
                Lit::Unit => 4u8.hash(h),
            };
        }
        Expr::App(a, b) | Expr::RecCat(a, b) => {
            a.hash(h);
            b.hash(h);
        }
        Expr::Lam(s, t, b) => {
            s.hash(h);
            t.hash(h);
            b.hash(h);
        }
        Expr::CApp(e1, c) => {
            e1.hash(h);
            c.hash(h);
        }
        Expr::CLam(s, k, b) => {
            s.hash(h);
            k.hash(h);
            b.hash(h);
        }
        Expr::RecNil | Expr::DApp(_) => {
            if let Expr::DApp(e1) = e {
                e1.hash(h);
            }
        }
        Expr::RecOne(c, e1) => {
            c.hash(h);
            e1.hash(h);
        }
        Expr::Proj(e1, c) | Expr::Cut(e1, c) => {
            e1.hash(h);
            c.hash(h);
        }
        Expr::DLam(c1, c2, b) => {
            c1.hash(h);
            c2.hash(h);
            b.hash(h);
        }
        Expr::Let(s, t, e1, e2) => {
            s.hash(h);
            t.hash(h);
            e1.hash(h);
            e2.hash(h);
        }
        Expr::If(c, t, f) => {
            c.hash(h);
            t.hash(h);
            f.hash(h);
        }
    }
}

/// Locate within-shard index `idx` as `(segment, offset)`.
#[inline]
fn locate(idx: u32) -> (usize, usize) {
    let chunk = (idx as usize / SEG_BASE) + 1;
    let seg = (usize::BITS - 1 - chunk.leading_zeros()) as usize;
    let off = idx as usize - SEG_BASE * ((1 << seg) - 1);
    (seg, off)
}

struct Store<T: ArenaVal> {
    shards: Vec<Shard<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contention: AtomicU64,
}

impl<T: ArenaVal> Store<T> {
    fn new() -> Store<T> {
        let shards = (0..NUM_SHARDS)
            .map(|_| Shard {
                map: RwLock::new(HashMap::new()),
                segs: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
                published: AtomicU32::new(0),
            })
            .collect();
        Store {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contention: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(hash: u64) -> usize {
        (hash >> 60) as usize & (NUM_SHARDS - 1)
    }

    /// Interns `val` (with caller-computed `flags`), returning its global
    /// id. Read-locks on the hit path; write-locks only on a miss.
    fn intern(&self, val: T, flags: u8) -> u32 {
        let hash = val.key_hash();
        let si = Store::<T>::shard_of(hash);
        let shard = &self.shards[si];
        let probe = KeyWrap { hash, val };
        {
            let map = match shard.map.try_read() {
                Ok(g) => g,
                Err(std::sync::TryLockError::WouldBlock) => {
                    self.contention.fetch_add(1, Ordering::Relaxed);
                    match shard.map.read() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    }
                }
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            };
            if let Some(&idx) = map.get(&probe) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return compose(si, idx);
            }
        }
        let mut map = match shard.map.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                match shard.map.write() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                }
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        // Re-check: another thread may have interned between our read
        // unlock and write lock.
        if let Some(&idx) = map.get(&probe) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return compose(si, idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // failpoint `intern_grow`: a simulated growth hiccup on the
        // hash-cons map — force an immediate shrink-and-rehash before the
        // insert. Semantically invisible (same entries, same ids), but it
        // exercises the capacity-change path deterministically so the
        // chaos harness can prove table growth never perturbs results.
        if crate::failpoint::fire(crate::failpoint::Site::InternGrow) {
            map.shrink_to_fit();
            let len = map.len();
            map.reserve(len + 64);
        }
        let idx = shard.published.load(Ordering::Relaxed);
        debug_assert!(idx <= INDEX_MASK, "arena shard overflow");
        let (seg, off) = locate(idx);
        let mut base = shard.segs[seg].load(Ordering::Acquire);
        if base.is_null() {
            // Allocate the segment (only writers reach here, and we hold
            // the shard's write lock, so there is no allocation race).
            let cap = SEG_BASE << seg;
            let mut v: Vec<Slot<T>> = Vec::with_capacity(cap);
            base = v.as_mut_ptr();
            std::mem::forget(v);
            shard.segs[seg].store(base, Ordering::Release);
        }
        let slot = Slot {
            val: probe.val.clone(),
            hash,
            flags,
        };
        // Safety: `off` is within the segment's reserved capacity; the
        // slot is uninitialized (indices are handed out exactly once per
        // generation, and reset drops all initialized slots first).
        unsafe {
            ptr::write(base.add(off), slot);
        }
        shard.published.store(idx + 1, Ordering::Release);
        map.insert(probe, idx);
        compose(si, idx)
    }

    /// Resolves a global id to its slot; `None` for forged/stale ids.
    #[inline]
    fn slot(&self, id: u32) -> Option<&'static Slot<T>> {
        let si = (id >> SHARD_SHIFT) as usize;
        let idx = id & INDEX_MASK;
        let shard = self.shards.get(si)?;
        if idx >= shard.published.load(Ordering::Acquire) {
            return None;
        }
        let (seg, off) = locate(idx);
        let base = shard.segs[seg].load(Ordering::Acquire);
        if base.is_null() {
            return None;
        }
        // Safety: `idx < published` implies the slot was fully written
        // before the Release store we just Acquire-loaded; slots are never
        // moved or freed (reset drops in place only when no ids are live,
        // and even then the memory remains allocated).
        unsafe { Some(&*base.add(off)) }
    }

    fn nodes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.published.load(Ordering::Relaxed) as u64)
            .sum()
    }

    fn per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.published.load(Ordering::Relaxed) as u64)
            .collect()
    }

    /// Approximate resident bytes: slot storage plus one key copy per map
    /// entry (the hash-cons map owns a shallow clone of each node).
    fn bytes(&self) -> u64 {
        let per_node = std::mem::size_of::<Slot<T>>() + std::mem::size_of::<KeyWrap<T>>() + 16;
        self.nodes() * per_node as u64
    }

    /// Drops all slots in place and clears the maps. Caller must hold the
    /// arena-wide quiescence guarantee (no live ids).
    fn drain(&self) {
        for shard in &self.shards {
            let mut map = match shard.map.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let len = shard.published.load(Ordering::Relaxed);
            // Unpublish first so a racing (buggy) reader sees "stale id"
            // rather than a dropped slot.
            shard.published.store(0, Ordering::Release);
            for idx in 0..len {
                let (seg, off) = locate(idx);
                let base = shard.segs[seg].load(Ordering::Acquire);
                if !base.is_null() {
                    // Safety: each idx < len was initialized exactly once
                    // and is dropped exactly once here.
                    unsafe {
                        ptr::drop_in_place(base.add(off));
                    }
                }
            }
            map.clear();
        }
    }
}

#[inline]
fn compose(shard: usize, idx: u32) -> u32 {
    ((shard as u32) << SHARD_SHIFT) | idx
}

// ---------------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------------

struct StrStore {
    shards: Vec<RwLock<HashMap<&'static str, u32>>>,
    /// Global slot table mapping `IStr` index -> leaked string.
    slots: RwLock<Vec<&'static str>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StrStore {
    fn new() -> StrStore {
        StrStore {
            shards: (0..NUM_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            slots: RwLock::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn intern(&self, s: &str) -> u32 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        let si = (h.finish() >> 60) as usize & (NUM_SHARDS - 1);
        {
            let map = match self.shards[si].read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if let Some(&id) = map.get(s) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return id;
            }
        }
        let mut map = match self.shards[si].write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some(&id) = map.get(s) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut slots = match self.slots.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let id = slots.len() as u32;
        slots.push(leaked);
        drop(slots);
        map.insert(leaked, id);
        id
    }

    fn get(&self, id: u32) -> &'static str {
        let slots = match self.slots.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slots.get(id as usize).copied().unwrap_or("")
    }

    fn count(&self) -> u64 {
        let slots = match self.slots.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slots.len() as u64
    }

    fn bytes(&self) -> u64 {
        let slots = match self.slots.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slots
            .iter()
            .map(|s| s.len() as u64 + 24)
            .sum::<u64>()
    }
}

// ---------------------------------------------------------------------------
// The arena singleton
// ---------------------------------------------------------------------------

struct Arena {
    cons: Store<Con>,
    exprs: Store<Expr>,
    strs: StrStore,
    generation: AtomicU64,
    leases: AtomicUsize,
    /// Hooks run (under quiescence) by [`try_reset`] so dependent global
    /// caches — e.g. the shared memo table — drain with the arena.
    reset_hooks: Mutex<Vec<fn()>>,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena {
        cons: Store::new(),
        exprs: Store::new(),
        strs: StrStore::new(),
        generation: AtomicU64::new(0),
        leases: AtomicUsize::new(0),
        reset_hooks: Mutex::new(Vec::new()),
    })
}

/// Interns a constructor whose children are already canonical ids,
/// computing flags bottom-up from the children. This is the single funnel
/// all `Con` smart constructors go through.
pub(crate) fn mk_con(con: Con) -> ConId {
    let flags = con_flags_shallow(&con);
    ConId(arena().cons.intern(con, flags))
}

fn kind_bit(k: &crate::kind::Kind) -> u8 {
    if k.is_ground() {
        0
    } else {
        Flags::HAS_KMETA
    }
}

fn con_flags_shallow(c: &Con) -> u8 {
    let child = |id: &ConId| -> u8 { id.flags().0 };
    match c {
        Con::Var(_) => Flags::HAS_VAR,
        Con::Meta(_) => Flags::HAS_META,
        Con::Prim(_) | Con::Name(_) => 0,
        Con::Arrow(a, b)
        | Con::App(a, b)
        | Con::RowOne(a, b)
        | Con::RowCat(a, b)
        | Con::Pair(a, b) => child(a) | child(b),
        Con::Poly(_, k, t) | Con::Lam(_, k, t) => child(t) | kind_bit(k),
        Con::Guarded(a, b, t) => child(a) | child(b) | child(t),
        Con::Record(r) | Con::Fst(r) | Con::Snd(r) => child(r),
        Con::RowNil(k) | Con::Folder(k) => kind_bit(k),
        Con::Map(k1, k2) => kind_bit(k1) | kind_bit(k2),
    }
}

/// Interns an expression whose children are already canonical ids.
pub(crate) fn mk_expr(e: Expr) -> ExprId {
    ExprId(arena().exprs.intern(e, 0))
}

/// Interns a string, returning its handle.
pub fn istr(s: &str) -> IStr {
    IStr(arena().strs.intern(s))
}

static UNIT_CON: OnceLock<ConId> = OnceLock::new();
static UNIT_EXPR: OnceLock<ExprId> = OnceLock::new();

impl ConId {
    /// The canonical node, with the arena's `'static` lifetime. Forged or
    /// stale (post-reset) ids resolve to the canonical `unit` type rather
    /// than panicking; debug builds assert instead.
    #[inline]
    pub fn get(self) -> &'static Con {
        if let Some(slot) = arena().cons.slot(self.0) {
            &slot.val
        } else {
            debug_assert!(false, "dangling ConId {:#x}", self.0);
            let fallback = *UNIT_CON
                .get_or_init(|| mk_con(Con::Prim(crate::con::PrimType::Unit)));
            match arena().cons.slot(fallback.0) {
                Some(slot) => &slot.val,
                // Unreachable: the fallback was interned one line above.
                None => loop {
                    std::hint::spin_loop();
                },
            }
        }
    }

    /// Precomputed flags (has-var / has-meta / has-kmeta).
    #[inline]
    pub fn flags(self) -> Flags {
        match arena().cons.slot(self.0) {
            Some(slot) => Flags(slot.flags),
            None => Flags::default(),
        }
    }

    /// The stable structural hash computed once at intern time.
    #[inline]
    pub fn node_hash(self) -> u64 {
        match arena().cons.slot(self.0) {
            Some(slot) => slot.hash,
            None => 0,
        }
    }

    /// Whether this id names a live arena slot. Codecs that transport
    /// raw handles use this to reject forged or stale (post-reset) ids
    /// up front, instead of letting [`ConId::get`] silently fall back
    /// to the canonical `unit`.
    #[inline]
    pub fn is_valid(self) -> bool {
        arena().cons.slot(self.0).is_some()
    }
}

impl Deref for ConId {
    type Target = Con;
    #[inline]
    fn deref(&self) -> &Con {
        self.get()
    }
}

impl ExprId {
    /// The canonical node, with the arena's `'static` lifetime; same
    /// forged-id contract as [`ConId::get`].
    #[inline]
    pub fn get(self) -> &'static Expr {
        if let Some(slot) = arena().exprs.slot(self.0) {
            &slot.val
        } else {
            debug_assert!(false, "dangling ExprId {:#x}", self.0);
            let fallback = *UNIT_EXPR.get_or_init(|| mk_expr(Expr::Lit(Lit::Unit)));
            match arena().exprs.slot(fallback.0) {
                Some(slot) => &slot.val,
                None => loop {
                    std::hint::spin_loop();
                },
            }
        }
    }

    /// The stable structural hash computed once at intern time.
    #[inline]
    pub fn node_hash(self) -> u64 {
        match arena().exprs.slot(self.0) {
            Some(slot) => slot.hash,
            None => 0,
        }
    }
}

impl Deref for ExprId {
    type Target = Expr;
    #[inline]
    fn deref(&self) -> &Expr {
        self.get()
    }
}

impl IStr {
    #[inline]
    pub fn as_str(self) -> &'static str {
        arena().strs.get(self.0)
    }

    /// The raw slot index (used by the disk codec).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl Deref for IStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::borrow::Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &IStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    /// Lexicographic on the underlying strings (so sorted label lists are
    /// deterministic across processes, not dependent on intern order).
    fn cmp(&self, other: &IStr) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::fmt::Display for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::fmt::Debug for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        istr(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        istr(&s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> IStr {
        istr(s)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

// ---------------------------------------------------------------------------
// Leases, reset, generation
// ---------------------------------------------------------------------------

/// RAII token counting a live arena user (a `Session`, a worker pool).
/// While any lease is outstanding, [`try_reset`] refuses to run.
pub struct ArenaLease(());

impl ArenaLease {
    fn acquire() -> ArenaLease {
        arena().leases.fetch_add(1, Ordering::AcqRel);
        ArenaLease(())
    }
}

impl Drop for ArenaLease {
    fn drop(&mut self) {
        arena().leases.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Takes a lease on the arena; hold it for as long as ids minted during
/// the lease may be dereferenced.
pub fn lease() -> ArenaLease {
    ArenaLease::acquire()
}

/// Number of outstanding leases.
pub fn lease_count() -> usize {
    arena().leases.load(Ordering::Acquire)
}

/// The current arena generation; bumped by every successful [`try_reset`].
pub fn generation() -> u64 {
    arena().generation.load(Ordering::Acquire)
}

/// Registers a hook run by every successful [`try_reset`] (e.g. to clear
/// the shared memo table, whose keys embed arena ids).
pub fn on_reset(hook: fn()) {
    let mut hooks = match arena().reset_hooks.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if !hooks.contains(&hook) {
        hooks.push(hook);
    }
}

/// Drains the term arena if no leases are outstanding: drops every `Con`
/// and `Expr` slot in place, clears the hash-cons maps, runs the
/// registered reset hooks, and bumps the generation. The string table
/// survives (labels are tiny and may be cached in diagnostics). Returns
/// whether the reset ran.
///
/// This is deliberately opt-in: callers must guarantee no `ConId`/`ExprId`
/// minted before the reset is dereferenced after it. The embedding
/// `Session` ties a lease to its lifetime, so "no live sessions" is the
/// quiescence condition.
pub fn try_reset() -> bool {
    let a = arena();
    if a.leases.load(Ordering::Acquire) != 0 {
        return false;
    }
    a.cons.drain();
    a.exprs.drain();
    let hooks: Vec<fn()> = {
        let g = match a.reset_hooks.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.clone()
    };
    for hook in hooks {
        hook();
    }
    a.generation.fetch_add(1, Ordering::AcqRel);
    true
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Snapshot of the shared arena's size, composition, and lock behaviour.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Canonical constructor nodes.
    pub con_nodes: u64,
    /// Canonical expression nodes.
    pub expr_nodes: u64,
    /// Interned strings (labels, symbol names, string literals).
    pub strings: u64,
    /// Approximate resident bytes across all three stores.
    pub bytes: u64,
    /// Constructor nodes per shard (length [`NUM_SHARDS`]).
    pub con_per_shard: Vec<u64>,
    /// Intern requests answered by an existing node (cons + exprs).
    pub hits: u64,
    /// Intern requests that allocated (cons + exprs).
    pub misses: u64,
    /// String-intern hits.
    pub str_hits: u64,
    /// String-intern misses.
    pub str_misses: u64,
    /// Times a shard lock was contended (try-lock failed and the caller
    /// had to block).
    pub contention: u64,
    /// Arena generation (bumped by [`try_reset`]).
    pub generation: u64,
    /// Outstanding [`ArenaLease`]s.
    pub leases: u64,
}

impl ArenaStats {
    /// Hash-cons hit rate over term interning, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current global arena statistics.
pub fn stats() -> ArenaStats {
    let a = arena();
    ArenaStats {
        con_nodes: a.cons.nodes(),
        expr_nodes: a.exprs.nodes(),
        strings: a.strs.count(),
        bytes: a.cons.bytes() + a.exprs.bytes() + a.strs.bytes(),
        con_per_shard: a.cons.per_shard(),
        hits: a.cons.hits.load(Ordering::Relaxed) + a.exprs.hits.load(Ordering::Relaxed),
        misses: a.cons.misses.load(Ordering::Relaxed) + a.exprs.misses.load(Ordering::Relaxed),
        str_hits: a.strs.hits.load(Ordering::Relaxed),
        str_misses: a.strs.misses.load(Ordering::Relaxed),
        contention: a.cons.contention.load(Ordering::Relaxed)
            + a.exprs.contention.load(Ordering::Relaxed),
        generation: a.generation.load(Ordering::Relaxed),
        leases: a.leases.load(Ordering::Relaxed) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::{Con, PrimType};

    #[test]
    fn locate_covers_segment_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate((SEG_BASE - 1) as u32), (0, SEG_BASE - 1));
        assert_eq!(locate(SEG_BASE as u32), (1, 0));
        assert_eq!(locate((3 * SEG_BASE - 1) as u32), (1, 2 * SEG_BASE - 1));
        assert_eq!(locate((3 * SEG_BASE) as u32), (2, 0));
        // Round-trip a spread of indices.
        for idx in [0u32, 1, 1023, 1024, 4096, 100_000, 1_000_000] {
            let (seg, off) = locate(idx);
            let start: usize = SEG_BASE * ((1usize << seg) - 1);
            assert_eq!(start + off, idx as usize, "idx {idx}");
            assert!(off < SEG_BASE << seg, "idx {idx} overflows its segment");
        }
    }

    #[test]
    fn istr_interning_shares_ids() {
        let a = istr("hello-arena");
        let b = istr(&String::from("hello-arena"));
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello-arena");
        let c = istr("other");
        assert_ne!(a, c);
    }

    #[test]
    fn istr_orders_lexicographically() {
        // Intern in reverse order so slot order disagrees with lex order.
        let b = istr("zz-lex-b");
        let a = istr("aa-lex-a");
        assert!(a < b);
    }

    #[test]
    fn con_interning_is_canonical() {
        let a = mk_con(Con::Prim(PrimType::Int));
        let b = mk_con(Con::Prim(PrimType::Int));
        assert_eq!(a, b);
        assert!(matches!(*a, Con::Prim(PrimType::Int)));
    }

    #[test]
    fn expr_float_nan_hash_conses() {
        let a = mk_expr(Expr::Lit(Lit::Float(f64::NAN)));
        let b = mk_expr(Expr::Lit(Lit::Float(f64::NAN)));
        assert_eq!(a, b, "NaN literals must share one node");
        let c = mk_expr(Expr::Lit(Lit::Float(1.5)));
        assert_ne!(a, c);
    }

    #[test]
    fn stats_report_nodes_and_hits() {
        let before = stats();
        let _ = mk_con(Con::Prim(PrimType::Bool));
        let _ = mk_con(Con::Prim(PrimType::Bool));
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.con_nodes >= before.con_nodes);
        assert!(after.bytes > 0);
        assert_eq!(after.con_per_shard.len(), NUM_SHARDS);
        assert_eq!(after.con_per_shard.iter().sum::<u64>(), after.con_nodes);
    }

    #[test]
    fn leases_block_reset() {
        let l = lease();
        assert!(lease_count() >= 1);
        assert!(!try_reset(), "reset must refuse while a lease is live");
        drop(l);
    }
}
