//! Expressions (value-level terms) of Featherweight Ur (paper Figure 1).
//!
//! ```text
//! e ::= x | e e | fn x : t => e | e [c] | fn a :: k => e
//!     | {} | {c = e} | e.c | e -- c | e ++ e
//!     | fn [c ~ c] => e | e !
//! ```
//!
//! extended with literals, `let`, and `if` (surface conveniences that
//! elaborate to core directly). Expressions are hash-consed in the global
//! [`crate::arena`] just like constructors, so `RExpr` is a `Copy + Send`
//! handle and structurally equal terms share one node.

use crate::arena::{mk_expr, IStr};
use crate::con::RCon;
use crate::kind::Kind;
use crate::sym::Sym;
use std::fmt;

pub use crate::arena::ExprId;

/// Canonical expression handle (see [`crate::arena`]).
pub type RExpr = ExprId;

/// Literal constants.
#[derive(Clone, PartialEq, Debug)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(IStr),
    Bool(bool),
    Unit,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(n) => write!(f, "{n}"),
            Lit::Float(x) => write!(f, "{x:?}"),
            Lit::Str(s) => write!(f, "{:?}", s.as_str()),
            Lit::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Lit::Unit => write!(f, "()"),
        }
    }
}

/// A core expression, produced by elaboration and consumed by the type
/// checker ([`crate::typing`]) and the evaluator (`ur-eval`).
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Variable occurrence.
    Var(Sym),
    /// Literal constant.
    Lit(Lit),
    /// Application `e1 e2`.
    App(RExpr, RExpr),
    /// Value abstraction `fn x : t => e`.
    Lam(Sym, RCon, RExpr),
    /// Constructor application `e [c]`.
    CApp(RExpr, RCon),
    /// Constructor abstraction `fn a :: k => e`.
    CLam(Sym, Kind, RExpr),
    /// Empty record `{}`.
    RecNil,
    /// Singleton record `{c = e}`.
    RecOne(RCon, RExpr),
    /// Record concatenation `e1 ++ e2`.
    RecCat(RExpr, RExpr),
    /// Field projection `e.c`.
    Proj(RExpr, RCon),
    /// Field removal `e -- c`.
    Cut(RExpr, RCon),
    /// Guard abstraction `fn [c1 ~ c2] => e`.
    DLam(RCon, RCon, RExpr),
    /// Guard elimination `e !` — discharges the head disjointness
    /// constraint of `e`'s type (the proof is always inferred; there is no
    /// proof-term syntax, per the paper's design principle 1).
    DApp(RExpr),
    /// `let x : t = e1 in e2`.
    Let(Sym, RCon, RExpr, RExpr),
    /// `if e1 then e2 else e3`.
    If(RExpr, RExpr, RExpr),
}

impl Expr {
    pub fn var(s: &Sym) -> RExpr {
        mk_expr(Expr::Var(*s))
    }

    pub fn lit(l: Lit) -> RExpr {
        mk_expr(Expr::Lit(l))
    }

    pub fn app(f: RExpr, a: RExpr) -> RExpr {
        mk_expr(Expr::App(f, a))
    }

    pub fn apps(f: RExpr, args: impl IntoIterator<Item = RExpr>) -> RExpr {
        args.into_iter().fold(f, Expr::app)
    }

    pub fn lam(x: Sym, t: RCon, body: RExpr) -> RExpr {
        mk_expr(Expr::Lam(x, t, body))
    }

    pub fn capp(e: RExpr, c: RCon) -> RExpr {
        mk_expr(Expr::CApp(e, c))
    }

    pub fn clam(a: Sym, k: Kind, body: RExpr) -> RExpr {
        mk_expr(Expr::CLam(a, k, body))
    }

    pub fn rec_nil() -> RExpr {
        mk_expr(Expr::RecNil)
    }

    pub fn rec_one(n: RCon, e: RExpr) -> RExpr {
        mk_expr(Expr::RecOne(n, e))
    }

    pub fn rec_cat(a: RExpr, b: RExpr) -> RExpr {
        mk_expr(Expr::RecCat(a, b))
    }

    /// Builds an n-ary record literal as a *balanced* tree of
    /// concatenations. Concatenation is associative, and a balanced tree
    /// keeps the term depth at `log2(n)` so recursive walkers
    /// (finalization, evaluation, drop) never consume stack linear in
    /// field count — a 5,000-field record is legitimate input.
    pub fn record(fields: Vec<(RCon, RExpr)>) -> RExpr {
        fn build(fields: &mut std::vec::Drain<(RCon, RExpr)>, n: usize) -> RExpr {
            match n {
                0 => Expr::rec_nil(),
                1 => match fields.next() {
                    Some((name, e)) => Expr::rec_one(name, e),
                    None => Expr::rec_nil(),
                },
                _ => {
                    let half = n / 2;
                    let l = build(fields, half);
                    let r = build(fields, n - half);
                    Expr::rec_cat(l, r)
                }
            }
        }
        let mut fields = fields;
        let n = fields.len();
        let mut drain = fields.drain(..);
        build(&mut drain, n)
    }

    pub fn proj(e: RExpr, c: RCon) -> RExpr {
        mk_expr(Expr::Proj(e, c))
    }

    pub fn cut(e: RExpr, c: RCon) -> RExpr {
        mk_expr(Expr::Cut(e, c))
    }

    pub fn dlam(c1: RCon, c2: RCon, body: RExpr) -> RExpr {
        mk_expr(Expr::DLam(c1, c2, body))
    }

    pub fn dapp(e: RExpr) -> RExpr {
        mk_expr(Expr::DApp(e))
    }

    pub fn let_(x: Sym, t: RCon, bound: RExpr, body: RExpr) -> RExpr {
        mk_expr(Expr::Let(x, t, bound, body))
    }

    pub fn if_(c: RExpr, t: RExpr, e: RExpr) -> RExpr {
        mk_expr(Expr::If(c, t, e))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_expr(self, f, 0)
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_expr(self, f, 0)
    }
}

impl fmt::Debug for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.get(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::con::Con;

    #[test]
    fn record_builder_empty() {
        assert!(matches!(&*Expr::record(vec![]), Expr::RecNil));
    }

    #[test]
    fn record_builder_singleton() {
        let e = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(1)))]);
        assert!(matches!(&*e, Expr::RecOne(_, _)));
    }

    #[test]
    fn record_builder_many() {
        let e = Expr::record(vec![
            (Con::name("A"), Expr::lit(Lit::Int(1))),
            (Con::name("B"), Expr::lit(Lit::Float(2.3))),
        ]);
        assert!(matches!(&*e, Expr::RecCat(_, _)));
    }

    #[test]
    fn exprs_hash_cons() {
        let a = Expr::lit(Lit::Int(7));
        let b = Expr::lit(Lit::Int(7));
        assert_eq!(a, b);
        let c = Expr::app(a, b);
        let d = Expr::app(a, b);
        assert_eq!(c, d);
    }

    #[test]
    fn lit_display() {
        assert_eq!(Lit::Int(42).to_string(), "42");
        assert_eq!(Lit::Bool(true).to_string(), "True");
        assert_eq!(Lit::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Lit::Unit.to_string(), "()");
    }
}
