//! Head normalization of constructors.
//!
//! Following §4 of the paper, the checker reduces constructors only as much
//! as needed to expose top-level structure: beta reduction, unfolding of
//! transparent definitions, pair projections, and resolution of solved
//! metavariables. Row-level computation (`++`, `map`) is handled separately
//! by [`crate::row`], which realizes the Figure 3 laws as a canonicalizing
//! normalizer.

use crate::con::{Con, RCon};
use crate::env::Env;
use crate::subst::subst;
use crate::Cx;

/// Reduces `c` to head normal form: the result is never a redex at the
/// head (no beta redex, no solved metavariable, no transparent variable,
/// no `Fst`/`Snd` of a literal pair).
///
/// `map` applications are *not* reduced here; they are left for the row
/// normalizer, so that the Figure-5 law counters fire in one place.
///
/// Fuel-bounded: each call charges one recursion level and each reduction
/// one step. When the budget is gone (`cx.fuel` sticky-exhausted) the
/// input is returned as-is — callers treat it as neutral, which is always
/// sound (it only makes fewer things definitionally equal).
/// Memoized (see [`crate::memo`]): results are keyed by the canonical
/// intern id plus the env's semantic generation, guarded by the meta
/// generation. Only shapes that can actually reduce at the head
/// (applications, projections, variables, metas) get table entries —
/// everything else is already head-normal and `hnf_loop` confirms it in
/// one step. A cache hit still charges one normalization step so cached
/// runs stay fuel-bounded; results computed under exhausted fuel are
/// degenerate and never stored.
pub fn hnf(env: &Env, cx: &mut Cx, c: &RCon) -> RCon {
    if !cx.fuel.descend() {
        return *c;
    }
    let memoizable = cx.memo.enabled
        && matches!(
            &**c,
            Con::App(_, _) | Con::Fst(_) | Con::Snd(_) | Con::Var(_) | Con::Meta(_)
        );
    let key = if memoizable {
        let id = crate::intern::id_of(c);
        let (env_gen, meta_gen) = (env.generation(), cx.metas.generation());
        if let Some(out) = cx.memo.hnf_get(id, env_gen, meta_gen) {
            cx.stats.hnf_memo_hits += 1;
            let _ = cx.fuel.step();
            cx.fuel.ascend();
            return out;
        }
        cx.stats.hnf_memo_misses += 1;
        Some((id, env_gen))
    } else {
        None
    };
    let out = hnf_loop(env, cx, c);
    if let Some((id, env_gen)) = key {
        if cx.fuel.exhausted().is_none() {
            cx.memo.hnf_put(id, env_gen, cx.metas.generation(), &out);
        }
    }
    cx.fuel.ascend();
    out
}

fn hnf_loop(env: &Env, cx: &mut Cx, c: &RCon) -> RCon {
    let mut cur = *c;
    loop {
        if !cx.fuel.step() {
            return cur;
        }
        match &*cur {
            Con::Meta(id) => match cx.metas.solution(*id) {
                Some(sol) => {
                    let next = *sol;
                    cur = next;
                }
                None => return cur,
            },
            Con::Var(s) => match env.lookup_con(s).and_then(|b| b.def) {
                Some(def) => cur = def,
                None => return cur,
            },
            Con::App(f, a) => {
                let f_hnf = hnf(env, cx, f);
                match &*f_hnf {
                    Con::Lam(x, _, body) => {
                        cur = subst(body, x, a);
                    }
                    _ => {
                        if f_hnf == *f {
                            return cur;
                        }
                        return Con::app(f_hnf, *a);
                    }
                }
            }
            Con::Fst(p) => {
                let p_hnf = hnf(env, cx, p);
                match &*p_hnf {
                    Con::Pair(a, _) => cur = *a,
                    _ => {
                        if p_hnf == *p {
                            return cur;
                        }
                        return Con::fst(p_hnf);
                    }
                }
            }
            Con::Snd(p) => {
                let p_hnf = hnf(env, cx, p);
                match &*p_hnf {
                    Con::Pair(_, b) => cur = *b,
                    _ => {
                        if p_hnf == *p {
                            return cur;
                        }
                        return Con::snd(p_hnf);
                    }
                }
            }
            _ => return cur,
        }
    }
}

/// True if `c` head-normalizes to a row former (`[]`, `[n = v]`, `++`, or a
/// saturated `map` application). Used by definitional equality to decide
/// whether to take the row-normalization path.
pub fn is_row_shaped(env: &Env, cx: &mut Cx, c: &RCon) -> bool {
    let c = hnf(env, cx, c);
    match &*c {
        Con::RowNil(_) | Con::RowOne(_, _) | Con::RowCat(_, _) => true,
        Con::App(_, _) => {
            let (head, args) = c.spine();
            let head = hnf(env, cx, &head);
            matches!(&*head, Con::Map(_, _)) && args.len() == 2
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;
    use crate::sym::Sym;

    fn setup() -> (Env, Cx) {
        (Env::new(), Cx::new())
    }

    #[test]
    fn beta_reduces() {
        let (env, mut cx) = setup();
        let a = Sym::fresh("a");
        let id = Con::lam(a, Kind::Type, Con::var(&a));
        let app = Con::app(id, Con::int());
        let out = hnf(&env, &mut cx, &app);
        assert!(matches!(&*out, Con::Prim(crate::con::PrimType::Int)));
    }

    #[test]
    fn unfolds_transparent_definitions() {
        let (mut env, mut cx) = setup();
        let t = Sym::fresh("myint");
        env.define_con(t, Kind::Type, Con::int());
        let out = hnf(&env, &mut cx, &Con::var(&t));
        assert!(matches!(&*out, Con::Prim(crate::con::PrimType::Int)));
    }

    #[test]
    fn resolves_solved_metas() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh(Kind::Type, "t");
        cx.metas.solve(m, Con::string());
        let out = hnf(&env, &mut cx, &Con::meta(m));
        assert!(matches!(&*out, Con::Prim(crate::con::PrimType::String)));
    }

    #[test]
    fn unsolved_meta_is_neutral() {
        let (env, mut cx) = setup();
        let m = cx.metas.fresh(Kind::Type, "t");
        let out = hnf(&env, &mut cx, &Con::meta(m));
        assert!(matches!(&*out, Con::Meta(_)));
    }

    #[test]
    fn pair_projections_reduce() {
        let (env, mut cx) = setup();
        let p = Con::pair(Con::int(), Con::string());
        let f = hnf(&env, &mut cx, &Con::fst(p));
        let s = hnf(&env, &mut cx, &Con::snd(p));
        assert!(matches!(&*f, Con::Prim(crate::con::PrimType::Int)));
        assert!(matches!(&*s, Con::Prim(crate::con::PrimType::String)));
    }

    #[test]
    fn nested_beta_through_definition() {
        // type id2 = fn a :: Type => a; hnf (id2 (id2 int)) = int
        let (mut env, mut cx) = setup();
        let a = Sym::fresh("a");
        let idc = Con::lam(a, Kind::Type, Con::var(&a));
        let id2 = Sym::fresh("id2");
        env.define_con(
            id2,
            Kind::arrow(Kind::Type, Kind::Type),
            idc,
        );
        let inner = Con::app(Con::var(&id2), Con::int());
        let outer = Con::app(Con::var(&id2), inner);
        let out = hnf(&env, &mut cx, &outer);
        assert!(matches!(&*out, Con::Prim(crate::con::PrimType::Int)));
    }

    #[test]
    fn neutral_application_is_stable() {
        let (mut env, mut cx) = setup();
        let f = Sym::fresh("f");
        env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
        let app = Con::app(Con::var(&f), Con::int());
        let out = hnf(&env, &mut cx, &app);
        assert_eq!(&*out, &*app);
    }

    #[test]
    fn row_shapes() {
        let (mut env, mut cx) = setup();
        assert!(is_row_shaped(&env, &mut cx, &Con::row_nil(Kind::Type)));
        assert!(is_row_shaped(
            &env,
            &mut cx,
            &Con::row_one(Con::name("A"), Con::int())
        ));
        let r = Sym::fresh("r");
        env.bind_con(r, Kind::row(Kind::Type));
        // a bare row variable is not row-*shaped* (it is neutral)
        assert!(!is_row_shaped(&env, &mut cx, &Con::var(&r)));
        // but map f r is
        let a = Sym::fresh("a");
        let idf = Con::lam(a, Kind::Type, Con::var(&a));
        let m = Con::map_app(Kind::Type, Kind::Type, idf, Con::var(&r));
        assert!(is_row_shaped(&env, &mut cx, &m));
        assert!(!is_row_shaped(&env, &mut cx, &Con::int()));
    }
}
