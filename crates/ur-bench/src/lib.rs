//! # ur-bench — benchmark harness for the Ur reproduction
//!
//! The `figure5` binary regenerates the paper's only quantitative exhibit
//! (Figure 5: per-component code sizes and inference-machinery invocation
//! counts); the Criterion benches characterize the engine (row
//! unification, disjointness proving, reverse-engineering, elaboration,
//! evaluation, and the database substrate). See EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison.

use ur_studies::{run_study, studies, StudyReport};

/// A Figure-5 paper row: (interface LoC, implementation LoC, Disj., Id.,
/// Dist., Fuse).
pub type PaperRow = (u64, u64, u64, u64, u64, u64);

/// Runs every Figure-5 component and returns its report, paired with the
/// paper's row when one exists.
///
/// # Panics
///
/// Panics if any study fails to elaborate or run — the harness treats
/// that as a broken build.
pub fn figure5_reports() -> Vec<(StudyReport, Option<PaperRow>)> {
    studies()
        .iter()
        .map(|s| {
            let rep = run_study(s)
                .unwrap_or_else(|e| panic!("study {} failed: {e}", s.id));
            (rep, s.figure5)
        })
        .collect()
}

/// Renders the Figure-5 comparison as a markdown table.
pub fn figure5_markdown() -> String {
    let mut out = String::new();
    out.push_str(
        "| Component | Int. | Imp. | Disj. | Id. | Dist. | Fuse | paper (Int/Imp/Disj/Id/Dist/Fuse) |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---|\n");
    for (rep, paper) in figure5_reports() {
        let paper_s = match paper {
            Some((i, m, d, id, di, fu)) => format!("{i}/{m}/{d}/{id}/{di}/{fu}"),
            None => "—".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            rep.title,
            rep.interface_loc,
            rep.impl_loc,
            rep.stats.disjoint_prover_calls,
            rep.stats.law_map_identity,
            rep.stats.law_map_distrib,
            rep.stats.law_map_fusion,
            paper_s,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_table_renders() {
        let md = figure5_markdown();
        assert!(md.contains("ORM"));
        assert!(md.contains("Versioned"));
        assert!(md.contains("Spreadsh. (SQL)"));
    }
}
