//! Incremental-elaboration benchmark: the combined Figure-5 batch plus
//! a fan of independent knob declarations, pushed through the
//! red-green engine (`ur_query::Engine`) under four scenarios:
//!
//! * **cold** — empty cache, every declaration recomputes;
//! * **noop** — identical source again; everything must come back
//!   green, and the rebuild must be at least 5x faster than cold;
//! * **one_edit** — a single knob changes; only its dependent cone
//!   re-runs;
//! * **tenpct_edit** — ~10% of the declarations change.
//!
//! A fifth scenario, **disk**, hands the populated cache directory to a
//! brand-new engine (a fresh process, as far as the cache can tell) and
//! counts disk hits. Every scenario's declarations and diagnostics are
//! compared against a cold sequential baseline; any mismatch is a hard
//! failure, as is a no-op speedup below 5x. Results go to
//! `BENCH_incremental.json`.
//!
//! Run with `cargo run -p ur-bench --bin incr --release`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use ur_query::{Engine, EngineConfig, RunReport};
use ur_studies::{studies, study, Study};
use ur_web::{Session, PRELUDE};

const REPS: usize = 5;
/// Independent editable declarations appended to the batch; edits flip
/// their literals without touching the Figure-5 decls.
const KNOBS: usize = 24;

/// Combined batch as separate parts so edit scenarios can rewrite
/// individual declarations: every study's transitive dependencies
/// (depth-first, deduplicated), implementations, usage demos, then the
/// knob fan.
fn batch_parts() -> Vec<String> {
    fn push_impl(parts: &mut Vec<&'static str>, s: &Study) {
        for dep in s.deps {
            push_impl(parts, &study(dep));
        }
        let src = s.implementation();
        if !parts.contains(&src) {
            parts.push(src);
        }
    }
    let mut impls: Vec<&'static str> = Vec::new();
    let mut usages: Vec<&'static str> = Vec::new();
    for s in studies() {
        push_impl(&mut impls, &s);
        usages.push(s.usage);
    }
    let mut parts: Vec<String> = impls.into_iter().map(String::from).collect();
    parts.extend(usages.into_iter().map(String::from));
    for i in 0..KNOBS {
        parts.push(format!("val knob{i} = {i}\nval knobUse{i} = knob{i} + 1"));
    }
    parts
}

/// Erases gensym counters (`foo#123` -> `foo#`) so runs drawing
/// different fresh-symbol numbers compare structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

/// Cold sequential oracle for one source: fresh session, one thread.
fn cold_baseline(src: &str) -> (Vec<String>, Vec<String>) {
    let mut sess = Session::new().expect("session");
    let (decls, diags) = sess.elab.elab_source_all_threads(src, 1);
    (
        decls.iter().map(|d| strip_sym_ids(&format!("{d:?}"))).collect(),
        diags.iter().map(|d| d.to_string()).collect(),
    )
}

struct Scenario {
    name: &'static str,
    best_ms: f64,
    report: RunReport,
    diverged: bool,
}

/// Runs `src` through `engine` against a prelude-loaded elaborator
/// restored to its base snapshot, timing the elaboration only (the
/// engine's contract covers elaboration; evaluation is never cached).
fn run_engine(
    sess: &mut Session,
    base: &ur_infer::ElabSnapshot,
    engine: &mut Engine,
    src: &str,
) -> (f64, RunReport, Vec<String>, Vec<String>) {
    sess.elab.restore(base.clone());
    let start = Instant::now();
    let (decls, diags, report) = engine.run(&mut sess.elab, src, 1);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    (
        ms,
        report,
        decls.iter().map(|d| strip_sym_ids(&format!("{d:?}"))).collect(),
        diags.iter().map(|d| d.to_string()).collect(),
    )
}

/// Replaces one knob's literal with a value never seen before.
fn edit_one(parts: &[String], rep: usize, _n: usize) -> String {
    let mut p = parts.to_vec();
    let last = p.len() - 1;
    let k = KNOBS - 1;
    p[last] = format!("val knob{k} = {}\nval knobUse{k} = knob{k} + 1", 1000 + rep);
    p.join("\n")
}

/// Rewrites ~10% of the batch's declarations (each knob part is two
/// declarations) with fresh literals.
fn edit_tenpct(parts: &[String], rep: usize, n: usize) -> String {
    let mut p = parts.to_vec();
    let count = (n / 20).clamp(1, KNOBS);
    for i in 0..count {
        let idx = p.len() - 1 - i;
        let k = KNOBS - 1 - i;
        p[idx] = format!(
            "val knob{k} = {}\nval knobUse{k} = knob{k} + 1",
            2000 + rep * 100 + k
        );
    }
    p.join("\n")
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ur-bench-incr-{}-{tag}", std::process::id()))
}

fn main() {
    let parts = batch_parts();
    let base_src = parts.join("\n");

    let mut sess = Session::new().expect("session");
    let base = sess.elab.snapshot();
    let base_tag = ur_core::fingerprint::hash_str(PRELUDE);

    let n = {
        let prog = ur_syntax::parse_program(&base_src).expect("batch parses");
        prog.decls.len()
    };
    println!("Incremental elaboration benchmark — combined Figure-5 batch + {KNOBS} knobs ({n} decls)");
    println!();

    let (oracle_decls, oracle_diags) = cold_baseline(&base_src);
    assert!(oracle_diags.is_empty(), "batch must be clean: {oracle_diags:?}");

    let dir = scratch_dir("cache");
    let mut scenarios: Vec<Scenario> = Vec::new();

    // Cold: empty directory and a fresh engine every rep.
    let mut cold_best = f64::INFINITY;
    let mut cold_report = RunReport::default();
    let mut cold_diverged = false;
    for _ in 0..REPS {
        let _ = std::fs::remove_dir_all(&dir);
        let mut engine = Engine::new(EngineConfig {
            cache_dir: Some(dir.clone()),
            base_tag,
        });
        let (ms, report, decls, diags) = run_engine(&mut sess, &base, &mut engine, &base_src);
        cold_best = cold_best.min(ms);
        cold_diverged |= decls != oracle_decls || diags != oracle_diags;
        cold_report = report;
    }
    scenarios.push(Scenario {
        name: "cold",
        best_ms: cold_best,
        report: cold_report,
        diverged: cold_diverged,
    });

    // One long-lived engine over the populated cache for the warm
    // scenarios, primed once so its memory layer is hot (an editor
    // session that has already built the project).
    let mut engine = Engine::new(EngineConfig {
        cache_dir: Some(dir.clone()),
        base_tag,
    });
    run_engine(&mut sess, &base, &mut engine, &base_src);

    // No-op: identical source again; everything comes back green.
    {
        let mut best = f64::INFINITY;
        let mut last_report = RunReport::default();
        let mut diverged = false;
        for _ in 0..REPS {
            let (ms, report, decls, diags) =
                run_engine(&mut sess, &base, &mut engine, &base_src);
            best = best.min(ms);
            diverged |= decls != oracle_decls || diags != oracle_diags;
            last_report = report;
        }
        scenarios.push(Scenario {
            name: "noop",
            best_ms: best,
            report: last_report,
            diverged,
        });
    }

    // Edit scenarios. Every rep measures "base built, then a *new* edit
    // arrives": the base is re-primed untimed, and the edited literal
    // varies per rep so neither the memory nor the disk layer has seen
    // the edited declarations before.
    type EditFn = fn(&[String], usize, usize) -> String;
    let edits: [(&'static str, EditFn); 2] =
        [("one_edit", edit_one), ("tenpct_edit", edit_tenpct)];
    for (name, make) in edits {
        let mut best = f64::INFINITY;
        let mut last_report = RunReport::default();
        let mut diverged = false;
        for rep in 0..REPS {
            run_engine(&mut sess, &base, &mut engine, &base_src);
            let src = make(&parts, rep, n);
            let (o_decls, o_diags) = cold_baseline(&src);
            let (ms, report, decls, diags) = run_engine(&mut sess, &base, &mut engine, &src);
            best = best.min(ms);
            diverged |= decls != o_decls || diags != o_diags;
            last_report = report;
        }
        scenarios.push(Scenario {
            name,
            best_ms: best,
            report: last_report,
            diverged,
        });
    }

    // Disk: a brand-new engine (fresh process, as far as the cache can
    // tell) seeded purely from what a previous engine stored. Uses the
    // *shared* directory — `UR_CACHE_DIR` or the `.ur-cache` default —
    // so CI runs that restore a cached directory measure cross-process
    // reuse; a priming pass covers the first-ever run.
    {
        let shared = ur_query::disk::resolve_cache_dir(None).unwrap_or_else(|| dir.clone());
        let mut primer = Engine::new(EngineConfig {
            cache_dir: Some(shared.clone()),
            base_tag,
        });
        run_engine(&mut sess, &base, &mut primer, &base_src);
        let mut fresh = Engine::new(EngineConfig {
            cache_dir: Some(shared),
            base_tag,
        });
        let (ms, report, decls, diags) = run_engine(&mut sess, &base, &mut fresh, &base_src);
        scenarios.push(Scenario {
            name: "disk",
            best_ms: ms,
            report,
            diverged: decls != oracle_decls || diags != oracle_diags,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "{:>12} {:>10} {:>7} {:>7} {:>10} {:>10} {:>9}",
        "scenario", "best(ms)", "green", "red", "disk_hits", "rejected", "diverged"
    );
    for s in &scenarios {
        println!(
            "{:>12} {:>10.2} {:>7} {:>7} {:>10} {:>10} {:>9}",
            s.name,
            s.best_ms,
            s.report.green,
            s.report.red,
            s.report.disk_hits,
            s.report.disk_rejections,
            s.diverged
        );
    }

    let noop = scenarios.iter().find(|s| s.name == "noop").expect("noop row");
    let noop_speedup = if noop.best_ms > 0.0 {
        cold_best / noop.best_ms
    } else {
        f64::INFINITY
    };
    println!();
    println!("no-op rebuild speedup vs cold: {noop_speedup:.1}x");

    let mut json = format!(
        "{{\n  \"benchmark\": \"incremental\",\n  \"metric\": \"wall_clock_ms\",\n  \
         \"batch\": {{\"decls\": {n}, \"knobs\": {KNOBS}}},\n  \"reps\": {REPS},\n  \
         \"scenarios\": [\n"
    );
    for (i, s) in scenarios.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"best_ms\": {:.3}, \"green\": {}, \"red\": {}, \
             \"disk_hits\": {}, \"disk_rejections\": {}, \"diverged\": {}}}",
            s.name,
            s.best_ms,
            s.report.green,
            s.report.red,
            s.report.disk_hits,
            s.report.disk_rejections,
            s.diverged
        );
        json.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"noop_speedup\": {:.2},\n  \"divergence_count\": {}\n}}\n",
        noop_speedup,
        scenarios.iter().filter(|s| s.diverged).count()
    );
    std::fs::write("BENCH_incremental.json", &json).expect("write BENCH_incremental.json");
    println!("wrote BENCH_incremental.json");

    // Hard gates. Byte-identical results are the contract; the no-op
    // speedup is the reason the engine exists.
    assert!(
        scenarios.iter().all(|s| !s.diverged),
        "incremental elaboration diverged from the cold sequential baseline"
    );
    assert_eq!(noop.report.red, 0, "no-op rebuild recomputed declarations");
    assert!(
        noop_speedup >= 5.0,
        "no-op rebuild only {noop_speedup:.1}x faster than cold (gate: 5x)"
    );
    let disk = scenarios.iter().find(|s| s.name == "disk").expect("disk row");
    assert_eq!(disk.report.red, 0, "fresh engine did not seed from disk");
    assert!(disk.report.disk_hits > 0, "no disk hits recorded");
}
