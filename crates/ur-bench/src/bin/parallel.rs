//! Parallel-elaboration benchmark: the combined Figure-5 batch — every
//! §6 case study's implementation and usage demo, plus a fan of
//! independent `mkTable` clients to give the dependency graph width —
//! elaborated at 1, 2, 4, and 8 worker threads.
//!
//! Two things are measured and written to `BENCH_parallel.json`:
//!
//! * **wall-clock** per thread count (best of `REPS` runs), with the
//!   speedup relative to the sequential run;
//! * **divergence** — the elaborated declarations (up to fresh symbol
//!   ids) and span-sorted diagnostics at every thread count are compared
//!   against the sequential run; any mismatch is a hard failure. The
//!   determinism guarantee is the point; the speedup is the bonus.
//!
//! The >1.5x speedup gate only applies when the machine actually has ≥4
//! cores (`std::thread::available_parallelism`); the divergence gate
//! always applies.
//!
//! Run with `cargo run -p ur-bench --bin parallel --release`.

use std::fmt::Write as _;
use std::time::Instant;
use ur_infer::DepGraph;
use ur_studies::{studies, study, Study};
use ur_web::Session;

const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
const REPS: usize = 5;
/// Pre-arena (PR 3 era) speedups at 4 and 8 threads, measured on this
/// project's 1-core CI baseline with per-worker intern tables and the
/// export/re-intern merge step. The shared arena removed that per-worker
/// overhead, so the refactored scheduler must strictly beat both numbers
/// whatever the core count — on many-core machines by a wide margin, on
/// a 1-core machine because each worker simply does less work.
const PRE_ARENA_SPEEDUP_4T: f64 = 0.402;
const PRE_ARENA_SPEEDUP_8T: f64 = 0.307;
/// Independent wide `mkTable` clients appended to the batch; each is a
/// root of the dependency graph, so the batch has parallel width by
/// construction.
const CLIENT_FAN: usize = 8;
const CLIENT_WIDTH: usize = 12;

struct Row {
    threads: usize,
    best_ms: f64,
    speedup: f64,
    par_decls: u64,
    par_workers: u64,
    diverged: bool,
}

/// Combined batch: every study's transitive dependencies (depth-first,
/// deduplicated), implementation, and usage demo, then the client fan.
fn combined_source() -> String {
    fn push_impl(parts: &mut Vec<&'static str>, s: &Study) {
        for dep in s.deps {
            push_impl(parts, &study(dep));
        }
        let src = s.implementation();
        if !parts.contains(&src) {
            parts.push(src);
        }
    }
    let mut parts: Vec<&'static str> = Vec::new();
    let mut usages: Vec<&'static str> = Vec::new();
    for s in studies() {
        push_impl(&mut parts, &s);
        usages.push(s.usage);
    }
    parts.extend(usages);
    let mut src = parts.join("\n");
    for c in 0..CLIENT_FAN {
        let mut meta = String::new();
        let mut row = String::new();
        for i in 0..CLIENT_WIDTH {
            if i > 0 {
                meta.push_str(", ");
                row.push_str(", ");
            }
            let _ = write!(meta, "F{c}x{i} = {{Label = \"f{i}\", Show = showInt}}");
            let _ = write!(row, "F{c}x{i} = {i}");
        }
        let _ = write!(
            src,
            "\nval client{c} = mkTable {{{meta}}}\nval render{c} = client{c} {{{row}}}"
        );
    }
    src
}

/// Elaborates the batch once at the given thread count in a fresh
/// session. Returns (elapsed ms, decl fingerprints, diag fingerprints,
/// parallel stats counters).
fn run_once(src: &str, threads: usize) -> (f64, Vec<String>, Vec<String>, u64, u64) {
    let mut sess = Session::new().expect("session");
    let start = Instant::now();
    let (decls, diags) = sess.elab.elab_source_all_threads(src, threads);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    let decl_fps = decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    let diag_fps = diags.iter().map(|d| d.to_string()).collect();
    let stats = &sess.elab.cx.stats;
    (ms, decl_fps, diag_fps, stats.par_decls, stats.par_workers)
}

/// Erases gensym counters (`foo#123` -> `foo#`) so runs drawing
/// different fresh-symbol numbers compare structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

fn main() {
    let src = combined_source();

    // Graph shape, for the report: batch size, roots, critical path.
    let prog = ur_syntax::parse_program(&src).expect("combined batch parses");
    let graph = DepGraph::build(&prog.decls);
    let n = graph.len();
    let roots = (0..n).filter(|&i| graph.deps(i).is_empty()).count();
    let mut depth = vec![0usize; n];
    let order = graph.topo_order().expect("combined batch is acyclic");
    for &i in &order {
        depth[i] = graph.deps(i).iter().map(|&j| depth[j] + 1).max().unwrap_or(0);
    }
    let critical_path = depth.iter().copied().max().unwrap_or(0) + usize::from(n > 0);

    println!(
        "Parallel elaboration benchmark — combined Figure-5 batch \
         ({n} decls, {roots} roots, critical path {critical_path})"
    );
    println!();

    let (_, base_decls, base_diags, _, _) = run_once(&src, 1);
    assert!(
        base_diags.is_empty(),
        "combined batch must be clean: {base_diags:?}"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut base_ms = 0.0f64;
    for &t in THREAD_COUNTS {
        let mut best_ms = f64::INFINITY;
        let mut diverged = false;
        let mut par_decls = 0u64;
        let mut par_workers = 0u64;
        for _ in 0..REPS {
            let (ms, decls, diags, pd, pw) = run_once(&src, t);
            best_ms = best_ms.min(ms);
            par_decls = pd;
            par_workers = pw;
            diverged |= decls != base_decls || diags != base_diags;
        }
        if t == 1 {
            base_ms = best_ms;
        }
        rows.push(Row {
            threads: t,
            best_ms,
            speedup: if best_ms > 0.0 { base_ms / best_ms } else { 0.0 },
            par_decls,
            par_workers,
            diverged,
        });
    }

    println!(
        "{:>8} {:>10} {:>9} {:>10} {:>12} {:>10}",
        "threads", "best(ms)", "speedup", "par_decls", "par_workers", "diverged"
    );
    for r in &rows {
        println!(
            "{:>8} {:>10.1} {:>8.2}x {:>10} {:>12} {:>10}",
            r.threads, r.best_ms, r.speedup, r.par_decls, r.par_workers, r.diverged
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup4 = rows
        .iter()
        .find(|r| r.threads == 4)
        .map_or(0.0, |r| r.speedup);
    let speedup8 = rows
        .iter()
        .find(|r| r.threads == 8)
        .map_or(0.0, |r| r.speedup);
    println!();
    println!(
        "machine cores: {cores}; speedup at 4 threads: {speedup4:.2}x \
         (pre-arena {PRE_ARENA_SPEEDUP_4T:.3}x); at 8 threads: {speedup8:.2}x \
         (pre-arena {PRE_ARENA_SPEEDUP_8T:.3}x)"
    );

    let mut json = format!(
        "{{\n  \"benchmark\": \"parallel\",\n  \"metric\": \"wall_clock_ms\",\n  \
         \"batch\": {{\"decls\": {n}, \"roots\": {roots}, \"critical_path\": {critical_path}}},\n  \
         \"machine_cores\": {cores},\n  \"reps\": {REPS},\n  \"runs\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"best_ms\": {:.2}, \"speedup\": {:.3}, \
             \"par_decls\": {}, \"par_workers\": {}, \"diverged\": {}}}",
            r.threads, r.best_ms, r.speedup, r.par_decls, r.par_workers, r.diverged
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"divergence_count\": {},\n  \"speedup_at_4_threads\": {:.3},\n  \
         \"speedup_at_8_threads\": {:.3},\n  \
         \"pre_arena_speedup_at_4_threads\": {PRE_ARENA_SPEEDUP_4T:.3},\n  \
         \"pre_arena_speedup_at_8_threads\": {PRE_ARENA_SPEEDUP_8T:.3}\n}}\n",
        rows.iter().filter(|r| r.diverged).count(),
        speedup4,
        speedup8,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");

    // Hard gate: zero divergence, always. Determinism is the contract.
    assert!(
        rows.iter().all(|r| !r.diverged),
        "parallel elaboration diverged from sequential"
    );
    // Speedup gate only where the hardware can deliver one.
    if cores >= 4 {
        assert!(
            speedup4 > 1.5,
            "expected >1.5x speedup at 4 threads on a {cores}-core machine, got {speedup4:.2}x"
        );
    } else {
        println!("({cores} core(s): speedup gate skipped — divergence gate still enforced)");
    }
    // Regression gate vs the pre-arena scheduler: the shared intern arena
    // deleted the per-worker table build and the export/re-intern merge,
    // so 4- and 8-thread runs must be strictly better than the PR 3
    // baseline relative to their own sequential run, on any hardware.
    assert!(
        speedup4 > PRE_ARENA_SPEEDUP_4T,
        "4-thread speedup {speedup4:.3}x regressed to pre-arena level \
         (baseline {PRE_ARENA_SPEEDUP_4T:.3}x)"
    );
    assert!(
        speedup8 > PRE_ARENA_SPEEDUP_8T,
        "8-thread speedup {speedup8:.3}x regressed to pre-arena level \
         (baseline {PRE_ARENA_SPEEDUP_8T:.3}x)"
    );
}
