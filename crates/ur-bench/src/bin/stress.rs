//! Adversarial stress harness (see docs/ROBUSTNESS.md): runs the deep /
//! cyclic / wide hostile-input scenarios at full scale and reports
//! wall-clock time and outcome for each. Exits nonzero if any scenario
//! panics, hangs past its budget, or produces the wrong outcome.
//!
//! Every scenario runs on a deliberately small (2 MiB) thread — the same
//! stack the Rust test runner gives tests — so "no stack overflow" is
//! checked under the least forgiving conditions, not hidden by a large
//! main-thread stack.
//!
//! Run with `cargo run -p ur-bench --bin stress --release`.

use std::time::{Duration, Instant};
use ur_core::prelude::*;
use ur_infer::{Elaborator, Unify};
use ur_syntax::Code;
use ur_web::Session;

/// Wall-clock ceiling per scenario; generous because debug builds and
/// slow CI runners must pass too. The property under test is
/// "terminates promptly with the right answer", not raw speed.
const TIME_BUDGET: Duration = Duration::from_secs(60);

/// Test-runner-sized stack: scenarios must survive on 2 MiB.
const SMALL_STACK: usize = 2 * 1024 * 1024;

struct Outcome {
    name: &'static str,
    elapsed: Duration,
    result: Result<(), String>,
}

fn scenario(name: &'static str, f: impl FnOnce() -> Result<(), String> + Send) -> Outcome {
    let start = Instant::now();
    let result = std::thread::scope(|scope| {
        let h = std::thread::Builder::new()
            .name(name.into())
            .stack_size(SMALL_STACK)
            .spawn_scoped(scope, f);
        match h {
            Ok(h) => h
                .join()
                .unwrap_or_else(|_| Err("panicked or overflowed its stack".into())),
            Err(e) => Err(format!("could not spawn scenario thread: {e}")),
        }
    });
    let elapsed = start.elapsed();
    let result = match result {
        Ok(()) if elapsed >= TIME_BUDGET => {
            Err(format!("took {elapsed:?}, over the {TIME_BUDGET:?} budget"))
        }
        other => other,
    };
    Outcome { name, elapsed, result }
}

fn expect(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

// ---------------- deep ----------------

fn deep_parse() -> Result<(), String> {
    let src = format!("val x = {}1{}", "(".repeat(20_000), ")".repeat(20_000));
    let mut elab = Elaborator::new();
    match elab.elab_source(&src) {
        Err(e) => {
            expect(e.code() == Code::ParseTooDeep, "expected E0201 ParseTooDeep")?;
            expect(elab.elab_source("val ok = 1").is_ok(), "session must survive")
        }
        Ok(_) => Err("20k-deep nesting must be rejected".into()),
    }
}

fn deep_map_nest() -> Result<(), String> {
    let mut env = Env::new();
    let mut cx = Cx::new();
    let f = Sym::fresh("f");
    let r = Sym::fresh("r");
    env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
    env.bind_con(r, Kind::row(Kind::Type));
    let mut c = Con::var(&r);
    for _ in 0..10_000 {
        c = Con::map_app(Kind::Type, Kind::Type, Con::var(&f), c);
    }
    let _nf = ur_core::hnf::hnf(&env, &mut cx, &c);
    expect(
        cx.fuel.norm_steps_used() <= cx.fuel.limits.max_norm_steps,
        "normalization must stay within its step budget",
    )
}

fn deep_defeq() -> Result<(), String> {
    // The two chains differ at the innermost leaf: identical chains would
    // hash-cons to a single shared node and compare in O(1), which is
    // exactly what this stressor must avoid.
    let env = Env::new();
    let mut cx = Cx::new();
    let deep = |leaf: ur_core::con::RCon, n: usize| {
        let mut c = leaf;
        for _ in 0..n {
            c = Con::arrow(c, Con::int());
        }
        c
    };
    let (a, b) = (deep(Con::int(), 10_000), deep(Con::float(), 10_000));
    let eq = ur_core::defeq::defeq(&env, &mut cx, &a, &b);
    expect(!eq, "budget exhaustion must answer the conservative false")?;
    expect(
        cx.fuel.exhausted() == Some(ResourceKind::Depth),
        "10k-deep recursion must trip the depth budget",
    )
}

// ---------------- cyclic ----------------

fn cyclic_occurs() -> Result<(), String> {
    let env = Env::new();
    let mut cx = Cx::new();
    let m = cx.metas.fresh_con(Kind::Type, "t");
    let cyclic = Con::arrow(m, Con::int());
    expect(
        matches!(ur_infer::unify(&env, &mut cx, &m, &cyclic), Unify::Fail(_)),
        "cyclic solve must fail the occurs check",
    )
}

fn cyclic_program() -> Result<(), String> {
    let mut elab = Elaborator::new();
    expect(
        elab.elab_source("val omega = fn x => x x").is_err(),
        "self-application must not typecheck",
    )?;
    expect(elab.elab_source("val ok = 2").is_ok(), "session must survive")
}

// ---------------- wide ----------------

fn wide_disjoint() -> Result<(), String> {
    let env = Env::new();
    let mut cx = Cx::new();
    let wide = |prefix: &str, n: usize| {
        Con::row_of(
            Kind::Type,
            (0..n)
                .map(|i| (Con::name(format!("{prefix}{i}")), Con::int()))
                .collect(),
        )
    };
    let (r1, r2) = (wide("A", 2_600), wide("B", 2_600));
    let out = ur_core::disjoint::prove(&env, &mut cx, &r1, &r2);
    expect(
        out == ur_core::disjoint::ProveResult::NotYet,
        "over-budget proof must answer the conservative NotYet",
    )?;
    expect(
        cx.fuel.exhausted() == Some(ResourceKind::ProverPairs),
        "6.76M cross pairs must trip the prover budget",
    )
}

fn wide_record() -> Result<(), String> {
    // A flat 5,000-field record literal is legitimate input: it must
    // elaborate and evaluate, not exhaust any budget.
    let mut sess = Session::new().map_err(|e| e.to_string())?;
    let body = (0..5_000)
        .map(|i| format!("F{i} = {i}"))
        .collect::<Vec<_>>()
        .join(", ");
    sess.run(&format!("val big = {{{body}}}"))
        .map_err(|e| format!("5k-field record must elaborate: {e}"))?;
    Ok(())
}

fn wide_concat_strict() -> Result<(), String> {
    // Under strict limits, a record concatenation whose disjointness
    // goal is over budget must surface E0900 — and the elaborator must
    // stay usable.
    let mut elab = Elaborator::new();
    elab.cx = Cx::with_limits(Limits::strict());
    let fields = |prefix: &str, n: usize| {
        (0..n)
            .map(|i| format!("{prefix}{i} = {i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let src = format!("val w = {{{}}} ++ {{{}}}", fields("A", 150), fields("B", 150));
    match elab.elab_source(&src) {
        Err(e) => {
            expect(
                e.code() == Code::ResourceExhausted,
                "expected E0900 ResourceExhausted",
            )?;
            expect(
                elab.elab_source("val ok = {A = 1}.A").is_ok(),
                "fuel must reset at the declaration boundary",
            )
        }
        Ok(_) => Err("strict limits must reject the wide concat".into()),
    }
}

// ---------------- multi-error ----------------

fn multi_error() -> Result<(), String> {
    let mut sess = Session::new().map_err(|e| e.to_string())?;
    let (defs, diags) = sess.run_all(
        "val a : int = \"not an int\"\n\
         val b = missingVariable\n\
         val c : string = 42\n\
         val good = 7",
    );
    expect(
        diags.len() >= 3,
        &format!("one pass must report all 3 errors, got {}", diags.len()),
    )?;
    expect(
        defs.iter().any(|(n, _)| n == "good"),
        "the good declaration must still be defined",
    )
}

fn main() -> std::process::ExitCode {
    let scenarios: Vec<Outcome> = vec![
        scenario("deep: 20k-deep program text", deep_parse),
        scenario("deep: 10k map nest normalization", deep_map_nest),
        scenario("deep: 10k arrow defeq", deep_defeq),
        scenario("cyclic: occurs check", cyclic_occurs),
        scenario("cyclic: self-application program", cyclic_program),
        scenario("wide: 2600x2600 disjointness", wide_disjoint),
        scenario("wide: 5k-field record literal", wide_record),
        scenario("wide: strict-limit concat -> E0900", wide_concat_strict),
        scenario("multi-error: 3 errors in one pass", multi_error),
    ];

    println!("Adversarial stress harness (budget {TIME_BUDGET:?} per scenario, {SMALL_STACK} B stacks)");
    println!();
    let mut failed = 0usize;
    for o in &scenarios {
        match &o.result {
            Ok(()) => println!("PASS  {:<42} {:>10.1?}", o.name, o.elapsed),
            Err(msg) => {
                failed += 1;
                println!("FAIL  {:<42} {:>10.1?}  {msg}", o.name, o.elapsed);
            }
        }
    }
    println!();
    if failed == 0 {
        println!("all {} scenarios passed", scenarios.len());
        std::process::ExitCode::SUCCESS
    } else {
        println!("{failed}/{} scenarios FAILED", scenarios.len());
        std::process::ExitCode::FAILURE
    }
}
