//! Interning/memoization benchmark: elaborates the Figure-5 case studies
//! and two synthetic stress workloads with the judgment memo tables
//! enabled and disabled, and reports the reduction in normalization work.
//!
//! The headline metric is `Fuel::lifetime_norm_steps` — every head-
//! normalization step charged over the whole run, surviving the
//! per-declaration fuel resets — plus the memo hit/miss counters and
//! wall-clock time. Results are printed as a table and written to
//! `BENCH_interning.json` in the current directory.
//!
//! Run with `cargo run -p ur-bench --bin interning --release`.

use std::fmt::Write as _;
use std::time::Instant;
use ur_studies::{studies, study, Study};
use ur_web::Session;

/// One workload measured twice (memo on / memo off).
struct Row {
    name: String,
    cached_steps: u64,
    uncached_steps: u64,
    cached_ms: f64,
    uncached_ms: f64,
    hnf_hits: u64,
    defeq_hits: u64,
    row_hits: u64,
    disjoint_hits: u64,
}

impl Row {
    fn reduction_pct(&self) -> f64 {
        if self.uncached_steps == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.cached_steps as f64 / self.uncached_steps as f64)
    }
}

/// Runs `load` in a fresh session with the memo tables forced on or off,
/// returning (lifetime norm steps, elapsed ms, final session).
fn measure(enabled: bool, load: &dyn Fn(&mut Session)) -> (u64, f64, Session) {
    let mut sess = Session::new().expect("session");
    sess.elab.cx.memo.enabled = enabled;
    let start = Instant::now();
    load(&mut sess);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    (sess.elab.cx.fuel.lifetime_norm_steps(), ms, sess)
}

fn bench(name: &str, load: &dyn Fn(&mut Session)) -> Row {
    let (cached_steps, cached_ms, sess) = measure(true, load);
    let (uncached_steps, uncached_ms, _) = measure(false, load);
    let s = sess.stats();
    Row {
        name: name.to_string(),
        cached_steps,
        uncached_steps,
        cached_ms,
        uncached_ms,
        hnf_hits: s.hnf_memo_hits,
        defeq_hits: s.defeq_memo_hits,
        row_hits: s.row_memo_hits,
        disjoint_hits: s.disjoint_memo_hits,
    }
}

fn load_study(sess: &mut Session, s: &Study) {
    fn deps(sess: &mut Session, s: &Study) {
        for dep in s.deps {
            let d = study(dep);
            deps(sess, &d);
            sess.run(d.implementation()).expect("dep");
        }
    }
    deps(sess, s);
    sess.run(s.implementation()).expect("impl");
    sess.run(s.usage).expect("usage");
}

/// A generated `mkTable` client of width `n` (same shape as the scaling
/// bench): heavy on row unification and disjointness.
fn wide_client(n: usize) -> String {
    let mut meta = String::new();
    let mut row = String::new();
    for i in 0..n {
        if i > 0 {
            meta.push_str(", ");
            row.push_str(", ");
        }
        let _ = write!(meta, "C{i} = {{Label = \"c{i}\", Show = showInt}}");
        let _ = write!(row, "C{i} = {i}");
    }
    format!("val f = mkTable {{{meta}}}\nval out = f {{{row}}}")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    for s in studies() {
        rows.push(bench(&format!("study:{}", s.id), &|sess| {
            load_study(sess, &s)
        }));
    }

    rows.push(bench("stress:mktable-width-32", &|sess| {
        sess.run(study("mktable").implementation()).expect("mkTable");
        sess.run(&wide_client(32)).expect("client");
    }));
    rows.push(bench("stress:repeat-elaboration", &|sess| {
        // The same polymorphic projection elaborated 40 times: every
        // round after the first replays cached judgments.
        sess.run(
            "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
                 (x : $([nm = t] ++ r)) = x.nm",
        )
        .expect("proj");
        for i in 0..40 {
            sess.run(&format!("val v{i} = proj [#A] {{A = {i}, B = 2, C = 3}}"))
                .expect("use");
        }
    }));

    println!("Interning/memoization benchmark — normalization steps per workload");
    println!();
    println!(
        "{:28} {:>10} {:>10} {:>7} {:>9} {:>9}  hits (hnf/defeq/row/disj)",
        "workload", "uncached", "cached", "red.%", "unc(ms)", "cach(ms)"
    );
    for r in &rows {
        println!(
            "{:28} {:>10} {:>10} {:>6.1}% {:>9.1} {:>9.1}  {}/{}/{}/{}",
            r.name,
            r.uncached_steps,
            r.cached_steps,
            r.reduction_pct(),
            r.uncached_ms,
            r.cached_ms,
            r.hnf_hits,
            r.defeq_hits,
            r.row_hits,
            r.disjoint_hits,
        );
    }

    let total_cached: u64 = rows.iter().map(|r| r.cached_steps).sum();
    let total_uncached: u64 = rows.iter().map(|r| r.uncached_steps).sum();
    println!();
    println!(
        "total norm steps: uncached={total_uncached} cached={total_cached} ({:.1}% reduction)",
        if total_uncached == 0 {
            0.0
        } else {
            100.0 * (1.0 - total_cached as f64 / total_uncached as f64)
        }
    );

    // Hand-rolled JSON (the build is offline; no serde available).
    let mut json = String::from("{\n  \"benchmark\": \"interning\",\n  \"metric\": \"lifetime_norm_steps\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"uncached_steps\": {}, \"cached_steps\": {}, \
             \"reduction_pct\": {:.2}, \"uncached_ms\": {:.2}, \"cached_ms\": {:.2}, \
             \"hnf_hits\": {}, \"defeq_hits\": {}, \"row_hits\": {}, \"disjoint_hits\": {}}}",
            json_escape(&r.name),
            r.uncached_steps,
            r.cached_steps,
            r.reduction_pct(),
            r.uncached_ms,
            r.cached_ms,
            r.hnf_hits,
            r.defeq_hits,
            r.row_hits,
            r.disjoint_hits,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"total\": {{\"uncached_steps\": {total_uncached}, \"cached_steps\": {total_cached}}}\n}}\n"
    );
    std::fs::write("BENCH_interning.json", &json).expect("write BENCH_interning.json");
    println!("wrote BENCH_interning.json");

    // The bench doubles as a smoke check: caching must actually reduce
    // normalization work overall.
    assert!(
        total_cached < total_uncached,
        "memoization must reduce total normalization steps"
    );
}
