//! Serving resilience benchmark: four phases against an in-process
//! `ur-serve` front door, each with a hard gate, written to
//! `BENCH_serving.json`.
//!
//! 1. **nominal** — no faults, concurrent clients; every delivered eval
//!    answer is compared against a clean sequential oracle (the same
//!    [`ur_serve::protocol::handle_line`] run on a local session).
//!    Gates: zero wrong answers, ≥99% non-shed availability.
//! 2. **fault storm** — a seeded schedule over all four serve sites
//!    (dropped accepts, torn reads, lost writes, wedged workers).
//!    Structured degradation (shed / lost / torn / E0900) is legal;
//!    a wrong OK answer is not. Gate: zero wrong answers.
//! 3. **durable kill storm** — a growing script of durable inserts while
//!    a derived-seed schedule wedges the worker repeatedly. After drain
//!    the store is reopened from disk. Gate: zero acked-write loss
//!    (disk rows ≥ the highest acknowledged script, and the supervisor
//!    demonstrably restarted at least one worker).
//! 4. **read fan-out** — durable reads (`db` reports) under concurrent
//!    durable write load, single-worker vs snapshot-reader fan-out.
//!    Gate: fan-out read throughput beats the single-worker baseline
//!    (reads no longer serialise behind the writer).
//! 5. **overload** — 2× oversubscription against a deliberately tiny
//!    queue. Gates: shedding actually observed (`overloaded` +
//!    `retry_after_ms`), and p99 latency of delivered answers bounded
//!    by `3 × deadline × (queue_depth + 1)`.
//!
//! The base seed comes from `UR_SERVE_SEED` (default 11); every phase
//! prints the seed it ran under so failures reproduce exactly.
//!
//! Run with `cargo run -p ur-bench --bin serve --features failpoints --release`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;
use ur_core::failpoint::{FpConfig, Site};
use ur_query::json::escape;
use ur_serve::{protocol, ReqCtx, ServeConfig, Server};
use ur_web::Session;

/// One line-delimited JSON client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line and reads one response line. `None` means
    /// the connection tore (write failed, read failed, or clean EOF).
    fn roundtrip(&mut self, line: &str) -> Option<String> {
        if writeln!(self.writer, "{line}").is_err() {
            return None;
        }
        let mut resp = String::new();
        match self.reader.read_line(&mut resp) {
            Ok(n) if n > 0 => Some(resp),
            _ => None,
        }
    }
}

fn load_req(src: &str) -> String {
    format!("{{\"cmd\":\"load\",\"source\":\"{}\"}}", escape(src))
}

fn eval_req(expr: &str) -> String {
    format!("{{\"cmd\":\"eval\",\"expr\":\"{}\"}}", escape(expr))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ur-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let ix = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[ix.min(samples.len() - 1)]
}

/// The same draw [`ur_core::failpoint::fire`] makes, replicated so the
/// durable phase can *derive* a seed whose wedge schedule provably lets
/// the first request through and kills the worker soon after — making
/// the "across worker kills" part of the gate deterministic for any
/// base seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn draw_fires(seed: u64, site: Site, hit: u64, rate: u16) -> bool {
    let key = seed ^ (site.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ hit;
    splitmix64(key) % 1000 < u64::from(rate)
}

// ---------------------------------------------------------------- phase 1

struct NominalResult {
    requests: u64,
    ok: u64,
    shed: u64,
    wrong: u64,
    availability: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// No faults: concurrent clients, every answer differentially checked
/// against a sequential oracle running the identical protocol lines.
fn phase_nominal() -> NominalResult {
    const CLIENTS: usize = 4;
    const CONNS_PER_CLIENT: i64 = 25;

    // Oracle pass: the same handle_line, one local session, sequential.
    let mut oracle_sess = Session::new().expect("oracle session");
    let mut ctx = ReqCtx::new(None);
    let mut expected: Vec<String> = Vec::new();
    for n in 0..(CLIENTS as i64 * CONNS_PER_CLIENT) {
        let (load_resp, _) = protocol::handle_line(
            &mut oracle_sess,
            &mut ctx,
            &load_req(&format!("val a = {n}  val b = a * a + 7")),
            None,
        );
        assert!(
            load_resp.contains("\"diagnostics\":[]"),
            "oracle load must be clean: {load_resp}"
        );
        let (eval_resp, _) = protocol::handle_line(&mut oracle_sess, &mut ctx, &eval_req("b - a"), None);
        assert!(eval_resp.contains("\"ok\":true"), "oracle eval: {eval_resp}");
        expected.push(eval_resp);
    }
    let expected = std::sync::Arc::new(expected);

    let cache = tmp_dir("nominal");
    let server = Server::start(ServeConfig {
        workers: 4,
        threads: Some(1),
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    })
    .expect("serve bind");
    let addr = server.addr();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let expected = std::sync::Arc::clone(&expected);
        handles.push(std::thread::spawn(move || {
            let (mut ok, mut shed, mut wrong) = (0u64, 0u64, 0u64);
            let mut lat = Vec::new();
            for i in 0..CONNS_PER_CLIENT {
                let n = t as i64 * CONNS_PER_CLIENT + i;
                let Ok(mut c) = Client::connect(addr) else {
                    continue;
                };
                let start = Instant::now();
                let Some(load) = c.roundtrip(&load_req(&format!("val a = {n}  val b = a * a + 7")))
                else {
                    continue;
                };
                if load.contains("\"error\":\"overloaded\"") {
                    shed += 1;
                    continue;
                }
                if !load.contains("\"diagnostics\":[]") {
                    continue;
                }
                let Some(eval) = c.roundtrip(&eval_req("b - a")) else {
                    continue;
                };
                if eval.contains("\"error\":\"overloaded\"") {
                    shed += 1;
                    continue;
                }
                if !eval.contains("\"ok\":true") {
                    continue;
                }
                lat.push(start.elapsed().as_secs_f64() * 1000.0);
                if eval.trim_end() == expected[n as usize] {
                    ok += 1;
                } else {
                    wrong += 1;
                }
            }
            (ok, shed, wrong, lat)
        }));
    }

    let (mut ok, mut shed, mut wrong) = (0u64, 0u64, 0u64);
    let mut lat = Vec::new();
    for h in handles {
        let (o, s, w, l) = h.join().expect("client thread");
        ok += o;
        shed += s;
        wrong += w;
        lat.extend(l);
    }
    server.start_drain();
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&cache);

    let requests = (CLIENTS as i64 * CONNS_PER_CLIENT) as u64;
    NominalResult {
        requests,
        ok,
        shed,
        wrong,
        availability: ok as f64 / requests as f64,
        p50_ms: percentile(&mut lat.clone(), 0.50),
        p99_ms: percentile(&mut lat, 0.99),
    }
}

// ---------------------------------------------------------------- phase 2

struct StormResult {
    seed: u64,
    requests: u64,
    ok: u64,
    torn: u64,
    degraded: u64,
    wrong: u64,
    worker_restarts: u64,
    injected: [u64; 4],
}

/// Seeded storm over all four serve sites. The client knows every
/// expected answer (`val v = i` / `v + 1` → `i + 1`), so a wrong OK
/// answer is detected without an oracle pass.
fn phase_fault_storm(base_seed: u64) -> StormResult {
    const ACCEPT_RATE: u16 = 250;
    const READ_RATE: u16 = 200;
    const WRITE_RATE: u16 = 200;
    const WEDGE_RATE: u16 = 150;

    // Failpoint draws are per-thread and every handler/worker thread
    // replays the same stream, so a seed whose *first* read, write, or
    // wedge consult fires would tear every fresh connection (or kill
    // every fresh worker) at the same spot, and the storm would measure
    // nothing. Derive a seed whose read/write draws pass for the first
    // request pair (hits 0 and 1 — one load + one eval per connection)
    // and whose wedge draw passes at hit 0; later hits fire at the
    // configured rates as connections live longer, so every connection
    // delivers at least one full answer pair before a fault tears it.
    let mut seed = base_seed ^ 0xBAD_5EED;
    while (0..=1).any(|h| draw_fires(seed, Site::ServeRead, h, READ_RATE))
        || (0..=1).any(|h| draw_fires(seed, Site::ServeWrite, h, WRITE_RATE))
        || draw_fires(seed, Site::ServeWedge, 0, WEDGE_RATE)
    {
        seed = seed.wrapping_add(1);
    }

    let cache = tmp_dir("storm");
    let fp = FpConfig::new(seed)
        .with_max_per_site(6)
        .with_rate(Site::ServeAccept, ACCEPT_RATE)
        .with_rate(Site::ServeRead, READ_RATE)
        .with_rate(Site::ServeWrite, WRITE_RATE)
        .with_rate(Site::ServeWedge, WEDGE_RATE);
    let server = Server::start(ServeConfig {
        workers: 2,
        deadline_ms: 400,
        watchdog_ms: 100,
        threads: Some(1),
        cache_dir: Some(cache.clone()),
        fp: Some(fp),
        ..ServeConfig::default()
    })
    .expect("serve bind");
    let addr = server.addr();

    let (mut ok, mut torn, mut degraded, mut wrong) = (0u64, 0u64, 0u64, 0u64);
    const REQUESTS: i64 = 60;
    // Connections persist across requests (so later per-thread hits get
    // consulted) and reconnect whenever a fault tears one down.
    let mut client: Option<Client> = None;
    for i in 0..REQUESTS {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    torn += 1;
                    continue;
                }
            },
        };
        let Some(load) = c.roundtrip(&load_req(&format!("val v = {i}"))) else {
            torn += 1;
            client = None;
            continue;
        };
        if !load.contains("\"ok\":true") {
            degraded += 1; // structured shed / lost / expired answer
            continue;
        }
        if !load.contains("\"diagnostics\":[]") {
            // A degraded rebuild may only fail with the deadline budget.
            if load.contains("E0900") {
                degraded += 1;
            } else {
                wrong += 1;
            }
            continue;
        }
        let Some(eval) = c.roundtrip(&eval_req("v + 1")) else {
            torn += 1;
            client = None;
            continue;
        };
        if !eval.contains("\"ok\":true") {
            degraded += 1;
            continue;
        }
        if eval.contains(&format!("\"value\":\"{}\"", i + 1)) {
            ok += 1;
        } else {
            wrong += 1;
        }
    }
    server.start_drain();
    let summary = server.wait();
    let _ = std::fs::remove_dir_all(&cache);

    StormResult {
        seed,
        requests: REQUESTS as u64,
        ok,
        torn,
        degraded,
        wrong,
        worker_restarts: summary.worker_restarts,
        injected: [
            summary.faults.injected[Site::ServeAccept.index()],
            summary.faults.injected[Site::ServeRead.index()],
            summary.faults.injected[Site::ServeWrite.index()],
            summary.faults.injected[Site::ServeWedge.index()],
        ],
    }
}

// ---------------------------------------------------------------- phase 3

struct DurableResult {
    seed: u64,
    submitted: u64,
    acked: u64,
    disk_rows: u64,
    worker_restarts: u64,
    lost_acked_writes: u64,
}

/// Durable kill storm: a growing script of inserts against a shared
/// durable store while a derived wedge schedule kills the worker. Every
/// acknowledged script must survive to disk across the restarts.
fn phase_durable_kill(base_seed: u64) -> DurableResult {
    const WEDGE_RATE: u16 = 250;
    const SCRIPTS: u64 = 8;

    // Derive a seed whose wedge stream (a) lets the first consult pass,
    // so a fresh worker can always make progress (the stream is
    // per-thread, so every replacement replays it), and (b) fires at
    // least once in the next five consults, so the kill storm actually
    // storms no matter what UR_SERVE_SEED was.
    let mut seed = base_seed ^ 0xD00D_F00D;
    while draw_fires(seed, Site::ServeWedge, 0, WEDGE_RATE)
        || !(1..=5).any(|h| draw_fires(seed, Site::ServeWedge, h, WEDGE_RATE))
    {
        seed = seed.wrapping_add(1);
    }

    let db_dir = tmp_dir("durable-db");
    let cache = tmp_dir("durable-cache");
    let server = Server::start(ServeConfig {
        deadline_ms: 500,
        watchdog_ms: 50,
        threads: Some(1),
        db_dir: Some(db_dir.clone()),
        cache_dir: Some(cache.clone()),
        fp: Some(
            FpConfig::new(seed)
                .with_rate(Site::ServeWedge, WEDGE_RATE)
                .with_max_per_site(8),
        ),
        ..ServeConfig::default()
    })
    .expect("serve bind");
    let addr = server.addr();

    // The script grows monotonically: script k creates the table and
    // inserts rows r1..rk, so an acked script k means k rows are
    // adopted on disk and any *later* state can only have more.
    let mut acked = 0u64;
    let mut client: Option<Client> = None;
    for k in 1..=SCRIPTS {
        let mut src = String::from("val t = createTable \"people\" {Name = sqlString}");
        for j in 1..=k {
            let _ = write!(src, " val u{j} = insert t {{Name = const \"r{j}\"}}");
        }
        let req = load_req(&src);
        for _attempt in 0..8 {
            let c = match client.as_mut() {
                Some(c) => c,
                None => match Client::connect(addr) {
                    Ok(c) => client.insert(c),
                    Err(_) => continue,
                },
            };
            match c.roundtrip(&req) {
                None => client = None, // torn: reconnect and retry
                Some(resp) if resp.contains("\"ok\":true") && resp.contains("\"diagnostics\":[]") => {
                    acked = k;
                    break;
                }
                Some(_) => {} // lost / shed / E0900: same connection, retry
            }
        }
    }
    server.start_drain();
    let summary = server.wait();

    // Reopen the store from disk — with retry, since an abandoned wedged
    // worker may still hold the flock for the tail of its stall.
    let db = ur_db::Db::open_with_retry(&db_dir, ur_db::RetryConfig::with_wait_ms(15_000))
        .expect("reopen durable store");
    let disk_rows = db.row_count("people").unwrap_or(0) as u64;
    drop(db);
    let _ = std::fs::remove_dir_all(&db_dir);
    let _ = std::fs::remove_dir_all(&cache);

    DurableResult {
        seed,
        submitted: SCRIPTS,
        acked,
        disk_rows,
        worker_restarts: summary.worker_restarts,
        lost_acked_writes: acked.saturating_sub(disk_rows),
    }
}

// ---------------------------------------------------------------- phase 4

struct OverloadResult {
    requests: u64,
    ok: u64,
    shed: u64,
    p99_ms: f64,
    p99_bound_ms: f64,
}

/// 2× oversubscription against a tiny queue: 8 concurrent clients, 2
/// workers, queue depth 1. Excess load must shed with a structured
/// answer, and whatever *is* answered must be answered promptly.
fn phase_overload() -> OverloadResult {
    const CLIENTS: usize = 8;
    const CONNS_PER_CLIENT: usize = 12;
    const DEADLINE_MS: u64 = 1_000;
    const QUEUE_DEPTH: usize = 1;

    let server = Server::start(ServeConfig {
        workers: 2,
        queue_depth: QUEUE_DEPTH,
        deadline_ms: DEADLINE_MS,
        watchdog_ms: 100,
        retry_after_ms: 5,
        threads: Some(1),
        ..ServeConfig::default()
    })
    .expect("serve bind");
    let addr = server.addr();

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let (mut ok, mut shed) = (0u64, 0u64);
            let mut lat = Vec::new();
            for i in 0..CONNS_PER_CLIENT {
                let u = t * CONNS_PER_CLIENT + i;
                // Unique field names defeat every cache layer, so each
                // request costs a real row-concatenation elaboration.
                let fields = |p: &str| {
                    (0..60)
                        .map(|f| format!("{p}{u}_{f} = {f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let src = format!("val w = {{{}}} ++ {{{}}}", fields("A"), fields("B"));
                let Ok(mut c) = Client::connect(addr) else {
                    continue;
                };
                let start = Instant::now();
                let Some(resp) = c.roundtrip(&load_req(&src)) else {
                    continue;
                };
                if resp.contains("\"error\":\"overloaded\"") {
                    assert!(
                        resp.contains("\"retry_after_ms\":"),
                        "shed answers must carry retry advice: {resp}"
                    );
                    shed += 1;
                } else if resp.contains("\"ok\":true") {
                    ok += 1;
                    lat.push(start.elapsed().as_secs_f64() * 1000.0);
                }
            }
            (ok, shed, lat)
        }));
    }

    let (mut ok, mut shed) = (0u64, 0u64);
    let mut lat = Vec::new();
    for h in handles {
        let (o, s, l) = h.join().expect("client thread");
        ok += o;
        shed += s;
        lat.extend(l);
    }
    server.start_drain();
    let _ = server.wait();

    OverloadResult {
        requests: (CLIENTS * CONNS_PER_CLIENT) as u64,
        ok,
        shed,
        p99_ms: percentile(&mut lat, 0.99),
        p99_bound_ms: (3 * DEADLINE_MS * (QUEUE_DEPTH as u64 + 1)) as f64,
    }
}

// ---------------------------------------------------------------- phase 5

struct ReadFanoutResult {
    single_rps: f64,
    fanout_rps: f64,
    improvement: f64,
    single_reads: u64,
    fanout_reads: u64,
    single_writes: u64,
    fanout_writes: u64,
}

/// Durable read throughput under concurrent write load, single-worker
/// vs snapshot-reader fan-out. With one worker every read queues behind
/// the writer's durable evals; with the fan-out, read-only commands go
/// to snapshot readers and never wait for the store. The gate is the
/// whole point of the MVCC engine's serving story: fan-out read
/// throughput must beat the single-worker baseline.
fn phase_read_fanout() -> ReadFanoutResult {
    const READ_CLIENTS: usize = 4;
    const WRITE_CLIENTS: usize = 2;
    const WINDOW: std::time::Duration = std::time::Duration::from_millis(2_000);

    fn run_one(workers: usize) -> (u64, u64) {
        let db_dir = tmp_dir(&format!("fanout-db-{workers}"));
        let cache = tmp_dir(&format!("fanout-cache-{workers}"));
        let server = Server::start(ServeConfig {
            workers,
            deadline_ms: 2_000,
            threads: Some(1),
            db_dir: Some(db_dir.clone()),
            cache_dir: Some(cache.clone()),
            ..ServeConfig::default()
        })
        .expect("serve bind");
        let addr = server.addr();

        // Acked base state: one durable table all clients share.
        let mut setup = Client::connect(addr).expect("setup client");
        let resp = setup
            .roundtrip(&load_req(
                "val t = createTable \"people\" {Name = sqlString} \
                 val u0 = insert t {Name = const \"seed\"}",
            ))
            .expect("setup load");
        assert!(
            resp.contains("\"ok\":true") && resp.contains("\"diagnostics\":[]"),
            "fan-out setup must ack cleanly: {resp}"
        );

        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for _ in 0..WRITE_CLIENTS {
            let stop = std::sync::Arc::clone(&stop);
            writers.push(std::thread::spawn(move || -> u64 {
                let mut writes = 0u64;
                let Ok(mut c) = Client::connect(addr) else {
                    return 0;
                };
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match c.roundtrip(&eval_req("insert t {Name = const \"w\"}")) {
                        Some(resp) if resp.contains("\"ok\":true") => writes += 1,
                        Some(_) => {} // shed / expired: keep pressing
                        None => match Client::connect(addr) {
                            Ok(n) => c = n,
                            Err(_) => break,
                        },
                    }
                }
                writes
            }));
        }
        let mut readers = Vec::new();
        for _ in 0..READ_CLIENTS {
            let stop = std::sync::Arc::clone(&stop);
            readers.push(std::thread::spawn(move || -> u64 {
                let mut reads = 0u64;
                let Ok(mut c) = Client::connect(addr) else {
                    return 0;
                };
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match c.roundtrip("{\"cmd\":\"db\"}") {
                        Some(resp) if resp.contains("\"ok\":true") => reads += 1,
                        Some(_) => {}
                        None => match Client::connect(addr) {
                            Ok(n) => c = n,
                            Err(_) => break,
                        },
                    }
                }
                reads
            }));
        }
        std::thread::sleep(WINDOW);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let reads: u64 = readers.into_iter().map(|j| j.join().unwrap_or(0)).sum();
        let writes: u64 = writers.into_iter().map(|j| j.join().unwrap_or(0)).sum();
        server.start_drain();
        let _ = server.wait();
        let _ = std::fs::remove_dir_all(&db_dir);
        let _ = std::fs::remove_dir_all(&cache);
        (reads, writes)
    }

    let (single_reads, single_writes) = run_one(1);
    let (fanout_reads, fanout_writes) = run_one(4);
    let secs = WINDOW.as_secs_f64();
    let single_rps = single_reads as f64 / secs;
    let fanout_rps = fanout_reads as f64 / secs;
    ReadFanoutResult {
        single_rps,
        fanout_rps,
        improvement: fanout_rps / single_rps.max(1e-9),
        single_reads,
        fanout_reads,
        single_writes,
        fanout_writes,
    }
}

// ------------------------------------------------------------------ main

fn main() {
    let seed: u64 = std::env::var("UR_SERVE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    println!("Serving resilience benchmark — seed {seed} (UR_SERVE_SEED)");
    println!();

    let t = Instant::now();
    let nominal = phase_nominal();
    println!(
        "nominal:   {}/{} ok, {} shed, {} wrong, availability {:.1}%, \
         p50 {:.1}ms p99 {:.1}ms  ({:.1}s)",
        nominal.ok,
        nominal.requests,
        nominal.shed,
        nominal.wrong,
        nominal.availability * 100.0,
        nominal.p50_ms,
        nominal.p99_ms,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let storm = phase_fault_storm(seed);
    println!(
        "storm:     seed {} — {}/{} ok, {} torn, {} degraded, {} wrong, \
         {} restarts, injected accept/read/write/wedge {:?}  ({:.1}s)",
        storm.seed,
        storm.ok,
        storm.requests,
        storm.torn,
        storm.degraded,
        storm.wrong,
        storm.worker_restarts,
        storm.injected,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let durable = phase_durable_kill(seed);
    println!(
        "durable:   seed {} — {}/{} scripts acked, {} rows on disk, \
         {} restarts, {} acked writes lost  ({:.1}s)",
        durable.seed,
        durable.acked,
        durable.submitted,
        durable.disk_rows,
        durable.worker_restarts,
        durable.lost_acked_writes,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let fanout = phase_read_fanout();
    println!(
        "fan-out:   reads {:.0}/s single-worker vs {:.0}/s with snapshot readers \
         ({:.2}x; writes {} vs {})  ({:.1}s)",
        fanout.single_rps,
        fanout.fanout_rps,
        fanout.improvement,
        fanout.single_writes,
        fanout.fanout_writes,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let overload = phase_overload();
    println!(
        "overload:  {}/{} ok, {} shed, p99 {:.1}ms (bound {:.0}ms)  ({:.1}s)",
        overload.ok,
        overload.requests,
        overload.shed,
        overload.p99_ms,
        overload.p99_bound_ms,
        t.elapsed().as_secs_f64()
    );
    println!();

    let wrong_answers = nominal.wrong + storm.wrong;
    let mut json = format!(
        "{{\n  \"benchmark\": \"serving\",\n  \"seed\": {seed},\n  \"phases\": {{\n"
    );
    let _ = writeln!(
        json,
        "    \"nominal\": {{\"requests\": {}, \"ok\": {}, \"shed\": {}, \"wrong\": {}, \
         \"availability\": {:.4}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}},",
        nominal.requests,
        nominal.ok,
        nominal.shed,
        nominal.wrong,
        nominal.availability,
        nominal.p50_ms,
        nominal.p99_ms
    );
    let _ = writeln!(
        json,
        "    \"fault_storm\": {{\"seed\": {}, \"requests\": {}, \"ok\": {}, \"torn\": {}, \
         \"degraded\": {}, \"wrong\": {}, \"worker_restarts\": {}, \
         \"injected\": {{\"serve_accept\": {}, \"serve_read\": {}, \"serve_write\": {}, \
         \"serve_wedge\": {}}}}},",
        storm.seed,
        storm.requests,
        storm.ok,
        storm.torn,
        storm.degraded,
        storm.wrong,
        storm.worker_restarts,
        storm.injected[0],
        storm.injected[1],
        storm.injected[2],
        storm.injected[3]
    );
    let _ = writeln!(
        json,
        "    \"durable_kill\": {{\"seed\": {}, \"submitted\": {}, \"acked\": {}, \
         \"disk_rows\": {}, \"worker_restarts\": {}, \"lost_acked_writes\": {}}},",
        durable.seed,
        durable.submitted,
        durable.acked,
        durable.disk_rows,
        durable.worker_restarts,
        durable.lost_acked_writes
    );
    let _ = writeln!(
        json,
        "    \"read_fanout\": {{\"single_rps\": {:.1}, \"fanout_rps\": {:.1}, \
         \"improvement\": {:.3}, \"single_reads\": {}, \"fanout_reads\": {}, \
         \"single_writes\": {}, \"fanout_writes\": {}}},",
        fanout.single_rps,
        fanout.fanout_rps,
        fanout.improvement,
        fanout.single_reads,
        fanout.fanout_reads,
        fanout.single_writes,
        fanout.fanout_writes
    );
    let _ = write!(
        json,
        "    \"overload\": {{\"requests\": {}, \"ok\": {}, \"shed\": {}, \"p99_ms\": {:.2}, \
         \"p99_bound_ms\": {:.0}}}\n  }},\n",
        overload.requests, overload.ok, overload.shed, overload.p99_ms, overload.p99_bound_ms
    );
    let _ = write!(
        json,
        "  \"gates\": {{\"wrong_answers\": {wrong_answers}, \
         \"acked_write_loss\": {}, \"nominal_availability\": {:.4}, \
         \"overload_shed\": {}, \"overload_p99_bounded\": {}, \
         \"read_fanout_improvement\": {:.3}}}\n}}\n",
        durable.lost_acked_writes,
        nominal.availability,
        overload.shed,
        overload.p99_ms <= overload.p99_bound_ms,
        fanout.improvement
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");

    // Hard gate 1: a delivered OK answer is never wrong — and the storm
    // demonstrably delivered answers to be wrong about (the derived
    // seed guarantees every connection survives its first request pair).
    assert_eq!(wrong_answers, 0, "serving produced wrong answers");
    assert!(
        storm.ok > 0,
        "fault storm delivered no answers (seed {})",
        storm.seed
    );
    // Hard gate 2: no acked durable write is lost across worker kills —
    // and the kills demonstrably happened.
    assert_eq!(
        durable.lost_acked_writes, 0,
        "acked durable writes lost across worker kills (acked {}, disk {})",
        durable.acked, durable.disk_rows
    );
    assert!(
        durable.acked > 0 && durable.disk_rows <= durable.submitted,
        "durable phase made no progress or overshot: acked {}, disk {}",
        durable.acked,
        durable.disk_rows
    );
    assert!(
        durable.worker_restarts >= 1,
        "durable kill storm killed no workers (seed {})",
        durable.seed
    );
    // Hard gate 3: ≥99% non-shed availability at nominal load.
    assert!(
        nominal.availability >= 0.99,
        "nominal availability {:.2}% below 99%",
        nominal.availability * 100.0
    );
    // Hard gate: the snapshot-reader fan-out must beat the single-worker
    // baseline on durable reads under write load — and both sides must
    // have demonstrably served reads *and* writes for the comparison to
    // mean anything.
    assert!(
        fanout.single_reads > 0 && fanout.fanout_reads > 0,
        "read fan-out phase served no reads: {} vs {}",
        fanout.single_reads,
        fanout.fanout_reads
    );
    assert!(
        fanout.single_writes > 0 && fanout.fanout_writes > 0,
        "read fan-out phase served no writes: {} vs {}",
        fanout.single_writes,
        fanout.fanout_writes
    );
    assert!(
        fanout.improvement > 1.0,
        "snapshot-reader fan-out did not improve durable read throughput: \
         {:.0}/s vs {:.0}/s ({:.2}x)",
        fanout.single_rps,
        fanout.fanout_rps,
        fanout.improvement
    );
    // Hard gate 4: overload sheds instead of queueing without bound, and
    // what is answered is answered within the patience envelope.
    assert!(overload.shed > 0, "overload phase never shed");
    assert!(
        overload.p99_ms <= overload.p99_bound_ms,
        "overload p99 {:.1}ms exceeds bound {:.0}ms",
        overload.p99_ms,
        overload.p99_bound_ms
    );
    println!("all serving gates passed");
}
