//! Compiled-evaluation benchmark: the bytecode VM against the
//! tree-walking interpreter.
//!
//! Two hard gates back the PR's claims:
//!
//! * **Zero divergence** — every case study's usage demo and a
//!   generative corpus of eval-heavy programs produce *identical*
//!   values on both engines. Any mismatch is a hard failure.
//! * **Render-loop speedup** — the per-request data-plane loops
//!   (spreadsheet summary rows and report reductions over a 100-row
//!   dataset, with the full application of case studies loaded) must be
//!   at least 10x faster on the VM. The speedup mechanism is capture
//!   analysis: a compiled closure copies only the slots its body
//!   mentions, while every tree-walker closure creation and application
//!   clones the entire environment — a cost that grows with the number
//!   of live globals, paid once or more per row.
//!
//! A second, *ungated* table reports the one-shot metaprogram loops
//! (mkTable renders, folder folds): there both engines unwind the same
//! type-level program and funnel through the same builtins, so the VM's
//! honest advantage is structurally ~2-3x — documented, not gated.
//!
//! Results go to `BENCH_eval.json`.
//!
//! Run with `cargo run -p ur-bench --bin eval --release`.

use std::fmt::Write as _;
use ur_eval::EvalEngine;
use ur_studies::{load_deps, studies, study};
use ur_testutil::{gen, Rng};
use ur_web::Session;

/// Generative corpus size (seeds) for the divergence gate.
const GEN_CASES: u64 = 60;
/// Declarations per generated program.
const GEN_DECLS: usize = 8;
/// Repetitions of each render loop; the loop wall time is divided by
/// this, so per-iteration numbers amortize the VM's one-time compile.
const LOOP_REPS: u32 = 200;
/// Best-of repetitions for each engine's loop measurement.
const REPS: usize = 5;
/// The speedup the VM must deliver on every *gated* (data-plane) loop.
const MIN_SPEEDUP: f64 = 10.0;
/// Rows in the data-plane dataset.
const DATA_ROWS: usize = 100;

fn session_with(engine: EvalEngine) -> Session {
    let mut sess = Session::new().expect("session");
    sess.engine = engine;
    sess
}

/// A session with the whole application loaded: every case study's
/// dependencies, implementation, and usage demo, in dependency order.
/// This is the environment a per-request loop actually runs in — and
/// the tree-walker's whole-environment closure clones are priced by it.
fn full_app_session(setup: &str, engine: EvalEngine) -> Session {
    let mut sess = session_with(engine);
    for s in studies() {
        load_deps(&mut sess, &s).expect("deps");
        sess.run(s.implementation()).expect("implementation");
        sess.run(s.usage).expect("usage");
    }
    if !setup.is_empty() {
        sess.run(setup).expect("setup");
    }
    sess
}

/// The 100-row dataset plus the spreadsheet the data-plane loops run
/// against: three stored columns, one computed column, aggregates.
fn data_plane_setup() -> String {
    let mut rows = String::from("val rows = ");
    for i in 0..DATA_ROWS {
        let _ = write!(
            rows,
            "cons {{Id = {i}, A = {}, B = {}}} (",
            i * 7 % 50,
            if i % 3 == 0 { "True" } else { "False" }
        );
    }
    rows.push_str("nil");
    rows.push_str(&")".repeat(DATA_ROWS));
    rows.push_str(
        "\nval s = sheet \"Bench\" \
         {Id = {Label = \"Id\", Show = showInt}, \
          A = {Label = \"A\", Show = showInt}, \
          B = {Label = \"B\", Show = showBool}} \
         {DA = {Label = \"2A\", Fn = fn x => 2 * x.A, Show = showInt}} \
         {Sum = {Label = \"Sum\", Init = 0, Step = fn x n => x.A + n, \
                 Show = showInt}}\n\
         val s3 = sheet \"Bench3\" \
         {Id = {Label = \"Id\", Show = showInt}, \
          A = {Label = \"A\", Show = showInt}, \
          B = {Label = \"B\", Show = showBool}} \
         {DA = {Label = \"2A\", Fn = fn x => 2 * x.A, Show = showInt}} \
         {Sum = {Label = \"Sum\", Init = 0, Step = fn x n => x.A + n, \
                 Show = showInt}, \
          Hi = {Label = \"Hi\", Init = 0, \
                Step = fn x n => if x.A > n then x.A else n, \
                Show = showInt}, \
          N = {Label = \"N\", Init = 0, Step = fn x n => n + 1, \
               Show = showInt}}",
    );
    rows
}

/// Runs one study end-to-end (deps, implementation, usage) on one
/// engine and returns the usage demo's (name, rendered value) pairs.
fn study_values(id: &str, engine: EvalEngine) -> Vec<(String, String)> {
    let s = study(id);
    let mut sess = session_with(engine);
    load_deps(&mut sess, &s).expect("deps");
    sess.run(s.implementation()).expect("implementation");
    sess.run(s.usage)
        .expect("usage")
        .into_iter()
        .map(|(n, v)| (n, v.to_string()))
        .collect()
}

struct LoopRow {
    name: &'static str,
    vm_us: f64,
    interp_us: f64,
    speedup: f64,
    /// Whether this loop participates in the ≥[`MIN_SPEEDUP`] gate.
    gated: bool,
}

/// A session with a study (deps + implementation + any usage-side
/// setup declarations) loaded on the given engine.
fn study_session(id: &str, setup: &str, engine: EvalEngine) -> Session {
    let s = study(id);
    let mut sess = session_with(engine);
    load_deps(&mut sess, &s).expect("deps");
    sess.run(s.implementation()).expect("implementation");
    if !setup.is_empty() {
        sess.run(setup).expect("setup");
    }
    sess
}

/// Best-of-[`REPS`] per-iteration microseconds for evaluating `expr`
/// [`LOOP_REPS`] times in `sess`, plus the final rendered value.
fn time_loop(sess: &mut Session, expr: &str) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut rendered = String::new();
    for _ in 0..REPS {
        let (v, dt) = sess.eval_repeated(expr, LOOP_REPS).expect("loop expr");
        let us = dt.as_secs_f64() * 1e6 / f64::from(LOOP_REPS);
        best = best.min(us);
        rendered = v.to_string();
    }
    (best, rendered)
}

/// One render loop: same study, same setup, same expression, both
/// engines. The rendered values must agree; the timings feed the
/// speedup gate.
fn render_loop(
    name: &'static str,
    id: &str,
    setup: &str,
    expr: &str,
    divergences: &mut u64,
) -> LoopRow {
    let mut vm = study_session(id, setup, EvalEngine::Vm);
    let mut interp = study_session(id, setup, EvalEngine::Interp);
    measure(name, &mut vm, &mut interp, expr, false, divergences)
}

/// One *gated* data-plane loop: full application loaded, 100-row
/// dataset, both engines, identical values, ≥10x required.
fn data_plane_loop(
    name: &'static str,
    setup: &str,
    expr: &str,
    divergences: &mut u64,
) -> LoopRow {
    let mut vm = full_app_session(setup, EvalEngine::Vm);
    let mut interp = full_app_session(setup, EvalEngine::Interp);
    measure(name, &mut vm, &mut interp, expr, true, divergences)
}

fn measure(
    name: &'static str,
    vm: &mut Session,
    interp: &mut Session,
    expr: &str,
    gated: bool,
    divergences: &mut u64,
) -> LoopRow {
    let (vm_us, vm_val) = time_loop(vm, expr);
    let (interp_us, interp_val) = time_loop(interp, expr);
    if vm_val != interp_val {
        eprintln!("DIVERGENCE in render loop {name}: vm={vm_val} interp={interp_val}");
        *divergences += 1;
    }
    LoopRow {
        name,
        vm_us,
        interp_us,
        speedup: interp_us / vm_us,
        gated,
    }
}

fn main() {
    let mut divergences = 0u64;

    // ---- Gate 1a: every case study, both engines, identical values.
    println!("case-study divergence check (usage demo values, vm vs interp)");
    let mut studies_checked = 0u64;
    for s in studies() {
        let vm = study_values(s.id, EvalEngine::Vm);
        let interp = study_values(s.id, EvalEngine::Interp);
        let ok = vm == interp;
        if !ok {
            for ((vn, vv), (on, ov)) in vm.iter().zip(&interp) {
                if (vn, vv) != (on, ov) {
                    eprintln!("  {}: vm {vn}={vv} interp {on}={ov}", s.id);
                }
            }
            divergences += 1;
        }
        studies_checked += 1;
        println!("  {:20} {} values  {}", s.id, vm.len(), if ok { "ok" } else { "DIVERGED" });
    }

    // ---- Gate 1b: generative corpus, both engines, identical values.
    let mut gen_values = 0u64;
    for case in 0..GEN_CASES {
        let seed = 0xBE9C_0001 + case;
        let mut rng = Rng::new(seed);
        let prog = gen::eval_program(&mut rng, GEN_DECLS, 3);
        let mut vm = session_with(EvalEngine::Vm);
        let mut interp = session_with(EvalEngine::Interp);
        let (vm_defs, vm_diags) = vm.run_all(&prog.source);
        let (or_defs, or_diags) = interp.run_all(&prog.source);
        assert!(
            vm_diags.is_empty() && or_diags.is_empty(),
            "seed {seed:#x}: generated program failed to elaborate:\n{}",
            prog.source
        );
        let a: Vec<(String, String)> =
            vm_defs.into_iter().map(|(n, v)| (n, v.to_string())).collect();
        let b: Vec<(String, String)> =
            or_defs.into_iter().map(|(n, v)| (n, v.to_string())).collect();
        gen_values += a.len() as u64;
        if a != b {
            eprintln!("DIVERGENCE at seed {seed:#x}:\n{}", prog.source);
            divergences += 1;
        }
    }
    println!(
        "generative corpus: {GEN_CASES} programs, {gen_values} values compared, \
         {divergences} divergences"
    );
    println!();

    // ---- Gate 2: per-request data-plane loops, full application
    // loaded, 100-row dataset. These price the engines' structural
    // difference: per row the tree-walker clones the whole environment
    // (once per closure creation or application), the VM copies only
    // analyzed captures into a flat frame.
    let setup = data_plane_setup();
    let mut loops: Vec<LoopRow> = vec![
        data_plane_loop(
            "spreadsheet/totals",
            &setup,
            "s.Totals rows",
            &mut divergences,
        ),
        data_plane_loop(
            "spreadsheet/totals3",
            &setup,
            "s3.Totals rows",
            &mut divergences,
        ),
        data_plane_loop(
            "report/sum",
            &setup,
            "foldList (fn x acc => x.A + acc) 0 rows",
            &mut divergences,
        ),
        data_plane_loop(
            "report/conditional",
            &setup,
            "foldList (fn x acc => (if x.B then 2 * x.A else x.A) + acc) 0 rows",
            &mut divergences,
        ),
    ];

    // ---- Ungated: one-shot metaprogram loops. Both engines unwind the
    // same type-level program and share the builtin leaves, so the VM's
    // advantage here is structural (~2-3x), reported for honesty.
    let mktable_setup = "val f = mkTable {A = {Label = \"A\", Show = showInt}, \
                                          B = {Label = \"B\", Show = showFloat}}\n\
                         val fx = mkXmlTable {A = {Label = \"A\", Show = showInt}, \
                                              B = {Label = \"B\", Show = showFloat}}";
    let folders_setup = "val fl2 = @folderCat (folderSingle [#A] [int]) \
                                              (folderSingle [#B] [string])\n\
                         fun countFields [r :: {Type}] (fl : folder r) : int = \
                           fl [fn _ => int] \
                              (fn [nm] [t] [r] [[nm] ~ r] (acc : int) => acc + 1) 0";
    loops.extend([
        render_loop(
            "mktable/render",
            "mktable",
            mktable_setup,
            "f {A = 2, B = 3.4}",
            &mut divergences,
        ),
        render_loop(
            "mktable/render_xml",
            "mktable",
            mktable_setup,
            "renderXml (fx {A = 2, B = 3.4})",
            &mut divergences,
        ),
        render_loop(
            "folders/count",
            "folders",
            folders_setup,
            "@countFields fl2",
            &mut divergences,
        ),
        render_loop(
            "selector/predicate",
            "selector",
            "",
            "selector {Name = \"bob\", Age = 25}",
            &mut divergences,
        ),
    ]);

    println!(
        "{:>24} {:>12} {:>12} {:>9}  gate",
        "loop", "vm(us/it)", "interp(us/it)", "speedup"
    );
    let mut min_speedup = f64::INFINITY;
    for l in &loops {
        println!(
            "{:>24} {:>12.2} {:>12.2} {:>8.1}x  {}",
            l.name,
            l.vm_us,
            l.interp_us,
            l.speedup,
            if l.gated { ">=10x" } else { "-" }
        );
        if l.gated {
            min_speedup = min_speedup.min(l.speedup);
        }
    }
    println!();
    println!("minimum gated data-plane speedup: {min_speedup:.1}x (gate: {MIN_SPEEDUP}x)");
    println!("total divergences: {divergences} (gate: 0)");

    let mut json = format!(
        "{{\n  \"benchmark\": \"eval\",\n  \"metric\": \"us_per_iteration\",\n  \
         \"loop_reps\": {LOOP_REPS},\n  \"reps\": {REPS},\n  \
         \"studies_checked\": {studies_checked},\n  \
         \"generative\": {{\"programs\": {GEN_CASES}, \"values\": {gen_values}}},\n  \
         \"loops\": [\n"
    );
    for (i, l) in loops.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"vm_us\": {:.3}, \"interp_us\": {:.3}, \
             \"speedup\": {:.2}, \"gated\": {}}}",
            l.name, l.vm_us, l.interp_us, l.speedup, l.gated
        );
        json.push_str(if i + 1 < loops.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"min_speedup\": {min_speedup:.2},\n  \"divergences\": {divergences}\n}}\n"
    );
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("wrote BENCH_eval.json");

    // Hard gates: identical observable behaviour is the VM's contract,
    // and the data-plane speedup is the reason it exists.
    assert_eq!(divergences, 0, "VM diverged from the interpreter oracle");
    assert!(
        min_speedup >= MIN_SPEEDUP,
        "data-plane loop speedup {min_speedup:.1}x below the {MIN_SPEEDUP}x gate"
    );
}
