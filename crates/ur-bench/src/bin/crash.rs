//! Kill-point crash-chaos harness for the durable `ur-db` store.
//!
//! The parent process forks a *writer child* (this same binary with
//! `--child`) against a fresh database directory with `UR_DB_CRASH=abort`
//! set, so one seeded failpoint (`wal_append` / `wal_sync` /
//! `snapshot_write` / `wal_corrupt` / `wal_rotate`) aborts the child
//! mid-write — a
//! simulated power loss at the worst possible instant. The child runs a
//! deterministic operation stream and acknowledges each completed
//! operation on stdout (`C <i>`).
//!
//! The parent then reopens the directory and hard-gates the durability
//! contract against an in-memory oracle replay of the same stream:
//!
//! * **no committed transaction lost** — the recovered state covers at
//!   least every acknowledged operation;
//! * **no uncommitted effect visible** — the recovered state equals the
//!   oracle after exactly K operations for some K in
//!   [acked, acked + 1] (the at-most-one in-flight operation window);
//! * **no index divergence** — every recovered secondary index equals a
//!   fresh scan-order rebuild from the recovered rows
//!   (`Db::verify_indexes`), whether it came back via WAL replay or a
//!   snapshot load.
//!
//! The kill matrix runs every site at the fixed seeds 11/22/33 plus one
//! randomized seed (printed, and embedded in every failure message, for
//! reproduction — override with `UR_CRASH_SEED`). Each fixed-seed site
//! must observe at least one real kill. Recovery time, WAL replay
//! throughput, and per-commit fsync cost land in `BENCH_crash.json`.
//!
//! Run with `cargo run -p ur-bench --bin crash --features failpoints --release`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Command, Stdio};
use std::time::Instant;
use ur_core::failpoint::{self, FpConfig, Site};
use ur_db::{ColTy, Db, DbError, DbVal, DurabilityConfig, Schema, SqlExpr};

/// Fault sites of the durability layer, in matrix order. `wal_rotate`
/// kills in the checkpoint's crash window — after the snapshot rename,
/// before the WAL rotation — where recovery must spot the stale log by
/// its generation number instead of double-applying it.
const KILL_SITES: [Site; 5] = [
    Site::WalAppend,
    Site::WalSync,
    Site::SnapshotWrite,
    Site::WalCorrupt,
    Site::WalRotate,
];
const FIXED_SEEDS: [u64; 3] = [11, 22, 33];
/// Operations per writer-child run.
const N_OPS: u64 = 60;
/// Auto-checkpoint threshold in the child: small, so `snapshot_write`
/// has plenty of chances to fire mid-run.
const SNAPSHOT_EVERY: u64 = 8;

fn schema_ab() -> Schema {
    Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)])
        .expect("static schema")
}

fn ins(db: &mut Db, a: i64, b: &str) -> Result<(), DbError> {
    db.insert(
        "t",
        &[
            ("A".into(), SqlExpr::lit(DbVal::Int(a))),
            ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
        ],
    )
}

/// Operation `i` of the deterministic stream, shared verbatim between
/// the writer child and the parent's oracle replay — the comparison is
/// only meaningful because both sides run exactly this function.
fn apply_op(db: &mut Db, i: u64) -> Result<(), DbError> {
    let k = i as i64;
    match i {
        0 => db.create_table("t", schema_ab()),
        1 => db.try_create_sequence("ids"),
        // Index DDL sits inside the kill window like any other record:
        // recovery must rebuild the index maps from the replayed rows.
        2 => db.create_index("t_a", "t", "A"),
        20 => db.create_index("t_b", "t", "B"),
        _ if i % 10 == 3 => {
            // One multi-statement explicit transaction.
            db.begin()?;
            ins(db, k, "txn-a")?;
            ins(db, -k, "txn-b")?;
            db.commit()
        }
        _ if i % 9 == 5 => db
            .delete(
                "t",
                &SqlExpr::Lt(
                    Box::new(SqlExpr::col("A")),
                    Box::new(SqlExpr::lit(DbVal::Int(k / 4))),
                ),
            )
            .map(|_| ()),
        _ if i % 6 == 2 => db
            .update(
                "t",
                &[("B".into(), SqlExpr::lit(DbVal::Str(format!("upd{i}"))))],
                &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(k - 1))),
            )
            .map(|_| ()),
        _ if i % 4 == 1 => db.nextval("ids").map(|_| ()),
        _ => ins(db, k, "row"),
    }
}

/// The in-memory oracle after exactly `k` operations.
fn oracle_dump(k: u64) -> String {
    let mut db = Db::new();
    for i in 0..k {
        apply_op(&mut db, i).unwrap_or_else(|e| panic!("oracle op {i} failed: {e}"));
    }
    db.dump()
}

/// Writer child: runs the stream under one armed kill point, acking
/// each completed operation. Never returns normally on a kill — the
/// failpoint calls `process::abort` mid-write (`UR_DB_CRASH=abort` is
/// inherited from the parent and picked up by `Db::open_with`).
fn child(site_name: &str, seed: u64, dir: &str) -> ! {
    let site = *KILL_SITES
        .iter()
        .find(|s| s.name() == site_name)
        .unwrap_or_else(|| panic!("unknown kill site {site_name}"));
    // snapshot_write and wal_rotate only fire on checkpoints (~1 in
    // SNAPSHOT_EVERY/3 ops), so they get a hotter rate than the
    // per-append sites.
    let rate = if site == Site::SnapshotWrite || site == Site::WalRotate {
        350
    } else {
        130
    };
    failpoint::install(Some(
        FpConfig::new(seed).with_rate(site, rate).with_max_per_site(1),
    ));
    let mut db = Db::open_with(
        dir,
        DurabilityConfig {
            snapshot_every: SNAPSHOT_EVERY,
            sync_commits: true,
        },
    )
    .unwrap_or_else(|e| panic!("child open {dir}: {e}"));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for i in 0..N_OPS {
        apply_op(&mut db, i).unwrap_or_else(|e| panic!("child op {i} failed: {e}"));
        writeln!(out, "C {i}").and_then(|()| out.flush()).expect("child ack");
    }
    writeln!(out, "DONE").and_then(|()| out.flush()).expect("child done");
    std::process::exit(0)
}

struct KillRun {
    site: &'static str,
    seed: u64,
    fixed: bool,
    killed: bool,
    acked: u64,
    recovered_k: u64,
    recovery_ms: f64,
    replayed_records: u64,
    truncated_bytes: u64,
    snapshot_loaded: bool,
}

/// One parent-side kill run: spawn, (maybe) kill, recover, verify.
fn run_kill(site: Site, seed: u64, fixed: bool) -> KillRun {
    let dir = std::env::temp_dir().join(format!(
        "ur-crash-{}-{seed}-{}",
        site.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe)
        .args(["--child", site.name(), &seed.to_string(), &dir.to_string_lossy()])
        .env("UR_DB_CRASH", "abort")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn writer child");

    // `acked` counts *completed* operations (op i acked ⇒ i+1 done).
    let mut acked = 0u64;
    let mut done = false;
    if let Some(out) = cmd.stdout.take() {
        for line in BufReader::new(out).lines().map_while(Result::ok) {
            if let Some(i) = line.strip_prefix("C ").and_then(|s| s.parse::<u64>().ok()) {
                acked = i + 1;
            } else if line == "DONE" {
                done = true;
            }
        }
    }
    let status = cmd.wait().expect("wait for child");
    let killed = !done || !status.success();

    // Recovery: reopen must always succeed and yield exactly the
    // committed prefix.
    let t0 = Instant::now();
    let db = Db::open(&dir).unwrap_or_else(|e| {
        panic!(
            "recovery failed after {} kill (seed {seed}): {e}",
            site.name()
        )
    });
    let recovery_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let dump = db.dump();
    let stats = db.stats().clone();

    // The recovered state must be the oracle at K completed operations
    // for some K in [acked, acked+1]: nothing acknowledged may be lost,
    // and at most the one in-flight operation may additionally survive.
    let hi = (acked + 1).min(N_OPS);
    let recovered_k = (acked..=hi).find(|&k| oracle_dump(k) == dump).unwrap_or_else(|| {
        panic!(
            "durability contract violated: site {} seed {seed} acked {acked} — \
             recovered state matches no oracle in [{acked}, {hi}]\nrecovered:\n{dump}\n\
             oracle({acked}):\n{}",
            site.name(),
            oracle_dump(acked)
        )
    });

    // Index differential oracle: every recovered index must equal a
    // fresh scan-order rebuild from the recovered rows — WAL replay and
    // snapshot load may not leave a divergent (stale, reordered,
    // dangling) index behind.
    if let Err(e) = db.verify_indexes() {
        panic!(
            "recovered index diverges from fresh rebuild after {} kill (seed {seed}): {e}",
            site.name()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    KillRun {
        site: site.name(),
        seed,
        fixed,
        killed,
        acked,
        recovered_k,
        recovery_ms,
        replayed_records: stats.replayed_records,
        truncated_bytes: stats.truncated_bytes,
        snapshot_loaded: stats.snapshot_loaded > 0,
    }
}

/// WAL replay throughput: a long pure-WAL history (snapshots off), then
/// one timed recovery.
fn bench_replay() -> (u64, u64, f64) {
    let dir = std::env::temp_dir().join(format!("ur-crash-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Db::open_with(
            &dir,
            DurabilityConfig {
                snapshot_every: 0,
                sync_commits: false, // building the history, not testing it
            },
        )
        .expect("replay build open");
        db.create_table("t", schema_ab()).expect("replay table");
        for i in 0..500 {
            ins(&mut db, i, "bulk").expect("replay insert");
        }
    }
    let t0 = Instant::now();
    let db = Db::open(&dir).expect("replay recovery");
    let ms = t0.elapsed().as_secs_f64() * 1000.0;
    let (txns, records) = (db.stats().recovered_txns, db.stats().replayed_records);
    let _ = std::fs::remove_dir_all(&dir);
    (txns, records, ms)
}

/// Per-commit fsync cost: timed auto-commit inserts with and without
/// `sync_commits`.
fn bench_fsync() -> (f64, f64) {
    let mut per_commit = [0.0f64; 2];
    for (slot, sync) in [(0usize, true), (1usize, false)] {
        let dir = std::env::temp_dir().join(format!(
            "ur-crash-fsync-{sync}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Db::open_with(
            &dir,
            DurabilityConfig {
                snapshot_every: 0,
                sync_commits: sync,
            },
        )
        .expect("fsync bench open");
        db.create_table("t", schema_ab()).expect("fsync bench table");
        const N: u64 = 64;
        let t0 = Instant::now();
        for i in 0..N {
            ins(&mut db, i as i64, "fsync").expect("fsync bench insert");
        }
        per_commit[slot] = t0.elapsed().as_secs_f64() * 1000.0 / N as f64;
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    (per_commit[0], per_commit[1])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 5 && args[1] == "--child" {
        let seed = args[3].parse::<u64>().expect("child seed");
        child(&args[2], seed, &args[4]);
    }

    // One randomized seed per invocation, printed (and embedded in any
    // failure message) so a red run reproduces exactly.
    let random_seed = std::env::var("UR_CRASH_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 | 1)
                .unwrap_or(1)
        });
    println!("Crash-chaos harness — kill-point matrix over the durable ur-db store");
    println!(
        "fixed seeds {FIXED_SEEDS:?}; randomized seed {random_seed} \
         (re-run with UR_CRASH_SEED={random_seed})"
    );
    println!();

    let mut runs: Vec<KillRun> = Vec::new();
    for &site in &KILL_SITES {
        for &seed in &FIXED_SEEDS {
            runs.push(run_kill(site, seed, true));
        }
        runs.push(run_kill(site, random_seed, false));
    }

    println!(
        "{:>15} {:>12} {:>6} {:>6} {:>6} {:>7} {:>11} {:>9} {:>9}",
        "site", "seed", "fixed", "killed", "acked", "rec_k", "recovery_ms", "replayed", "truncated"
    );
    for r in &runs {
        println!(
            "{:>15} {:>12} {:>6} {:>6} {:>6} {:>7} {:>11.2} {:>9} {:>9}",
            r.site, r.seed, r.fixed, r.killed, r.acked, r.recovered_k, r.recovery_ms,
            r.replayed_records, r.truncated_bytes
        );
    }
    println!();

    let (replay_txns, replay_records, replay_ms) = bench_replay();
    let replay_rps = replay_records as f64 / (replay_ms / 1000.0).max(1e-9);
    let (sync_ms, nosync_ms) = bench_fsync();
    println!(
        "wal replay: {replay_txns} txns / {replay_records} records in {replay_ms:.2} ms \
         ({replay_rps:.0} records/s)"
    );
    println!(
        "fsync cost: {sync_ms:.3} ms/commit synced vs {nosync_ms:.3} ms/commit unsynced"
    );
    let kills = runs.iter().filter(|r| r.killed).count();
    let max_recovery = runs.iter().map(|r| r.recovery_ms).fold(0.0f64, f64::max);
    println!(
        "runs: {}; kills: {kills}; max recovery {max_recovery:.2} ms",
        runs.len()
    );

    let mut json = format!(
        "{{\n  \"benchmark\": \"crash\",\n  \"metric\": \"durability\",\n  \
         \"fixed_seeds\": {FIXED_SEEDS:?},\n  \"random_seed\": {random_seed},\n  \
         \"ops_per_run\": {N_OPS},\n  \"runs\": [\n"
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"site\": \"{}\", \"seed\": {}, \"fixed\": {}, \"killed\": {}, \
             \"acked\": {}, \"recovered_k\": {}, \"recovery_ms\": {:.3}, \
             \"replayed_records\": {}, \"truncated_bytes\": {}, \"snapshot_loaded\": {}}}",
            r.site, r.seed, r.fixed, r.killed, r.acked, r.recovered_k, r.recovery_ms,
            r.replayed_records, r.truncated_bytes, r.snapshot_loaded
        );
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    let _ = write!(json, "  ],\n  \"kills_per_site\": {{");
    for (i, site) in KILL_SITES.iter().enumerate() {
        let n = runs
            .iter()
            .filter(|r| r.site == site.name() && r.killed)
            .count();
        let _ = write!(json, "{}\"{}\": {n}", if i > 0 { ", " } else { "" }, site.name());
    }
    let _ = write!(
        json,
        "}},\n  \"kills\": {kills},\n  \"max_recovery_ms\": {max_recovery:.3},\n  \
         \"wal_replay\": {{\"txns\": {replay_txns}, \"records\": {replay_records}, \
         \"ms\": {replay_ms:.3}, \"records_per_sec\": {replay_rps:.0}}},\n  \
         \"fsync\": {{\"sync_ms_per_commit\": {sync_ms:.4}, \
         \"nosync_ms_per_commit\": {nosync_ms:.4}}}\n}}\n"
    );
    std::fs::write("BENCH_crash.json", &json).expect("write BENCH_crash.json");
    println!("wrote BENCH_crash.json");

    // Hard gate: every fixed-seed site slice must include a real kill —
    // a matrix that never kills proves nothing. (Every run has already
    // gated the oracle match; violations panicked in run_kill.)
    for site in &KILL_SITES {
        let fixed_kills = runs
            .iter()
            .filter(|r| r.site == site.name() && r.fixed && r.killed)
            .count();
        assert!(
            fixed_kills > 0,
            "kill site {} never fired across fixed seeds {FIXED_SEEDS:?}",
            site.name()
        );
    }
}
