//! Regenerates the paper's Figure 5: code sizes of case-study components'
//! interfaces and implementations, along with invocation counts for the
//! critical pieces of type inference (disjointness prover; map-identity,
//! map-distributivity, and map-fusion laws).
//!
//! Run with `cargo run -p ur-bench --bin figure5 --release`.

fn main() {
    println!("Figure 5 reproduction — paper vs. measured");
    println!("(absolute numbers differ: our components are re-writings on a");
    println!(" reduced substrate; the paper's claim is the *shape* — see");
    println!(" EXPERIMENTS.md)");
    println!();
    let header = format!(
        "{:18} {:>5} {:>5} {:>6} {:>5} {:>5} {:>5}   paper (Int/Imp/Disj/Id/Dist/Fuse)",
        "Component", "Int.", "Imp.", "Disj.", "Id.", "Dist.", "Fuse"
    );
    println!("{header}");
    let mut total_disj = 0;
    for (rep, paper) in ur_bench::figure5_reports() {
        let paper_s = match paper {
            Some((i, m, d, id, di, fu)) => format!("{i}/{m}/{d}/{id}/{di}/{fu}"),
            None => "(extra component, not in Fig. 5)".to_string(),
        };
        println!(
            "{:18} {:>5} {:>5} {:>6} {:>5} {:>5} {:>5}   {}",
            rep.title,
            rep.interface_loc,
            rep.impl_loc,
            rep.stats.disjoint_prover_calls,
            rep.stats.law_map_identity,
            rep.stats.law_map_distrib,
            rep.stats.law_map_fusion,
            paper_s,
        );
        total_disj += rep.stats.disjoint_prover_calls;
    }
    println!();
    println!("total disjointness prover invocations: {total_disj}");
}
