//! Chaos differential benchmark: the combined Figure-5 batch and an
//! adversarial mixed-error batch, elaborated under seeded fault
//! schedules (`ur_core::failpoint`) at 1, 2, 4, and 8 worker threads,
//! compared declaration-by-declaration against a clean sequential
//! baseline. Dedicated schedules additionally storm the durability
//! layer (`wal_havoc`) and the supervised TCP serving layer
//! (`serve_havoc`), where the invariant is answer-correctness rather
//! than decl equality: degradation may shed, tear, or expire requests,
//! but a delivered OK answer must match the oracle.
//!
//! Two hard gates, written to `BENCH_chaos.json`:
//!
//! * **zero divergence** — elaborated declarations (up to fresh symbol
//!   ids) and diagnostics under every fault schedule must equal the
//!   clean sequential run's. Faults may cost retries and recomputation;
//!   they must never change results.
//! * **full site coverage** — every named fault site must actually fire
//!   at least once across the bench, so none of the recovery paths is
//!   silently untested.
//!
//! Every run's seed is printed; any failure reproduces by re-running
//! with the same seed (see docs/ROBUSTNESS.md).
//!
//! Run with `cargo run -p ur-bench --bin chaos --features failpoints --release`.

use std::fmt::Write as _;
use std::time::Instant;
use ur_core::failpoint::{self, FpConfig, FpCounters, Site};
use ur_studies::{studies, study, Study};
use ur_web::Session;

const MATRIX_SEEDS: &[u64] = &[0x5EED_0001, 0x5EED_0002, 0x5EED_0003];
const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Independent wide `mkTable` clients appended to the Figure-5 batch so
/// the dependency graph has parallel width (same shape as the parallel
/// benchmark, slightly smaller — chaos runs the batch many times).
const CLIENT_FAN: usize = 4;
const CLIENT_WIDTH: usize = 8;

/// A fault schedule touching every site at moderate rates. Faults per
/// site are capped *below* every retry budget (task re-dispatch and
/// declaration retry both allow 3+ attempts), so self-healing always
/// converges to the clean result.
fn balanced(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(2)
        .with_rate(Site::WorkerSpawn, 120)
        .with_rate(Site::WorkerExec, 180)
        .with_rate(Site::WorkerSend, 180)
        .with_rate(Site::WorkerStall, 120)
        .with_rate(Site::MemoLoad, 60)
        .with_rate(Site::MemoStore, 60)
        .with_rate(Site::InternGrow, 40)
        .with_rate(Site::FuelCharge, 4)
}

/// Every spawn fails (capped): the pool comes up short-handed and the
/// merge loop's sequential fallback covers the difference.
fn spawn_storm(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(2)
        .with_rate(Site::WorkerSpawn, 1000)
}

/// Worker-lifecycle havoc: deaths, lost results, and stalls at high
/// rates, exercising watchdog, re-dispatch, and the duplicate guard.
fn worker_havoc(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(2)
        .with_rate(Site::WorkerExec, 800)
        .with_rate(Site::WorkerSend, 800)
        .with_rate(Site::WorkerStall, 400)
}

/// State-layer havoc: memo corruption, intern-table rehash, and phantom
/// fuel bursts, exercising integrity rejection and declaration retry.
fn state_havoc(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(2)
        .with_rate(Site::MemoLoad, 400)
        .with_rate(Site::MemoStore, 400)
        .with_rate(Site::InternGrow, 300)
        .with_rate(Site::FuelCharge, 20)
}

/// Disk-cache havoc for the incremental engine: stores corrupt their
/// integrity tag, loads return unreadable bytes. Every damaged entry
/// must degrade to a recompute, never to a wrong answer.
fn cache_havoc(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(2)
        .with_rate(Site::CacheLoad, 500)
        .with_rate(Site::CacheStore, 500)
}

/// Serve-layer havoc: dropped accepts, torn reads, lost writes, and
/// wedged workers at the TCP front door. Supervision may cost restarts,
/// replays, and structured shed/lost answers; it must never produce a
/// *wrong* answer.
///
/// Failpoint draws are per-thread and every handler/worker thread
/// replays the same stream, so a raw seed whose *first* read, write, or
/// wedge consult fires would tear every fresh connection (or kill every
/// fresh worker) at the same spot — zero throughput, or a wedge per
/// request. The schedule therefore *derives* a seed whose hit-0 draws
/// pass and whose streams provably fire at hit indexes a surviving
/// connection reaches. One more wrinkle: a connection tears at
/// whichever of read (consulted before the answer) and write (after it)
/// fires first, so a single seed can only ever exercise one of the two
/// — `read_first` picks which, and the matrix alternates it.
fn serve_havoc(seed: u64, read_first: bool) -> FpConfig {
    let fires = |seed: u64, site: Site, hit: u64, rate: u64| {
        let mut z = seed ^ (site.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ hit;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % 1000 < rate
    };
    let mut seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5E12_7E57;
    loop {
        let first = |site: Site, rate: u64| (1..=8u64).find(|&h| fires(seed, site, h, rate));
        let (r, w) = (first(Site::ServeRead, 200), first(Site::ServeWrite, 200));
        let hit0_pass = !fires(seed, Site::ServeRead, 0, 200)
            && !fires(seed, Site::ServeWrite, 0, 200)
            && !fires(seed, Site::ServeWedge, 0, 150);
        let tear_ok = if read_first {
            r.is_some() && w.is_none_or(|w| r.unwrap_or(u64::MAX) <= w)
        } else {
            w.is_some() && r.is_none_or(|r| w.unwrap_or(u64::MAX) < r)
        };
        if hit0_pass && tear_ok && (1..=6).any(|h| fires(seed, Site::ServeWedge, h, 150)) {
            break;
        }
        seed = seed.wrapping_add(1);
    }
    FpConfig::new(seed)
        .with_max_per_site(6)
        .with_rate(Site::ServeAccept, 250)
        .with_rate(Site::ServeRead, 200)
        .with_rate(Site::ServeWrite, 200)
        .with_rate(Site::ServeWedge, 150)
}

/// One serve chaos pass: an in-process `ur-serve` front door under
/// `cfg`, driven by a sequential client that retries through torn
/// connections. Divergence means an OK answer with wrong content —
/// a load of a trivially-valid program reporting non-deadline
/// diagnostics, or an eval answering the wrong value. Structured
/// degradation (shed, lost, deadline-expired, E0900) is tolerated by
/// construction.
fn run_serve_havoc(cfg: FpConfig) -> (f64, FpCounters, bool) {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use ur_serve::{ServeConfig, Server};
    let cache = std::env::temp_dir().join(format!(
        "ur-chaos-serve-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache);
    let server = Server::start(ServeConfig {
        workers: 2,
        deadline_ms: 250,
        watchdog_ms: 50,
        threads: Some(1),
        cache_dir: Some(cache.clone()),
        fp: Some(cfg),
        ..ServeConfig::default()
    })
    .expect("serve bind");
    let addr = server.addr();
    struct Conn {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }
    impl Conn {
        // `None` means the connection tore (an injected fault): the
        // caller reconnects, which is exactly what a real client does.
        fn roundtrip(&mut self, line: &str) -> Option<String> {
            if writeln!(self.writer, "{line}").is_err() {
                return None;
            }
            let mut resp = String::new();
            match self.reader.read_line(&mut resp) {
                Ok(n) if n > 0 => Some(resp),
                _ => None,
            }
        }
    }
    let mut diverged = false;
    let start = Instant::now();
    // Connections persist across requests (so later per-thread fault
    // draws get consulted) and reconnect whenever one tears.
    let mut client: Option<Conn> = None;
    for i in 0..40i64 {
        let c = match client.as_mut() {
            Some(c) => c,
            None => {
                let Ok(stream) = TcpStream::connect(addr) else {
                    continue;
                };
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(20)));
                let Ok(rs) = stream.try_clone() else { continue };
                client.insert(Conn {
                    reader: BufReader::new(rs),
                    writer: stream,
                })
            }
        };
        let Some(resp) = c.roundtrip(&format!("{{\"cmd\":\"load\",\"source\":\"val v = {i}\"}}"))
        else {
            client = None;
            continue;
        };
        if !resp.contains("\"ok\":true") {
            continue; // structured shed/lost/expired answer: tolerated
        }
        if !resp.contains("\"diagnostics\":[]") {
            // Degraded rebuild: only a deadline-budget E0900 is legal.
            diverged |= !resp.contains("E0900");
            continue;
        }
        let Some(resp) = c.roundtrip("{\"cmd\":\"eval\",\"expr\":\"v + 1\"}") else {
            client = None;
            continue;
        };
        if resp.contains("\"ok\":true") && !resp.contains(&format!("\"value\":\"{}\"", i + 1)) {
            diverged = true;
        }
    }
    drop(client);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    server.start_drain();
    let summary = server.wait();
    let _ = std::fs::remove_dir_all(&cache);
    (ms, summary.faults, diverged)
}

/// Durability-layer havoc: WAL appends and fsyncs fail, commit records
/// reach the disk torn, snapshot writes die mid-checkpoint, rotations
/// fail after their snapshot landed (poisoning the handle until a later
/// checkpoint heals it). A failed commit must leave no trace (live
/// state and recovered state both match an in-memory oracle that skips
/// exactly the failed operations).
fn wal_havoc(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(4)
        .with_rate(Site::WalAppend, 220)
        .with_rate(Site::WalSync, 220)
        .with_rate(Site::WalCorrupt, 220)
        .with_rate(Site::SnapshotWrite, 400)
        .with_rate(Site::WalRotate, 400)
}

/// One durability chaos pass: a deterministic operation stream against
/// a durable database under `cfg` (simulate mode: injected faults are
/// `Err`s, not crashes — the kill-point variant is the `crash` bin),
/// mirrored onto an in-memory oracle only when the durable operation
/// succeeded. Divergence means either the live state or the recovered
/// state differs from the oracle.
fn run_wal_havoc(cfg: FpConfig) -> (f64, FpCounters, bool) {
    use ur_db::{ColTy, Db, DbVal, DurabilityConfig, Schema, SqlExpr};
    let dir = std::env::temp_dir().join(format!(
        "ur-chaos-wal-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Db::open_with(
        &dir,
        DurabilityConfig { snapshot_every: 8, sync_commits: true },
    )
    .expect("durable open");
    let mut oracle = Db::new();
    let schema = || {
        Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)]).expect("schema")
    };
    let row = |a: i64| {
        [
            ("A".into(), SqlExpr::lit(DbVal::Int(a))),
            ("B".into(), SqlExpr::lit(DbVal::Str(format!("r{a}")))),
        ]
    };
    // The table and sequence exist before any fault can fire, so every
    // later operation is logically valid on both sides.
    db.create_table("t", schema()).expect("table");
    db.try_create_sequence("s").expect("sequence");
    oracle.create_table("t", schema()).expect("oracle table");
    oracle.try_create_sequence("s").expect("oracle sequence");

    let _ = failpoint::take_counters();
    failpoint::install(Some(cfg));
    let start = Instant::now();
    for i in 0..60i64 {
        match i % 5 {
            // An explicit multi-statement transaction: all-or-nothing.
            0 => {
                let mut ok = db.begin().is_ok();
                ok = ok && db.insert("t", &row(i)).is_ok();
                ok = ok && db.insert("t", &row(i + 1000)).is_ok();
                if ok && db.commit().is_ok() {
                    oracle.insert("t", &row(i)).expect("oracle insert");
                    oracle.insert("t", &row(i + 1000)).expect("oracle insert");
                } else if db.in_txn() {
                    let _ = db.rollback();
                }
            }
            1 | 2 => {
                if db.insert("t", &row(i)).is_ok() {
                    oracle.insert("t", &row(i)).expect("oracle insert");
                }
            }
            3 => {
                if db.nextval("s").is_ok() {
                    oracle.nextval("s").expect("oracle nextval");
                }
            }
            _ => {
                let pred = SqlExpr::Lt(
                    Box::new(SqlExpr::col("A")),
                    Box::new(SqlExpr::lit(DbVal::Int(i / 3))),
                );
                if db.delete("t", &pred).is_ok() {
                    oracle.delete("t", &pred).expect("oracle delete");
                }
            }
        }
    }
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    failpoint::install(None);
    let injected = failpoint::take_counters();

    let live_diverged = db.dump() != oracle.dump();
    drop(db);
    // A clean reopen over whatever the faults left on disk (including a
    // deliberately-torn tail) must still recover exactly the oracle.
    let recovered = Db::open(&dir).expect("recovery after simulate-mode havoc");
    let recovered_diverged = recovered.dump() != oracle.dump();
    let _ = std::fs::remove_dir_all(&dir);
    (ms, injected, live_diverged || recovered_diverged)
}

/// Combined batch: every study's transitive dependencies (depth-first,
/// deduplicated), implementation, and usage demo, then the client fan.
fn combined_source() -> String {
    fn push_impl(parts: &mut Vec<&'static str>, s: &Study) {
        for dep in s.deps {
            push_impl(parts, &study(dep));
        }
        let src = s.implementation();
        if !parts.contains(&src) {
            parts.push(src);
        }
    }
    let mut parts: Vec<&'static str> = Vec::new();
    let mut usages: Vec<&'static str> = Vec::new();
    for s in studies() {
        push_impl(&mut parts, &s);
        usages.push(s.usage);
    }
    parts.extend(usages);
    let mut src = parts.join("\n");
    for c in 0..CLIENT_FAN {
        let mut meta = String::new();
        let mut row = String::new();
        for i in 0..CLIENT_WIDTH {
            if i > 0 {
                meta.push_str(", ");
                row.push_str(", ");
            }
            let _ = write!(meta, "F{c}x{i} = {{Label = \"f{i}\", Show = showInt}}");
            let _ = write!(row, "F{c}x{i} = {i}");
        }
        let _ = write!(
            src,
            "\nval client{c} = mkTable {{{meta}}}\nval render{c} = client{c} {{{row}}}"
        );
    }
    src
}

/// Mixed-error batch: the multi-error contract (every bad declaration
/// diagnosed, every good one elaborated) must hold identically under
/// faults at every thread count.
fn adversarial_source() -> String {
    "val ok1 = 1 + 2\n\
     val bad_type : int = \"nope\"\n\
     val bad_unbound = missing\n\
     fun ok2 (x : int) = x * 2\n\
     val bad_overlap = {A = 1} ++ {A = 2}\n\
     val ok3 = ok2 ok1\n\
     fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
        (x : $([nm = t] ++ r)) = x.nm\n\
     val ok4 = proj [#A] {A = 40, B = \"b\"} + 2\n\
     val ok5 = ok3 + ok4"
        .to_string()
}

/// Erases gensym counters (`foo#123` -> `foo#`) so runs drawing
/// different fresh-symbol numbers compare structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

/// Elaborates `src` once in a fresh session under `cfg` (or clean, with
/// `None`). The schedule is installed after session construction so the
/// prelude does not consume the per-site fault caps, and uninstalled
/// before returning. Returns (ms, decl fingerprints, diag fingerprints,
/// faults injected during the run).
fn run_once(
    src: &str,
    threads: usize,
    cfg: Option<FpConfig>,
) -> (f64, Vec<String>, Vec<String>, FpCounters) {
    let mut sess = Session::new().expect("session");
    let _ = failpoint::take_counters();
    failpoint::install(cfg);
    let start = Instant::now();
    let (decls, diags) = sess.elab.elab_source_all_threads(src, threads);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    failpoint::install(None);
    let injected = failpoint::take_counters();
    let decl_fps = decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    let diag_fps = diags.iter().map(|d| d.to_string()).collect();
    (ms, decl_fps, diag_fps, injected)
}

/// One chaos pass through the incremental engine: build under a faulty
/// store layer, then rebuild with a fresh engine under a faulty load
/// layer. Corrupted entries are rejected and recomputed; the rebuild's
/// declarations and diagnostics must still match the clean baseline.
fn run_once_cache(src: &str, cfg: FpConfig) -> (f64, Vec<String>, Vec<String>, FpCounters) {
    use ur_query::{Engine, EngineConfig};
    let dir = std::env::temp_dir().join(format!("ur-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut sess = Session::new().expect("session");
    let base = sess.elab.snapshot();
    let base_tag = ur_core::fingerprint::hash_str(ur_web::PRELUDE);
    let mk = || Engine::new(EngineConfig { cache_dir: Some(dir.clone()), base_tag });
    let _ = failpoint::take_counters();
    failpoint::install(Some(cfg));
    let start = Instant::now();
    mk().run(&mut sess.elab, src, 1);
    sess.elab.restore(base);
    let (decls, diags, _report) = mk().run(&mut sess.elab, src, 1);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    failpoint::install(None);
    let injected = failpoint::take_counters();
    let _ = std::fs::remove_dir_all(&dir);
    let decl_fps = decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    let diag_fps = diags.iter().map(|d| d.to_string()).collect();
    (ms, decl_fps, diag_fps, injected)
}

struct RunRecord {
    corpus: &'static str,
    schedule: &'static str,
    seed: u64,
    threads: usize,
    ms: f64,
    injected: u64,
    rejections: u64,
    diverged: bool,
}

fn main() {
    // Short watchdog so injected stalls cost milliseconds, not seconds.
    // Spurious trips only cause (dup-guarded) re-dispatches.
    if std::env::var_os("UR_WATCHDOG_MS").is_none() {
        std::env::set_var("UR_WATCHDOG_MS", "50");
    }

    let fig5 = combined_source();
    let adv = adversarial_source();
    let corpora: [(&'static str, &str); 2] = [("figure5", &fig5), ("adversarial", &adv)];

    println!("Chaos differential benchmark — seeded fault schedules vs clean sequential");
    println!();

    let mut baselines: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for (name, src) in &corpora {
        let (_, decls, diags, injected) = run_once(src, 1, None);
        assert_eq!(injected, FpCounters::default(), "baseline must be fault-free");
        println!(
            "baseline [{name}]: {} decls, {} diagnostics (clean, sequential)",
            decls.len(),
            diags.len()
        );
        baselines.push((decls, diags));
    }
    println!();

    let mut rows: Vec<RunRecord> = Vec::new();
    let mut totals = FpCounters::default();
    let chaos = |corpus_ix: usize,
                     schedule: &'static str,
                     cfg: FpConfig,
                     threads: usize,
                     rows: &mut Vec<RunRecord>,
                     totals: &mut FpCounters| {
        let (name, src) = corpora[corpus_ix];
        let (base_decls, base_diags) = &baselines[corpus_ix];
        let (ms, decls, diags, injected) = run_once(src, threads, Some(cfg));
        totals.absorb(&injected);
        rows.push(RunRecord {
            corpus: name,
            schedule,
            seed: cfg.seed,
            threads,
            ms,
            injected: injected.total_injected(),
            rejections: injected.integrity_rejections,
            diverged: decls != *base_decls || diags != *base_diags,
        });
    };

    for &seed in MATRIX_SEEDS {
        for &t in THREAD_COUNTS {
            for corpus_ix in 0..corpora.len() {
                chaos(corpus_ix, "balanced", balanced(seed), t, &mut rows, &mut totals);
            }
        }
    }
    // Targeted schedules: make each recovery path certain to run at
    // least once regardless of how the balanced draws land.
    chaos(0, "spawn_storm", spawn_storm(0xD00D), 4, &mut rows, &mut totals);
    chaos(0, "worker_havoc", worker_havoc(0xBAD), 4, &mut rows, &mut totals);
    chaos(0, "state_havoc", state_havoc(0xC0DE), 1, &mut rows, &mut totals);
    chaos(1, "state_havoc", state_havoc(0xC0DE), 4, &mut rows, &mut totals);
    // Incremental-engine cache corruption, against both corpora.
    for corpus_ix in 0..corpora.len() {
        let cfg = cache_havoc(0xCAC4E + corpus_ix as u64);
        let (name, src) = corpora[corpus_ix];
        let (base_decls, base_diags) = &baselines[corpus_ix];
        let (ms, decls, diags, injected) = run_once_cache(src, cfg);
        totals.absorb(&injected);
        rows.push(RunRecord {
            corpus: name,
            schedule: "cache_havoc",
            seed: cfg.seed,
            threads: 1,
            ms,
            injected: injected.total_injected(),
            rejections: injected.integrity_rejections,
            diverged: decls != *base_decls || diags != *base_diags,
        });
    }
    // Durability-layer havoc against the WAL + snapshot store: failed
    // commits must vanish without trace, live and recovered state both
    // tracking the in-memory oracle.
    for &seed in MATRIX_SEEDS {
        let cfg = wal_havoc(seed);
        let (ms, injected, diverged) = run_wal_havoc(cfg);
        totals.absorb(&injected);
        rows.push(RunRecord {
            corpus: "ur-db",
            schedule: "wal_havoc",
            seed: cfg.seed,
            threads: 1,
            ms,
            injected: injected.total_injected(),
            rejections: injected.integrity_rejections,
            diverged,
        });
    }
    // Serve-layer havoc against the supervised TCP front door: torn
    // connections and wedged workers may shed or lose requests, but a
    // delivered OK answer must never be wrong.
    for (ix, &seed) in MATRIX_SEEDS.iter().enumerate() {
        let cfg = serve_havoc(seed, ix % 2 == 0);
        let (ms, injected, diverged) = run_serve_havoc(cfg);
        totals.absorb(&injected);
        rows.push(RunRecord {
            corpus: "ur-serve",
            schedule: "serve_havoc",
            seed: cfg.seed,
            threads: 2,
            ms,
            injected: injected.total_injected(),
            rejections: injected.integrity_rejections,
            diverged,
        });
    }

    println!(
        "{:>12} {:>12} {:>10} {:>8} {:>9} {:>9} {:>8} {:>9}",
        "corpus", "schedule", "seed", "threads", "ms", "injected", "rejects", "diverged"
    );
    for r in &rows {
        println!(
            "{:>12} {:>12} {:>10} {:>8} {:>9.1} {:>9} {:>8} {:>9}",
            r.corpus, r.schedule, r.seed, r.threads, r.ms, r.injected, r.rejections, r.diverged
        );
    }
    println!();
    println!(
        "faults injected per site: {}",
        Site::ALL
            .iter()
            .map(|s| format!("{}={}", s.name(), totals.injected[s.index()]))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let divergences = rows.iter().filter(|r| r.diverged).count();
    println!(
        "runs: {}; divergences: {divergences}; sites exercised: {}/{}",
        rows.len(),
        totals.sites_exercised(),
        Site::ALL.len()
    );

    let mut json = format!(
        "{{\n  \"benchmark\": \"chaos\",\n  \"metric\": \"divergence\",\n  \
         \"matrix_seeds\": {MATRIX_SEEDS:?},\n  \"thread_counts\": {THREAD_COUNTS:?},\n  \
         \"runs\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"corpus\": \"{}\", \"schedule\": \"{}\", \"seed\": {}, \
             \"threads\": {}, \"ms\": {:.2}, \"injected\": {}, \
             \"integrity_rejections\": {}, \"diverged\": {}}}",
            r.corpus, r.schedule, r.seed, r.threads, r.ms, r.injected, r.rejections, r.diverged
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(json, "  ],\n  \"faults_per_site\": {{");
    for (i, s) in Site::ALL.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{}\": {}",
            if i > 0 { ", " } else { "" },
            s.name(),
            totals.injected[s.index()]
        );
    }
    let _ = write!(
        json,
        "}},\n  \"integrity_rejections\": {},\n  \"sites_exercised\": {},\n  \
         \"divergence_count\": {divergences}\n}}\n",
        totals.integrity_rejections,
        totals.sites_exercised()
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");

    // Hard gate 1: faults never change results.
    assert_eq!(
        divergences, 0,
        "chaos runs diverged from the clean sequential baseline"
    );
    // Hard gate 2: every recovery path actually ran.
    assert_eq!(
        totals.sites_exercised(),
        Site::ALL.len(),
        "some fault sites never fired: {}",
        Site::ALL
            .iter()
            .filter(|s| totals.injected[s.index()] == 0)
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
