//! Storage-engine benchmark and consistency gates for the ur-db v2
//! engine (indexes, cost-based planner, MVCC snapshots).
//!
//! Four phases, all hard-gated:
//!
//! 1. **Populate** — a 1M-row table with secondary indexes on its key
//!    and group columns, inserted in bijectively-shuffled key order so
//!    index maintenance sees non-sequential keys.
//! 2. **Probe vs scan** — timed equality lookups with the planner on
//!    (index probes) and off (full scans). Gate: the per-query probe is
//!    at least 100x faster than the scan.
//! 3. **Planner divergence** — seeded random predicates (equality,
//!    ranges, AND/OR/NOT combinations) executed planner-on and
//!    planner-off over both a 20k-row table and the 1M-row table.
//!    Gate: zero result-set divergence. Fixed seeds 11/22/33 plus one
//!    randomized seed (printed; reproduce with `UR_DB_BENCH_SEED`).
//! 4. **MVCC chaos** — a writer runs balanced transfer transactions
//!    (total balance is invariant) and publishes snapshots — sometimes
//!    deliberately mid-transaction, which must surface the begin state —
//!    while reader threads sum balances through read-only snapshot
//!    handles. Gates: zero torn reads (every read sums to the invariant
//!    total over the full row count), zero stale reads (published
//!    snapshot epochs never regress), and checkpoint GC reclaims dead
//!    versions once the snapshots die.
//!
//! Results land in `BENCH_db.json`. Run with
//! `cargo run -p ur-bench --bin db --release`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ur_db::{ColTy, Db, DbSnapshot, DbVal, Schema, SqlExpr};
use ur_testutil::Rng;

const FIXED_SEEDS: [u64; 3] = [11, 22, 33];
/// Rows in the big table (override with `UR_DB_BENCH_ROWS` for quick
/// local iteration; the shipped gates are calibrated for 1M).
const BIG_ROWS: usize = 1_000_000;
const SMALL_ROWS: usize = 20_000;
/// Equality lookups timed per side.
const PROBES: usize = 2_000;
const SCANS: usize = 30;
/// Per-query speedup the index must deliver on the big table.
const SPEEDUP_GATE: f64 = 100.0;

fn schema_kgs() -> Schema {
    Schema::new(vec![
        ("K".into(), ColTy::Int),
        ("G".into(), ColTy::Int),
        ("S".into(), ColTy::Str),
    ])
    .expect("static schema")
}

/// Builds a `(K, G, S)` table of `n` rows with indexes on `K` (unique
/// values, bijectively shuffled insert order) and `G` (`K % 1000`).
fn populate(db: &mut Db, table: &str, n: usize) {
    db.create_table(table, schema_kgs())
        .unwrap_or_else(|e| panic!("create {table}: {e}"));
    db.create_index(&format!("{table}_k"), table, "K")
        .expect("index on K");
    db.create_index(&format!("{table}_g"), table, "G")
        .expect("index on G");
    // 7919 is coprime to any power-of-(2,5) size, so `i -> i*7919 mod n`
    // is a bijection: unique keys, non-sequential arrival order.
    for i in 0..n {
        let k = (i * 7919) % n;
        db.insert(
            table,
            &[
                ("K".into(), SqlExpr::lit(DbVal::Int(k as i64))),
                ("G".into(), SqlExpr::lit(DbVal::Int((k % 1000) as i64))),
                ("S".into(), SqlExpr::lit(DbVal::Str(format!("s{}", k % 5000)))),
            ],
        )
        .unwrap_or_else(|e| panic!("insert {table}[{i}]: {e}"));
    }
}

fn eq_k(k: i64) -> SqlExpr {
    SqlExpr::eq(SqlExpr::col("K"), SqlExpr::lit(DbVal::Int(k)))
}

/// One seeded random predicate over the `(K, G, S)` schema: the shapes
/// the planner distinguishes (probeable equality and ranges) plus the
/// ones that must fall back (OR, NOT, no indexed conjunct).
fn gen_pred(rng: &mut Rng, n: i64) -> SqlExpr {
    let lit = |v: i64| SqlExpr::lit(DbVal::Int(v));
    let range = |rng: &mut Rng| {
        let lo = rng.range_i64(-10, n);
        let hi = lo + rng.range_i64(0, n / 4);
        SqlExpr::and(
            SqlExpr::Le(Box::new(lit(lo)), Box::new(SqlExpr::col("K"))),
            SqlExpr::Lt(Box::new(SqlExpr::col("K")), Box::new(lit(hi))),
        )
    };
    match rng.below(8) {
        0 => eq_k(rng.range_i64(-10, n + 10)),
        1 => range(rng),
        2 => SqlExpr::eq(SqlExpr::col("G"), lit(rng.range_i64(-2, 1002))),
        3 => SqlExpr::and(
            SqlExpr::eq(SqlExpr::col("G"), lit(rng.range_i64(0, 1000))),
            SqlExpr::Lt(Box::new(SqlExpr::col("K")), Box::new(lit(rng.range_i64(0, n)))),
        ),
        4 => SqlExpr::or(eq_k(rng.range_i64(0, n)), eq_k(rng.range_i64(0, n))),
        5 => SqlExpr::not(range(rng)),
        6 => SqlExpr::eq(
            SqlExpr::col("S"),
            SqlExpr::lit(DbVal::Str(format!("s{}", rng.below(6000)))),
        ),
        _ => SqlExpr::and(
            range(rng),
            SqlExpr::or(
                SqlExpr::eq(SqlExpr::col("G"), lit(rng.range_i64(0, 1000))),
                SqlExpr::eq(
                    SqlExpr::col("S"),
                    SqlExpr::lit(DbVal::Str(format!("s{}", rng.below(6000)))),
                ),
            ),
        ),
    }
}

/// Result set as an order-independent fingerprint: access paths are
/// free to yield rows in probe order vs scan order; the *set* must
/// match exactly.
fn row_set(rows: &[Vec<DbVal>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(DbVal::to_sql)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

/// Planner-on vs planner-off differential over `preds_per_seed`
/// generated predicates; returns (queries, divergences).
fn divergence_round(db: &mut Db, table: &str, n: i64, seed: u64, preds: usize) -> (u64, u64) {
    let mut rng = Rng::new(seed ^ 0x9e3779b97f4a7c15);
    let mut diverged = 0u64;
    for q in 0..preds {
        let pred = gen_pred(&mut rng, n);
        db.set_planner(true);
        let on = db
            .select(table, &pred)
            .unwrap_or_else(|e| panic!("planner-on select (seed {seed}, q {q}): {e}"));
        db.set_planner(false);
        let off = db
            .select(table, &pred)
            .unwrap_or_else(|e| panic!("planner-off select (seed {seed}, q {q}): {e}"));
        db.set_planner(true);
        if row_set(&on) != row_set(&off) {
            diverged += 1;
            eprintln!(
                "DIVERGENCE seed {seed} q {q} pred {} — planner-on {} rows, off {} rows",
                pred.to_sql(),
                on.len(),
                off.len()
            );
        }
    }
    (preds as u64, diverged)
}

struct ChaosOut {
    commits: u64,
    reads: u64,
    torn: u64,
    stale: u64,
    versions_gcd: u64,
    snapshot_reads: u64,
}

/// The MVCC consistency chaos: one writer, `readers` snapshot readers,
/// invariant-total transfers, deliberate mid-transaction publishes.
fn mvcc_chaos(seed: u64, accounts: i64, run: Duration, readers: usize) -> ChaosOut {
    let mut db = Db::new();
    db.create_table(
        "acct",
        Schema::new(vec![("ID".into(), ColTy::Int), ("BAL".into(), ColTy::Int)])
            .expect("acct schema"),
    )
    .expect("acct table");
    db.create_index("acct_id", "acct", "ID").expect("acct index");
    for id in 0..accounts {
        db.insert(
            "acct",
            &[
                ("ID".into(), SqlExpr::lit(DbVal::Int(id))),
                ("BAL".into(), SqlExpr::lit(DbVal::Int(100))),
            ],
        )
        .expect("acct row");
    }
    let total: i64 = 100 * accounts;

    let slot: Arc<Mutex<Option<Arc<DbSnapshot>>>> =
        Arc::new(Mutex::new(Some(db.publish_snapshot())));
    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::new();
    for _ in 0..readers {
        let slot = Arc::clone(&slot);
        let stop = Arc::clone(&stop);
        joins.push(std::thread::spawn(move || -> (u64, u64, u64, u64) {
            let (mut reads, mut torn, mut stale, mut snap_reads) = (0u64, 0u64, 0u64, 0u64);
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let Some(snap) = slot.lock().expect("slot").clone() else {
                    break;
                };
                // Published epochs only move forward under the single
                // writer: a regression would be a stale publish.
                let epoch = snap.epoch();
                if epoch < last_epoch {
                    stale += 1;
                }
                last_epoch = epoch;
                let mut ro = Db::read_only(&snap);
                let rows = ro
                    .select("acct", &SqlExpr::lit(DbVal::Bool(true)))
                    .expect("read-only select");
                let sum: i64 = rows
                    .iter()
                    .map(|r| if let DbVal::Int(v) = r[1] { v } else { 0 })
                    .sum();
                // A torn or half-committed view shows either a wrong
                // row count or an unbalanced total.
                if rows.len() != accounts as usize || sum != total {
                    torn += 1;
                }
                snap_reads += ro.stats().snapshot_reads;
                reads += 1;
            }
            (reads, torn, stale, snap_reads)
        }));
    }

    let mut rng = Rng::new(seed);
    let deadline = Instant::now() + run;
    let mut commits = 0u64;
    let bal_plus = |delta: i64| {
        vec![(
            "BAL".to_string(),
            SqlExpr::Add(
                Box::new(SqlExpr::col("BAL")),
                Box::new(SqlExpr::lit(DbVal::Int(delta))),
            ),
        )]
    };
    let id_eq = |id: i64| SqlExpr::eq(SqlExpr::col("ID"), SqlExpr::lit(DbVal::Int(id)));
    while Instant::now() < deadline {
        let a = rng.below(accounts as usize) as i64;
        let b = rng.below(accounts as usize) as i64;
        db.begin().expect("begin");
        db.update("acct", &bal_plus(-1), &id_eq(a)).expect("debit");
        if rng.chance(1, 7) {
            // Mid-transaction publish: readers must get the begin
            // state, never the debit-without-credit view.
            *slot.lock().expect("slot") = Some(db.publish_snapshot());
        }
        db.update("acct", &bal_plus(1), &id_eq(b)).expect("credit");
        db.commit().expect("commit");
        commits += 1;
        *slot.lock().expect("slot") = Some(db.publish_snapshot());
        if commits.is_multiple_of(128) {
            db.checkpoint().expect("in-memory checkpoint");
        }
    }
    stop.store(true, Ordering::Relaxed);
    let (mut reads, mut torn, mut stale, mut snapshot_reads) = (0u64, 0u64, 0u64, 0u64);
    for j in joins {
        let (r, t, s, sr) = j.join().expect("reader thread");
        reads += r;
        torn += t;
        stale += s;
        snapshot_reads += sr;
    }
    // Release every pinned snapshot, commit once more (invalidating the
    // writer's own snapshot cache), and fold: the superseded versions
    // are now reclaimable and the checkpoint must account for them.
    *slot.lock().expect("slot") = None;
    db.update("acct", &bal_plus(0), &id_eq(0)).expect("final touch");
    db.checkpoint().expect("final checkpoint");
    ChaosOut {
        commits,
        reads,
        torn,
        stale,
        versions_gcd: db.stats().versions_gcd,
        snapshot_reads,
    }
}

fn main() {
    let big_rows = std::env::var("UR_DB_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(BIG_ROWS);
    let random_seed = std::env::var("UR_DB_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 | 1)
                .unwrap_or(1)
        });
    println!("ur-db engine benchmark — indexes, planner, MVCC snapshots");
    println!(
        "big table {big_rows} rows; fixed seeds {FIXED_SEEDS:?}; randomized seed \
         {random_seed} (re-run with UR_DB_BENCH_SEED={random_seed})"
    );
    println!();

    // Phase 1: populate.
    let mut db = Db::new();
    let t0 = Instant::now();
    populate(&mut db, "big", big_rows);
    let populate_s = t0.elapsed().as_secs_f64();
    populate(&mut db, "small", SMALL_ROWS);
    db.verify_indexes()
        .unwrap_or_else(|e| panic!("index divergence after populate: {e}"));
    println!(
        "populate: {big_rows} rows + 2 indexes in {populate_s:.2}s \
         ({:.0} rows/s)",
        big_rows as f64 / populate_s
    );

    // Phase 2: probe vs scan on big-table equality.
    let mut rng = Rng::new(random_seed);
    let keys: Vec<i64> = (0..PROBES).map(|_| rng.below(big_rows) as i64).collect();
    db.set_planner(true);
    let t0 = Instant::now();
    let mut probe_hits = 0usize;
    for &k in &keys {
        probe_hits += db.select("big", &eq_k(k)).expect("probe select").len();
    }
    let probe_per_q_us = t0.elapsed().as_secs_f64() * 1e6 / PROBES as f64;
    db.set_planner(false);
    let t0 = Instant::now();
    let mut scan_hits = 0usize;
    for &k in keys.iter().take(SCANS) {
        scan_hits += db.select("big", &eq_k(k)).expect("scan select").len();
    }
    let scan_per_q_us = t0.elapsed().as_secs_f64() * 1e6 / SCANS as f64;
    db.set_planner(true);
    assert_eq!(probe_hits, PROBES, "every probed key is present exactly once");
    assert_eq!(scan_hits, SCANS, "every scanned key is present exactly once");
    let speedup = scan_per_q_us / probe_per_q_us.max(1e-9);
    println!(
        "equality lookup: probe {probe_per_q_us:.2} us/q vs scan {scan_per_q_us:.2} us/q \
         — {speedup:.0}x"
    );

    // Phase 3: planner-on/off divergence, small and big tables.
    let mut seeds: Vec<u64> = FIXED_SEEDS.to_vec();
    seeds.push(random_seed);
    let (mut dq, mut dd) = (0u64, 0u64);
    for &seed in &seeds {
        let (q, d) = divergence_round(&mut db, "small", SMALL_ROWS as i64, seed, 120);
        dq += q;
        dd += d;
        let (q, d) = divergence_round(&mut db, "big", big_rows as i64, seed, 8);
        dq += q;
        dd += d;
    }
    println!("planner divergence: {dd} / {dq} queries diverged");
    let big_stats = db.stats().clone();

    // Phase 4: MVCC chaos at a fixed and the randomized seed.
    let mut chaos_runs = Vec::new();
    for &seed in &[FIXED_SEEDS[0], random_seed] {
        let out = mvcc_chaos(seed, 1_000, Duration::from_millis(1_500), 4);
        println!(
            "mvcc chaos (seed {seed}): {} commits, {} snapshot reads \
             ({} torn, {} stale), {} versions gcd",
            out.commits, out.reads, out.torn, out.stale, out.versions_gcd
        );
        chaos_runs.push((seed, out));
    }
    println!();

    let mut json = format!(
        "{{\n  \"benchmark\": \"db\",\n  \"metric\": \"engine\",\n  \
         \"rows\": {big_rows},\n  \"fixed_seeds\": {FIXED_SEEDS:?},\n  \
         \"random_seed\": {random_seed},\n  \
         \"populate\": {{\"seconds\": {populate_s:.3}, \"rows_per_sec\": {:.0}}},\n  \
         \"equality\": {{\"probe_us_per_query\": {probe_per_q_us:.3}, \
         \"scan_us_per_query\": {scan_per_q_us:.3}, \"speedup\": {speedup:.1}, \
         \"gate\": {SPEEDUP_GATE}}},\n  \
         \"divergence\": {{\"queries\": {dq}, \"diverged\": {dd}}},\n  \
         \"engine_counters\": {{\"index_probes\": {}, \"full_scans\": {}, \
         \"planner_fallbacks\": {}}},\n  \"mvcc_chaos\": [\n",
        big_rows as f64 / populate_s,
        big_stats.index_probes,
        big_stats.full_scans,
        big_stats.planner_fallbacks,
    );
    for (i, (seed, o)) in chaos_runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"seed\": {seed}, \"commits\": {}, \"reads\": {}, \"torn\": {}, \
             \"stale\": {}, \"versions_gcd\": {}, \"snapshot_reads\": {}}}",
            o.commits, o.reads, o.torn, o.stale, o.versions_gcd, o.snapshot_reads
        );
        json.push_str(if i + 1 < chaos_runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_db.json", &json).expect("write BENCH_db.json");
    println!("wrote BENCH_db.json");

    // Hard gates.
    assert!(
        speedup >= SPEEDUP_GATE,
        "index probe speedup {speedup:.1}x below the {SPEEDUP_GATE}x gate \
         (probe {probe_per_q_us:.2} us vs scan {scan_per_q_us:.2} us)"
    );
    assert_eq!(
        dd, 0,
        "planner-on/off divergence: {dd} of {dq} queries (seed {random_seed})"
    );
    assert!(
        big_stats.index_probes > 0 && big_stats.full_scans > 0,
        "both access paths must actually run: {big_stats}"
    );
    for (seed, o) in &chaos_runs {
        assert_eq!(o.torn, 0, "torn snapshot reads at seed {seed}");
        assert_eq!(o.stale, 0, "stale (regressed) snapshots at seed {seed}");
        assert!(o.reads > 0 && o.commits > 0, "chaos at seed {seed} did no work");
        assert!(
            o.versions_gcd > 0,
            "checkpoint GC reclaimed nothing at seed {seed}"
        );
        assert!(
            o.snapshot_reads >= o.reads,
            "snapshot reads were not counted at seed {seed}"
        );
    }
    println!("all gates passed");
}
