//! Scaling experiment (no paper counterpart; see EXPERIMENTS.md):
//! elaborates generated `mkTable` clients of growing width and reports
//! how the inference machinery scales — unification subproblems, row
//! normalizations, prover calls, and wall-clock time per column count.
//!
//! Run with `cargo run -p ur-bench --bin scaling --release`.

use std::fmt::Write as _;
use std::time::Instant;
use ur_studies::study;
use ur_web::Session;

fn client(n: usize) -> String {
    let mut meta = String::new();
    let mut row = String::new();
    for i in 0..n {
        if i > 0 {
            meta.push_str(", ");
            row.push_str(", ");
        }
        let _ = write!(meta, "C{i} = {{Label = \"c{i}\", Show = showInt}}");
        let _ = write!(row, "C{i} = {i}");
    }
    format!("val f = mkTable {{{meta}}}\nval out = f {{{row}}}")
}

fn main() {
    println!("Inference scaling with record width (generated mkTable clients)");
    println!();
    println!(
        "{:>5} {:>9} {:>9} {:>7} {:>9} {:>9}",
        "cols", "unify", "rows-nf", "disj", "postponed", "time(ms)"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut sess = Session::new().expect("session");
        sess.run(study("mktable").implementation()).expect("mkTable");
        let before = sess.stats().clone();
        let start = Instant::now();
        sess.run(&client(n)).expect("client elaborates");
        let elapsed = start.elapsed();
        let d = sess.stats().since(&before);
        println!(
            "{:>5} {:>9} {:>9} {:>7} {:>9} {:>9.1}",
            n,
            d.unify_calls,
            d.row_normalizations,
            d.disjoint_prover_calls,
            d.constraints_postponed,
            elapsed.as_secs_f64() * 1000.0,
        );
        // Sanity: the generated table contains every column.
        let out = sess.get_str("out").expect("out");
        assert!(out.contains(&format!("<th>c{}</th>", n - 1)));
    }
    println!();
    println!("(folder generation is linear in width; row unification of the");
    println!(" reverse-engineered metadata record is the dominant quadratic");
    println!(" term, from pairwise field matching in canonical summaries)");
}
