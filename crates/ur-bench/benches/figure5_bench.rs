//! One benchmark per Figure-5 table row: the full measurement pipeline
//! (fresh session, dependencies, component elaboration, interface check,
//! usage demo) — regenerating the paper's table is itself the workload.

use ur_studies::{run_study, studies};
use ur_testutil::bench::Bench;

fn main() {
    let mut g = Bench::new("figure5_row");
    for s in studies() {
        if s.figure5.is_none() {
            continue;
        }
        g.measure(s.id, || {
            run_study(&s).expect("study runs");
        });
    }
}
