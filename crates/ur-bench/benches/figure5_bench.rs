//! One benchmark per Figure-5 table row: the full measurement pipeline
//! (fresh session, dependencies, component elaboration, interface check,
//! usage demo) — regenerating the paper's table is itself the workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ur_studies::{run_study, studies};

fn bench_figure5_rows(c: &mut Criterion) {
    for s in studies() {
        if s.figure5.is_none() {
            continue;
        }
        let id = s.id;
        c.bench_function(&format!("figure5_row_{id}"), |b| {
            b.iter(|| run_study(&s).expect("study runs"))
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure5_rows
);
criterion_main!(benches);
