//! Law ablation bench: normalization/unification cost with the Figure-3
//! laws enabled vs. selectively disabled, on workloads where the outcome
//! is unchanged (ground rows), isolating the laws' overhead. (Workloads
//! that *need* a law fail to elaborate without it — that is checked by
//! `ur-infer/tests/ablation.rs`, not benchmarked.)

use ur_core::con::{Con, RCon};
use ur_core::defeq::defeq;
use ur_core::env::Env;
use ur_core::kind::Kind;
use ur_core::sym::Sym;
use ur_core::{Cx, LawConfig};
use ur_testutil::bench::Bench;

fn mapped_ground_row(n: usize) -> (RCon, RCon) {
    let fields: Vec<(RCon, RCon)> = (0..n)
        .map(|i| (Con::name(format!("F{i}")), Con::int()))
        .collect();
    let row = Con::row_of(Kind::Type, fields.clone());
    let a = Sym::fresh("a");
    let f = Con::lam(
        a,
        Kind::Type,
        Con::arrow(Con::var(&a), Con::var(&a)),
    );
    let mapped = Con::map_app(Kind::Type, Kind::Type, f, row);
    let expanded = Con::row_of(
        Kind::Type,
        (0..n)
            .map(|i| {
                (
                    Con::name(format!("F{i}")),
                    Con::arrow(Con::int(), Con::int()),
                )
            })
            .collect(),
    );
    (mapped, expanded)
}

fn main() {
    let env = Env::new();
    let (mapped, expanded) = mapped_ground_row(64);
    let mut g = Bench::new("law_ablation_defeq_map64");
    g.measure("all_laws", || {
        let mut cx = Cx::new();
        assert!(defeq(&env, &mut cx, &mapped, &expanded));
    });
    g.measure("no_identity", || {
        let mut cx = Cx::new();
        cx.laws = LawConfig {
            identity: false,
            ..LawConfig::default()
        };
        assert!(defeq(&env, &mut cx, &mapped, &expanded));
    });
}
