//! Law ablation bench: normalization/unification cost with the Figure-3
//! laws enabled vs. selectively disabled, on workloads where the outcome
//! is unchanged (ground rows), isolating the laws' overhead. (Workloads
//! that *need* a law fail to elaborate without it — that is checked by
//! `ur-infer/tests/ablation.rs`, not benchmarked.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;
use ur_core::con::{Con, RCon};
use ur_core::defeq::defeq;
use ur_core::env::Env;
use ur_core::kind::Kind;
use ur_core::sym::Sym;
use ur_core::{Cx, LawConfig};

fn mapped_ground_row(n: usize) -> (RCon, RCon) {
    let fields: Vec<(RCon, RCon)> = (0..n)
        .map(|i| (Con::name(format!("F{i}")), Con::int()))
        .collect();
    let row = Con::row_of(Kind::Type, fields.clone());
    let a = Sym::fresh("a");
    let f = Con::lam(
        a.clone(),
        Kind::Type,
        Con::arrow(Con::var(&a), Con::var(&a)),
    );
    let mapped = Con::map_app(Kind::Type, Kind::Type, f, Rc::clone(&row));
    let expanded = Con::row_of(
        Kind::Type,
        (0..n)
            .map(|i| {
                (
                    Con::name(format!("F{i}")),
                    Con::arrow(Con::int(), Con::int()),
                )
            })
            .collect(),
    );
    (mapped, expanded)
}

fn bench_laws(c: &mut Criterion) {
    let env = Env::new();
    let (mapped, expanded) = mapped_ground_row(64);
    let mut g = c.benchmark_group("law_ablation_defeq_map64");
    g.bench_function("all_laws", |b| {
        b.iter(|| {
            let mut cx = Cx::new();
            assert!(defeq(&env, &mut cx, &mapped, &expanded));
        })
    });
    g.bench_function("no_identity", |b| {
        b.iter(|| {
            let mut cx = Cx::new();
            cx.laws = LawConfig {
                identity: false,
                ..LawConfig::default()
            };
            assert!(defeq(&env, &mut cx, &mapped, &expanded));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_laws);
criterion_main!(benches);
