//! End-to-end elaboration cost: the §2 worked examples and every Figure-5
//! case-study component (one benchmark per Figure-5 row), measuring the
//! full §4 pipeline — constraint generation, postpone-and-retry solving,
//! disjointness proving, and folder generation.

use criterion::{criterion_group, criterion_main, Criterion};
use ur_studies::{studies, study, Study};
use ur_web::Session;

fn load_with_deps(s: &Study) -> Session {
    let mut sess = Session::new().expect("session");
    fn deps(sess: &mut Session, s: &Study) {
        for d in s.deps {
            let d = study(d);
            deps(sess, &d);
            sess.run(d.implementation()).expect("dep");
        }
    }
    deps(&mut sess, s);
    sess
}

fn bench_paper_examples(c: &mut Criterion) {
    let proj = "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
                (x : $([nm = t] ++ r)) = x.nm\n\
                val a = proj [#A] {A = 1, B = 2.3}";
    c.bench_function("elaborate_proj", |b| {
        b.iter(|| {
            let mut sess = Session::new().unwrap();
            sess.run(proj).unwrap();
        })
    });
    c.bench_function("elaborate_session_bootstrap", |b| {
        b.iter(|| Session::new().unwrap())
    });
}

fn bench_studies(c: &mut Criterion) {
    for s in studies() {
        let id = s.id;
        c.bench_function(&format!("elaborate_study_{id}"), |b| {
            b.iter_batched(
                || load_with_deps(&s),
                |mut sess| {
                    sess.run(s.implementation()).expect("study elaborates");
                    sess
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
}

criterion_group!(benches, bench_paper_examples, bench_studies);
criterion_main!(benches);
