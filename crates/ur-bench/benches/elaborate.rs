//! End-to-end elaboration cost: the §2 worked examples and every Figure-5
//! case-study component (one benchmark per Figure-5 row), measuring the
//! full §4 pipeline — constraint generation, postpone-and-retry solving,
//! disjointness proving, and folder generation.

use ur_studies::{studies, study, Study};
use ur_testutil::bench::Bench;
use ur_web::Session;

fn load_with_deps(s: &Study) -> Session {
    let mut sess = Session::new().expect("session");
    fn deps(sess: &mut Session, s: &Study) {
        for d in s.deps {
            let d = study(d);
            deps(sess, &d);
            sess.run(d.implementation()).expect("dep");
        }
    }
    deps(&mut sess, s);
    sess
}

fn bench_paper_examples() {
    let proj = "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
                (x : $([nm = t] ++ r)) = x.nm\n\
                val a = proj [#A] {A = 1, B = 2.3}";
    let mut g = Bench::new("elaborate");
    g.measure("proj", || {
        let mut sess = Session::new().unwrap();
        sess.run(proj).unwrap();
    });
    g.measure("session_bootstrap", || {
        Session::new().unwrap();
    });
}

fn bench_studies() {
    let mut g = Bench::new("elaborate_study");
    for s in studies() {
        // Setup cost (session + deps) is included in each iteration; it is
        // the same fresh-session pipeline the Figure-5 table measures.
        g.measure(s.id, || {
            let mut sess = load_with_deps(&s);
            sess.run(s.implementation()).expect("study elaborates");
        });
    }
}

fn main() {
    bench_paper_examples();
    bench_studies();
}
