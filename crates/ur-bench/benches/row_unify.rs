//! Row-unification scaling (§4.3): canonical-summary unification cost as
//! record width grows, for the three problem shapes the engine meets most:
//! ground-vs-ground, meta-tail, and reverse-engineering (§4.2).

use ur_core::con::{Con, RCon};
use ur_core::env::Env;
use ur_core::kind::Kind;
use ur_core::sym::Sym;
use ur_core::Cx;
use ur_infer::{unify, Unify};
use ur_testutil::bench::Bench;

fn lit_row(n: usize) -> RCon {
    Con::row_of(
        Kind::Type,
        (0..n)
            .map(|i| (Con::name(format!("F{i}")), Con::int()))
            .collect(),
    )
}

/// The same fields as `lit_row`, but concatenated right-to-left, so the
/// two sides are structurally distinct and the canonical-summary path is
/// actually exercised (no pointer-equality shortcut).
fn lit_row_reversed(n: usize) -> RCon {
    Con::row_of(
        Kind::Type,
        (0..n)
            .rev()
            .map(|i| (Con::name(format!("F{i}")), Con::int()))
            .collect(),
    )
}

fn bench_ground() {
    let mut g = Bench::new("row_unify_ground");
    for n in [8usize, 32, 128, 256] {
        let env = Env::new();
        let row = lit_row(n);
        let rev = lit_row_reversed(n);
        g.measure(&n.to_string(), || {
            let mut cx = Cx::new();
            assert_eq!(unify(&env, &mut cx, &row, &rev), Unify::Solved);
        });
    }
}

fn bench_meta_tail() {
    let mut g = Bench::new("row_unify_meta_tail");
    for n in [8usize, 32, 128, 256] {
        let env = Env::new();
        let full = lit_row(n);
        let half = lit_row(n / 2);
        g.measure(&n.to_string(), || {
            let mut cx = Cx::new();
            let m = cx.metas.fresh_con(Kind::row(Kind::Type), "tail");
            let left = Con::row_cat(half, m);
            assert_eq!(unify(&env, &mut cx, &left, &full), Unify::Solved);
        });
    }
}

fn bench_reverse_engineering() {
    let mut g = Bench::new("reverse_engineering");
    for n in [8usize, 32, 128] {
        let env = Env::new();
        // map (fn a => a -> a) ?m = [F0 = int -> int, ...]
        let ground = Con::row_of(
            Kind::Type,
            (0..n)
                .map(|i| {
                    (
                        Con::name(format!("F{i}")),
                        Con::arrow(Con::int(), Con::int()),
                    )
                })
                .collect(),
        );
        g.measure(&n.to_string(), || {
            let mut cx = Cx::new();
            let m = cx.metas.fresh_con(Kind::row(Kind::Type), "m");
            let a = Sym::fresh("a");
            let f = Con::lam(
                a,
                Kind::Type,
                Con::arrow(Con::var(&a), Con::var(&a)),
            );
            let left = Con::map_app(Kind::Type, Kind::Type, f, m);
            assert_eq!(unify(&env, &mut cx, &left, &ground), Unify::Solved);
        });
    }
}

fn main() {
    bench_ground();
    bench_meta_tail();
    bench_reverse_engineering();
}
