//! Row-unification scaling (§4.3): canonical-summary unification cost as
//! record width grows, for the three problem shapes the engine meets most:
//! ground-vs-ground, meta-tail, and reverse-engineering (§4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::rc::Rc;
use ur_core::con::{Con, RCon};
use ur_core::env::Env;
use ur_core::kind::Kind;
use ur_core::sym::Sym;
use ur_core::Cx;
use ur_infer::{unify, Unify};

fn lit_row(n: usize) -> RCon {
    Con::row_of(
        Kind::Type,
        (0..n)
            .map(|i| (Con::name(format!("F{i}")), Con::int()))
            .collect(),
    )
}

/// The same fields as `lit_row`, but concatenated right-to-left, so the
/// two sides are structurally distinct and the canonical-summary path is
/// actually exercised (no pointer-equality shortcut).
fn lit_row_reversed(n: usize) -> RCon {
    Con::row_of(
        Kind::Type,
        (0..n)
            .rev()
            .map(|i| (Con::name(format!("F{i}")), Con::int()))
            .collect(),
    )
}

fn bench_ground(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_unify_ground");
    for n in [8usize, 32, 128, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let env = Env::new();
            let row = lit_row(n);
            let rev = lit_row_reversed(n);
            b.iter(|| {
                let mut cx = Cx::new();
                assert_eq!(unify(&env, &mut cx, &row, &rev), Unify::Solved);
            });
        });
    }
    g.finish();
}

fn bench_meta_tail(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_unify_meta_tail");
    for n in [8usize, 32, 128, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let env = Env::new();
            let full = lit_row(n);
            let half = lit_row(n / 2);
            b.iter(|| {
                let mut cx = Cx::new();
                let m = cx.metas.fresh_con(Kind::row(Kind::Type), "tail");
                let left = Con::row_cat(half.clone(), m);
                assert_eq!(unify(&env, &mut cx, &left, &full), Unify::Solved);
            });
        });
    }
    g.finish();
}

fn bench_reverse_engineering(c: &mut Criterion) {
    let mut g = c.benchmark_group("reverse_engineering");
    for n in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let env = Env::new();
            // map (fn a => a -> a) ?m = [F0 = int -> int, ...]
            let ground = Con::row_of(
                Kind::Type,
                (0..n)
                    .map(|i| {
                        (
                            Con::name(format!("F{i}")),
                            Con::arrow(Con::int(), Con::int()),
                        )
                    })
                    .collect(),
            );
            b.iter(|| {
                let mut cx = Cx::new();
                let m = cx.metas.fresh_con(Kind::row(Kind::Type), "m");
                let a = Sym::fresh("a");
                let f = Con::lam(
                    a.clone(),
                    Kind::Type,
                    Con::arrow(Con::var(&a), Con::var(&a)),
                );
                let left = Con::map_app(Kind::Type, Kind::Type, f, Rc::clone(&m));
                assert_eq!(unify(&env, &mut cx, &left, &ground), Unify::Solved);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ground,
    bench_meta_tail,
    bench_reverse_engineering
);
criterion_main!(benches);
