//! Disjointness-prover scaling (§4.1): decomposition plus Cartesian-product
//! fact lookup, as goal width and the assumption database grow.

use ur_core::con::{Con, RCon};
use ur_core::disjoint::{prove, ProveResult};
use ur_core::env::Env;
use ur_core::kind::Kind;
use ur_core::sym::Sym;
use ur_core::Cx;
use ur_testutil::bench::Bench;

fn named_row(prefix: &str, n: usize) -> RCon {
    Con::row_of(
        Kind::Type,
        (0..n)
            .map(|i| (Con::name(format!("{prefix}{i}")), Con::int()))
            .collect(),
    )
}

fn bench_literal_goals() {
    let mut g = Bench::new("disjoint_literal");
    for n in [4usize, 16, 64] {
        let env = Env::new();
        let left = named_row("A", n);
        let right = named_row("B", n);
        g.measure(&n.to_string(), || {
            let mut cx = Cx::new();
            assert_eq!(prove(&env, &mut cx, &left, &right), ProveResult::Proved);
        });
    }
}

fn bench_fact_database() {
    // Goal provable only via assumptions, with a growing fact database —
    // the §6 components' dominant cost.
    let mut g = Bench::new("disjoint_facts");
    for n in [4usize, 16, 64] {
        let mut env = Env::new();
        let mut vars = Vec::new();
        for i in 0..n {
            let s = Sym::fresh(format!("r{i}"));
            env.bind_con(s, Kind::row(Kind::Type));
            vars.push(Con::var(&s));
        }
        // Assume each abstract row disjoint from a block of names.
        for v in &vars {
            env.assume_disjoint(named_row("A", 4), *v);
        }
        let goal_left = named_row("A", 4);
        let goal_right = *vars.last().unwrap();
        g.measure(&n.to_string(), || {
            let mut cx = Cx::new();
            assert_eq!(
                prove(&env, &mut cx, &goal_left, &goal_right),
                ProveResult::Proved
            );
        });
    }
}

fn main() {
    bench_literal_goals();
    bench_fact_database();
}
