//! Interpreter and substrate throughput: running generated metaprograms
//! (mkTable rendering, ORM round trips) and raw database operations.

use ur_db::{ColTy, Db, DbVal, Schema, SqlExpr};
use ur_studies::study;
use ur_testutil::bench::Bench;
use ur_web::Session;

#[allow(clippy::literal_string_with_formatting_args)] // Ur source, not a format string
fn mktable_session() -> Session {
    let mut sess = Session::new().unwrap();
    let s = study("mktable");
    sess.run(s.implementation()).unwrap();
    sess.run(
        "val f = mkTable {A = {Label = \"A\", Show = showInt}, \
                          B = {Label = \"B\", Show = showFloat}}",
    )
    .unwrap();
    sess
}

fn bench_mktable_render() {
    let mut sess = mktable_session();
    let f = sess.get("f").unwrap().clone();
    let row = sess.eval("{A = 2, B = 3.4}").unwrap();
    let mut g = Bench::new("eval");
    g.measure("mktable_row", || {
        sess.apply(&f, std::slice::from_ref(&row)).unwrap();
    });
}

fn bench_orm_roundtrip() {
    let mut g = Bench::new("eval");
    g.measure("orm_add_list", || {
        let mut sess = Session::new().unwrap();
        sess.run(study("selector").implementation()).unwrap();
        sess.run(study("orm").implementation()).unwrap();
        sess.run(
            "val t = ormTable \"bench_t\" \
             {Name = {SqlType = sqlString, Show = fn (s : string) => s}, \
              Age = {SqlType = sqlInt, Show = showInt}}",
        )
        .unwrap();
        sess.run(
            "val u = t.Add {Name = \"alice\", Age = 30}\n\
             val l = t.List ()",
        )
        .unwrap();
    });
}

fn bench_db_substrate() {
    let mut g = Bench::new("db_ops_insert_select");
    for n in [100usize, 1000] {
        g.measure(&n.to_string(), || {
            let mut db = Db::new();
            db.create_table(
                "t",
                Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)])
                    .unwrap(),
            )
            .unwrap();
            for i in 0..n {
                db.insert(
                    "t",
                    &[
                        ("A".into(), SqlExpr::lit(DbVal::Int(i as i64))),
                        ("B".into(), SqlExpr::lit(DbVal::Str(format!("row{i}")))),
                    ],
                )
                .unwrap();
            }
            let pred = SqlExpr::Lt(
                Box::new(SqlExpr::col("A")),
                Box::new(SqlExpr::lit(DbVal::Int((n / 2) as i64))),
            );
            let rows = db.select("t", &pred).unwrap();
            assert_eq!(rows.len(), n / 2);
        });
    }
}

fn main() {
    bench_mktable_render();
    bench_orm_roundtrip();
    bench_db_substrate();
}
