//! High-level sessions: the main public API for running Ur/Web programs.
//!
//! A [`Session`] owns an elaborator pre-loaded with the standard-library
//! signature, the builtin registry, the interpreter world (database +
//! debug log), and the runtime environment of top-level values.

use crate::builtins;
use crate::prelude::PRELUDE;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use ur_core::con::RCon;
use ur_core::expr::RExpr;
use ur_core::sym::Sym;
use ur_eval::{Builtin, Chunk, EvalEngine, EvalError, Interp, VEnv, Value, World};
use ur_infer::{ElabDecl, ElabError, ElabSnapshot, Elaborator};

/// Errors from running a program in a session.
#[derive(Clone, Debug)]
pub enum SessionError {
    /// A parse/type error.
    Elab(ElabError),
    /// A runtime error.
    Eval(EvalError),
    /// A prelude primitive without an implementation (an internal error).
    MissingBuiltin(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Elab(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::MissingBuiltin(n) => {
                write!(f, "internal error: no implementation for builtin {n}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ElabError> for SessionError {
    fn from(e: ElabError) -> Self {
        SessionError::Elab(e)
    }
}

impl From<EvalError> for SessionError {
    fn from(e: EvalError) -> Self {
        SessionError::Eval(e)
    }
}

/// Tunables for the session's self-healing circuit breaker (see
/// [`Breaker`]).
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// How many recent batches the fault window covers.
    pub window: usize,
    /// Total faults across the window at which the breaker opens.
    pub threshold: u64,
    /// When open: force sequential elaboration (`threads = 1`).
    pub degrade_parallelism: bool,
    /// When open: switch the judgment memo tables off, so a corrupting
    /// cache cannot keep feeding the elaborator bad entries.
    pub disable_memo: bool,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            threshold: 8,
            degrade_parallelism: true,
            disable_memo: true,
        }
    }
}

/// A sticky circuit breaker over per-batch fault counts.
///
/// After every [`Session::run_all`] batch the session records the number
/// of faults the batch survived (worker deaths, watchdog trips, task and
/// declaration retries, memo integrity rejections). When the total over
/// the last [`BreakerConfig::window`] batches reaches
/// [`BreakerConfig::threshold`], the breaker opens and stays open until
/// [`Breaker::reset`]: subsequent batches run degraded (sequential
/// and/or memo off), trading throughput for blast-radius containment.
#[derive(Clone, Debug)]
pub struct Breaker {
    /// Tunable thresholds; adjust before the first batch.
    pub config: BreakerConfig,
    recent: VecDeque<u64>,
    open: bool,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker::new(BreakerConfig::default())
    }
}

impl Breaker {
    pub fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config,
            recent: VecDeque::new(),
            open: false,
        }
    }

    /// Records one batch's fault count. Returns `true` exactly when this
    /// record trips the breaker (a closed-to-open edge); an already-open
    /// breaker keeps recording but never "re-trips".
    pub fn record(&mut self, faults: u64) -> bool {
        let cap = self.config.window.max(1);
        while self.recent.len() >= cap {
            self.recent.pop_front();
        }
        self.recent.push_back(faults);
        if self.open {
            return false;
        }
        let total = self.window_total();
        if total >= self.config.threshold.max(1) {
            self.open = true;
            true
        } else {
            false
        }
    }

    /// Whether the breaker is open (degraded mode active).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Faults summed over the current window.
    pub fn window_total(&self) -> u64 {
        self.recent.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }

    /// Batches currently in the window.
    pub fn window_len(&self) -> usize {
        self.recent.len()
    }

    /// Closes the breaker and clears the window (operator reset; the
    /// memo switch and thread count recover on the next healthy batch).
    pub fn reset(&mut self) {
        self.open = false;
        self.recent.clear();
    }
}

/// State backing [`Session::reelaborate`]: the *base* — the session as
/// it stood when incremental mode was first used (normally just the
/// prelude) — plus the red-green query engine whose caches persist
/// across rebuilds. Each rebuild restores the base and replays the new
/// source through the engine, so green declarations are reused instead
/// of re-elaborated.
struct IncrState {
    base_elab: ElabSnapshot,
    base_world: World,
    base_top: VEnv,
    base_by_name: HashMap<String, Sym>,
    engine: ur_query::Engine,
    last_report: ur_query::RunReport,
}

/// A point-in-time capture of a whole session, for rolling back a
/// chaos-aborted (or simply unwanted) batch: elaborator state, runtime
/// world (database + debug log), top-level value environment, name
/// table, and breaker. Created by [`Session::snapshot`], consumed by
/// [`Session::rollback`]. Builtins are immutable and not captured.
pub struct SessionSnapshot {
    elab: ElabSnapshot,
    world: World,
    top: VEnv,
    by_name: HashMap<String, Sym>,
    breaker: Breaker,
}

/// An Ur/Web session: elaborate-and-run programs against a persistent
/// world.
///
/// ```
/// use ur_web::Session;
///
/// let mut sess = Session::new()?;
/// sess.run("val x = 20 + 22")?;
/// assert_eq!(sess.get_int("x")?, 42);
/// # Ok::<(), ur_web::SessionError>(())
/// ```
pub struct Session {
    /// The elaborator (inference statistics live in `elab.cx.stats`).
    pub elab: Elaborator,
    /// Runtime world: database and debug output.
    pub world: World,
    /// Worker threads for batch elaboration ([`Session::run_all`]).
    /// Defaults to [`ur_infer::default_threads`] (the `UR_TEST_THREADS`
    /// environment variable when set, else the machine's available
    /// parallelism); `<= 1` elaborates sequentially. Evaluation always
    /// runs on the calling thread in source order.
    pub threads: usize,
    /// Self-healing circuit breaker fed by per-batch fault counts (see
    /// [`Breaker`]). Open ⇒ [`Session::run_all`] runs degraded.
    pub breaker: Breaker,
    /// Disk-cache directory for [`Session::reelaborate`]. `None` defers
    /// to `UR_CACHE_DIR` / `.ur-cache` resolution; set it (or the env
    /// var) before the first `reelaborate` call — the engine is created
    /// lazily and keeps its configuration afterwards.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Which engine evaluates `val` bodies and expressions: the bytecode
    /// VM (default) or the tree-walking interpreter (the differential
    /// oracle). Overridable at construction with `UR_EVAL=interp|vm`,
    /// and by embedders (urc/REPL `--eval=`). Function *application*
    /// ([`Session::apply`]) dispatches on the value itself, so results
    /// from either engine keep working after a switch.
    pub engine: EvalEngine,
    builtins: HashMap<Sym, Rc<Builtin>>,
    top: VEnv,
    by_name: HashMap<String, Sym>,
    /// Compiled-chunk cache, keyed by the hash-consed body id. Arena ids
    /// are stable for the session's lifetime (`_arena_lease`), so a
    /// re-evaluated declaration (incremental rebuilds, repeated source)
    /// reuses its chunk instead of re-lowering. Chunks bake in
    /// `genv`-dependent normalization (static field names, pre-reduced
    /// constructor arguments), so any wholesale environment restore —
    /// [`Session::reelaborate`]'s base restore, [`Session::rollback`] —
    /// clears the cache; size is bounded by [`CHUNK_CACHE_CAP`].
    chunk_cache: HashMap<RExpr, Arc<Chunk>>,
    /// Shared snapshot of `top` for VM runs (`Rc` of the globals plus
    /// the root constructor list), rebuilt lazily after any top-level
    /// mutation. Without it every VM run would clone every top-level
    /// value — the difference between a render loop amortizing one
    /// compile and paying a full environment copy per iteration.
    vm_globals: Option<(Rc<VEnv>, ur_eval::vm::ConsEnv)>,
    incr: Option<IncrState>,
    /// One-rebuild fuel-ceiling override (see
    /// [`Session::reelaborate_limited`]). Must be applied *after* the
    /// base restore inside [`Session::reelaborate`] — the restore
    /// replaces the whole metavariable context, limits included, so
    /// setting `elab.cx.fuel.limits` from outside is silently undone.
    rebuild_limits: Option<ur_core::limits::Limits>,
    /// Keeps the shared intern arena alive for this session's lifetime:
    /// while any session holds a lease, `ur_core::arena::try_reset` is a
    /// no-op, so every `ConId`/`ExprId` this session minted stays valid.
    /// Dropped with the session — when the last session goes away the
    /// embedder may reset the arena to reclaim memory.
    _arena_lease: ur_core::arena::ArenaLease,
}

/// Bound on [`Session::chunk_cache`]: a long-lived session evaluating
/// ever-fresh bodies (a REPL, a serve loop) flushes the cache instead of
/// growing it without limit — the same policy the interpreter applies to
/// its resolution memo.
const CHUNK_CACHE_CAP: usize = 1 << 10;

impl Session {
    /// Creates a session with the standard library installed.
    ///
    /// # Errors
    ///
    /// Fails if the prelude does not elaborate or a primitive lacks an
    /// implementation (both internal errors, exercised by tests).
    pub fn new() -> Result<Session, SessionError> {
        // Lease first: ids minted while elaborating the prelude must
        // already be protected from a concurrent `try_reset`.
        let arena_lease = ur_core::arena::lease();
        let mut elab = Elaborator::new();
        let decls = elab.elab_source(PRELUDE)?;
        // `UR_FAILPOINTS` configures fault injection without code changes
        // (urc, the REPL, any embedder). Installed *after* the prelude so
        // the bounded fault budget is spent on user code, not stdlib
        // loading — the same convention the chaos harness uses.
        #[cfg(feature = "failpoints")]
        if let Some(cfg) = ur_core::failpoint::FpConfig::from_env() {
            ur_core::failpoint::install(Some(cfg));
        }
        let impls = builtins::registry();
        let mut map = HashMap::new();
        let mut by_name = HashMap::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: None,
                ..
            } = d
            {
                let spec = impls
                    .get(name)
                    .ok_or_else(|| SessionError::MissingBuiltin(name.clone()))?;
                map.insert(*sym, Rc::clone(spec));
                by_name.insert(name.clone(), *sym);
            }
        }
        Ok(Session {
            elab,
            world: World::new(),
            threads: ur_infer::default_threads(),
            breaker: Breaker::default(),
            cache_dir: None,
            engine: std::env::var("UR_EVAL")
                .ok()
                .and_then(|s| EvalEngine::parse(&s))
                .unwrap_or_default(),
            builtins: map,
            top: VEnv::new(),
            by_name,
            chunk_cache: HashMap::new(),
            vm_globals: None,
            incr: None,
            rebuild_limits: None,
            _arena_lease: arena_lease,
        })
    }

    /// The compiled form of `body`, from the session chunk cache
    /// (hash-consed core terms make the lookup cheap) or compiled fresh.
    fn chunk_for(&mut self, body: &RExpr, label: &str) -> Arc<ur_eval::Chunk> {
        match self.chunk_cache.get(body) {
            Some(c) => {
                self.elab.cx.stats.eval_chunk_hits =
                    self.elab.cx.stats.eval_chunk_hits.saturating_add(1);
                Arc::clone(c)
            }
            None => {
                // Compile against a scratch context: constructor
                // normalization during chunk compilation is evaluation
                // work and must not charge the elaborator's fuel ledger
                // (a green rebuild would otherwise report phantom
                // normalization steps).
                let mut cx = ur_core::Cx::new();
                let c = ur_eval::compile(&self.elab.genv, &mut cx, body, label);
                self.elab.cx.stats.eval_chunks_compiled =
                    self.elab.cx.stats.eval_chunks_compiled.saturating_add(1);
                if self.chunk_cache.len() >= CHUNK_CACHE_CAP {
                    self.chunk_cache.clear();
                }
                self.chunk_cache.insert(*body, Arc::clone(&c));
                c
            }
        }
    }

    /// Folds a finished VM dispatch's counters into the session stats.
    fn fold_vm_stats(&mut self, es: ur_eval::vm::EvalStats, runs: u64) {
        let st = &mut self.elab.cx.stats;
        st.eval_vm_runs = st.eval_vm_runs.saturating_add(runs);
        st.eval_vm_ops = st.eval_vm_ops.saturating_add(es.vm_ops);
        st.eval_dispatch_ns = st.eval_dispatch_ns.saturating_add(es.dispatch_ns);
    }

    /// Evaluates one elaborated body on the configured engine, folding
    /// the engine's counters into the session statistics.
    fn eval_body(&mut self, body: &RExpr, label: &str) -> Result<Value, EvalError> {
        match self.engine {
            EvalEngine::Vm => {
                let chunk = self.chunk_for(body, label);
                let (globals, cons) = {
                    let g = self
                        .vm_globals
                        .get_or_insert_with(|| ur_eval::vm::share_globals(&self.top));
                    (Rc::clone(&g.0), g.1.clone())
                };
                let mut interp = Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
                let r = ur_eval::vm::run_shared(&mut interp, &chunk, &globals, &cons);
                let es = interp.eval_stats;
                self.fold_vm_stats(es, 1);
                r
            }
            EvalEngine::Interp => {
                let mut interp = Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
                let r = interp.eval(&self.top, body);
                self.elab.cx.stats.eval_interp_runs =
                    self.elab.cx.stats.eval_interp_runs.saturating_add(1);
                r
            }
        }
    }

    /// Elaborates and evaluates a program; returns the (name, value) pairs
    /// of the newly defined top-level values.
    ///
    /// # Errors
    ///
    /// Returns the first parse, type, or runtime error.
    pub fn run(&mut self, src: &str) -> Result<Vec<(String, Value)>, SessionError> {
        let decls = self.elab.elab_source(src)?;
        let mut out = Vec::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: Some(body),
                ..
            } = d
            {
                let v = self.eval_body(body, name)?;
                self.top.vals.insert(*sym, v.clone());
                self.vm_globals = None;
                self.by_name.insert(name.clone(), *sym);
                out.push((name.clone(), v));
            }
        }
        Ok(out)
    }

    /// Elaborates and evaluates a program in multi-error mode: every
    /// declaration that elaborates is evaluated, and every error —
    /// parse, type, resource, or runtime — is collected as a
    /// [`Diagnostic`](ur_syntax::Diagnostic) instead of aborting the
    /// batch. The session stays usable afterwards regardless of how
    /// hostile the input was.
    ///
    /// Every batch also feeds the [`Breaker`]: the fault delta the batch
    /// survived (worker deaths, watchdog trips, task/declaration
    /// retries, memo integrity rejections) is recorded, and while the
    /// breaker is open the batch runs degraded — sequentially and/or
    /// with memoization off, per [`BreakerConfig`] — with the
    /// degradation counted in [`Session::stats`].
    pub fn run_all(
        &mut self,
        src: &str,
    ) -> (Vec<(String, Value)>, ur_syntax::Diagnostics) {
        self.elab.cx.stats.capture_failpoints();
        let before = self.elab.cx.stats.clone();
        let mut threads = self.threads;
        if self.breaker.is_open() {
            if self.breaker.config.degrade_parallelism {
                threads = 1;
            }
            if self.breaker.config.disable_memo {
                self.elab.cx.memo.enabled = false;
            }
            self.elab.cx.stats.breaker_degraded_batches =
                self.elab.cx.stats.breaker_degraded_batches.saturating_add(1);
        }
        let (decls, mut diags) = self.elab.elab_source_all_threads(src, threads);
        self.elab.cx.stats.capture_failpoints();
        let delta = self.elab.cx.stats.since(&before);
        let faults = delta
            .par_worker_deaths
            .saturating_add(delta.watchdog_trips)
            .saturating_add(delta.par_retries)
            .saturating_add(delta.decl_retries)
            .saturating_add(delta.fp_memo_rejections);
        if self.breaker.record(faults) {
            self.elab.cx.stats.breaker_trips =
                self.elab.cx.stats.breaker_trips.saturating_add(1);
        }
        let mut out = Vec::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: Some(body),
                ..
            } = d
            {
                match self.eval_body(body, name) {
                    Ok(v) => {
                        self.top.vals.insert(*sym, v.clone());
                        self.vm_globals = None;
                        self.by_name.insert(name.clone(), *sym);
                        out.push((name.clone(), v));
                    }
                    Err(e) => diags.push(ur_syntax::Diagnostic::new(
                        ur_syntax::Span::default(),
                        ur_syntax::Code::Eval,
                        format!("runtime error evaluating {name}: {e}"),
                    )),
                }
            }
        }
        (out, diags)
    }

    /// Incremental variant of [`Session::run_all`]: elaborates `src` as
    /// *the whole program* (not an append), reusing every declaration
    /// whose content and transitive dependencies are unchanged since the
    /// previous `reelaborate` call — the red-green engine in
    /// [`ur_query`]. Observable results are identical to a cold
    /// `run_all` of the same source on a fresh session; only the amount
    /// of type-inference work differs. Green reuse charges no
    /// elaboration fuel and re-runs none of the hnf/defeq/unify
    /// machinery; evaluation of `val` bodies is deliberately *not*
    /// cached (the runtime world is stateful), so effects replay in
    /// source order on every rebuild.
    ///
    /// The first call captures the session's current state as the
    /// *base*; every call restores that base before elaborating, so
    /// successive calls see edits, not accumulation. Statistics are
    /// cumulative across rebuilds (the incremental counters in
    /// [`Session::stats`] track green/red/disk activity); the breaker
    /// degrades rebuilds exactly as it degrades `run_all` batches.
    pub fn reelaborate(&mut self, src: &str) -> (Vec<(String, Value)>, ur_syntax::Diagnostics) {
        if self.incr.is_none() {
            self.incr = Some(IncrState {
                base_elab: self.elab.snapshot(),
                base_world: self.world.clone(),
                base_top: self.top.clone(),
                base_by_name: self.by_name.clone(),
                engine: ur_query::Engine::new(ur_query::EngineConfig {
                    cache_dir: self.cache_dir.clone(),
                    base_tag: ur_core::fingerprint::hash_str(PRELUDE),
                }),
                last_report: ur_query::RunReport::default(),
            });
        }
        let Some(incr) = self.incr.as_mut() else {
            return (Vec::new(), Vec::new());
        };
        // Restore the base, preserving cumulative statistics. Fuel is
        // deliberately *not* preserved: it returns to its base value, so
        // `lifetime_norm_steps` after a rebuild reflects only the work
        // that rebuild actually did (zero for a fully green one).
        let kept_stats = self.elab.cx.stats.clone();
        self.elab.restore(incr.base_elab.clone());
        self.elab.cx.stats = kept_stats;
        self.world = incr.base_world.clone();
        // The wholesale world restore invalidated any WAL suffix written
        // since the base was captured; re-anchor the durable layer on the
        // restored state before the rebuild replays effects. No-op for
        // the in-memory database.
        self.world.db.persist_rebase();
        self.top = incr.base_top.clone();
        self.vm_globals = None;
        // The elaborator restore above rewound `genv`; cached chunks
        // baked the old environment's normalization into static field
        // names and pre-reduced constructors, so none of them may
        // survive the rebuild.
        self.chunk_cache.clear();
        self.by_name = incr.base_by_name.clone();

        // A per-rebuild fuel ceiling (deadline-budgeted serving) must be
        // installed here, after the restore replaced the whole context.
        if let Some(l) = self.rebuild_limits {
            self.elab.cx.fuel.limits = l;
            self.elab.cx.fuel.reset();
        }

        self.elab.cx.stats.capture_failpoints();
        let before = self.elab.cx.stats.clone();
        let mut threads = self.threads;
        if self.breaker.is_open() {
            if self.breaker.config.degrade_parallelism {
                threads = 1;
            }
            if self.breaker.config.disable_memo {
                self.elab.cx.memo.enabled = false;
            }
            self.elab.cx.stats.breaker_degraded_batches =
                self.elab.cx.stats.breaker_degraded_batches.saturating_add(1);
        }
        let (decls, mut diags, report) = incr.engine.run(&mut self.elab, src, threads);
        incr.last_report = report;
        self.elab.cx.stats.capture_failpoints();
        let delta = self.elab.cx.stats.since(&before);
        let faults = delta
            .par_worker_deaths
            .saturating_add(delta.watchdog_trips)
            .saturating_add(delta.par_retries)
            .saturating_add(delta.decl_retries)
            .saturating_add(delta.fp_memo_rejections);
        if self.breaker.record(faults) {
            self.elab.cx.stats.breaker_trips =
                self.elab.cx.stats.breaker_trips.saturating_add(1);
        }
        let mut out = Vec::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: Some(body),
                ..
            } = d
            {
                match self.eval_body(body, name) {
                    Ok(v) => {
                        self.top.vals.insert(*sym, v.clone());
                        self.vm_globals = None;
                        self.by_name.insert(name.clone(), *sym);
                        out.push((name.clone(), v));
                    }
                    Err(e) => diags.push(ur_syntax::Diagnostic::new(
                        ur_syntax::Span::default(),
                        ur_syntax::Code::Eval,
                        format!("runtime error evaluating {name}: {e}"),
                    )),
                }
            }
        }
        (out, diags)
    }

    /// [`Session::reelaborate`] under a one-rebuild fuel ceiling:
    /// over-budget declarations degrade to structured E0900
    /// diagnostics instead of running to completion. The ceiling covers
    /// exactly this rebuild — sequential or parallel (batch workers
    /// inherit the coordinator's limits) — and the session's standing
    /// limits are reinstated afterwards, so later rebuilds and
    /// evaluations are unaffected. This is the deadline-budget hook the
    /// serving layer uses (`deadline_ms` → fuel via
    /// [`ur_core::limits::Limits::for_deadline_ms`]).
    pub fn reelaborate_limited(
        &mut self,
        src: &str,
        limits: ur_core::limits::Limits,
    ) -> (Vec<(String, Value)>, ur_syntax::Diagnostics) {
        let standing = self.elab.cx.fuel.limits;
        self.rebuild_limits = Some(limits);
        let out = self.reelaborate(src);
        self.rebuild_limits = None;
        self.elab.cx.fuel.limits = standing;
        self.elab.cx.fuel.reset();
        out
    }

    /// What the most recent [`Session::reelaborate`] did (green/red
    /// split, disk activity). `None` before the first call.
    pub fn last_incr_report(&self) -> Option<&ur_query::RunReport> {
        self.incr.as_ref().map(|i| &i.last_report)
    }

    /// Elaborates and evaluates a single expression.
    ///
    /// # Errors
    ///
    /// Returns the first parse, type, or runtime error.
    pub fn eval(&mut self, src: &str) -> Result<Value, SessionError> {
        let (ee, _ty) = self.elab.elab_expr_source(src)?;
        Ok(self.eval_body(&ee, "<expr>")?)
    }

    /// Elaborates `src` once, then evaluates the resulting core body
    /// `reps` times on the configured engine, returning the final value
    /// and the evaluation-only wall time. This is the measurement loop
    /// the eval benchmark uses: parse/elaboration cost is excluded so
    /// the numbers compare the engines themselves — and for the VM the
    /// first iteration compiles the chunk while the rest hit the cache,
    /// exactly the render-loop pattern the speedup gate targets.
    ///
    /// # Errors
    ///
    /// Returns the first parse, type, or runtime error.
    pub fn eval_repeated(
        &mut self,
        src: &str,
        reps: u32,
    ) -> Result<(Value, std::time::Duration), SessionError> {
        let (ee, _ty) = self.elab.elab_expr_source(src)?;
        let reps = reps.max(1);
        match self.engine {
            // The production path: the chunk, the shared globals, and
            // one interpreter (whose normalization and resolution memos
            // warm up on the first iteration) all live across the loop —
            // exactly what a server holding a session pays per request.
            EvalEngine::Vm => {
                let chunk = self.chunk_for(&ee, "<bench>");
                let (globals, cons) = {
                    let g = self
                        .vm_globals
                        .get_or_insert_with(|| ur_eval::vm::share_globals(&self.top));
                    (Rc::clone(&g.0), g.1.clone())
                };
                let mut interp = Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
                let t0 = std::time::Instant::now();
                let mut runs = 1u64;
                let mut out = ur_eval::vm::run_shared(&mut interp, &chunk, &globals, &cons);
                while out.is_ok() && runs < u64::from(reps) {
                    out = ur_eval::vm::run_shared(&mut interp, &chunk, &globals, &cons);
                    runs += 1;
                }
                let dt = t0.elapsed();
                let es = interp.eval_stats;
                drop(interp);
                self.fold_vm_stats(es, runs);
                Ok((out?, dt))
            }
            // The oracle path stays deliberately cache-free: each
            // iteration re-walks the core term the way a single
            // [`Session::eval`] would.
            EvalEngine::Interp => {
                let t0 = std::time::Instant::now();
                let mut v = self.eval_body(&ee, "<bench>")?;
                for _ in 1..reps {
                    v = self.eval_body(&ee, "<bench>")?;
                }
                Ok((v, t0.elapsed()))
            }
        }
    }

    /// Elaborates a single expression and returns its type without
    /// evaluating.
    ///
    /// # Errors
    ///
    /// Returns the first parse or type error.
    pub fn type_of(&mut self, src: &str) -> Result<RCon, SessionError> {
        let (_ee, ty) = self.elab.elab_expr_source(src)?;
        Ok(ty)
    }

    /// Looks up a previously defined top-level value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        let sym = self.by_name.get(name)?;
        self.top.vals.get(sym)
    }

    /// Convenience: a top-level int value.
    ///
    /// # Errors
    ///
    /// Fails if the value is absent or not an int.
    pub fn get_int(&self, name: &str) -> Result<i64, SessionError> {
        self.get(name)
            .ok_or_else(|| SessionError::Eval(EvalError::new(format!("no value {name}"))))?
            .as_int()
            .map_err(SessionError::Eval)
    }

    /// Convenience: a top-level string value.
    ///
    /// # Errors
    ///
    /// Fails if the value is absent or not a string.
    pub fn get_str(&self, name: &str) -> Result<String, SessionError> {
        Ok(self
            .get(name)
            .ok_or_else(|| SessionError::Eval(EvalError::new(format!("no value {name}"))))?
            .as_str()
            .map_err(SessionError::Eval)?
            .to_string())
    }

    /// Applies a function value to arguments.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn apply(&mut self, f: &Value, args: &[Value]) -> Result<Value, SessionError> {
        let mut interp = Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
        let mut v = f.clone();
        for a in args {
            v = interp.apply(v, a.clone())?;
        }
        Ok(v)
    }

    /// The database.
    pub fn db(&mut self) -> &mut ur_db::Db {
        &mut self.world.db
    }

    /// Inference statistics accumulated so far (the Figure-5 counters).
    pub fn stats(&self) -> &ur_core::stats::Stats {
        &self.elab.cx.stats
    }

    /// [`Session::stats`] plus a snapshot of the thread-local intern
    /// table (node count, name count, hit/miss rates). The per-`Cx`
    /// counters are copied; the intern columns are read from the live
    /// table at call time.
    pub fn stats_snapshot(&self) -> ur_core::stats::Stats {
        let mut s = self.elab.cx.stats.clone();
        s.capture_intern();
        s.capture_failpoints();
        let d = self.world.db.stats();
        s.capture_db(
            d.index_probes,
            d.full_scans,
            d.planner_fallbacks,
            d.snapshot_reads,
            d.versions_gcd,
        );
        s
    }

    /// Captures the whole session (elaborator, world, environment,
    /// breaker) so a later [`Session::rollback`] can undo everything a
    /// batch did — including a chaos-aborted one.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            elab: self.elab.snapshot(),
            world: self.world.clone(),
            top: self.top.clone(),
            by_name: self.by_name.clone(),
            breaker: self.breaker.clone(),
        }
    }

    /// Restores the session to a previous [`Session::snapshot`]: env,
    /// folder cache, memo tables, stats, database, debug log, top-level
    /// values, and breaker state all return to the captured point.
    pub fn rollback(&mut self, snap: SessionSnapshot) {
        self.elab.restore(snap.elab);
        self.world = snap.world;
        // Rolling the world back abandons everything the batch appended
        // to the WAL; re-anchor durability on the restored state so a
        // crash right after rollback recovers it, not the aborted batch.
        self.world.db.persist_rebase();
        self.top = snap.top;
        self.vm_globals = None;
        // `genv` just rewound; chunks compiled against the rolled-back
        // environment must not be served to post-rollback evaluations.
        self.chunk_cache.clear();
        self.by_name = snap.by_name;
        self.breaker = snap.breaker;
    }

    /// A human-readable self-healing/health summary: breaker state,
    /// effective degradations, and the fault and recovery counters.
    /// Surfaced by `urc --health` and the REPL's `:health` command.
    pub fn health_report(&self) -> String {
        use fmt::Write as _;
        let s = self.stats_snapshot();
        let mut out = String::new();
        let state = if self.breaker.is_open() { "OPEN (degraded)" } else { "closed" };
        let _ = writeln!(out, "session health");
        let _ = writeln!(
            out,
            "  breaker: {state} — {}/{} faults over last {} batch(es) (window {}, threshold {})",
            self.breaker.window_total(),
            self.breaker.config.threshold,
            self.breaker.window_len(),
            self.breaker.config.window,
            self.breaker.config.threshold,
        );
        let degraded_threads = self.breaker.is_open() && self.breaker.config.degrade_parallelism;
        let _ = writeln!(
            out,
            "  threads: {}{}",
            self.threads,
            if degraded_threads { " (degraded to 1 while open)" } else { "" },
        );
        let _ = writeln!(
            out,
            "  memoization: {}",
            if self.elab.cx.memo.enabled { "on" } else { "off (breaker)" },
        );
        let _ = writeln!(
            out,
            "  self-healing: task_retries={} worker_deaths={} watchdog_trips={} decl_retries={}",
            s.par_retries, s.par_worker_deaths, s.watchdog_trips, s.decl_retries,
        );
        let _ = writeln!(
            out,
            "  breaker history: trips={} degraded_batches={}",
            s.breaker_trips, s.breaker_degraded_batches,
        );
        let _ = writeln!(
            out,
            "  fault injection: injected={} memo_rejections={}",
            s.fp_faults_injected, s.fp_memo_rejections,
        );
        out
    }

    /// A human-readable database summary: durability mode, open
    /// transaction, table row counts, WAL length, and the durability
    /// counters. Surfaced by the REPL's `:db` command and the serve
    /// protocol's `db` request.
    pub fn db_report(&self) -> String {
        use fmt::Write as _;
        let db = &self.world.db;
        let mut out = String::new();
        let mode = if db.is_durable() { "durable (WAL + snapshot)" } else { "in-memory" };
        let _ = writeln!(out, "database: {mode}");
        if db.in_txn() {
            let _ = writeln!(out, "  txn: open");
        }
        let mut names = db.table_names();
        names.sort();
        let _ = writeln!(out, "  tables: {}", names.len());
        for n in &names {
            let rows = db.row_count(n).unwrap_or(0);
            let idxs = db.indexes(n).unwrap_or_default();
            if idxs.is_empty() {
                let _ = writeln!(out, "    {n}: {rows} row(s)");
            } else {
                let cols: Vec<String> = idxs
                    .iter()
                    .map(|d| format!("{} ({})", d.name, d.column))
                    .collect();
                let _ = writeln!(out, "    {n}: {rows} row(s), indexes: {}", cols.join(", "));
            }
        }
        let _ = writeln!(
            out,
            "  planner: {}",
            if db.planner_enabled() { "on" } else { "off" }
        );
        if !db.plan_log().is_empty() {
            let _ = writeln!(out, "  plans (most recent last):");
            for p in db.plan_log() {
                let _ = writeln!(out, "    {p}");
            }
        }
        if db.is_durable() {
            let _ = writeln!(
                out,
                "  wal: {} byte(s), generation {}",
                db.wal_len(),
                db.wal_generation()
            );
            if let Some(why) = db.poison_reason() {
                let _ = writeln!(out, "  poisoned: {why}");
            }
        }
        let _ = writeln!(out, "  {}", db.stats());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_bootstraps() {
        let sess = Session::new().expect("prelude installs");
        assert!(sess.get("missing").is_none());
    }

    #[test]
    fn arithmetic_and_strings() {
        let mut sess = Session::new().unwrap();
        sess.run("val x = 1 + 2 * 3\nval s = \"a\" ^ showInt x").unwrap();
        assert_eq!(sess.get_int("x").unwrap(), 7);
        assert_eq!(sess.get_str("s").unwrap(), "a7");
    }

    #[test]
    fn eval_expression() {
        let mut sess = Session::new().unwrap();
        let v = sess.eval("if 1 < 2 then 10 else 20").unwrap();
        assert_eq!(v.as_int().unwrap(), 10);
    }

    #[test]
    fn lists_and_folds() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val l = cons 1 (cons 2 (cons 3 nil))\n\
             val total = foldList (fn (x : int) (acc : int) => x + acc) 0 l\n\
             val n = lengthList l",
        )
        .unwrap();
        assert_eq!(sess.get_int("total").unwrap(), 6);
        assert_eq!(sess.get_int("n").unwrap(), 3);
    }

    #[test]
    fn options() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val a = getOpt (some 5) 0\n\
             val b = getOpt none 7",
        )
        .unwrap();
        assert_eq!(sess.get_int("a").unwrap(), 5);
        assert_eq!(sess.get_int("b").unwrap(), 7);
    }

    #[test]
    fn xml_rendering_escapes() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val x = renderXml (tagP (cdata \"<script>alert(1)</script>\"))",
        )
        .unwrap();
        let s = sess.get_str("x").unwrap();
        assert_eq!(s, "<p>&lt;script&gt;alert(1)&lt;/script&gt;</p>");
    }

    #[test]
    fn sql_end_to_end() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"people\" {Name = sqlString, Age = sqlInt}\n\
             val u1 = insert t {Name = const \"alice\", Age = const 30}\n\
             val u2 = insert t {Name = const \"bob\", Age = const 25}\n\
             val n = rowCount t",
        )
        .unwrap();
        assert_eq!(sess.get_int("n").unwrap(), 2);
        let rows = sess.eval("selectAll t (sqlLt (column [#Age]) (const 28))").unwrap();
        let rows = rows.as_list().unwrap().to_vec();
        assert_eq!(rows.len(), 1);
        let rec = rows[0].as_record().unwrap();
        assert_eq!(rec.get("Name").unwrap().as_str().unwrap().as_ref(), "bob");
    }

    #[test]
    fn sql_injection_is_neutralized() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"notes\" {Body = sqlString}\n\
             val u = insert t {Body = const \"'; DROP TABLE notes; --\"}\n\
             val n = rowCount t",
        )
        .unwrap();
        assert_eq!(sess.get_int("n").unwrap(), 1);
        // The table still exists and the malicious text round-trips as data.
        let rows = sess.eval("selectAll t (sqlTrue)").unwrap();
        let rows = rows.as_list().unwrap().to_vec();
        let body = rows[0].as_record().unwrap()["Body"].as_str().unwrap();
        assert_eq!(body.as_ref(), "'; DROP TABLE notes; --");
        // And the logged SQL has the quote escaped.
        let log = sess.db().log().join("\n");
        assert!(log.contains("''; DROP TABLE notes; --"));
    }

    #[test]
    fn type_errors_are_reported_not_executed() {
        let mut sess = Session::new().unwrap();
        let err = sess.run("val bad = 1 + \"two\"").unwrap_err();
        assert!(matches!(err, SessionError::Elab(_)));
    }

    #[test]
    fn sequences_and_debug() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val u = createSequence \"s\"\n\
             val a = nextval \"s\"\n\
             val b = nextval \"s\"\n\
             val d = debug \"hello\"",
        )
        .unwrap();
        assert_eq!(sess.get_int("a").unwrap(), 1);
        assert_eq!(sess.get_int("b").unwrap(), 2);
        assert_eq!(sess.world.out, vec!["hello".to_string()]);
    }

    #[test]
    fn stats_are_exposed() {
        let mut sess = Session::new().unwrap();
        sess.run("fun proj3 [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] (x : $([nm = t] ++ r)) = x.nm\nval v = proj3 [#A] {A = 1, B = 2}").unwrap();
        assert!(sess.stats().disjoint_prover_calls > 0);
        assert_eq!(sess.get_int("v").unwrap(), 1);
    }

    #[test]
    fn vm_is_the_default_engine_and_counts_runs() {
        let mut sess = Session::new().unwrap();
        assert_eq!(sess.engine, EvalEngine::Vm);
        sess.run("val x = 1 + 2").unwrap();
        let s = sess.stats();
        assert!(s.eval_vm_runs > 0, "vm runs counted: {s}");
        assert!(s.eval_vm_ops > 0, "vm ops counted: {s}");
        assert!(s.eval_chunks_compiled > 0, "chunks counted: {s}");
        assert_eq!(s.eval_interp_runs, 0);
    }

    #[test]
    fn interp_engine_still_works_and_counts() {
        let mut sess = Session::new().unwrap();
        sess.engine = EvalEngine::Interp;
        sess.run("val x = 40 + 2").unwrap();
        assert_eq!(sess.get_int("x").unwrap(), 42);
        let s = sess.stats();
        assert!(s.eval_interp_runs > 0, "{s}");
        assert_eq!(s.eval_vm_runs, 0);
    }

    #[test]
    fn repeated_bodies_hit_the_chunk_cache() {
        let mut sess = Session::new().unwrap();
        // Identical bodies hash-cons to the same core term, so the
        // second evaluation reuses the compiled chunk.
        sess.run("val a = 40 + 2").unwrap();
        sess.run("val b = 40 + 2").unwrap();
        assert!(sess.stats().eval_chunk_hits > 0, "{}", sess.stats());
    }

    #[test]
    fn rollback_clears_the_chunk_cache() {
        let mut sess = Session::new().unwrap();
        sess.run("val a = 40 + 2").unwrap();
        let snap = sess.snapshot();
        sess.run("val b = 40 + 2").unwrap();
        assert!(sess.stats().eval_chunk_hits > 0, "{}", sess.stats());
        sess.rollback(snap);
        // Same hash-consed body, but the environment was rewound: the
        // chunk must be recompiled, not served from the stale cache.
        let hits = sess.stats().eval_chunk_hits;
        let compiled = sess.stats().eval_chunks_compiled;
        sess.run("val c = 40 + 2").unwrap();
        assert_eq!(
            sess.stats().eval_chunk_hits,
            hits,
            "stale chunk served after rollback"
        );
        assert!(sess.stats().eval_chunks_compiled > compiled);
        assert_eq!(sess.get_int("c").unwrap(), 42);
    }

    #[test]
    fn reelaborate_clears_the_chunk_cache() {
        let dir = std::env::temp_dir().join(format!("ur-sess-chunks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sess = Session::new().unwrap();
        sess.cache_dir = Some(dir.clone());
        let (_, d1) = sess.reelaborate("val a = 40 + 2");
        assert!(d1.is_empty(), "{d1:?}");
        let hits = sess.stats().eval_chunk_hits;
        // The rebuild restores the base environment first, so even an
        // identical body recompiles rather than reusing a chunk from
        // the previous build.
        let (_, d2) = sess.reelaborate("val a = 40 + 2");
        assert!(d2.is_empty(), "{d2:?}");
        assert_eq!(
            sess.stats().eval_chunk_hits,
            hits,
            "chunk survived the base restore"
        );
        assert_eq!(sess.get_int("a").unwrap(), 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_cache_is_bounded() {
        use ur_core::expr::{Expr, Lit};
        let mut sess = Session::new().unwrap();
        for i in 0..=(CHUNK_CACHE_CAP as i64) {
            let body = Expr::lit(Lit::Int(i));
            let _ = sess.chunk_for(&body, "cap");
            assert!(
                sess.chunk_cache.len() <= CHUNK_CACHE_CAP,
                "cache exceeded its cap at {i}"
            );
        }
    }

    #[test]
    fn engines_agree_on_metaprogram_output() {
        let src = "fun proj3 [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] (x : $([nm = t] ++ r)) = x.nm\n\
                   val v = proj3 [#A] {A = 1, B = 2}\n\
                   val l = cons 1 (cons 2 (cons 3 nil))\n\
                   val total = foldList (fn (x : int) (acc : int) => x + acc) 0 l\n\
                   val r = {A = 1, B = \"two\", C = True} -- #B\n\
                   val x = renderXml (tagP (cdata \"hi & bye\"))";
        let mut vm = Session::new().unwrap();
        vm.engine = EvalEngine::Vm;
        let mut oracle = Session::new().unwrap();
        oracle.engine = EvalEngine::Interp;
        let a = vm.run(src).unwrap();
        let b = oracle.run(src).unwrap();
        assert_eq!(a.len(), b.len());
        for ((na, va), (nb, vb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(va.to_string(), vb.to_string(), "divergence at {na}");
        }
    }
}

#[cfg(test)]
mod xml_typing_tests {
    use super::*;

    #[test]
    fn misplaced_tags_are_type_errors() {
        // <tr> directly inside <p> (inline context) is rejected.
        let mut sess = Session::new().unwrap();
        assert!(sess.eval("tagP (tagTr (tagTd (cdata \"x\")))").is_err());
        // <td> inside <table> without <tr> is rejected.
        assert!(sess.eval("tagTable (tagTd (cdata \"x\"))").is_err());
        // The correct nesting is accepted.
        assert!(sess
            .eval("tagTable (tagTr (tagTd (cdata \"x\")))")
            .is_ok());
    }

    #[test]
    fn cdata_is_context_polymorphic() {
        let mut sess = Session::new().unwrap();
        for src in [
            "renderXml (tagP (cdata \"a\"))",
            "renderXml (tagTr (tagTd (cdata \"a\")))",
            "renderXml (tagUl (tagLi (cdata \"a\")))",
        ] {
            assert!(sess.eval(src).is_ok(), "{src}");
        }
    }

    #[test]
    fn xcat_requires_matching_contexts() {
        let mut sess = Session::new().unwrap();
        // body ++ tr cells: contexts differ.
        assert!(sess
            .eval("xcat (tagP (cdata \"a\")) (tagTd (cdata \"b\"))")
            .is_err());
        assert!(sess
            .eval("xcat (tagP (cdata \"a\")) (tagH1 (cdata \"b\"))")
            .is_ok());
    }

    #[test]
    fn page_produces_full_document() {
        let mut sess = Session::new().unwrap();
        let v = sess
            .eval("page \"T&C\" (tagP (cdata \"hi\"))")
            .unwrap();
        let s = v.as_str().unwrap();
        assert!(s.starts_with("<html><head><title>T&amp;C</title>"));
        assert!(s.contains("<body><p>hi</p></body>"));
    }

    #[test]
    fn ordered_select_builtin() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"ord\" {K = sqlInt, V = sqlString}\n\
             val a = insert t {K = const 3, V = const \"c\"}\n\
             val b = insert t {K = const 1, V = const \"a\"}\n\
             val c = insert t {K = const 2, V = const \"b\"}",
        )
        .unwrap();
        let rows = sess
            .eval("selectOrdered [#K] t (sqlTrue) 0 2")
            .unwrap();
        assert_eq!(
            rows.to_string(),
            "[{K = 1, V = \"a\"}, {K = 2, V = \"b\"}]"
        );
        // Ordering by a column the table lacks is a type error.
        assert!(sess.eval("selectOrdered [#Nope] t (sqlTrue) 0 2").is_err());
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;

    /// A failed declaration must not poison the session: stale folder
    /// holes and constraints are discarded (regression test).
    #[test]
    fn session_recovers_from_failed_declarations() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "type meta (t :: Type) = {Show : t -> string}\n\
             fun render [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =\n\
               fl [fn r => $(map meta r) -> $r -> string]\n\
                  (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>\n\
                     mr.nm.Show x.nm ^ acc (mr -- nm) (x -- nm))\n\
                  (fn _ _ => \"\") mr x",
        )
        .unwrap();
        // Creates a folder hole with an undetermined row, then fails.
        assert!(sess.run("val bad = render oops").is_err());
        // Unrelated follow-up work must succeed.
        sess.run("val ok = 1 + 1").unwrap();
        assert_eq!(sess.get_int("ok").unwrap(), 2);
        // And the metaprogram still works.
        sess.run("val out = render {A = {Show = showInt}} {A = 5}")
            .unwrap();
        assert_eq!(sess.get_str("out").unwrap(), "5");
    }

    /// Failed `eval` calls also leave the session clean.
    #[test]
    fn eval_errors_do_not_leak_constraints() {
        let mut sess = Session::new().unwrap();
        assert!(sess.eval("{A = 1} ++ {A = 2}").is_err());
        assert_eq!(sess.eval("1 + 1").unwrap().as_int().unwrap(), 2);
    }

    /// `run_all` reports every bad declaration and still evaluates the
    /// good ones.
    #[test]
    fn run_all_reports_all_errors_and_runs_the_rest() {
        let mut sess = Session::new().unwrap();
        let (defs, diags) = sess.run_all(
            "val a : int = \"nope\"\n\
             val b = missing\n\
             val ok = 40 + 2",
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(defs.len(), 1);
        assert_eq!(sess.get_int("ok").unwrap(), 42);
    }

    /// `snapshot`/`rollback` must undo *everything* a batch did — env
    /// bindings, database tables, debug output, and stats — even when
    /// the batch partially failed, leaving the session bit-identical to
    /// its pre-batch state (the chaos harness relies on this to abort
    /// faulted batches).
    #[test]
    fn snapshot_rollback_restores_env_db_and_stats() {
        let mut sess = Session::new().unwrap();
        sess.run("val base = 10").unwrap();
        let stats_before = sess.stats().clone();
        let log_before = sess.world.out.clone();
        let snap = sess.snapshot();

        // A messy batch: new bindings, a new table, debug output, and a
        // failing declaration in the middle.
        let (defs, diags) = sess.run_all(
            "val good = base + 1\n\
             val t = createTable \"snapped\" {K = sqlInt}\n\
             val u = insert t {K = const 7}\n\
             val bad = 1 + \"two\"\n\
             val d = debug \"noise\"",
        );
        assert!(!diags.is_empty());
        assert!(!defs.is_empty());
        assert!(sess.get("good").is_some());
        assert_eq!(sess.world.db.row_count("snapped").unwrap(), 1);

        sess.rollback(snap);
        assert!(sess.get("good").is_none(), "binding survived rollback");
        assert!(sess.get("t").is_none(), "table binding survived rollback");
        assert!(
            sess.world.db.row_count("snapped").is_err(),
            "database table survived rollback"
        );
        assert_eq!(sess.world.out, log_before, "debug log survived rollback");
        assert_eq!(sess.get_int("base").unwrap(), 10);
        assert_eq!(
            *sess.stats(),
            stats_before,
            "stats drifted across snapshot/rollback"
        );

        // The rolled-back session is fully usable.
        sess.run("val after = base + 32").unwrap();
        assert_eq!(sess.get_int("after").unwrap(), 42);
    }

    /// Breaker state machine: accumulates over a sliding window, trips
    /// once on the closed→open edge, stays open (sticky), and recovers
    /// only via `reset`.
    #[test]
    fn breaker_trips_once_and_is_sticky() {
        let mut b = Breaker::new(BreakerConfig {
            window: 3,
            threshold: 5,
            ..BreakerConfig::default()
        });
        assert!(!b.record(2));
        assert!(!b.record(2));
        assert!(!b.is_open());
        assert!(b.record(1), "third batch reaches the threshold");
        assert!(b.is_open());
        assert!(!b.record(100), "an open breaker never re-trips");
        assert!(b.is_open());
        b.reset();
        assert!(!b.is_open());
        assert_eq!(b.window_len(), 0);
        // Old faults fell out of the window after reset.
        assert!(!b.record(4));
        assert!(!b.is_open());
    }

    /// While the breaker is open, `run_all` degrades (sequential + memo
    /// off), counts the degradation, and still produces correct values.
    #[test]
    fn open_breaker_degrades_run_all_but_stays_correct() {
        let mut sess = Session::new().unwrap();
        sess.threads = 4;
        // Trip the breaker by hand (fault injection does it for real in
        // the chaos suite).
        sess.breaker.record(BreakerConfig::default().threshold);
        assert!(sess.breaker.is_open());

        let (defs, diags) = sess.run_all("val z = 40 + 2");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(defs.len(), 1);
        assert_eq!(sess.get_int("z").unwrap(), 42);
        assert_eq!(sess.stats().breaker_degraded_batches, 1);
        assert!(!sess.elab.cx.memo.enabled, "memo not switched off");
        assert_eq!(sess.threads, 4, "configured thread count must survive");

        let report = sess.health_report();
        assert!(report.contains("OPEN (degraded)"), "{report}");
        assert!(report.contains("off (breaker)"), "{report}");
        assert!(report.contains("degraded_batches=1"), "{report}");
    }

    /// `reelaborate` is whole-program-replace: a no-op rebuild is fully
    /// green, values still evaluate, and an edit only recomputes the
    /// changed cone while producing the same observable results as a
    /// cold run.
    #[test]
    fn reelaborate_reuses_green_declarations() {
        let dir = std::env::temp_dir().join(format!("ur-sess-incr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sess = Session::new().unwrap();
        sess.cache_dir = Some(dir.clone());
        let src = "val a = 40\nval b = a + 2\nval s = showInt b";
        let (defs, diags) = sess.reelaborate(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(defs.len(), 3);
        assert_eq!(sess.get_int("b").unwrap(), 42);
        let r1 = sess.last_incr_report().unwrap().clone();
        assert_eq!(r1.red, 3);

        // No-op rebuild: all green, values unchanged, effects replayed.
        let (defs2, diags2) = sess.reelaborate(src);
        assert!(diags2.is_empty(), "{diags2:?}");
        assert_eq!(defs2.len(), 3);
        assert_eq!(sess.get_str("s").unwrap(), "42");
        let r2 = sess.last_incr_report().unwrap().clone();
        assert_eq!(r2.green, 3, "{r2:?}");
        assert_eq!(r2.red, 0, "{r2:?}");

        // Edit `a`: its dependents recompute, results update.
        let (_, diags3) = sess.reelaborate("val a = 10\nval b = a + 2\nval s = showInt b");
        assert!(diags3.is_empty(), "{diags3:?}");
        assert_eq!(sess.get_int("b").unwrap(), 12);
        let r3 = sess.last_incr_report().unwrap().clone();
        assert!(r3.red >= 1, "{r3:?}");
        assert_eq!(sess.stats().queries_total, 9);
        assert!(sess.stats().green_reused >= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Removing a declaration via rebuild removes its binding — the
    /// base restore means rebuilds replace, never accumulate.
    #[test]
    fn reelaborate_replaces_rather_than_accumulates() {
        let dir = std::env::temp_dir().join(format!("ur-sess-incr2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sess = Session::new().unwrap();
        sess.cache_dir = Some(dir.clone());
        let (_, d1) = sess.reelaborate("val x = 1\nval y = 2");
        assert!(d1.is_empty());
        assert!(sess.get("y").is_some());
        let (_, d2) = sess.reelaborate("val x = 1");
        assert!(d2.is_empty());
        assert!(sess.get("y").is_none(), "stale binding survived rebuild");
        assert_eq!(sess.get_int("x").unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `db_report` names the durability mode and every table.
    #[test]
    fn db_report_lists_tables_and_mode() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"people\" {Name = sqlString}\n\
             val u = insert t {Name = const \"alice\"}",
        )
        .unwrap();
        let report = sess.db_report();
        assert!(report.contains("in-memory"), "{report}");
        assert!(report.contains("people: 1 row(s)"), "{report}");
    }

    /// A session whose world is backed by a durable database persists
    /// its interpreter effects: a fresh open of the same directory sees
    /// exactly what the program committed.
    #[test]
    fn durable_world_effects_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("ur-sess-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut sess = Session::new().unwrap();
            *sess.db() = ur_db::Db::open(&dir).unwrap();
            sess.run(
                "val t = createTable \"people\" {Name = sqlString, Age = sqlInt}\n\
                 val u1 = insert t {Name = const \"alice\", Age = const 30}\n\
                 val u2 = insert t {Name = const \"bob\", Age = const 25}\n\
                 val s = createSequence \"ids\"\n\
                 val i = nextval \"ids\"",
            )
            .unwrap();
            assert_eq!(sess.get_int("i").unwrap(), 1);
            let report = sess.db_report();
            assert!(report.contains("durable"), "{report}");
            assert!(report.contains("wal:"), "{report}");
        }
        let mut db = ur_db::Db::open(&dir).unwrap();
        assert_eq!(db.row_count("people").unwrap(), 2);
        assert_eq!(db.nextval("ids").unwrap(), 2, "sequence position survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rollback on a durable world re-anchors the WAL: a reopen after
    /// rollback recovers the pre-batch state, not the aborted batch.
    #[test]
    fn rollback_on_durable_world_discards_batch_from_disk() {
        let dir = std::env::temp_dir().join(format!("ur-sess-rollbk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut sess = Session::new().unwrap();
            *sess.db() = ur_db::Db::open(&dir).unwrap();
            sess.run("val t = createTable \"keep\" {K = sqlInt}").unwrap();
            let snap = sess.snapshot();
            sess.run(
                "val t2 = createTable \"doomed\" {K = sqlInt}\n\
                 val u = insert t2 {K = const 1}",
            )
            .unwrap();
            sess.rollback(snap);
        }
        let db = ur_db::Db::open(&dir).unwrap();
        assert_eq!(db.row_count("keep").unwrap(), 0);
        assert!(db.row_count("doomed").is_err(), "aborted batch reached disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A healthy session reports a closed breaker and zeroed healing
    /// counters.
    #[test]
    fn health_report_on_healthy_session() {
        let mut sess = Session::new().unwrap();
        let (_defs, diags) = sess.run_all("val x = 1");
        assert!(diags.is_empty());
        let report = sess.health_report();
        assert!(report.contains("breaker: closed"), "{report}");
        assert!(report.contains("memoization: on"), "{report}");
        assert!(report.contains("trips=0"), "{report}");
    }
}
